// SessionPlane: first-class UE sessions (DESIGN §11).
//
// Before this module, a client's location was implicit state smeared across
// three layers -- the transport's attachment map, the dispatcher's
// last-packet-wins location table, and the static per-edge client
// assignment of the sharded control plane. The session plane is the single
// source of truth: one UeSession per client records its current ingress
// attachment (the gNB/cell it enters the network through), the cluster
// currently serving it, and a monotonically increasing *session epoch* that
// is bumped on every re-home. Consumers never cache a location; they hold
// the session (or its epoch) and re-read.
//
// The epoch is the correctness anchor for asynchronous handover work: a
// migrate-and-warm decision captures the epoch it was made under, and its
// completion is dropped when the client has re-homed again in the meantime
// -- late completions cannot clobber a newer attachment's state.
//
// Everything here is plain deterministic state: no kernel events, no
// metrics series, no log lines on the hot path (observe_packet), so wiring
// the session plane into a scenario that never hands over changes no
// artifact byte.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ovs_switch.hpp"
#include "net/tcp.hpp"
#include "simcore/simulation.hpp"

namespace tedge::sdn {

/// One client's session state. `ingress` is always valid; `ingress_switch`
/// is null for implicit sessions (clients only ever seen through their
/// packets, never explicitly attached).
struct UeSession {
    net::NodeId ue;                  ///< client node; invalid for implicit sessions
    net::Ipv4 ip;
    net::NodeId ingress;             ///< current attachment point (gNB node)
    net::OvsSwitch* ingress_switch = nullptr;
    std::string serving_cluster;     ///< last cluster a flow was installed toward
    std::uint64_t epoch = 0;         ///< bumped on every re-home
    sim::SimTime attached_at;        ///< when the current attachment began
    std::uint32_t handovers = 0;
    bool explicit_attachment = false;
};

struct SessionPlaneStats {
    std::uint64_t attaches = 0;           ///< sessions created explicitly
    std::uint64_t implicit_sessions = 0;  ///< sessions created from packets
    std::uint64_t handovers = 0;
    std::uint64_t detaches = 0;
    /// Packets observed entering through a switch other than the session's
    /// explicit attachment (in-flight stragglers buffered at the old cell).
    std::uint64_t out_of_cell_packets = 0;
};

class SessionPlane final : public net::IngressResolver {
public:
    /// Fired after a session re-homed: the session already points at the new
    /// ingress, `old_ingress` is the cell it left. First attaches and
    /// same-cell re-attaches do not fire.
    using HandoverCallback =
        std::function<void(const UeSession& session, net::NodeId old_ingress)>;

    explicit SessionPlane(sim::Simulation& sim) : sim_(sim) {}

    /// Create a session, or re-home an existing one (a radio handover: the
    /// epoch is bumped and handover callbacks fire). Re-attaching to the
    /// current cell is a no-op apart from upgrading an implicit session to
    /// an explicit one. Returns the (updated) session.
    const UeSession& attach(net::NodeId ue, net::Ipv4 ip, net::OvsSwitch& ingress);

    /// Remove a session entirely (UE powered off / left coverage).
    bool detach(net::Ipv4 ip);

    void on_handover(HandoverCallback cb) { callbacks_.push_back(std::move(cb)); }

    /// Hot path (every packet-in): record where a client's packets enter.
    /// Unknown clients get an implicit session; implicit sessions follow the
    /// packets (the legacy last-packet-wins behaviour). Explicit attachments
    /// are authoritative: a straggler entering at another cell is counted,
    /// not believed.
    void observe_packet(net::Ipv4 ip, net::NodeId ingress_node);

    /// Record the cluster whose instance a flow was just installed toward.
    void note_served_by(net::Ipv4 ip, const std::string& cluster);

    [[nodiscard]] const UeSession* by_ip(net::Ipv4 ip) const;
    [[nodiscard]] const UeSession* by_node(net::NodeId ue) const;
    [[nodiscard]] std::optional<net::NodeId> location(net::Ipv4 ip) const;

    // net::IngressResolver: the transport asks per request.
    [[nodiscard]] net::OvsSwitch* current_ingress(net::NodeId client) override;

    [[nodiscard]] std::size_t size() const { return by_ip_.size(); }
    [[nodiscard]] const SessionPlaneStats& stats() const { return stats_; }

private:
    UeSession* find(net::Ipv4 ip);

    sim::Simulation& sim_;
    std::unordered_map<std::uint32_t, UeSession> by_ip_;       ///< keyed by ip value
    std::unordered_map<std::uint32_t, std::uint32_t> ip_by_node_; ///< node value -> ip value
    std::vector<HandoverCallback> callbacks_;
    SessionPlaneStats stats_;
};

} // namespace tedge::sdn
