#include "sdn/annotator.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace tedge::sdn {
namespace {

std::string sanitize(const std::string& text) {
    std::string out;
    out.reserve(text.size());
    for (const char c : text) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        } else if (!out.empty() && out.back() != '-') {
            out += '-';
        }
    }
    while (!out.empty() && out.back() == '-') out.pop_back();
    return out;
}

const yamlite::Node* find_doc_of_kind(const std::vector<yamlite::Node>& docs,
                                      const std::string& kind) {
    for (const auto& doc : docs) {
        const auto* k = doc.find("kind");
        if (k != nullptr && k->as_str() == kind) return &doc;
    }
    return nullptr;
}

} // namespace

std::string AnnotatedService::yaml() const {
    return yamlite::emit_all({deployment, service});
}

Annotator::Annotator(AppProfileResolver resolver, AnnotatorConfig config)
    : resolver_(std::move(resolver)), config_(std::move(config)) {}

std::string Annotator::unique_name(const net::ServiceAddress& address) const {
    std::ostringstream os;
    os << config_.name_prefix << "-" << sanitize(address.ip.str()) << "-"
       << address.port;
    return os.str();
}

AnnotatedService Annotator::annotate(const std::string& yaml_text,
                                     const net::ServiceAddress& address) const {
    const auto docs = yamlite::parse_all(yaml_text);
    if (docs.empty()) throw std::invalid_argument("empty service definition");

    // Locate the Deployment (a document without `kind` is treated as one --
    // the file may be nothing but an image name under the template).
    const yamlite::Node* deployment_in = find_doc_of_kind(docs, "Deployment");
    if (deployment_in == nullptr) {
        for (const auto& doc : docs) {
            if (doc.find("kind") == nullptr) {
                deployment_in = &doc;
                break;
            }
        }
    }
    if (deployment_in == nullptr) {
        throw std::invalid_argument("service definition lacks a Deployment");
    }
    const yamlite::Node* service_in = find_doc_of_kind(docs, "Service");

    AnnotatedService out;
    yamlite::Node d = *deployment_in;
    const std::string name = unique_name(address);

    // --- Deployment annotations ---------------------------------------
    d["apiVersion"] = yamlite::Node{"apps/v1"};
    d["kind"] = yamlite::Node{"Deployment"};
    d["metadata"]["name"] = yamlite::Node{name};
    d["metadata"]["labels"]["app"] = yamlite::Node{name};
    d["metadata"]["labels"]["edge.service"] = yamlite::Node{name};
    d["spec"]["replicas"] = yamlite::Node{0};  // scale to zero by default
    d["spec"]["selector"]["matchLabels"]["app"] = yamlite::Node{name};
    d["spec"]["selector"]["matchLabels"]["edge.service"] = yamlite::Node{name};
    d["spec"]["template"]["metadata"]["labels"]["app"] = yamlite::Node{name};
    d["spec"]["template"]["metadata"]["labels"]["edge.service"] = yamlite::Node{name};
    if (!config_.local_scheduler.empty()) {
        d["spec"]["template"]["spec"]["schedulerName"] =
            yamlite::Node{config_.local_scheduler};
    }

    const auto* containers =
        d.find_path("spec.template.spec.containers");
    if (containers == nullptr || !containers->is_seq() || containers->seq().empty()) {
        throw std::invalid_argument("service definition has no containers");
    }

    // --- Build the machine-usable spec ---------------------------------
    out.spec.name = name;
    out.spec.cloud_address = address;
    out.spec.labels = {{"app", name}, {"edge.service", name}};
    out.spec.replicas = 0;
    out.spec.scheduler_name = config_.local_scheduler;

    // Named hostPath volumes, for volume mounts (supported for Docker too).
    std::map<std::string, std::string> host_paths;
    if (const auto* volumes = d.find_path("spec.template.spec.volumes");
        volumes != nullptr && volumes->is_seq()) {
        for (const auto& v : volumes->seq()) {
            const auto* vol_name = v.find("name");
            const auto* host = v.find_path("hostPath.path");
            if (vol_name != nullptr && host != nullptr) {
                host_paths[vol_name->as_str()] = host->as_str();
            }
        }
    }

    std::uint16_t first_container_port = 0;
    for (const auto& c : containers->seq()) {
        orchestrator::ContainerTemplate tmpl;
        const auto* image_node = c.find("image");
        if (image_node == nullptr) {
            throw std::invalid_argument("container without an image (the only "
                                        "mandatory field)");
        }
        const auto ref = container::ImageRef::parse(image_node->as_str());
        if (!ref) {
            throw std::invalid_argument("malformed image reference: " +
                                        image_node->as_str());
        }
        tmpl.image = *ref;
        tmpl.name = c.find("name") != nullptr && !c.find("name")->as_str().empty()
                        ? c.find("name")->as_str()
                        : sanitize(ref->repository);
        if (const auto* ports = c.find("ports"); ports != nullptr && ports->is_seq()) {
            for (const auto& p : ports->seq()) {
                if (const auto* cp = p.find("containerPort")) {
                    if (const auto v = cp->as_int(); v && *v > 0 && *v <= 0xffff) {
                        tmpl.container_port = static_cast<std::uint16_t>(*v);
                        if (first_container_port == 0) {
                            first_container_port = tmpl.container_port;
                        }
                        break;
                    }
                }
            }
        }
        if (const auto* mounts = c.find("volumeMounts");
            mounts != nullptr && mounts->is_seq()) {
            for (const auto& m : mounts->seq()) {
                const auto* mount_name = m.find("name");
                const auto* mount_path = m.find("mountPath");
                if (mount_name == nullptr || mount_path == nullptr) continue;
                const auto it = host_paths.find(mount_name->as_str());
                if (it != host_paths.end()) {
                    tmpl.volumes.push_back(
                        container::VolumeMount{it->second, mount_path->as_str()});
                }
            }
        }
        if (const auto* env = c.find("env"); env != nullptr && env->is_seq()) {
            for (const auto& e : env->seq()) {
                const auto* env_name = e.find("name");
                const auto* env_value = e.find("value");
                if (env_name != nullptr && env_value != nullptr) {
                    tmpl.env[env_name->as_str()] = env_value->as_str();
                }
            }
        }
        // Kubernetes `resources.requests` quantities ("500m", "128Mi");
        // limits are not modelled, so only requests drive admission.
        if (const auto* cpu = c.find_path("resources.requests.cpu")) {
            const auto parsed = orchestrator::parse_cpu_millicores(cpu->as_str());
            if (!parsed) {
                throw std::invalid_argument("malformed cpu request: " +
                                            cpu->as_str());
            }
            tmpl.resources.cpu_millicores = *parsed;
        }
        if (const auto* mem = c.find_path("resources.requests.memory")) {
            const auto parsed = orchestrator::parse_memory_bytes(mem->as_str());
            if (!parsed) {
                throw std::invalid_argument("malformed memory request: " +
                                            mem->as_str());
            }
            tmpl.resources.memory_bytes = *parsed;
        }
        tmpl.app = resolver_ ? resolver_(tmpl.image) : nullptr;
        out.spec.containers.push_back(std::move(tmpl));
    }

    // --- Service document (generate unless provided) -------------------
    std::uint16_t expose_port = address.port;
    std::uint16_t target_port =
        first_container_port != 0 ? first_container_port : address.port;

    yamlite::Node s;
    if (service_in != nullptr) {
        s = *service_in;
        if (const auto* ports = s.find_path("spec.ports");
            ports != nullptr && ports->is_seq() && !ports->seq().empty()) {
            const auto& p0 = ports->seq().front();
            if (const auto* port = p0.find("port")) {
                if (const auto v = port->as_int(); v && *v > 0 && *v <= 0xffff) {
                    expose_port = static_cast<std::uint16_t>(*v);
                }
            }
            if (const auto* tp = p0.find("targetPort")) {
                if (const auto v = tp->as_int(); v && *v > 0 && *v <= 0xffff) {
                    target_port = static_cast<std::uint16_t>(*v);
                }
            }
        }
    } else {
        yamlite::Node port_entry = yamlite::Node::make_map();
        port_entry.set("port", yamlite::Node{static_cast<std::int64_t>(expose_port)});
        port_entry.set("targetPort",
                       yamlite::Node{static_cast<std::int64_t>(target_port)});
        port_entry.set("protocol", yamlite::Node{"TCP"});
        s["spec"]["ports"] = yamlite::Node::make_seq();
        s["spec"]["ports"].push_back(std::move(port_entry));
    }
    s["apiVersion"] = yamlite::Node{"v1"};
    s["kind"] = yamlite::Node{"Service"};
    s["metadata"]["name"] = yamlite::Node{name};
    s["metadata"]["labels"]["app"] = yamlite::Node{name};
    s["metadata"]["labels"]["edge.service"] = yamlite::Node{name};
    s["spec"]["selector"]["edge.service"] = yamlite::Node{name};

    out.spec.expose_port = expose_port;
    out.spec.target_port = target_port;
    out.deployment = std::move(d);
    out.service = std::move(s);

    if (!out.spec.valid()) {
        throw std::invalid_argument("annotation produced an invalid spec for " +
                                    address.str());
    }
    return out;
}

} // namespace tedge::sdn
