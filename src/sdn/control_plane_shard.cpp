#include "sdn/control_plane_shard.hpp"

#include <algorithm>

namespace tedge::sdn {

// ------------------------------------------------------------- aggregator

ControlPlaneAggregator::ControlPlaneAggregator(sim::Domain& domain)
    : domain_(&domain), latest_(domain.domain_count()) {}

void ControlPlaneAggregator::deliver(const ControlPlaneDigest& digest) {
    if (digest.shard >= latest_.size()) {
        latest_.resize(digest.shard + std::size_t{1});
    }
    // Windows can batch several digests from one shard into one delivery
    // round; keep the newest by seq.
    if (digest.seq > latest_[digest.shard].seq) latest_[digest.shard] = digest;
    ++received_;
}

std::size_t ControlPlaneAggregator::shards_reporting() const {
    return static_cast<std::size_t>(
        std::count_if(latest_.begin(), latest_.end(),
                      [](const ControlPlaneDigest& d) { return d.seq > 0; }));
}

std::uint64_t ControlPlaneAggregator::total_live_flows() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.live_flows;
    return total;
}

std::uint64_t ControlPlaneAggregator::total_recall_hits() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.recall_hits;
    return total;
}

std::uint64_t ControlPlaneAggregator::total_recall_misses() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.recall_misses;
    return total;
}

std::uint64_t ControlPlaneAggregator::total_idle_notifications() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.idle_notifications;
    return total;
}

std::uint64_t ControlPlaneAggregator::total_flows_handed_off() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.flows_handed_off;
    return total;
}

std::uint64_t ControlPlaneAggregator::total_flows_adopted() const {
    std::uint64_t total = 0;
    for (const auto& d : latest_) total += d.flows_adopted;
    return total;
}

const ControlPlaneDigest& ControlPlaneAggregator::latest(sim::DomainId shard) const {
    return latest_.at(shard);
}

// ------------------------------------------------------------------ shard

ControlPlaneShard::ControlPlaneShard(sim::Domain& domain,
                                     ControlPlaneAggregator& aggregator,
                                     Config config)
    : domain_(&domain),
      aggregator_(&aggregator),
      config_(config),
      memory_(domain.sim(), config.flow_memory) {
    memory_.set_idle_service_callback(
        [this](const std::string&, const std::string&) {
            ++idle_notifications_;
        });
}

ControlPlaneShard::~ControlPlaneShard() { stop(); }

bool ControlPlaneShard::packet_in(net::Ipv4 client_ip,
                                  const net::ServiceAddress& service,
                                  const std::string& service_name,
                                  net::NodeId instance_node,
                                  std::uint16_t instance_port,
                                  const std::string& cluster) {
    ++packet_ins_;
    if (memory_.recall(client_ip, service)) return true;
    MemorizedFlow flow;
    flow.client_ip = client_ip;
    flow.service_address = service;
    flow.service_name = service_name;
    flow.instance_node = instance_node;
    flow.instance_port = instance_port;
    flow.cluster = cluster;
    flow.created = domain_->sim().now();
    flow.last_used = flow.created;
    memory_.memorize(flow);
    return false;
}

void ControlPlaneShard::handoff_client(net::Ipv4 client_ip,
                                       ControlPlaneShard& dst) {
    std::vector<MemorizedFlow> flows = memory_.extract_client(client_ip);
    ++handoffs_out_;
    flows_handed_off_ += flows.size();
    if (flows.empty()) return; // nothing to ship; the handoff itself is free
    if (dst.domain_->id() == domain_->id()) {
        // Same site (single-domain runs): the transfer is a local control-
        // plane operation, but still costs the processing delay.
        domain_->sim().schedule(config_.handoff_delay,
                                [d = &dst, flows = std::move(flows)] {
                                    d->adopt_handoff(flows);
                                });
        return;
    }
    // Cross-site: the slice rides the inter-site channel. Delivery time is
    // sender clock + max(processing delay, conservative lookahead) -- the
    // same merge rule as every other cross-domain message, which is what
    // keeps the handoff byte-identical at any shard/worker count.
    const sim::SimTime delay =
        std::max(config_.handoff_delay, domain_->lookahead_to(dst.domain_->id()));
    domain_->post(dst.domain_->id(), domain_->sim().now() + delay,
                  [d = &dst, flows = std::move(flows)] {
                      d->adopt_handoff(flows);
                  },
                  /*daemon=*/false);
}

void ControlPlaneShard::adopt_handoff(const std::vector<MemorizedFlow>& flows) {
    ++handoffs_in_;
    flows_adopted_ += flows.size();
    // memorize() preserves a nonzero `created` and stamps last_used = now:
    // adoption is exactly a touch at the arrival instant.
    for (const MemorizedFlow& flow : flows) memory_.memorize(flow);
}

void ControlPlaneShard::start() {
    if (digest_timer_.active()) return;
    digest_timer_ = domain_->sim().schedule_periodic(
        config_.digest_period, [this] { send_digest(); }, /*daemon=*/true);
}

void ControlPlaneShard::stop() { digest_timer_.cancel(); }

void ControlPlaneShard::send_digest() {
    ControlPlaneDigest digest;
    digest.shard = domain_->id();
    digest.seq = ++next_digest_seq_;
    digest.composed_at = domain_->sim().now();
    digest.live_flows = memory_.size();
    digest.recall_hits = memory_.hits();
    digest.recall_misses = memory_.misses();
    digest.idle_notifications = idle_notifications_;
    digest.flows_handed_off = flows_handed_off_;
    digest.flows_adopted = flows_adopted_;

    const sim::DomainId dst = aggregator_->domain().id();
    if (dst == domain_->id()) {
        // Colocated controller (single-domain runs): deliver locally.
        aggregator_->deliver(digest);
        return;
    }
    // The digest crosses the site-to-controller access link; it can never
    // arrive faster than that channel's own minimum cut latency (with
    // explicit channels this is the real site-to-controller bound, not the
    // global minimum over all cut links).
    const sim::SimTime at = domain_->sim().now() + domain_->lookahead_to(dst);
    domain_->post(dst, at,
                  [agg = aggregator_, digest] { agg->deliver(digest); },
                  /*daemon=*/true);
}

} // namespace tedge::sdn
