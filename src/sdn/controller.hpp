// The SDN controller: ties the ingress switch, FlowMemory, Dispatcher,
// Global Scheduler, and DeploymentEngine together (paper §V). The concrete
// scheduler is chosen by name from the controller configuration and
// instantiated through the SchedulerRegistry ("dynamically loaded").
// The controller may also scale down edge services whose memorized flows
// have all gone idle.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "net/ovs_switch.hpp"
#include "sdn/dispatcher.hpp"
#include "sdn/flow_memory.hpp"
#include "sdn/scheduler.hpp"
#include "sdn/service_registry.hpp"
#include "sdn/session_plane.hpp"
#include "simcore/logging.hpp"

namespace tedge::sdn {

struct ControllerConfig {
    std::string scheduler = kProximityScheduler;
    yamlite::Node scheduler_params;
    DispatcherConfig dispatcher;
    FlowMemory::Config flow_memory;
    /// Scale idle services down when their last memorized flow expires.
    bool scale_down_idle = true;
    /// Control-plane fidelity (DESIGN §9). The single knob: the Controller
    /// copies it into the dispatcher and flow-memory sub-configs, overriding
    /// whatever they carry.
    Fidelity fidelity = Fidelity::kExact;
    /// The session plane to read client attachments from. The platform wires
    /// its own; when null the controller owns a private one (implicit
    /// sessions only -- the legacy packet-driven location tracking).
    SessionPlane* session_plane = nullptr;
};

class Controller {
public:
    Controller(sim::Simulation& sim, net::Topology& topo, net::OvsSwitch& ingress,
               ServiceRegistry& registry, core::DeploymentEngine& engine,
               std::vector<orchestrator::Cluster*> clusters,
               ControllerConfig config = {});

    /// Attach to the primary switch (registers the packet-in handler).
    /// Idempotent.
    void start();

    /// Attach an additional ingress switch (multi-gNB deployments): its
    /// packet-ins are dispatched with the switch as flow-install target, and
    /// service-wide flow evictions reach it too.
    void attach(net::OvsSwitch& ingress);

    [[nodiscard]] Dispatcher& dispatcher() { return *dispatcher_; }
    [[nodiscard]] const Dispatcher& dispatcher() const { return *dispatcher_; }
    [[nodiscard]] SessionPlane& sessions() { return *sessions_; }
    [[nodiscard]] FlowMemory& flow_memory() { return flow_memory_; }
    [[nodiscard]] GlobalScheduler& scheduler() { return *scheduler_; }
    [[nodiscard]] const ControllerConfig& config() const { return config_; }

    [[nodiscard]] std::uint64_t idle_scale_downs() const { return idle_scale_downs_; }

private:
    void on_idle_service(const std::string& service, const std::string& cluster);

    sim::Simulation& sim_;
    net::OvsSwitch& ingress_;
    core::DeploymentEngine& engine_;
    std::vector<orchestrator::Cluster*> clusters_;
    ControllerConfig config_;
    FlowMemory flow_memory_;
    /// Owned fallback when no session plane was configured; sessions_ always
    /// points at the one in use. Declared before dispatcher_, which holds a
    /// reference into it.
    std::unique_ptr<SessionPlane> owned_sessions_;
    SessionPlane* sessions_ = nullptr;
    std::unique_ptr<GlobalScheduler> scheduler_;
    std::unique_ptr<Dispatcher> dispatcher_;
    sim::Logger log_;
    std::uint64_t idle_scale_downs_ = 0;
    bool started_ = false;
};

} // namespace tedge::sdn
