// The Dispatcher (paper fig. 6/7): feeds the Global Scheduler with the
// current system state, checks and triggers deployment of edge services,
// tracks the clients' locations, and answers packet-ins:
//
//   packet-in -> FlowMemory hit? -> install flow, release packet
//             -> registered service? no -> release toward the cloud
//             -> gather instances -> Scheduler {FAST, BEST}
//             -> BEST non-empty -> deploy there in the background
//             -> FAST instance ready -> redirect now
//             -> FAST needs deployment -> deploy, hold the packet, probe the
//                port, then redirect (on-demand deployment WITH waiting)
//             -> FAST empty -> release toward the cloud
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/deployment.hpp"
#include "net/ovs_switch.hpp"
#include "sdn/continuity.hpp"
#include "sdn/flow_memory.hpp"
#include "sdn/scheduler.hpp"
#include "sdn/service_registry.hpp"
#include "sdn/session_plane.hpp"
#include "simcore/logging.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sdn {

struct DispatcherConfig {
    std::uint16_t flow_priority = 200;
    /// Idle timeout for switch entries; kept low because FlowMemory can
    /// restore flows cheaply (paper §V).
    sim::SimTime switch_idle_timeout = sim::seconds(10);
    /// Install a redirect-to-cloud entry when no edge location exists, so
    /// follow-up packets do not hit the controller again.
    bool install_cloud_flows = true;
    /// Under hybrid fidelity, installs whose decision was already settled
    /// (memory hit, redirect to a ready instance) memorize their flow as
    /// established, letting FlowMemory promote it into a fluid cohort.
    /// Cold starts and deploy-and-wait installs stay exact in either mode.
    Fidelity fidelity = Fidelity::kExact;
    /// What to do with a client's existing flows on handover (DESIGN §11).
    ContinuityConfig continuity;
};

struct DispatcherStats {
    std::uint64_t packet_ins = 0;
    std::uint64_t memory_hits = 0;
    std::uint64_t unregistered = 0;
    std::uint64_t redirected_ready = 0;   ///< served by an existing instance
    std::uint64_t deployed_waiting = 0;   ///< with-waiting deployments
    std::uint64_t deployed_background = 0;///< without-waiting (BEST) deployments
    std::uint64_t cloud_fallbacks = 0;
    std::uint64_t failures = 0;
    std::uint64_t deploy_retries = 0;     ///< alternate-cluster retries issued
    std::uint64_t retry_successes = 0;    ///< retries that served the request
    std::uint64_t handovers = 0;          ///< session re-homes processed
    std::uint64_t resteers = 0;           ///< flows kept on their old instance
    std::uint64_t migrations = 0;         ///< migrate-and-warm decisions taken
    std::uint64_t migrations_completed = 0; ///< cut-overs executed
    std::uint64_t migration_failures = 0; ///< warm-up deployments that failed
    std::uint64_t stale_migrations = 0;   ///< completions dropped: client re-homed again
};

class Dispatcher {
public:
    Dispatcher(sim::Simulation& sim, net::Topology& topo, net::OvsSwitch& ingress,
               ServiceRegistry& registry, FlowMemory& memory,
               core::DeploymentEngine& engine, GlobalScheduler& scheduler,
               SessionPlane& sessions,
               std::vector<orchestrator::Cluster*> clusters,
               DispatcherConfig config = {});

    /// Handle a packet-in from the primary ingress switch.
    void handle_packet_in(const net::PacketIn& event);

    /// Handle a packet-in from a specific switch (multi-gNB deployments).
    void handle_packet_in(net::OvsSwitch& source, const net::PacketIn& event);

    /// Register an additional ingress switch so service-wide flow eviction
    /// reaches it. The primary switch is registered automatically.
    void add_switch(net::OvsSwitch& ingress);

    /// Called when a background (BEST) deployment became ready: invalidate
    /// flows of the service (on every attached switch) so new requests
    /// re-dispatch to the new optimal instance.
    void on_best_ready(const orchestrator::ServiceSpec& spec);

    /// A client re-homed (SessionPlane handover callback): sweep its stale
    /// flows off the old cell's switch and run the continuity policy over
    /// each of its memorized flows -- re-steer or migrate-and-warm.
    void on_handover(const UeSession& session, net::NodeId old_ingress);

    /// Replace the continuity policy (tests / custom strategies). The default
    /// is built from DispatcherConfig::continuity by name.
    void set_continuity_policy(std::unique_ptr<ContinuityPolicy> policy);

    /// Current attachment point of a client -- answered by the session plane
    /// (the paper's location tracking, now handover-aware: updated by the
    /// platform's handover event, not by the next packet).
    [[nodiscard]] std::optional<net::NodeId> client_location(net::Ipv4 client) const;

    [[nodiscard]] const DispatcherStats& stats() const { return stats_; }
    [[nodiscard]] const std::vector<orchestrator::Cluster*>& clusters() const {
        return clusters_;
    }

private:
    /// The packet-in decision body; `pin_span` is the enclosing trace span.
    void dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                  sim::SpanId pin_span);
    /// `established` marks installs whose decision was already settled (the
    /// hybrid-fidelity promotion hint; ignored under exact fidelity).
    void install_and_release(net::OvsSwitch& source, const net::PacketIn& event,
                             const orchestrator::ServiceSpec& spec,
                             const orchestrator::InstanceInfo& instance,
                             const std::string& cluster_name, bool established);
    void release_to_cloud(net::OvsSwitch& source, const net::PacketIn& event,
                          bool install_flow);
    /// One deploy-and-wait failed: re-ask the scheduler with the failed
    /// cluster excluded and try the next-best candidate once before the
    /// cloud fallback.
    void retry_dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                        const orchestrator::ServiceSpec& spec,
                        const std::string& failed_cluster, sim::SpanId pin_span);
    /// `client` is the node proximity is judged from: the packet's ingress on
    /// the dispatch path, the *new* cell on the handover path (the client's
    /// own node still carries links to previously-visited cells, which would
    /// distort the decision).
    ScheduleContext build_context(net::NodeId client,
                                  const orchestrator::ServiceSpec& spec,
                                  const std::string* exclude_cluster = nullptr) const;
    /// Continuity decision for one (client, flow) pair after a handover.
    void decide_continuity(const UeSession& session, net::NodeId old_ingress,
                           const MemorizedFlow& flow);
    static std::uint64_t cookie_for(const std::string& service);

    sim::Simulation& sim_;
    net::Topology& topo_;
    net::OvsSwitch& ingress_;
    std::vector<net::OvsSwitch*> switches_;  ///< all attached ingresses
    ServiceRegistry& registry_;
    FlowMemory& memory_;
    core::DeploymentEngine& engine_;
    GlobalScheduler& scheduler_;
    SessionPlane& sessions_;
    std::vector<orchestrator::Cluster*> clusters_;
    DispatcherConfig config_;
    DispatcherStats stats_;
    sim::Logger log_;
    std::unique_ptr<ContinuityPolicy> continuity_;
};

} // namespace tedge::sdn
