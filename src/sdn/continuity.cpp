#include "sdn/continuity.hpp"

#include <stdexcept>

namespace tedge::sdn {

ContinuityAction LatencyDeltaPolicy::decide(const ContinuityContext& ctx) {
    const bool affordable =
        ctx.target_warm || ctx.deployment_cost <= config_.max_deploy_cost;
    if (!affordable) return ContinuityAction::kResteer;
    if (ctx.resteer_latency - ctx.migrate_latency >= config_.min_latency_gain) {
        return ContinuityAction::kMigrate;
    }
    return ContinuityAction::kResteer;
}

std::unique_ptr<ContinuityPolicy> make_continuity_policy(const ContinuityConfig& config) {
    if (config.policy == kResteerPolicy) return std::make_unique<ResteerPolicy>();
    if (config.policy == kLatencyDeltaPolicy) {
        return std::make_unique<LatencyDeltaPolicy>(config);
    }
    throw std::invalid_argument("unknown continuity policy: " + config.policy);
}

} // namespace tedge::sdn
