#include "sdn/dispatcher.hpp"

#include <functional>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sdn {

Dispatcher::Dispatcher(sim::Simulation& sim, net::Topology& topo,
                       net::OvsSwitch& ingress, ServiceRegistry& registry,
                       FlowMemory& memory, core::DeploymentEngine& engine,
                       GlobalScheduler& scheduler,
                       std::vector<orchestrator::Cluster*> clusters,
                       DispatcherConfig config)
    : sim_(sim), topo_(topo), ingress_(ingress), registry_(registry),
      memory_(memory), engine_(engine), scheduler_(scheduler),
      clusters_(std::move(clusters)), config_(config), log_(sim, "dispatcher") {
    switches_.push_back(&ingress_);
}

void Dispatcher::add_switch(net::OvsSwitch& ingress) {
    for (auto* existing : switches_) {
        if (existing == &ingress) return;
    }
    switches_.push_back(&ingress);
}

std::uint64_t Dispatcher::cookie_for(const std::string& service) {
    // Non-zero cookie so flow eviction by service works; 0 marks cloud flows.
    const auto h = std::hash<std::string>{}(service);
    return h == 0 ? 1 : h;
}

std::optional<net::NodeId> Dispatcher::client_location(net::Ipv4 client) const {
    const auto it = client_locations_.find(client.value());
    return it == client_locations_.end() ? std::nullopt : std::optional{it->second};
}

ScheduleContext Dispatcher::build_context(const net::PacketIn& event,
                                          const orchestrator::ServiceSpec& spec,
                                          const std::string* exclude_cluster) const {
    ScheduleContext ctx;
    ctx.client = event.packet.ingress;
    ctx.spec = &spec;
    ctx.topo = &topo_;
    for (auto* cluster : clusters_) {
        if (exclude_cluster != nullptr && cluster->name() == *exclude_cluster) {
            continue;
        }
        ScheduleContext::ClusterState state;
        state.cluster = cluster;
        state.instances = cluster->instances(spec.name);
        state.has_image = cluster->has_image(spec);
        state.has_service = cluster->has_service(spec.name);
        state.utilization = cluster->utilization();
        state.inflight_deploys = engine_.inflight_for(cluster->name());
        state.admission = cluster->admits(spec);
        ctx.states.push_back(std::move(state));
    }
    return ctx;
}

void Dispatcher::install_and_release(net::OvsSwitch& source,
                                     const net::PacketIn& event,
                                     const orchestrator::ServiceSpec& spec,
                                     const orchestrator::InstanceInfo& instance,
                                     const std::string& cluster_name,
                                     bool established) {
    if (auto* tr = sim_.tracer()) {
        const auto span = tr->begin("flow.install");
        tr->arg(span, "service", spec.name);
        tr->arg(span, "cluster", cluster_name);
        tr->end(span);
    }
    if (auto* m = sim_.metrics()) m->counter("sdn.flow_installs").inc();
    net::FlowEntry entry;
    entry.match.src_ip = event.packet.src_ip;
    entry.match.dst_ip = event.packet.dst_ip;
    entry.match.dst_port = event.packet.dst_port;
    entry.match.proto = event.packet.proto;
    entry.action.set_dst_ip = topo_.node(instance.node).ip;
    entry.action.set_dst_port = instance.port;
    entry.action.forward_to = instance.node;
    entry.priority = config_.flow_priority;
    entry.idle_timeout = config_.switch_idle_timeout;
    entry.cookie = cookie_for(spec.name);

    MemorizedFlow flow;
    flow.client_ip = event.packet.src_ip;
    flow.service_address = event.packet.dst();
    flow.service_name = spec.name;
    flow.instance_node = instance.node;
    flow.instance_port = instance.port;
    flow.cluster = cluster_name;
    memory_.memorize(flow,
                     established && config_.fidelity == Fidelity::kHybrid);

    // Lazy: FlowMatch::str() runs per packet-in only when debug is on.
    log_.debug([&] {
        return "install " + entry.match.str() + " -> " + cluster_name + " node " +
               std::to_string(instance.node.value) + ":" +
               std::to_string(instance.port);
    });
    source.flow_mod(net::FlowMod{entry});
    source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/true,
                                     /*drop=*/false});
}

void Dispatcher::release_to_cloud(net::OvsSwitch& source,
                                  const net::PacketIn& event, bool install_flow) {
    ++stats_.cloud_fallbacks;
    if (auto* tr = sim_.tracer()) tr->instant("cloud.fallback");
    if (auto* m = sim_.metrics()) m->counter("sdn.cloud_fallbacks").inc();
    log_.debug([&] { return "cloud fallback for " + event.packet.dst().str(); });
    if (install_flow && config_.install_cloud_flows) {
        net::FlowEntry entry;
        entry.match.src_ip = event.packet.src_ip;
        entry.match.dst_ip = event.packet.dst_ip;
        entry.match.dst_port = event.packet.dst_port;
        entry.match.proto = event.packet.proto;
        // No rewrite, no pinned node: forward toward the original (cloud)
        // destination.
        entry.priority = config_.flow_priority;
        entry.idle_timeout = config_.switch_idle_timeout;
        entry.cookie = 0;
        source.flow_mod(net::FlowMod{entry});
    }
    source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/false,
                                     /*drop=*/false});
}

void Dispatcher::handle_packet_in(const net::PacketIn& event) {
    handle_packet_in(ingress_, event);
}

void Dispatcher::handle_packet_in(net::OvsSwitch& source,
                                  const net::PacketIn& event) {
    sim::Tracer* tr = sim_.tracer();
    sim::SpanId pin_span = 0;
    if (tr != nullptr) {
        // A packet-in caused by an already-traced client request stays on
        // that request's track; a bare packet-in opens a fresh request.
        sim::TraceContext ctx = tr->current();
        if (ctx.request == 0) ctx.request = tr->new_request();
        pin_span = tr->begin("packet_in", ctx);
        tr->arg(pin_span, "dst", event.packet.dst().str());
    }
    // Everything the dispatch schedules (deployment, probes, flow mods)
    // nests under the packet-in span.
    const sim::Tracer::Scope scope(tr, pin_span);
    if (auto* m = sim_.metrics()) m->counter("sdn.packet_ins").inc();
    dispatch(source, event, pin_span);
    if (tr != nullptr) tr->end(pin_span);
}

void Dispatcher::dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                          sim::SpanId pin_span) {
    ++stats_.packet_ins;
    // Location tracking: the client is wherever its packets enter the
    // network -- the source switch (its current gNB).
    client_locations_[event.packet.src_ip.value()] = source.node();

    const auto dst = event.packet.dst();

    // 1. FlowMemory: a previously-installed flow can be restored instantly
    //    -- provided the instance still accepts traffic.
    const auto remembered = memory_.recall(event.packet.src_ip, dst);
    if (auto* tr = sim_.tracer()) {
        const auto recall = tr->begin("flow_memory.recall");
        tr->arg(recall, "result", remembered ? "hit" : "miss");
        tr->end(recall);
    }
    if (auto* m = sim_.metrics()) {
        m->counter(remembered ? "sdn.flow_memory.hits" : "sdn.flow_memory.misses")
            .inc();
    }
    if (remembered) {
        if (topo_.port_open(remembered->instance_node, remembered->instance_port)) {
            ++stats_.memory_hits;
            const auto* svc = registry_.lookup(dst);
            if (svc != nullptr) {
                orchestrator::InstanceInfo instance;
                instance.service = remembered->service_name;
                instance.node = remembered->instance_node;
                instance.port = remembered->instance_port;
                instance.ready = true;
                install_and_release(source, event, svc->spec, instance,
                                    remembered->cluster, /*established=*/true);
                return;
            }
        }
        // Instance vanished or service unregistered: fall through.
        memory_.forget_service(remembered->service_name);
    }

    // 2. Only registered services are redirected.
    const auto* svc = registry_.lookup(dst);
    if (svc == nullptr) {
        ++stats_.unregistered;
        source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/false,
                                         /*drop=*/false});
        return;
    }
    const orchestrator::ServiceSpec& spec = svc->spec;

    // 3./4. Gather system state, ask the Global Scheduler.
    const auto ctx = build_context(event, spec);
    sim::SpanId decide_span = 0;
    if (auto* tr = sim_.tracer()) decide_span = tr->begin("schedule.decide");
    const ScheduleResult result = scheduler_.decide(ctx);
    if (auto* tr = sim_.tracer()) {
        tr->arg(decide_span, "fast",
                result.fast && result.fast->cluster ? result.fast->cluster->name()
                                                    : "cloud");
        tr->arg(decide_span, "best",
                result.best && result.best->cluster ? result.best->cluster->name()
                                                    : "none");
        tr->end(decide_span);
    }

    // 5. BEST: deploy for future requests in the background (on-demand
    //    deployment WITHOUT waiting for this request).
    if (result.best && result.best->cluster != nullptr) {
        ++stats_.deployed_background;
        auto* best_cluster = result.best->cluster;
        core::DeployOptions options;
        options.wait_ready = true;
        engine_.ensure(*best_cluster, spec, options,
                       [this, spec](bool ok, const orchestrator::InstanceInfo&) {
            if (ok) on_best_ready(spec);
        });
    }

    // 6. FAST: where does the *current* request go?
    if (!result.fast || result.fast->cluster == nullptr) {
        release_to_cloud(source, event, /*install_flow=*/true);
        return;
    }
    auto* fast_cluster = result.fast->cluster;
    const std::string cluster_name = fast_cluster->name();

    if (result.fast->instance && result.fast->instance->ready) {
        ++stats_.redirected_ready;
        install_and_release(source, event, spec, *result.fast->instance,
                            cluster_name, /*established=*/true);
        return;
    }

    // With waiting: hold the buffered packet while the instance deploys.
    ++stats_.deployed_waiting;
    core::DeployOptions options;
    options.wait_ready = true;
    engine_.ensure(*fast_cluster, spec, options,
                   [this, &source, event, spec, cluster_name, pin_span](
                       bool ok, const orchestrator::InstanceInfo& instance) {
        // Re-anchor on the packet-in span: the callback executes deep in
        // the deployment chain, but the install belongs to the packet-in.
        const sim::Tracer::Scope scope(sim_.tracer(), pin_span);
        if (!ok) {
            ++stats_.failures;
            // One cluster failing (admission, pull error, timeout) must not
            // strand the client on the cloud while a sibling edge cluster
            // could serve: re-ask the scheduler without the failed cluster.
            retry_dispatch(source, event, spec, cluster_name, pin_span);
            return;
        }
        // A deploy-and-wait install is a cold start: it stays exact.
        install_and_release(source, event, spec, instance, cluster_name,
                            /*established=*/false);
    });
}

void Dispatcher::retry_dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                                const orchestrator::ServiceSpec& spec,
                                const std::string& failed_cluster,
                                sim::SpanId pin_span) {
    const auto ctx = build_context(event, spec, &failed_cluster);
    const ScheduleResult result = scheduler_.decide(ctx);
    if (!result.fast || result.fast->cluster == nullptr ||
        result.fast->cluster->name() == failed_cluster) {
        release_to_cloud(source, event, /*install_flow=*/false);
        return;
    }
    ++stats_.deploy_retries;
    if (auto* m = sim_.metrics()) m->counter("sdn.deploy_retries").inc();
    auto* alternate = result.fast->cluster;
    const std::string alternate_name = alternate->name();
    log_.debug([&] {
        return "retry " + spec.name + ": " + failed_cluster + " failed, trying " +
               alternate_name;
    });

    if (result.fast->instance && result.fast->instance->ready) {
        ++stats_.retry_successes;
        install_and_release(source, event, spec, *result.fast->instance,
                            alternate_name, /*established=*/true);
        return;
    }
    core::DeployOptions options;
    options.wait_ready = true;
    engine_.ensure(*alternate, spec, options,
                   [this, &source, event, spec, alternate_name, pin_span](
                       bool ok, const orchestrator::InstanceInfo& instance) {
        const sim::Tracer::Scope scope(sim_.tracer(), pin_span);
        if (!ok) {
            // Single retry only: two strikes and the cloud serves.
            ++stats_.failures;
            release_to_cloud(source, event, /*install_flow=*/false);
            return;
        }
        ++stats_.retry_successes;
        install_and_release(source, event, spec, instance, alternate_name,
                            /*established=*/false);
    });
}

void Dispatcher::on_best_ready(const orchestrator::ServiceSpec& spec) {
    // Invalidate existing flows so the next packets re-dispatch to the newly
    // deployed optimal instance (paper fig. 3: "as soon as the new instance
    // is running, requests are redirected to this optimal location").
    for (auto* ingress : switches_) {
        ingress->remove_flows_by_cookie(cookie_for(spec.name));
    }
    memory_.forget_service(spec.name);
}

} // namespace tedge::sdn
