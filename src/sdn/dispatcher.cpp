#include "sdn/dispatcher.hpp"

#include <functional>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sdn {

Dispatcher::Dispatcher(sim::Simulation& sim, net::Topology& topo,
                       net::OvsSwitch& ingress, ServiceRegistry& registry,
                       FlowMemory& memory, core::DeploymentEngine& engine,
                       GlobalScheduler& scheduler, SessionPlane& sessions,
                       std::vector<orchestrator::Cluster*> clusters,
                       DispatcherConfig config)
    : sim_(sim), topo_(topo), ingress_(ingress), registry_(registry),
      memory_(memory), engine_(engine), scheduler_(scheduler),
      sessions_(sessions), clusters_(std::move(clusters)), config_(config),
      log_(sim, "dispatcher"),
      continuity_(make_continuity_policy(config_.continuity)) {
    switches_.push_back(&ingress_);
}

void Dispatcher::set_continuity_policy(std::unique_ptr<ContinuityPolicy> policy) {
    if (policy) continuity_ = std::move(policy);
}

void Dispatcher::add_switch(net::OvsSwitch& ingress) {
    for (auto* existing : switches_) {
        if (existing == &ingress) return;
    }
    switches_.push_back(&ingress);
}

std::uint64_t Dispatcher::cookie_for(const std::string& service) {
    // Non-zero cookie so flow eviction by service works; 0 marks cloud flows.
    const auto h = std::hash<std::string>{}(service);
    return h == 0 ? 1 : h;
}

std::optional<net::NodeId> Dispatcher::client_location(net::Ipv4 client) const {
    return sessions_.location(client);
}

ScheduleContext Dispatcher::build_context(net::NodeId client,
                                          const orchestrator::ServiceSpec& spec,
                                          const std::string* exclude_cluster) const {
    ScheduleContext ctx;
    ctx.client = client;
    ctx.spec = &spec;
    ctx.topo = &topo_;
    for (auto* cluster : clusters_) {
        if (exclude_cluster != nullptr && cluster->name() == *exclude_cluster) {
            continue;
        }
        ScheduleContext::ClusterState state;
        state.cluster = cluster;
        state.instances = cluster->instances(spec.name);
        state.has_image = cluster->has_image(spec);
        state.has_service = cluster->has_service(spec.name);
        state.utilization = cluster->utilization();
        state.inflight_deploys = engine_.inflight_for(cluster->name());
        state.admission = cluster->admits(spec);
        ctx.states.push_back(std::move(state));
    }
    return ctx;
}

void Dispatcher::install_and_release(net::OvsSwitch& source,
                                     const net::PacketIn& event,
                                     const orchestrator::ServiceSpec& spec,
                                     const orchestrator::InstanceInfo& instance,
                                     const std::string& cluster_name,
                                     bool established) {
    if (auto* tr = sim_.tracer()) {
        const auto span = tr->begin("flow.install");
        tr->arg(span, "service", spec.name);
        tr->arg(span, "cluster", cluster_name);
        tr->end(span);
    }
    if (auto* m = sim_.metrics()) m->counter("sdn.flow_installs").inc();
    net::FlowEntry entry;
    entry.match.src_ip = event.packet.src_ip;
    entry.match.dst_ip = event.packet.dst_ip;
    entry.match.dst_port = event.packet.dst_port;
    entry.match.proto = event.packet.proto;
    entry.action.set_dst_ip = topo_.node(instance.node).ip;
    entry.action.set_dst_port = instance.port;
    entry.action.forward_to = instance.node;
    entry.priority = config_.flow_priority;
    entry.idle_timeout = config_.switch_idle_timeout;
    entry.cookie = cookie_for(spec.name);

    MemorizedFlow flow;
    flow.client_ip = event.packet.src_ip;
    flow.service_address = event.packet.dst();
    flow.service_name = spec.name;
    flow.instance_node = instance.node;
    flow.instance_port = instance.port;
    flow.cluster = cluster_name;
    memory_.memorize(flow,
                     established && config_.fidelity == Fidelity::kHybrid);
    sessions_.note_served_by(event.packet.src_ip, cluster_name);

    // Lazy: FlowMatch::str() runs per packet-in only when debug is on.
    log_.debug([&] {
        return "install " + entry.match.str() + " -> " + cluster_name + " node " +
               std::to_string(instance.node.value) + ":" +
               std::to_string(instance.port);
    });
    source.flow_mod(net::FlowMod{entry});
    source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/true,
                                     /*drop=*/false});
}

void Dispatcher::release_to_cloud(net::OvsSwitch& source,
                                  const net::PacketIn& event, bool install_flow) {
    ++stats_.cloud_fallbacks;
    if (auto* tr = sim_.tracer()) tr->instant("cloud.fallback");
    if (auto* m = sim_.metrics()) m->counter("sdn.cloud_fallbacks").inc();
    log_.debug([&] { return "cloud fallback for " + event.packet.dst().str(); });
    if (install_flow && config_.install_cloud_flows) {
        net::FlowEntry entry;
        entry.match.src_ip = event.packet.src_ip;
        entry.match.dst_ip = event.packet.dst_ip;
        entry.match.dst_port = event.packet.dst_port;
        entry.match.proto = event.packet.proto;
        // No rewrite, no pinned node: forward toward the original (cloud)
        // destination.
        entry.priority = config_.flow_priority;
        entry.idle_timeout = config_.switch_idle_timeout;
        entry.cookie = 0;
        source.flow_mod(net::FlowMod{entry});
    }
    source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/false,
                                     /*drop=*/false});
}

void Dispatcher::handle_packet_in(const net::PacketIn& event) {
    handle_packet_in(ingress_, event);
}

void Dispatcher::handle_packet_in(net::OvsSwitch& source,
                                  const net::PacketIn& event) {
    sim::Tracer* tr = sim_.tracer();
    sim::SpanId pin_span = 0;
    if (tr != nullptr) {
        // A packet-in caused by an already-traced client request stays on
        // that request's track; a bare packet-in opens a fresh request.
        sim::TraceContext ctx = tr->current();
        if (ctx.request == 0) ctx.request = tr->new_request();
        pin_span = tr->begin("packet_in", ctx);
        tr->arg(pin_span, "dst", event.packet.dst().str());
    }
    // Everything the dispatch schedules (deployment, probes, flow mods)
    // nests under the packet-in span.
    const sim::Tracer::Scope scope(tr, pin_span);
    if (auto* m = sim_.metrics()) m->counter("sdn.packet_ins").inc();
    dispatch(source, event, pin_span);
    if (tr != nullptr) tr->end(pin_span);
}

void Dispatcher::dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                          sim::SpanId pin_span) {
    ++stats_.packet_ins;
    // Location tracking: the session plane observes where the packet entered.
    // Explicitly attached sessions are authoritative and ignore stragglers
    // from the old cell; implicit ones keep the last-packet-wins behaviour.
    sessions_.observe_packet(event.packet.src_ip, source.node());

    const auto dst = event.packet.dst();

    // 1. FlowMemory: a previously-installed flow can be restored instantly
    //    -- provided the instance still accepts traffic.
    const auto remembered = memory_.recall(event.packet.src_ip, dst);
    if (auto* tr = sim_.tracer()) {
        const auto recall = tr->begin("flow_memory.recall");
        tr->arg(recall, "result", remembered ? "hit" : "miss");
        tr->end(recall);
    }
    if (auto* m = sim_.metrics()) {
        m->counter(remembered ? "sdn.flow_memory.hits" : "sdn.flow_memory.misses")
            .inc();
    }
    if (remembered) {
        if (topo_.port_open(remembered->instance_node, remembered->instance_port)) {
            ++stats_.memory_hits;
            const auto* svc = registry_.lookup(dst);
            if (svc != nullptr) {
                orchestrator::InstanceInfo instance;
                instance.service = remembered->service_name;
                instance.node = remembered->instance_node;
                instance.port = remembered->instance_port;
                instance.ready = true;
                install_and_release(source, event, svc->spec, instance,
                                    remembered->cluster, /*established=*/true);
                return;
            }
        }
        // Instance vanished or service unregistered: fall through.
        memory_.forget_service(remembered->service_name);
    }

    // 2. Only registered services are redirected.
    const auto* svc = registry_.lookup(dst);
    if (svc == nullptr) {
        ++stats_.unregistered;
        source.packet_out(net::PacketOut{event.buffer_id, /*use_table=*/false,
                                         /*drop=*/false});
        return;
    }
    const orchestrator::ServiceSpec& spec = svc->spec;

    // 3./4. Gather system state, ask the Global Scheduler.
    const auto ctx = build_context(event.packet.ingress, spec);
    sim::SpanId decide_span = 0;
    if (auto* tr = sim_.tracer()) decide_span = tr->begin("schedule.decide");
    const ScheduleResult result = scheduler_.decide(ctx);
    if (auto* tr = sim_.tracer()) {
        tr->arg(decide_span, "fast",
                result.fast && result.fast->cluster ? result.fast->cluster->name()
                                                    : "cloud");
        tr->arg(decide_span, "best",
                result.best && result.best->cluster ? result.best->cluster->name()
                                                    : "none");
        tr->end(decide_span);
    }

    // 5. BEST: deploy for future requests in the background (on-demand
    //    deployment WITHOUT waiting for this request).
    if (result.best && result.best->cluster != nullptr) {
        ++stats_.deployed_background;
        auto* best_cluster = result.best->cluster;
        core::DeployOptions options;
        options.wait_ready = true;
        engine_.ensure(*best_cluster, spec, options,
                       [this, spec](bool ok, const orchestrator::InstanceInfo&) {
            if (ok) on_best_ready(spec);
        });
    }

    // 6. FAST: where does the *current* request go?
    if (!result.fast || result.fast->cluster == nullptr) {
        release_to_cloud(source, event, /*install_flow=*/true);
        return;
    }
    auto* fast_cluster = result.fast->cluster;
    const std::string cluster_name = fast_cluster->name();

    if (result.fast->instance && result.fast->instance->ready) {
        ++stats_.redirected_ready;
        install_and_release(source, event, spec, *result.fast->instance,
                            cluster_name, /*established=*/true);
        return;
    }

    // With waiting: hold the buffered packet while the instance deploys.
    ++stats_.deployed_waiting;
    core::DeployOptions options;
    options.wait_ready = true;
    engine_.ensure(*fast_cluster, spec, options,
                   [this, &source, event, spec, cluster_name, pin_span](
                       bool ok, const orchestrator::InstanceInfo& instance) {
        // Re-anchor on the packet-in span: the callback executes deep in
        // the deployment chain, but the install belongs to the packet-in.
        const sim::Tracer::Scope scope(sim_.tracer(), pin_span);
        if (!ok) {
            ++stats_.failures;
            // One cluster failing (admission, pull error, timeout) must not
            // strand the client on the cloud while a sibling edge cluster
            // could serve: re-ask the scheduler without the failed cluster.
            retry_dispatch(source, event, spec, cluster_name, pin_span);
            return;
        }
        // A deploy-and-wait install is a cold start: it stays exact.
        install_and_release(source, event, spec, instance, cluster_name,
                            /*established=*/false);
    });
}

void Dispatcher::retry_dispatch(net::OvsSwitch& source, const net::PacketIn& event,
                                const orchestrator::ServiceSpec& spec,
                                const std::string& failed_cluster,
                                sim::SpanId pin_span) {
    const auto ctx = build_context(event.packet.ingress, spec, &failed_cluster);
    const ScheduleResult result = scheduler_.decide(ctx);
    if (!result.fast || result.fast->cluster == nullptr ||
        result.fast->cluster->name() == failed_cluster) {
        release_to_cloud(source, event, /*install_flow=*/false);
        return;
    }
    ++stats_.deploy_retries;
    if (auto* m = sim_.metrics()) m->counter("sdn.deploy_retries").inc();
    auto* alternate = result.fast->cluster;
    const std::string alternate_name = alternate->name();
    log_.debug([&] {
        return "retry " + spec.name + ": " + failed_cluster + " failed, trying " +
               alternate_name;
    });

    if (result.fast->instance && result.fast->instance->ready) {
        ++stats_.retry_successes;
        install_and_release(source, event, spec, *result.fast->instance,
                            alternate_name, /*established=*/true);
        return;
    }
    core::DeployOptions options;
    options.wait_ready = true;
    engine_.ensure(*alternate, spec, options,
                   [this, &source, event, spec, alternate_name, pin_span](
                       bool ok, const orchestrator::InstanceInfo& instance) {
        const sim::Tracer::Scope scope(sim_.tracer(), pin_span);
        if (!ok) {
            // Single retry only: two strikes and the cloud serves.
            ++stats_.failures;
            release_to_cloud(source, event, /*install_flow=*/false);
            return;
        }
        ++stats_.retry_successes;
        install_and_release(source, event, spec, instance, alternate_name,
                            /*established=*/false);
    });
}

void Dispatcher::on_handover(const UeSession& session, net::NodeId old_ingress) {
    ++stats_.handovers;
    if (auto* m = sim_.metrics()) m->counter("sdn.handovers").inc();
    log_.debug([&] {
        return "handover client " + session.ip.str() + ": node " +
               std::to_string(old_ingress.value) + " -> " +
               std::to_string(session.ingress.value) + " (epoch " +
               std::to_string(session.epoch) + ")";
    });
    // Stale-flow sweep: the client's packets can no longer enter the old
    // cell, so its entries there are dead TCAM weight at best and stale
    // rewrites at worst (if the client bounces back before they idle out).
    for (auto* sw : switches_) {
        if (sw->node() == old_ingress) sw->remove_flows_by_src_ip(session.ip);
    }
    // Continuity: decide per memorized flow whether the old instance keeps
    // serving (re-steer) or an instance near the new cell is warmed.
    for (const MemorizedFlow& flow : memory_.flows_of_client(session.ip)) {
        decide_continuity(session, old_ingress, flow);
    }
}

void Dispatcher::decide_continuity(const UeSession& session,
                                   net::NodeId old_ingress,
                                   const MemorizedFlow& flow) {
    const auto* svc = registry_.lookup(flow.service_address);
    if (svc == nullptr) return;
    const orchestrator::ServiceSpec& spec = svc->spec;

    // Ask the scheduler where this flow would go if it arrived fresh at the
    // *new* cell. Proximity is judged from the cell, not the client node:
    // the client still carries radio links to previously-visited cells.
    const auto ctx = build_context(session.ingress, spec);
    const ScheduleResult result = scheduler_.decide(ctx);
    if (!result.fast || result.fast->cluster == nullptr) return;
    auto* target = result.fast->cluster;
    if (target->name() == flow.cluster) {
        // Best candidate is where the flow already lives: keep it.
        ++stats_.resteers;
        if (auto* m = sim_.metrics()) m->counter("sdn.resteers").inc();
        return;
    }

    ContinuityContext cctx;
    cctx.client = session.ingress;
    cctx.old_ingress = old_ingress;
    cctx.new_ingress = session.ingress;
    cctx.flow = &flow;
    if (const auto p = topo_.path(session.ingress, flow.instance_node)) {
        cctx.resteer_latency = p->latency;
    }
    const net::NodeId target_node = result.fast->instance
                                        ? result.fast->instance->node
                                        : target->location();
    if (const auto p = topo_.path(session.ingress, target_node)) {
        cctx.migrate_latency = p->latency;
    }
    cctx.target_warm = result.fast->instance && result.fast->instance->ready;
    if (!cctx.target_warm) {
        bool has_image = false;
        for (const auto& state : ctx.states) {
            if (state.cluster == target) {
                has_image = state.has_image;
                break;
            }
        }
        cctx.deployment_cost = has_image ? config_.continuity.warm_deploy_cost
                                         : config_.continuity.cold_deploy_cost;
    }

    if (continuity_->decide(cctx) == ContinuityAction::kResteer) {
        ++stats_.resteers;
        if (auto* m = sim_.metrics()) m->counter("sdn.resteers").inc();
        return;
    }

    // Migrate-and-warm: deploy near the new cell in the background; cut the
    // flow over only once the instance is ready. Until then the old instance
    // keeps serving -- the client never waits on the migration.
    ++stats_.migrations;
    if (auto* m = sim_.metrics()) m->counter("sdn.migrations").inc();
    const std::uint64_t epoch = session.epoch;
    const net::Ipv4 client = session.ip;
    const net::ServiceAddress addr = flow.service_address;
    core::DeployOptions options;
    options.wait_ready = true;
    engine_.ensure(*target, spec, options,
                   [this, epoch, client, addr](
                       bool ok, const orchestrator::InstanceInfo&) {
        if (!ok) {
            ++stats_.migration_failures;
            return;
        }
        const UeSession* current = sessions_.by_ip(client);
        if (current == nullptr || current->epoch != epoch) {
            // The client re-homed again (or detached) while the instance
            // warmed: this cut-over belongs to a dead attachment. Drop it;
            // the newer handover runs its own continuity pass.
            ++stats_.stale_migrations;
            return;
        }
        ++stats_.migrations_completed;
        if (auto* m = sim_.metrics()) m->counter("sdn.migrations_completed").inc();
        // Cut over: drop the memorized flow (notifying the old instance's
        // idle hook if this was its last user) and evict the installed
        // entries everywhere, so the next packet re-dispatches -- and the
        // scheduler now finds the warm instance near the new cell.
        memory_.forget_flow(client, addr, /*notify_if_idle=*/true);
        net::FlowMatch match;
        match.src_ip = client;
        match.dst_ip = addr.ip;
        match.dst_port = addr.port;
        match.proto = addr.proto;
        for (auto* sw : switches_) sw->remove_flows(match);
    });
}

void Dispatcher::on_best_ready(const orchestrator::ServiceSpec& spec) {
    // Invalidate existing flows so the next packets re-dispatch to the newly
    // deployed optimal instance (paper fig. 3: "as soon as the new instance
    // is running, requests are redirected to this optimal location").
    for (auto* ingress : switches_) {
        ingress->remove_flows_by_cookie(cookie_for(spec.name));
    }
    memory_.forget_service(spec.name);
}

} // namespace tedge::sdn
