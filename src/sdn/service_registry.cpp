#include "sdn/service_registry.hpp"

namespace tedge::sdn {

const AnnotatedService& ServiceRegistry::store(const net::ServiceAddress& address,
                                               AnnotatedService service) {
    auto& slot = services_[address];
    if (!slot.spec.name.empty() && slot.spec.name != service.spec.name) {
        // Re-registration under a new name: drop the old index entry.
        const auto it = by_name_.find(slot.spec.name);
        if (it != by_name_.end() && it->second == address) by_name_.erase(it);
    }
    slot = std::move(service);
    by_name_[slot.spec.name] = address;
    return slot;
}

void ServiceRegistry::register_service(const net::ServiceAddress& address,
                                       AnnotatedService service) {
    store(address, std::move(service));
}

const AnnotatedService&
ServiceRegistry::register_yaml(const net::ServiceAddress& address,
                               const std::string& yaml_text,
                               const Annotator& annotator) {
    return store(address, annotator.annotate(yaml_text, address));
}

const AnnotatedService*
ServiceRegistry::lookup(const net::ServiceAddress& address) const {
    const auto it = services_.find(address);
    return it == services_.end() ? nullptr : &it->second;
}

const AnnotatedService* ServiceRegistry::find_by_name(std::string_view name) const {
    const auto it = by_name_.find(name);
    if (it == by_name_.end()) return nullptr;
    return lookup(it->second);
}

bool ServiceRegistry::contains(const net::ServiceAddress& address) const {
    return services_.contains(address);
}

bool ServiceRegistry::unregister(const net::ServiceAddress& address) {
    const auto it = services_.find(address);
    if (it == services_.end()) return false;
    const auto name_it = by_name_.find(it->second.spec.name);
    if (name_it != by_name_.end() && name_it->second == address) {
        by_name_.erase(name_it);
    }
    services_.erase(it);
    return true;
}

std::vector<net::ServiceAddress> ServiceRegistry::addresses() const {
    std::vector<net::ServiceAddress> out;
    out.reserve(services_.size());
    for (const auto& [address, service] : services_) out.push_back(address);
    return out;
}

} // namespace tedge::sdn
