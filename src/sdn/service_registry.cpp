#include "sdn/service_registry.hpp"

namespace tedge::sdn {

void ServiceRegistry::register_service(const net::ServiceAddress& address,
                                       AnnotatedService service) {
    services_[address] = std::move(service);
}

const AnnotatedService&
ServiceRegistry::register_yaml(const net::ServiceAddress& address,
                               const std::string& yaml_text,
                               const Annotator& annotator) {
    services_[address] = annotator.annotate(yaml_text, address);
    return services_[address];
}

const AnnotatedService*
ServiceRegistry::lookup(const net::ServiceAddress& address) const {
    const auto it = services_.find(address);
    return it == services_.end() ? nullptr : &it->second;
}

const AnnotatedService* ServiceRegistry::find_by_name(const std::string& name) const {
    for (const auto& [address, service] : services_) {
        if (service.spec.name == name) return &service;
    }
    return nullptr;
}

bool ServiceRegistry::contains(const net::ServiceAddress& address) const {
    return services_.contains(address);
}

bool ServiceRegistry::unregister(const net::ServiceAddress& address) {
    return services_.erase(address) > 0;
}

std::vector<net::ServiceAddress> ServiceRegistry::addresses() const {
    std::vector<net::ServiceAddress> out;
    out.reserve(services_.size());
    for (const auto& [address, service] : services_) out.push_back(address);
    return out;
}

} // namespace tedge::sdn
