// Registry of edge services. Services are registered with the mobile edge
// platform provider by their unique combination of domain IP address and
// port number (paper §II); the SDN controller intercepts exactly these
// addresses at the network ingress.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sdn/annotator.hpp"

namespace tedge::sdn {

class ServiceRegistry {
public:
    /// Register (or replace) a service under its cloud address.
    void register_service(const net::ServiceAddress& address,
                          AnnotatedService service);

    /// Convenience: annotate `yaml_text` with `annotator` and register it.
    const AnnotatedService& register_yaml(const net::ServiceAddress& address,
                                          const std::string& yaml_text,
                                          const Annotator& annotator);

    [[nodiscard]] const AnnotatedService* lookup(const net::ServiceAddress& address) const;
    [[nodiscard]] const AnnotatedService* find_by_name(const std::string& name) const;
    [[nodiscard]] bool contains(const net::ServiceAddress& address) const;
    bool unregister(const net::ServiceAddress& address);

    [[nodiscard]] std::size_t size() const { return services_.size(); }
    [[nodiscard]] std::vector<net::ServiceAddress> addresses() const;

private:
    std::unordered_map<net::ServiceAddress, AnnotatedService> services_;
};

} // namespace tedge::sdn
