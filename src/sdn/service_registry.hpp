// Registry of edge services. Services are registered with the mobile edge
// platform provider by their unique combination of domain IP address and
// port number (paper §II); the SDN controller intercepts exactly these
// addresses at the network ingress.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "sdn/annotator.hpp"
#include "simcore/symbol_table.hpp"

namespace tedge::sdn {

class ServiceRegistry {
public:
    /// Register (or replace) a service under its cloud address.
    void register_service(const net::ServiceAddress& address,
                          AnnotatedService service);

    /// Convenience: annotate `yaml_text` with `annotator` and register it.
    const AnnotatedService& register_yaml(const net::ServiceAddress& address,
                                          const std::string& yaml_text,
                                          const Annotator& annotator);

    [[nodiscard]] const AnnotatedService* lookup(const net::ServiceAddress& address) const;

    /// O(1) through the maintained name index; accepts string_view so hot
    /// callers do not build a temporary std::string.
    [[nodiscard]] const AnnotatedService* find_by_name(std::string_view name) const;
    [[nodiscard]] bool contains(const net::ServiceAddress& address) const;
    bool unregister(const net::ServiceAddress& address);

    [[nodiscard]] std::size_t size() const { return services_.size(); }
    [[nodiscard]] std::vector<net::ServiceAddress> addresses() const;

private:
    const AnnotatedService& store(const net::ServiceAddress& address,
                                  AnnotatedService service);

    std::unordered_map<net::ServiceAddress, AnnotatedService> services_;
    /// Annotated names are worldwide-unique, so name -> address is a
    /// bijection onto the registered services (heterogeneous lookup).
    std::unordered_map<std::string, net::ServiceAddress, sim::StringHash,
                       std::equal_to<>>
        by_name_;
};

} // namespace tedge::sdn
