#include "sdn/schedulers/deadline_slo.hpp"

#include <cmath>
#include <vector>

namespace tedge::sdn {
namespace {

struct Estimate {
    const ScheduleContext::ClusterState* state = nullptr;
    sim::SimTime completion;  ///< when the current request would be served
    bool ready = false;       ///< served by an existing ready instance
};

} // namespace

ScheduleResult DeadlineSloScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;

    std::vector<Estimate> estimates;
    estimates.reserve(ctx.states.size());
    for (const auto& state : ctx.states) {
        const auto path = ctx.topo->path(ctx.client, state.cluster->location());
        if (!path) continue;  // unreachable
        Estimate e;
        e.state = &state;
        e.ready = state.any_ready();
        if (e.ready) {
            e.completion = path->latency;
        } else {
            if (!state.admitted()) continue;  // a rejection serves nobody
            // Cold start: the deployment penalty grows with the cluster's
            // pressure (contended pulls, starts queue behind running work)
            // and with control-plane work already in flight ahead of us.
            const double pressure_scale = 1.0 + state.pressure();
            const auto penalty = sim::from_seconds(
                config_.deploy_penalty.seconds() * pressure_scale);
            e.completion = path->latency + penalty +
                           config_.inflight_penalty *
                               static_cast<std::int64_t>(state.inflight_deploys);
        }
        estimates.push_back(e);
    }
    if (estimates.empty()) return result;  // nothing admits or reaches -> cloud

    // Slotting: among candidates meeting the deadline, take the tightest fit
    // (max completion <= deadline). Low-slack packing keeps the fast,
    // unpressured clusters free for requests that will actually need them.
    const Estimate* chosen = nullptr;
    for (const auto& e : estimates) {
        if (e.completion > config_.deadline) continue;
        if (chosen == nullptr || e.completion > chosen->completion) chosen = &e;
    }
    // Deadline unmeetable anywhere: minimize the damage.
    if (chosen == nullptr) {
        for (const auto& e : estimates) {
            if (chosen == nullptr || e.completion < chosen->completion) chosen = &e;
        }
    }

    result.fast = Choice{chosen->state->cluster,
                         chosen->ready ? chosen->state->first_ready()
                                       : std::nullopt};

    // Future requests: if the chosen path only works because an instance is
    // already up, but an admitted cluster could serve future requests with
    // lower latency once warmed, deploy there in the background.
    if (chosen->ready) {
        const Estimate* warm_target = nullptr;
        for (const auto& e : estimates) {
            if (e.ready || e.state == chosen->state) continue;
            if (!e.state->instances.empty()) continue;  // already starting
            const auto path =
                ctx.topo->path(ctx.client, e.state->cluster->location());
            if (!path) continue;
            // Compare steady-state (warm) latencies, not cold estimates.
            const auto chosen_path =
                ctx.topo->path(ctx.client, chosen->state->cluster->location());
            if (chosen_path && path->latency < chosen_path->latency &&
                (warm_target == nullptr ||
                 path->latency <
                     ctx.topo->path(ctx.client, warm_target->state->cluster->location())
                         ->latency)) {
                warm_target = &e;
            }
        }
        if (warm_target != nullptr) {
            result.best = Choice{warm_target->state->cluster, std::nullopt};
        }
    }
    return result;
}

namespace detail {
void register_deadline_slo(SchedulerRegistry& registry) {
    registry.register_factory(
        kDeadlineSloScheduler, [](const yamlite::Node& params) {
            DeadlineSloConfig config;
            if (const auto* d = params.find("deadline_ms")) {
                if (const auto v = d->as_int()) config.deadline = sim::milliseconds(*v);
            }
            if (const auto* p = params.find("deploy_penalty_ms")) {
                if (const auto v = p->as_int()) {
                    config.deploy_penalty = sim::milliseconds(*v);
                }
            }
            if (const auto* i = params.find("inflight_penalty_ms")) {
                if (const auto v = i->as_int()) {
                    config.inflight_penalty = sim::milliseconds(*v);
                }
            }
            return std::make_unique<DeadlineSloScheduler>(config);
        });
}
} // namespace detail

} // namespace tedge::sdn
