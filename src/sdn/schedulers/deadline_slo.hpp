// Deadline/SLO-aware scheduler. Every service response has a latency budget
// (the SLO deadline); the scheduler estimates, per cluster, when the current
// request would complete -- network latency, plus a deployment penalty
// scaled by the cluster's resource pressure and in-flight work when no
// instance is ready -- and slots the request like a real-time orchestrator
// slots tasks onto CPU partitions (flhofer-style heuristic slotting):
// among the clusters whose estimate fits the deadline it picks the
// *tightest* fit, deliberately packing pressured clusters first so
// low-pressure capacity stays free for future tight-deadline requests.
// When nothing fits, it degrades to the global minimum estimate.
#pragma once

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

struct DeadlineSloConfig {
    sim::SimTime deadline = sim::milliseconds(100);       ///< the SLO budget
    sim::SimTime deploy_penalty = sim::milliseconds(3000); ///< cold-start cost
    /// Extra penalty per in-flight deployment on the cluster (models control
    /// plane queueing ahead of this request).
    sim::SimTime inflight_penalty = sim::milliseconds(500);
};

class DeadlineSloScheduler final : public GlobalScheduler {
public:
    explicit DeadlineSloScheduler(DeadlineSloConfig config = {})
        : config_(config) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

private:
    std::string name_ = kDeadlineSloScheduler;
    DeadlineSloConfig config_;
};

} // namespace tedge::sdn
