// Round-robin scheduler: spreads deployments evenly across clusters; FAST
// follows any ready instance, otherwise the rotation target (with waiting).
#pragma once

#include <cstddef>

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

class RoundRobinScheduler final : public GlobalScheduler {
public:
    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

private:
    std::size_t cursor_ = 0;
    std::string name_ = kRoundRobinScheduler;
};

} // namespace tedge::sdn
