#include "sdn/schedulers/round_robin.hpp"

namespace tedge::sdn {

ScheduleResult RoundRobinScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;
    if (ctx.states.empty()) return result;

    // A ready instance anywhere wins for the current request.
    const ScheduleContext::ClusterState* ready_state = nullptr;
    for (const auto& state : ctx.states) {
        if (state.any_ready()) {
            ready_state = &state;
            break;
        }
    }

    const auto& target = ctx.states[cursor_ % ctx.states.size()];
    ++cursor_;

    if (ready_state != nullptr) {
        result.fast = Choice{ready_state->cluster, ready_state->first_ready()};
        if (ready_state->cluster != target.cluster && !target.any_ready()) {
            result.best = Choice{target.cluster, std::nullopt};
        }
        return result;
    }

    // Nothing running: deploy at the rotation target and wait there.
    result.fast = Choice{target.cluster, std::nullopt};
    return result;
}

namespace detail {
void register_round_robin(SchedulerRegistry& registry) {
    registry.register_factory(kRoundRobinScheduler, [](const yamlite::Node&) {
        return std::make_unique<RoundRobinScheduler>();
    });
}
} // namespace detail

} // namespace tedge::sdn
