#include "sdn/schedulers/hierarchical.hpp"

#include <algorithm>

namespace tedge::sdn {

ScheduleResult HierarchicalScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;

    std::vector<std::pair<double, const ScheduleContext::ClusterState*>> scored;
    for (const auto& state : ctx.states) {
        const auto path = ctx.topo->path(ctx.client, state.cluster->location());
        if (!path) continue;
        scored.emplace_back(path->latency.ms(), &state);
    }
    if (scored.empty()) return result;
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });

    // BEST: nearest, but allow a cached cluster to win within the bonus.
    const ScheduleContext::ClusterState* best = scored.front().second;
    const double best_latency = scored.front().first;
    if (!best->has_image) {
        for (const auto& [latency, state] : scored) {
            if (state->has_image && latency <= best_latency + cache_bonus_ms_) {
                best = state;
                break;
            }
        }
    }

    // FAST: nearest ready instance anywhere.
    for (const auto& [latency, state] : scored) {
        if (state->any_ready()) {
            result.fast = Choice{state->cluster, state->first_ready()};
            break;
        }
    }

    if (result.fast && result.fast->cluster == best->cluster) {
        return result; // BEST equals FAST -> leave BEST empty
    }
    if (!result.fast) {
        if (wait_ || !best->instances.empty()) {
            // Nothing running anywhere: wait on BEST (or it is starting).
            result.fast = Choice{best->cluster, std::nullopt};
            return result;
        }
        // Forward to the cloud, deploy at BEST in the background.
    }
    result.best = Choice{best->cluster, std::nullopt};
    return result;
}

namespace {

/// cloud_only: never redirect; every request goes to the cloud (baseline).
class CloudOnlyScheduler final : public GlobalScheduler {
public:
    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext&) override {
        return {};
    }

private:
    std::string name_ = kCloudOnlyScheduler;
};

} // namespace

namespace detail {
void register_hierarchical(SchedulerRegistry& registry) {
    registry.register_factory(kHierarchicalScheduler, [](const yamlite::Node& params) {
        double bonus = 5.0;
        bool wait = false;
        if (const auto* b = params.find("cache_bonus_ms")) {
            if (const auto v = b->as_int()) bonus = static_cast<double>(*v);
        }
        if (const auto* w = params.find("wait")) wait = w->as_bool().value_or(false);
        return std::make_unique<HierarchicalScheduler>(bonus, wait);
    });
    registry.register_factory(kCloudOnlyScheduler, [](const yamlite::Node&) {
        return std::make_unique<CloudOnlyScheduler>();
    });
}
} // namespace detail

} // namespace tedge::sdn
