// Utilization-balancing scheduler: spreads work by resource pressure, not
// instance count. Each admitted cluster is scored by its binding-dimension
// utilization fraction plus a weighted in-flight-deployment term; clusters
// that cannot admit the service are skipped outright -- which is what lets
// this scheduler keep admitting when least-loaded keeps bouncing off the
// same full cluster under overload.
#pragma once

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

class UtilizationBalancingScheduler final : public GlobalScheduler {
public:
    explicit UtilizationBalancingScheduler(double inflight_weight = 0.1)
        : inflight_weight_(inflight_weight) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

private:
    std::string name_ = kUtilizationBalancingScheduler;
    /// Pressure-equivalent cost of one in-flight deployment (each one will
    /// consume capacity that utilization() cannot see yet).
    double inflight_weight_;
};

} // namespace tedge::sdn
