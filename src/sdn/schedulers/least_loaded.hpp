// Least-loaded scheduler: BEST is the cluster with the fewest placed
// instances; FAST prefers a ready instance, then falls back to waiting on
// the least-loaded cluster.
#pragma once

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

class LeastLoadedScheduler final : public GlobalScheduler {
public:
    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

private:
    std::string name_ = kLeastLoadedScheduler;
};

} // namespace tedge::sdn
