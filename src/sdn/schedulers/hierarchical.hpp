// Hierarchical scheduler: exploits the paper's observation (§IV-A2) that
// edge clusters are organised hierarchically -- clusters further away
// (toward the cloud) are bigger and much more likely to have the requested
// image cached or the service already running. FAST prefers, in order:
// ready instance nearby, then a ready instance anywhere on the route;
// BEST prefers the nearest cluster, but an image-cache hit at a modestly
// farther cluster beats a cold nearest cluster (one pull avoided outweighs a
// small latency delta).
#pragma once

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

class HierarchicalScheduler final : public GlobalScheduler {
public:
    /// `cache_bonus` is the extra one-way latency (in ms) a cluster may cost
    /// and still be preferred over a nearer cluster without the image.
    explicit HierarchicalScheduler(double cache_bonus_ms = 5.0, bool wait = false)
        : cache_bonus_ms_(cache_bonus_ms), wait_(wait) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

private:
    double cache_bonus_ms_;
    bool wait_;
    std::string name_ = kHierarchicalScheduler;
};

} // namespace tedge::sdn
