// Proximity scheduler: the paper's default policy.
//
// BEST is always the lowest-latency cluster from the client's current
// location. FAST depends on the waiting policy:
//  - wait=true  (on-demand deployment *with* waiting): FAST = BEST even when
//    no instance runs there yet; the request is held during deployment.
//  - wait=false (*without* waiting): FAST = the nearest cluster with a ready
//    instance (possibly further away), or empty (forward to the cloud);
//    BEST is deployed to in parallel.
#pragma once

#include "sdn/scheduler.hpp"

namespace tedge::sdn {

class ProximityScheduler final : public GlobalScheduler {
public:
    explicit ProximityScheduler(bool wait_for_deployment = true)
        : wait_(wait_for_deployment) {}

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] ScheduleResult decide(const ScheduleContext& ctx) override;

    [[nodiscard]] bool waits() const { return wait_; }

private:
    bool wait_;
    std::string name_ = kProximityScheduler;
};

} // namespace tedge::sdn
