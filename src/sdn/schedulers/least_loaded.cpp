#include "sdn/schedulers/least_loaded.hpp"

#include <limits>

namespace tedge::sdn {

ScheduleResult LeastLoadedScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;
    if (ctx.states.empty()) return result;

    const ScheduleContext::ClusterState* least = nullptr;
    std::size_t least_load = std::numeric_limits<std::size_t>::max();
    for (const auto& state : ctx.states) {
        // In-flight deployments count as load: total_instances() reads zero
        // for a cluster still in its Pull phase, and without this term every
        // concurrent decision herds onto the same "empty" cluster.
        const std::size_t load =
            state.cluster->total_instances() + state.inflight_deploys;
        if (load < least_load) {
            least_load = load;
            least = &state;
        }
    }

    for (const auto& state : ctx.states) {
        if (state.any_ready()) {
            result.fast = Choice{state.cluster, state.first_ready()};
            if (least != nullptr && least->cluster != state.cluster &&
                !least->any_ready() && least->instances.empty()) {
                result.best = Choice{least->cluster, std::nullopt};
            }
            return result;
        }
    }

    if (least != nullptr) {
        result.fast = Choice{least->cluster, std::nullopt};
    }
    return result;
}

namespace detail {
void register_least_loaded(SchedulerRegistry& registry) {
    registry.register_factory(kLeastLoadedScheduler, [](const yamlite::Node&) {
        return std::make_unique<LeastLoadedScheduler>();
    });
}
} // namespace detail

} // namespace tedge::sdn
