#include "sdn/schedulers/proximity.hpp"

#include <algorithm>

namespace tedge::sdn {
namespace {

/// States sorted by client->cluster latency (ascending); unreachable
/// clusters are dropped.
std::vector<const ScheduleContext::ClusterState*>
sorted_by_latency(const ScheduleContext& ctx) {
    std::vector<std::pair<sim::SimTime, const ScheduleContext::ClusterState*>> scored;
    for (const auto& state : ctx.states) {
        const auto path = ctx.topo->path(ctx.client, state.cluster->location());
        if (!path) continue;
        scored.emplace_back(path->latency, &state);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
    std::vector<const ScheduleContext::ClusterState*> out;
    out.reserve(scored.size());
    for (const auto& [latency, state] : scored) out.push_back(state);
    return out;
}

} // namespace

ScheduleResult ProximityScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;
    const auto ordered = sorted_by_latency(ctx);
    if (ordered.empty()) return result; // no reachable edge -> cloud

    const auto* optimal = ordered.front();

    // Instance already running (or starting) in the optimal edge: FAST=BEST.
    if (const auto ready = optimal->first_ready()) {
        result.fast = Choice{optimal->cluster, ready};
        return result;
    }
    if (!optimal->instances.empty()) {
        // An instance is starting there; the request waits for it.
        result.fast = Choice{optimal->cluster, std::nullopt};
        return result;
    }

    if (wait_) {
        // With waiting: hold the request while deploying in the optimal edge.
        result.fast = Choice{optimal->cluster, std::nullopt};
        return result;
    }

    // Without waiting: serve the request from the nearest ready instance
    // (or the cloud) while deploying in the optimal edge in parallel.
    for (const auto* state : ordered) {
        if (const auto ready = state->first_ready()) {
            result.fast = Choice{state->cluster, ready};
            break;
        }
    }
    result.best = Choice{optimal->cluster, std::nullopt};
    return result;
}

namespace detail {
void register_proximity(SchedulerRegistry& registry) {
    registry.register_factory(kProximityScheduler, [](const yamlite::Node& params) {
        bool wait = true;
        if (const auto* w = params.find("wait")) {
            wait = w->as_bool().value_or(true);
        }
        return std::make_unique<ProximityScheduler>(wait);
    });
}
} // namespace detail

} // namespace tedge::sdn
