#include "sdn/schedulers/utilization_balancing.hpp"

#include <limits>

namespace tedge::sdn {
namespace {

double score(const ScheduleContext::ClusterState& state, double inflight_weight) {
    return state.pressure() +
           inflight_weight * static_cast<double>(state.inflight_deploys);
}

} // namespace

ScheduleResult UtilizationBalancingScheduler::decide(const ScheduleContext& ctx) {
    ScheduleResult result;

    // Lowest-score cluster holding a ready instance (serve now), and
    // lowest-score admitted cluster overall (place next).
    const ScheduleContext::ClusterState* best_ready = nullptr;
    double best_ready_score = std::numeric_limits<double>::infinity();
    const ScheduleContext::ClusterState* best_admitted = nullptr;
    double best_admitted_score = std::numeric_limits<double>::infinity();

    for (const auto& state : ctx.states) {
        const double s = score(state, inflight_weight_);
        if (state.any_ready() && s < best_ready_score) {
            best_ready_score = s;
            best_ready = &state;
        }
        if (state.admitted() && s < best_admitted_score) {
            best_admitted_score = s;
            best_admitted = &state;
        }
    }

    if (best_ready != nullptr) {
        result.fast = Choice{best_ready->cluster, best_ready->first_ready()};
        // Rebalance: when a meaningfully less-pressured admitted cluster has
        // no instance yet, warm it in the background for future requests.
        if (best_admitted != nullptr && best_admitted != best_ready &&
            best_admitted->instances.empty() &&
            best_admitted_score < best_ready_score) {
            result.best = Choice{best_admitted->cluster, std::nullopt};
        }
        return result;
    }

    // No ready instance anywhere: deploy-and-wait on the least-pressured
    // cluster that will actually take the work. When every cluster is full,
    // FAST stays empty and the request goes to the cloud instead of queueing
    // behind a placement that can only be rejected.
    if (best_admitted != nullptr) {
        result.fast = Choice{best_admitted->cluster, std::nullopt};
    }
    return result;
}

namespace detail {
void register_utilization_balancing(SchedulerRegistry& registry) {
    registry.register_factory(
        kUtilizationBalancingScheduler, [](const yamlite::Node& params) {
            double weight = 0.1;
            if (const auto* w = params.find("inflight_weight")) {
                if (const auto v = w->as_int()) {
                    weight = static_cast<double>(*v) / 100.0;  // percent
                }
            }
            return std::make_unique<UtilizationBalancingScheduler>(weight);
        });
}
} // namespace detail

} // namespace tedge::sdn
