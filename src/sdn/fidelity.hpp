// Simulation fidelity of the control-plane flow path (DESIGN §9).
//
// kExact models every flow as an individually-evented record: one packet-in
// per arrival, one expiry filing per flow. kHybrid lets *established* flows
// -- flows whose install decision is already settled (memory hit, or a
// redirect to an instance that was ready) -- collapse into per-(service,
// cluster) fluid cohorts whose rate counters advance lazily on the
// sim::AggregateEpoch grid. Cold starts, handover/re-steer and
// expiry-boundary transitions stay exact per-packet events in either mode,
// which is what keeps hybrid dispatch decisions and idle notifications
// identical to exact mode.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace tedge::sdn {

enum class Fidelity {
    kExact,
    kHybrid,
};

[[nodiscard]] constexpr const char* to_string(Fidelity fidelity) {
    return fidelity == Fidelity::kHybrid ? "hybrid" : "exact";
}

/// "exact" / "hybrid" -> Fidelity; throws std::invalid_argument otherwise.
[[nodiscard]] inline Fidelity fidelity_from_string(std::string_view name) {
    if (name == "exact") return Fidelity::kExact;
    if (name == "hybrid") return Fidelity::kHybrid;
    throw std::invalid_argument("unknown fidelity: " + std::string(name));
}

} // namespace tedge::sdn
