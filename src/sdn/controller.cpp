#include "sdn/controller.hpp"

namespace tedge::sdn {
namespace {

/// Propagate the controller-level fidelity knob into the sub-configs before
/// the members they configure are constructed.
ControllerConfig with_fidelity(ControllerConfig config) {
    config.flow_memory.fidelity = config.fidelity;
    config.dispatcher.fidelity = config.fidelity;
    // The dispatcher's handover path walks flows by client; keep that
    // O(client's flows). The index has no observable artifacts, so scenarios
    // without mobility are byte-identical either way.
    config.flow_memory.track_clients = true;
    return config;
}

} // namespace

Controller::Controller(sim::Simulation& sim, net::Topology& topo,
                       net::OvsSwitch& ingress, ServiceRegistry& registry,
                       core::DeploymentEngine& engine,
                       std::vector<orchestrator::Cluster*> clusters,
                       ControllerConfig config)
    : sim_(sim), ingress_(ingress), engine_(engine), clusters_(clusters),
      config_(with_fidelity(std::move(config))),
      flow_memory_(sim, config_.flow_memory),
      scheduler_(SchedulerRegistry::instance().create(config_.scheduler,
                                                      config_.scheduler_params)),
      log_(sim, "controller") {
    if (config_.session_plane != nullptr) {
        sessions_ = config_.session_plane;
    } else {
        owned_sessions_ = std::make_unique<SessionPlane>(sim);
        sessions_ = owned_sessions_.get();
    }
    dispatcher_ = std::make_unique<Dispatcher>(sim, topo, ingress, registry,
                                               flow_memory_, engine, *scheduler_,
                                               *sessions_, std::move(clusters),
                                               config_.dispatcher);
    sessions_->on_handover(
        [this](const UeSession& session, net::NodeId old_ingress) {
            dispatcher_->on_handover(session, old_ingress);
        });
    if (config_.scale_down_idle) {
        flow_memory_.set_idle_service_callback(
            [this](const std::string& service, const std::string& cluster) {
                on_idle_service(service, cluster);
            });
    }
}

void Controller::start() {
    if (started_) return;
    started_ = true;
    ingress_.set_controller([this](const net::PacketIn& event) {
        dispatcher_->handle_packet_in(event);
    });
}

void Controller::attach(net::OvsSwitch& ingress) {
    dispatcher_->add_switch(ingress);
    ingress.set_controller([this, &ingress](const net::PacketIn& event) {
        dispatcher_->handle_packet_in(ingress, event);
    });
}

void Controller::on_idle_service(const std::string& service,
                                 const std::string& cluster) {
    for (auto* c : clusters_) {
        if (c->name() != cluster) continue;
        if (c->instances(service).empty()) return; // nothing running
        ++idle_scale_downs_;
        log_.info([&] { return "scaling down idle service " + service + " on " + cluster; });
        engine_.scale_down(*c, service, [](bool) {});
        return;
    }
}

} // namespace tedge::sdn
