#include "sdn/controller.hpp"

namespace tedge::sdn {
namespace {

/// Propagate the controller-level fidelity knob into the sub-configs before
/// the members they configure are constructed.
ControllerConfig with_fidelity(ControllerConfig config) {
    config.flow_memory.fidelity = config.fidelity;
    config.dispatcher.fidelity = config.fidelity;
    return config;
}

} // namespace

Controller::Controller(sim::Simulation& sim, net::Topology& topo,
                       net::OvsSwitch& ingress, ServiceRegistry& registry,
                       core::DeploymentEngine& engine,
                       std::vector<orchestrator::Cluster*> clusters,
                       ControllerConfig config)
    : sim_(sim), ingress_(ingress), engine_(engine), clusters_(clusters),
      config_(with_fidelity(std::move(config))),
      flow_memory_(sim, config_.flow_memory),
      scheduler_(SchedulerRegistry::instance().create(config_.scheduler,
                                                      config_.scheduler_params)),
      log_(sim, "controller") {
    dispatcher_ = std::make_unique<Dispatcher>(sim, topo, ingress, registry,
                                               flow_memory_, engine, *scheduler_,
                                               std::move(clusters),
                                               config_.dispatcher);
    if (config_.scale_down_idle) {
        flow_memory_.set_idle_service_callback(
            [this](const std::string& service, const std::string& cluster) {
                on_idle_service(service, cluster);
            });
    }
}

void Controller::start() {
    if (started_) return;
    started_ = true;
    ingress_.set_controller([this](const net::PacketIn& event) {
        dispatcher_->handle_packet_in(event);
    });
}

void Controller::attach(net::OvsSwitch& ingress) {
    dispatcher_->add_switch(ingress);
    ingress.set_controller([this, &ingress](const net::PacketIn& event) {
        dispatcher_->handle_packet_in(ingress, event);
    });
}

void Controller::on_idle_service(const std::string& service,
                                 const std::string& cluster) {
    for (auto* c : clusters_) {
        if (c->name() != cluster) continue;
        if (c->instances(service).empty()) return; // nothing running
        ++idle_scale_downs_;
        log_.info([&] { return "scaling down idle service " + service + " on " + cluster; });
        engine_.scale_down(*c, service, [](bool) {});
        return;
    }
}

} // namespace tedge::sdn
