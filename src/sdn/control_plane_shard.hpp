// Sharded control plane: per-domain edge sub-controllers plus a central
// aggregator, built on the sharded simulation kernel.
//
// The paper's controller memorizes every flow it installs (FlowMemory,
// paper §V). At metro scale the flow table itself becomes the bottleneck --
// one controller domain serializes every packet-in. This module splits the
// control plane the way a distributed deployment would: each edge *site*
// (one sim::Domain) runs a ControlPlaneShard owning the FlowMemory partition
// for the clients homed at that site and handles their packet-ins entirely
// locally -- recall-miss -> install never leaves the domain. The central
// controller domain runs a ControlPlaneAggregator that receives periodic
// per-shard digests (live-flow counts, hit/miss totals, idle notifications)
// over Domain::post -- modelling the site-to-controller access link, whose
// latency is exactly the coordinator's conservative lookahead.
//
// Digests ride as *daemon* messages: they are telemetry, and must not keep
// ShardedSimulation::run() alive once the workload drains (a user-event
// digest would let edge daemons sustain each other forever). Delivery
// timestamps are sender clock + max(lookahead, configured delay), so the
// lookahead contract always holds.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "sdn/flow_memory.hpp"
#include "simcore/domain.hpp"
#include "simcore/time.hpp"

namespace tedge::sdn {

/// One shard's periodic report to the central controller. Values are
/// cumulative snapshots, not deltas, so a lost/merged reading stays
/// interpretable.
struct ControlPlaneDigest {
    sim::DomainId shard = 0;
    std::uint64_t seq = 0;            ///< per-shard digest number
    sim::SimTime composed_at;         ///< sender clock when composed
    std::uint64_t live_flows = 0;
    std::uint64_t recall_hits = 0;
    std::uint64_t recall_misses = 0;
    std::uint64_t idle_notifications = 0;
    std::uint64_t flows_handed_off = 0;   ///< donated to other shards (mobility)
    std::uint64_t flows_adopted = 0;      ///< received from other shards
};

/// The central controller's view of the sharded control plane. Lives in its
/// own domain; deliver() only ever runs there (posted by shards), so no
/// synchronization is needed.
class ControlPlaneAggregator {
public:
    explicit ControlPlaneAggregator(sim::Domain& domain);

    /// Ingest one digest (runs in the aggregator's domain).
    void deliver(const ControlPlaneDigest& digest);

    [[nodiscard]] sim::Domain& domain() { return *domain_; }
    [[nodiscard]] std::uint64_t digests_received() const { return received_; }
    [[nodiscard]] std::size_t shards_reporting() const;

    /// Sum of the latest live-flow snapshot from every reporting shard.
    [[nodiscard]] std::uint64_t total_live_flows() const;
    [[nodiscard]] std::uint64_t total_recall_hits() const;
    [[nodiscard]] std::uint64_t total_recall_misses() const;
    [[nodiscard]] std::uint64_t total_idle_notifications() const;
    [[nodiscard]] std::uint64_t total_flows_handed_off() const;
    [[nodiscard]] std::uint64_t total_flows_adopted() const;

    /// Latest digest from `shard`; seq 0 when none arrived yet.
    [[nodiscard]] const ControlPlaneDigest& latest(sim::DomainId shard) const;

private:
    sim::Domain* domain_;
    std::vector<ControlPlaneDigest> latest_;  ///< indexed by shard domain id
    std::uint64_t received_ = 0;
};

/// One edge site's slice of the control plane: a FlowMemory partition plus
/// the packet-in fast path, hosted in one sim::Domain.
class ControlPlaneShard {
public:
    struct Config {
        FlowMemory::Config flow_memory;
        /// How often a digest is composed and posted to the aggregator.
        sim::SimTime digest_period = sim::seconds(1);
        /// Control-plane processing time for a client-state handoff on top
        /// of the inter-site channel (serialize + transfer + adopt). The
        /// effective delivery delay is max(handoff_delay, lookahead) so the
        /// conservative-lookahead contract always holds.
        sim::SimTime handoff_delay = sim::milliseconds(25);
    };

    /// `aggregator` must live in a *different* domain of the same
    /// coordinator (or the same domain, in which case digests are delivered
    /// by local events and no lookahead is needed).
    ControlPlaneShard(sim::Domain& domain, ControlPlaneAggregator& aggregator,
                     Config config);
    ~ControlPlaneShard();

    /// The packet-in fast path: recall, and on a miss install a flow towards
    /// (instance_node, instance_port) on `cluster`. Returns true on a recall
    /// hit. Runs entirely inside this shard's domain.
    bool packet_in(net::Ipv4 client_ip, const net::ServiceAddress& service,
                   const std::string& service_name, net::NodeId instance_node,
                   std::uint16_t instance_port, const std::string& cluster);

    /// A client homed here re-homed to `dst`'s site: extract its FlowMemory
    /// partition slice and ship it over the inter-site channel. Runs in this
    /// shard's domain; the flows are adopted in `dst`'s domain one
    /// max(handoff_delay, lookahead) later (same-domain: handoff_delay).
    /// Rides as a *user* message -- state transfer must complete even if the
    /// workload drains meanwhile, unlike telemetry digests.
    /// Requires flow_memory.track_clients for O(client) extraction.
    void handoff_client(net::Ipv4 client_ip, ControlPlaneShard& dst);

    /// Adopt flows donated by another shard (runs in this shard's domain).
    /// Adoption re-memorizes: `created` survives the move, the idle clock
    /// restarts at the arrival instant.
    void adopt_handoff(const std::vector<MemorizedFlow>& flows);

    /// Begin the periodic digest daemon (idempotent).
    void start();
    /// Stop reporting (also happens on destruction).
    void stop();

    [[nodiscard]] sim::Domain& domain() { return *domain_; }
    [[nodiscard]] FlowMemory& memory() { return memory_; }
    [[nodiscard]] const FlowMemory& memory() const { return memory_; }
    [[nodiscard]] std::uint64_t packet_ins() const { return packet_ins_; }
    [[nodiscard]] std::uint64_t digests_sent() const { return next_digest_seq_; }
    [[nodiscard]] std::uint64_t idle_notifications() const { return idle_notifications_; }
    [[nodiscard]] std::uint64_t handoffs_out() const { return handoffs_out_; }
    [[nodiscard]] std::uint64_t handoffs_in() const { return handoffs_in_; }
    [[nodiscard]] std::uint64_t flows_handed_off() const { return flows_handed_off_; }
    [[nodiscard]] std::uint64_t flows_adopted() const { return flows_adopted_; }

private:
    void send_digest();

    sim::Domain* domain_;
    ControlPlaneAggregator* aggregator_;
    Config config_;
    FlowMemory memory_;
    sim::Simulation::PeriodicHandle digest_timer_;
    std::uint64_t packet_ins_ = 0;
    std::uint64_t next_digest_seq_ = 0;
    std::uint64_t idle_notifications_ = 0;
    std::uint64_t handoffs_out_ = 0;      ///< handoff_client() calls issued
    std::uint64_t handoffs_in_ = 0;       ///< adopt_handoff() deliveries
    std::uint64_t flows_handed_off_ = 0;
    std::uint64_t flows_adopted_ = 0;
};

} // namespace tedge::sdn
