// Global scheduler interface (paper fig. 6/7).
//
// The Global Scheduler chooses the edge cluster and returns two results:
//   FAST -- the fastest location for the *current* request, and
//   BEST -- the best location for *future* requests.
// BEST is empty when equal to FAST; when non-empty we have "on-demand
// deployment without waiting". An empty FAST forwards the request toward
// the cloud. Concrete schedulers are created by name through a registry,
// mirroring the paper's dynamically-loaded scheduler classes.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/topology.hpp"
#include "orchestrator/cluster.hpp"
#include "yamlite/value.hpp"

namespace tedge::sdn {

/// Everything the Dispatcher gathered for one scheduling decision.
struct ScheduleContext {
    net::NodeId client;                 ///< client's current location
    const orchestrator::ServiceSpec* spec = nullptr;
    const net::Topology* topo = nullptr;

    struct ClusterState {
        orchestrator::Cluster* cluster = nullptr;
        std::vector<orchestrator::InstanceInfo> instances;
        bool has_image = false;
        bool has_service = false;
        /// Capacity/usage snapshot (all-zero => unlimited cluster).
        orchestrator::ClusterUtilization utilization;
        /// Deployments in flight against this cluster -- load that
        /// `instances` cannot see yet (a deployment spends seconds in the
        /// Pull phase before any instance exists).
        std::size_t inflight_deploys = 0;
        /// Would one more instance of the service fit right now?
        orchestrator::AdmissionReason admission =
            orchestrator::AdmissionReason::kAdmitted;

        [[nodiscard]] bool admitted() const {
            return admission == orchestrator::AdmissionReason::kAdmitted;
        }
        /// Binding-dimension utilization fraction (0 when unlimited).
        [[nodiscard]] double pressure() const { return utilization.pressure(); }

        [[nodiscard]] bool any_ready() const {
            for (const auto& i : instances) {
                if (i.ready) return true;
            }
            return false;
        }
        [[nodiscard]] std::optional<orchestrator::InstanceInfo> first_ready() const {
            for (const auto& i : instances) {
                if (i.ready) return i;
            }
            return std::nullopt;
        }
    };
    std::vector<ClusterState> states;
};

/// One scheduling choice: a cluster, optionally pinned to a known instance.
struct Choice {
    orchestrator::Cluster* cluster = nullptr;
    std::optional<orchestrator::InstanceInfo> instance;
};

struct ScheduleResult {
    std::optional<Choice> fast;  ///< empty -> forward toward the cloud
    std::optional<Choice> best;  ///< empty -> equal to fast
};

class GlobalScheduler {
public:
    virtual ~GlobalScheduler() = default;
    [[nodiscard]] virtual const std::string& name() const = 0;
    [[nodiscard]] virtual ScheduleResult decide(const ScheduleContext& ctx) = 0;
};

/// Factory registry: schedulers are instantiated by name from the controller
/// configuration ("dynamic loading"). Factories receive the scheduler's
/// parameter block from the config file.
class SchedulerRegistry {
public:
    using Factory =
        std::function<std::unique_ptr<GlobalScheduler>(const yamlite::Node& params)>;

    static SchedulerRegistry& instance();

    void register_factory(std::string name, Factory factory);
    [[nodiscard]] std::unique_ptr<GlobalScheduler>
    create(std::string_view name, const yamlite::Node& params = {}) const;
    [[nodiscard]] std::vector<std::string> names() const;
    [[nodiscard]] bool contains(std::string_view name) const;

private:
    /// std::less<> makes lookups transparent: string_view / const char*
    /// probes no longer construct a temporary std::string.
    std::map<std::string, Factory, std::less<>> factories_;
};

/// Helper for static registration of built-in schedulers.
struct SchedulerRegistration {
    SchedulerRegistration(std::string name, SchedulerRegistry::Factory factory);
};

// Built-in scheduler names (registered in sdn/schedulers/*.cpp).
inline constexpr const char* kProximityScheduler = "proximity";
inline constexpr const char* kRoundRobinScheduler = "round_robin";
inline constexpr const char* kLeastLoadedScheduler = "least_loaded";
inline constexpr const char* kHierarchicalScheduler = "hierarchical";
inline constexpr const char* kCloudOnlyScheduler = "cloud_only";
inline constexpr const char* kUtilizationBalancingScheduler =
    "utilization_balancing";
inline constexpr const char* kDeadlineSloScheduler = "deadline_slo";

} // namespace tedge::sdn
