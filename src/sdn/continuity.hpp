// Continuity policies: what the controller does with a client's existing
// flows when the client re-homes to a new cell.
//
// Two strategies from the paper's mobility discussion:
//   - re-steer: keep serving from the old instance, just route the new
//     cell's traffic to it (zero deployment cost, pays backhaul latency
//     forever);
//   - migrate-and-warm: deploy/warm an instance near the new cell in the
//     background, cut the flow over once ready (deployment cost once,
//     restores edge-local latency).
//
// Policies are pure decision functions over a ContinuityContext snapshot --
// they schedule nothing themselves, so they stay deterministic and trivially
// testable. Configured by name so ControllerConfig remains copyable.
#pragma once

#include <memory>
#include <string>

#include "net/packet.hpp"
#include "sdn/flow_memory.hpp"
#include "simcore/simulation.hpp"

namespace tedge::sdn {

enum class ContinuityAction {
    kResteer, ///< keep the old instance, reroute via the backhaul
    kMigrate, ///< warm an instance near the new cell, then cut over
};

/// Snapshot handed to the policy for one (client, flow) pair on handover.
struct ContinuityContext {
    net::NodeId client;            ///< the client's new attachment (gNB node)
    net::NodeId old_ingress;
    net::NodeId new_ingress;
    const MemorizedFlow* flow = nullptr;
    /// One-way latency new cell -> current serving instance (re-steer cost).
    sim::SimTime resteer_latency;
    /// One-way latency new cell -> best candidate near it (post-migration).
    sim::SimTime migrate_latency;
    bool target_warm = false;      ///< candidate already has a ready instance
    /// Estimated time to make the candidate serve (0 when warm).
    sim::SimTime deployment_cost;
};

struct ContinuityConfig {
    std::string policy = "resteer"; ///< kResteerPolicy | kLatencyDeltaPolicy
    /// latency_delta: migrate only if re-steer costs at least this much more
    /// per one-way trip than the post-migration path.
    sim::SimTime min_latency_gain = sim::milliseconds(1);
    /// latency_delta: never migrate when warming would take longer than this.
    sim::SimTime max_deploy_cost = sim::seconds(5);
    /// Deployment-cost estimates fed to the policy (image present / absent).
    sim::SimTime warm_deploy_cost = sim::milliseconds(200);
    sim::SimTime cold_deploy_cost = sim::seconds(10);
};

inline constexpr const char* kResteerPolicy = "resteer";
inline constexpr const char* kLatencyDeltaPolicy = "latency_delta";

class ContinuityPolicy {
public:
    virtual ~ContinuityPolicy() = default;
    [[nodiscard]] virtual const char* name() const = 0;
    [[nodiscard]] virtual ContinuityAction decide(const ContinuityContext& ctx) = 0;
};

/// Always keep the old instance (the paper's baseline: the network follows
/// the user, compute does not).
class ResteerPolicy final : public ContinuityPolicy {
public:
    [[nodiscard]] const char* name() const override { return kResteerPolicy; }
    [[nodiscard]] ContinuityAction decide(const ContinuityContext&) override {
        return ContinuityAction::kResteer;
    }
};

/// Migrate when the latency saved per trip clears a threshold and the
/// deployment is affordable (warm target, or bounded warm-up cost).
class LatencyDeltaPolicy final : public ContinuityPolicy {
public:
    explicit LatencyDeltaPolicy(ContinuityConfig config) : config_(config) {}
    [[nodiscard]] const char* name() const override { return kLatencyDeltaPolicy; }
    [[nodiscard]] ContinuityAction decide(const ContinuityContext& ctx) override;

private:
    ContinuityConfig config_;
};

/// Factory over ContinuityConfig::policy; throws std::invalid_argument on an
/// unknown name.
std::unique_ptr<ContinuityPolicy> make_continuity_policy(const ContinuityConfig& config);

} // namespace tedge::sdn
