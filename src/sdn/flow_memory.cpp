#include "sdn/flow_memory.hpp"

#include <set>

#include "simcore/metrics_registry.hpp"

namespace tedge::sdn {

FlowMemory::FlowMemory(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config) {
    scan_ = sim_.schedule_periodic(config_.scan_period, [this] { expire(); },
                                   /*daemon=*/true);
}

FlowMemory::~FlowMemory() {
    scan_.cancel();
}

void FlowMemory::memorize(const MemorizedFlow& flow) {
    MemorizedFlow stored = flow;
    if (stored.created == sim::SimTime::zero()) stored.created = sim_.now();
    stored.last_used = sim_.now();
    flows_[Key{flow.client_ip.value(), flow.service_address}] = stored;
}

std::optional<MemorizedFlow>
FlowMemory::recall(net::Ipv4 client_ip, const net::ServiceAddress& service) {
    const auto it = flows_.find(Key{client_ip.value(), service});
    if (it == flows_.end()) {
        ++misses_;
        return std::nullopt;
    }
    if (sim_.now() - it->second.last_used >= config_.idle_timeout) {
        ++misses_;
        // Erase, don't just miss: a lingering stale entry would donate its
        // old `created` timestamp to the next memorize() of the same key
        // (created != zero suppresses the reset), skewing flow-age stats.
        flows_.erase(it);
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.stale_recalls").inc();
        return std::nullopt;
    }
    it->second.last_used = sim_.now();
    ++hits_;
    return it->second;
}

const MemorizedFlow*
FlowMemory::peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const {
    const auto it = flows_.find(Key{client_ip.value(), service});
    return it == flows_.end() ? nullptr : &it->second;
}

std::size_t FlowMemory::forget_service(const std::string& service_name) {
    std::size_t removed = 0;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.service_name == service_name) {
            it = flows_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

std::size_t FlowMemory::flows_for_service(const std::string& service_name) const {
    std::size_t count = 0;
    for (const auto& [key, flow] : flows_) {
        if (flow.service_name == service_name) ++count;
    }
    return count;
}

std::size_t FlowMemory::flows_for_service(const std::string& service_name,
                                          const std::string& cluster) const {
    std::size_t count = 0;
    for (const auto& [key, flow] : flows_) {
        if (flow.service_name == service_name && flow.cluster == cluster) ++count;
    }
    return count;
}

std::size_t FlowMemory::expire() {
    const sim::SimTime now = sim_.now();
    std::vector<std::pair<std::string, std::string>> expired_services;
    std::size_t removed = 0;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (now - it->second.last_used >= config_.idle_timeout) {
            expired_services.emplace_back(it->second.service_name, it->second.cluster);
            it = flows_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    if (idle_cb_) {
        // Report (service, cluster) pairs whose *last* flow just expired.
        // The count must be per pair: a flow still active on cluster B must
        // not suppress the idle notification for the expired instance on
        // cluster A, or A's instance would never be torn down.
        std::set<std::pair<std::string, std::string>> seen;
        for (const auto& [service, cluster] : expired_services) {
            if (!seen.insert({service, cluster}).second) continue;
            if (flows_for_service(service, cluster) == 0) {
                if (auto* m = sim_.metrics()) {
                    m->counter("sdn.flow_memory.idle_notifications").inc();
                }
                idle_cb_(service, cluster);
            }
        }
    }
    if (removed != 0) {
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.expired").inc(removed);
    }
    return removed;
}

} // namespace tedge::sdn
