#include "sdn/flow_memory.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "simcore/aggregate_epoch.hpp"
#include "simcore/metrics_registry.hpp"

namespace tedge::sdn {

namespace {
constexpr std::size_t kInitialCapacity = 16;
// Grow when live + tombstones exceed 3/4 of capacity: linear probing stays
// short and the probe array never fills.
constexpr std::size_t load_limit(std::size_t capacity) {
    return capacity - capacity / 4;
}
} // namespace

FlowMemory::FlowMemory(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config),
      chunks_(kInitialCapacity / kChunkSlots, kEmptyChunk) {
    // The old periodic scan validated this via schedule_periodic; expiry
    // buckets are quantized by the same period, so keep the same contract.
    if (config_.scan_period <= sim::SimTime::zero()) {
        throw std::invalid_argument("non-positive period");
    }
    if (config_.fidelity == Fidelity::kHybrid) {
        epoch_ = std::make_unique<sim::AggregateEpoch>(sim, config_.epoch_period);
        // When someone requests real ticks (gauges, benches), each tick
        // finalizes every cohort's epoch eagerly; without ticks the same
        // folding happens lazily on the cohort's next touch -- either way
        // the numbers at a given instant are identical.
        epoch_->subscribe([this](sim::SimTime) {
            for (auto& [pair, cohort] : cohorts_) advance_cohort(cohort);
        });
    }
}

FlowMemory::~FlowMemory() {
    for (auto& [bucket, pending] : expiry_buckets_) pending.event.cancel();
}

std::uint32_t FlowMemory::intern_address(const net::ServiceAddress& address) {
    if (const auto it = address_ids_.find(address); it != address_ids_.end()) {
        return it->second;
    }
    const auto id = static_cast<std::uint32_t>(addresses_.size());
    if (id == 0xFFFFFFFFu) throw std::length_error("FlowMemory: address space full");
    address_ids_.emplace(address, id);
    addresses_.push_back(address);
    return id;
}

std::optional<std::uint32_t>
FlowMemory::find_address(const net::ServiceAddress& address) const {
    const auto it = address_ids_.find(address);
    return it == address_ids_.end() ? std::nullopt : std::optional{it->second};
}

std::size_t FlowMemory::probe(Key64 key) const {
    const std::size_t mask = capacity() - 1;
    const std::uint8_t tag = tag_of(key);
    std::size_t slot = hash_key(key) & mask;
    std::size_t insert_at = kNpos;
    for (;;) {
        const std::uint8_t t = tag_at(slot);
        if (t == kEmptyTag) return insert_at != kNpos ? insert_at : slot;
        if (t == kTombstoneTag) {
            if (insert_at == kNpos) insert_at = slot;
        } else if (t == tag && pool_[index_at(slot)].key == key) {
            return slot;
        }
        slot = (slot + 1) & mask;
    }
}

std::size_t FlowMemory::find_slot(Key64 key) const {
    const std::size_t mask = capacity() - 1;
    const std::uint8_t tag = tag_of(key);
    std::size_t slot = hash_key(key) & mask;
    for (;;) {
        const std::uint8_t t = tag_at(slot);
        if (t == kEmptyTag) return kNpos;
        if (t == tag && pool_[index_at(slot)].key == key) return slot;
        slot = (slot + 1) & mask;
    }
}

void FlowMemory::grow(std::size_t min_capacity) {
    std::size_t capacity = min_capacity < kInitialCapacity ? kInitialCapacity
                                                           : min_capacity;
    while (pool_.size() >= load_limit(capacity)) capacity *= 2;
    chunks_.assign(capacity / kChunkSlots, kEmptyChunk);
    tombstones_ = 0;
    pending_slot_ = kNpos;
    const std::size_t mask = capacity - 1;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        std::size_t slot = hash_key(pool_[i].key) & mask;
        while (tag_at(slot) != kEmptyTag) slot = (slot + 1) & mask;
        tag_at(slot) = tag_of(pool_[i].key);
        index_at(slot) = static_cast<std::uint32_t>(i);
        pool_[i].slot = static_cast<std::uint32_t>(slot);
    }
}

std::size_t FlowMemory::insert(Key64 key, const FlowRec& rec) {
    if (pool_.size() + tombstones_ + 1 > load_limit(capacity())) {
        // Mostly tombstones (expire/forget churn): rehash in place to scrub
        // them instead of doubling forever; otherwise double.
        grow(pool_.size() * 2 >= load_limit(capacity()) ? capacity() * 2
                                                           : capacity());
    }
    const std::size_t slot = pending_slot_ != kNpos && pending_key_ == key
                                 ? pending_slot_
                                 : probe(key);
    pending_slot_ = kNpos;
    const std::uint8_t t = tag_at(slot);
    if (t != kEmptyTag && t != kTombstoneTag) {
        const std::uint32_t index = index_at(slot);
        bump_counters(pool_[index].rec, -1);
        // Preserve the entry's current expiry filing across the overwrite:
        // it still refers to this key, and file_expiry() below re-files only
        // if the refreshed deadline lands in a different bucket.
        const std::uint64_t filed = pool_[index].rec.expiry_bucket;
        pool_[index].rec = rec;
        pool_[index].rec.expiry_bucket = filed;
        bump_counters(rec, +1);
        file_expiry(key, pool_[index].rec);
        return index;
    }
    if (t == kTombstoneTag) --tombstones_;
    if (pool_.size() >= kMaxFlows) {
        throw std::length_error("FlowMemory: flow table full");
    }
    tag_at(slot) = tag_of(key);
    index_at(slot) = static_cast<std::uint32_t>(pool_.size());
    pool_.push_back(Entry{key, rec, static_cast<std::uint32_t>(slot)});
    bump_counters(rec, +1);
    // Only fresh insertions touch the client index: an overwrite (above)
    // keeps the same key, so the index already holds it.
    client_index_add(key);
    file_expiry(key, pool_.back().rec);
    return pool_.size() - 1;
}

void FlowMemory::client_index_add(Key64 key) {
    if (!config_.track_clients) return;
    client_keys_[static_cast<std::uint32_t>(key >> 32)].push_back(key);
}

void FlowMemory::client_index_remove(Key64 key) {
    if (!config_.track_clients) return;
    const auto it = client_keys_.find(static_cast<std::uint32_t>(key >> 32));
    if (it == client_keys_.end()) return;
    std::vector<Key64>& keys = it->second;
    const auto pos = std::find(keys.begin(), keys.end(), key);
    if (pos == keys.end()) return;
    *pos = keys.back();
    keys.pop_back();
    if (keys.empty()) client_keys_.erase(it);
}

void FlowMemory::erase_entry(std::size_t index) {
    bump_counters(pool_[index].rec, -1);
    client_index_remove(pool_[index].key);
    tag_at(pool_[index].slot) = kTombstoneTag;
    ++tombstones_;
    pending_slot_ = kNpos;
    const std::size_t last = pool_.size() - 1;
    if (index != last) {
        pool_[index] = pool_[last];
        // The moved entry keeps its probe slot (and so its tag, a pure
        // function of the unchanged key); only the index retargets.
        index_at(pool_[index].slot) = static_cast<std::uint32_t>(index);
    }
    pool_.pop_back();
}

void FlowMemory::bump_counters(const FlowRec& rec, std::int64_t delta) {
    if (rec.fluid) {
        // A tracked-fluid record entering/leaving the pool is also a cohort
        // member entering/leaving its cohort (erase, overwrite, forget).
        FluidCohort& cohort = cohort_for(rec.service, rec.cluster);
        if (delta > 0) {
            ++cohort.tracked_live;
            ++fluid_tracked_;
        } else {
            --cohort.tracked_live;
            --fluid_tracked_;
        }
    }
    if (delta > 0) {
        ++pair_counts_[pack_pair(rec.service, rec.cluster)];
        ++service_counts_[rec.service];
    } else {
        auto pair_it = pair_counts_.find(pack_pair(rec.service, rec.cluster));
        if (pair_it != pair_counts_.end() && --pair_it->second == 0) {
            // Keep zero entries out of the map so its size stays bounded by
            // the number of *live* (service, cluster) combinations.
            pair_counts_.erase(pair_it);
        }
        auto svc_it = service_counts_.find(rec.service);
        if (svc_it != service_counts_.end() && --svc_it->second == 0) {
            service_counts_.erase(svc_it);
        }
    }
}

void FlowMemory::bump_counters_by(sim::SymbolId service, sim::SymbolId cluster,
                                  std::uint64_t count, bool add) {
    if (count == 0) return;
    const Key64 pair = pack_pair(service, cluster);
    if (add) {
        pair_counts_[pair] += static_cast<std::size_t>(count);
        service_counts_[service] += static_cast<std::size_t>(count);
        return;
    }
    auto pair_it = pair_counts_.find(pair);
    if (pair_it != pair_counts_.end()) {
        pair_it->second -= std::min(pair_it->second,
                                    static_cast<std::size_t>(count));
        if (pair_it->second == 0) pair_counts_.erase(pair_it);
    }
    auto svc_it = service_counts_.find(service);
    if (svc_it != service_counts_.end()) {
        svc_it->second -= std::min(svc_it->second,
                                   static_cast<std::size_t>(count));
        if (svc_it->second == 0) service_counts_.erase(svc_it);
    }
}

FlowMemory::FluidCohort& FlowMemory::cohort_for(sim::SymbolId service,
                                                sim::SymbolId cluster) {
    FluidCohort& cohort = cohorts_[pack_pair(service, cluster)];
    cohort.service = service;
    cohort.cluster = cluster;
    return cohort;
}

void FlowMemory::advance_cohort(FluidCohort& cohort) {
    if (epoch_ == nullptr) return;
    const std::int64_t k = sim_.now().ns() / config_.epoch_period.ns();
    if (cohort.epoch_k == k) return;
    if (cohort.epoch_k >= 0) {
        // Fold the completed epoch holding epoch_arrivals into the EWMA,
        // then decay across any arrival-free epochs between it and now in
        // closed form -- this is the lazy advance: a cohort untouched for a
        // thousand epochs settles its rate in O(1) at the next touch.
        constexpr double kAlpha = 0.25;
        const double period_s =
            static_cast<double>(config_.epoch_period.ns()) / 1e9;
        double rate = cohort.rate_per_s;
        rate += kAlpha *
                (static_cast<double>(cohort.epoch_arrivals) / period_s - rate);
        const std::int64_t idle_epochs = k - cohort.epoch_k - 1;
        if (idle_epochs > 0) {
            rate *= std::pow(1.0 - kAlpha, static_cast<double>(idle_epochs));
        }
        cohort.rate_per_s = rate;
    }
    cohort.epoch_k = k;
    cohort.epoch_arrivals = 0;
}

void FlowMemory::promote_entry(Entry& entry) {
    entry.rec.fluid = true;
    FluidCohort& cohort = cohort_for(entry.rec.service, entry.rec.cluster);
    cohort.instance_node = entry.rec.instance_node;
    cohort.instance_port = entry.rec.instance_port;
    advance_cohort(cohort);
    ++cohort.tracked_live;
    ++cohort.epoch_arrivals;
    ++cohort.admitted_total;
    ++fluid_tracked_;
    // No metrics counter here: promotion is pure representation, and a
    // hybrid-only counter in the dump would break the byte-identity of
    // fig09/fig12 artifacts against exact mode.
}

void FlowMemory::demote_entry(Entry& entry) {
    entry.rec.fluid = false;
    FluidCohort& cohort = cohort_for(entry.rec.service, entry.rec.cluster);
    --cohort.tracked_live;
    --fluid_tracked_;
}

MemorizedFlow FlowMemory::materialize(Key64 key, const FlowRec& rec) const {
    MemorizedFlow flow;
    flow.client_ip = net::Ipv4{static_cast<std::uint32_t>(key >> 32)};
    flow.service_address = addresses_[static_cast<std::uint32_t>(key)];
    flow.service_name = symbols_.name(rec.service);
    flow.instance_node = rec.instance_node;
    flow.instance_port = rec.instance_port;
    flow.cluster = symbols_.name(rec.cluster);
    flow.created = rec.created;
    flow.last_used = rec.last_used;
    return flow;
}

void FlowMemory::memorize(const MemorizedFlow& flow, bool established) {
    FlowRec rec;
    rec.service = symbols_.intern(flow.service_name);
    rec.cluster = symbols_.intern(flow.cluster);
    rec.instance_node = flow.instance_node;
    rec.instance_port = flow.instance_port;
    rec.created = flow.created == sim::SimTime::zero() ? sim_.now() : flow.created;
    rec.last_used = sim_.now();
    const std::size_t index = insert(
        pack_key(flow.client_ip.value(), intern_address(flow.service_address)),
        rec);
    // Promote at install, not at a later epoch tick: the entry's expiry
    // filing position is already fixed by the insert, so promotion cannot
    // perturb expiry (and thus idle-notification) ordering.
    if (established && epoch_ != nullptr) promote_entry(pool_[index]);
}

void FlowMemory::prefetch(net::Ipv4 client_ip,
                          const net::ServiceAddress& service) const {
    const auto address_id = find_address(service);
    if (!address_id) return;
    const Key64 key = pack_key(client_ip.value(), *address_id);
    const std::size_t slot = hash_key(key) & (capacity() - 1);
#if defined(__GNUC__) || defined(__clang__)
    // Write intent: a miss is followed by an insert into this same line.
    __builtin_prefetch(&chunks_[slot / kChunkSlots], 1, 1);
#endif
}

std::optional<MemorizedFlow>
FlowMemory::recall(net::Ipv4 client_ip, const net::ServiceAddress& service) {
    const auto address_id = find_address(service);
    if (!address_id) {
        ++misses_;
        return std::nullopt;
    }
    const Key64 key = pack_key(client_ip.value(), *address_id);
    // probe(), not find_slot(): on a miss it lands on the insertion slot,
    // which feeds the one-entry pending cache consumed by insert().
    const std::size_t slot = probe(key);
    const std::uint8_t t = tag_at(slot);
    if (t == kEmptyTag || t == kTombstoneTag) {
        pending_key_ = key;
        pending_slot_ = slot;
        ++misses_;
        return std::nullopt;
    }
    Entry& entry = pool_[index_at(slot)];
    if (sim_.now() - entry.rec.last_used >= config_.idle_timeout) {
        ++misses_;
        // Erase, don't just miss: a lingering stale entry would donate its
        // old `created` timestamp to the next memorize() of the same key
        // (created != zero suppresses the reset), skewing flow-age stats.
        erase_entry(index_at(slot));
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.stale_recalls").inc();
        return std::nullopt;
    }
    // A recalled flow is by definition at a decision boundary again: demote
    // it to exact representation before answering, so whatever happens next
    // (re-install, re-steer, expiry) runs the exact path.
    if (entry.rec.fluid) demote_entry(entry);
    entry.rec.last_used = sim_.now();
    ++hits_;
    return materialize(entry.key, entry.rec);
}

bool FlowMemory::promote(net::Ipv4 client_ip, const net::ServiceAddress& service) {
    if (epoch_ == nullptr) return false;
    const auto address_id = find_address(service);
    if (!address_id) return false;
    const std::size_t slot = find_slot(pack_key(client_ip.value(), *address_id));
    if (slot == kNpos) return false;
    Entry& entry = pool_[index_at(slot)];
    if (entry.rec.fluid) return false;
    promote_entry(entry);
    return true;
}

bool FlowMemory::demote(net::Ipv4 client_ip, const net::ServiceAddress& service) {
    const auto address_id = find_address(service);
    if (!address_id) return false;
    const std::size_t slot = find_slot(pack_key(client_ip.value(), *address_id));
    if (slot == kNpos) return false;
    Entry& entry = pool_[index_at(slot)];
    if (!entry.rec.fluid) return false;
    demote_entry(entry);
    return true;
}

void FlowMemory::admit_fluid(std::string_view service_name,
                             std::string_view cluster,
                             net::NodeId instance_node,
                             std::uint16_t instance_port,
                             std::uint64_t count) {
    if (epoch_ == nullptr) {
        throw std::logic_error("FlowMemory: admit_fluid requires hybrid fidelity");
    }
    if (count == 0) return;
    const auto service = symbols_.intern(service_name);
    const auto cluster_id = symbols_.intern(cluster);
    FluidCohort& cohort = cohort_for(service, cluster_id);
    cohort.instance_node = instance_node;
    cohort.instance_port = instance_port;
    advance_cohort(cohort);
    cohort.epoch_arrivals += count;
    cohort.admitted_total += count;
    cohort.anonymous_live += count;
    fluid_anonymous_ += count;
    bump_counters_by(service, cluster_id, count, /*add=*/true);
    file_fluid_expiry(pack_pair(service, cluster_id), count);
    if (auto* m = sim_.metrics()) {
        m->counter("sdn.flow_memory.fluid_admissions").inc(count);
    }
}

std::uint64_t FlowMemory::fluid_flows(std::string_view service_name,
                                      std::string_view cluster) const {
    const auto service = symbols_.find(service_name);
    const auto cluster_id = symbols_.find(cluster);
    if (!service || !cluster_id) return 0;
    const auto it = cohorts_.find(pack_pair(*service, *cluster_id));
    if (it == cohorts_.end()) return 0;
    return it->second.tracked_live + it->second.anonymous_live;
}

double FlowMemory::fluid_rate_per_s(std::string_view service_name,
                                    std::string_view cluster) {
    const auto service = symbols_.find(service_name);
    const auto cluster_id = symbols_.find(cluster);
    if (!service || !cluster_id) return 0.0;
    const auto it = cohorts_.find(pack_pair(*service, *cluster_id));
    if (it == cohorts_.end()) return 0.0;
    advance_cohort(it->second);
    return it->second.rate_per_s;
}

const MemorizedFlow*
FlowMemory::peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const {
    const auto address_id = find_address(service);
    if (!address_id) return nullptr;
    const std::size_t slot = find_slot(pack_key(client_ip.value(), *address_id));
    if (slot == kNpos) return nullptr;
    const Entry& entry = pool_[index_at(slot)];
    peek_scratch_ = materialize(entry.key, entry.rec);
    return &peek_scratch_;
}

std::size_t FlowMemory::forget_service(std::string_view service_name) {
    const auto service = symbols_.find(service_name);
    if (!service) return 0;
    std::size_t removed = 0;
    std::size_t index = 0;
    while (index < pool_.size()) {
        if (pool_[index].rec.service == *service) {
            erase_entry(index); // swap-remove: re-examine the same index
            ++removed;
        } else {
            ++index;
        }
    }
    // Anonymous cohort members have no pool record: drop them from the fused
    // counters now and let their filed expiry runs cancel as stale later.
    for (auto& [pair, cohort] : cohorts_) {
        if (cohort.service != *service || cohort.anonymous_live == 0) continue;
        const std::uint64_t n = cohort.anonymous_live;
        cohort.anonymous_forgotten += n;
        cohort.anonymous_live = 0;
        fluid_anonymous_ -= n;
        bump_counters_by(cohort.service, cohort.cluster, n, /*add=*/false);
        removed += static_cast<std::size_t>(n);
    }
    return removed;
}

std::vector<MemorizedFlow> FlowMemory::flows_of_client(net::Ipv4 client_ip) const {
    std::vector<MemorizedFlow> flows;
    if (config_.track_clients) {
        const auto it = client_keys_.find(client_ip.value());
        if (it == client_keys_.end()) return flows;
        flows.reserve(it->second.size());
        for (const Key64 key : it->second) {
            const std::size_t slot = find_slot(key);
            if (slot == kNpos) continue; // index is maintained; defensive only
            const Entry& entry = pool_[index_at(slot)];
            flows.push_back(materialize(entry.key, entry.rec));
        }
        return flows;
    }
    for (const Entry& entry : pool_) {
        if (static_cast<std::uint32_t>(entry.key >> 32) == client_ip.value()) {
            flows.push_back(materialize(entry.key, entry.rec));
        }
    }
    return flows;
}

std::vector<MemorizedFlow> FlowMemory::extract_client(net::Ipv4 client_ip) {
    std::vector<MemorizedFlow> flows = flows_of_client(client_ip);
    // Erase by key, not pool index: each erase swap-removes and would shift
    // any index list. Stale expiry filings left behind cancel when their
    // bucket fires (find_slot misses, or the key was reused and the bucket
    // field mismatches).
    for (const MemorizedFlow& flow : flows) {
        const auto address_id = find_address(flow.service_address);
        if (!address_id) continue;
        const std::size_t slot =
            find_slot(pack_key(flow.client_ip.value(), *address_id));
        if (slot != kNpos) erase_entry(index_at(slot));
    }
    return flows;
}

bool FlowMemory::forget_flow(net::Ipv4 client_ip,
                             const net::ServiceAddress& service,
                             bool notify_if_idle) {
    const auto address_id = find_address(service);
    if (!address_id) return false;
    const std::size_t slot = find_slot(pack_key(client_ip.value(), *address_id));
    if (slot == kNpos) return false;
    const std::size_t index = index_at(slot);
    const Key64 pair =
        pack_pair(pool_[index].rec.service, pool_[index].rec.cluster);
    erase_entry(index);
    // Not routed through finish_expiry(): this flow was *removed*, not
    // expired, so the expiry counter must not move -- but the old instance
    // may still have just lost its last user.
    if (notify_if_idle && idle_cb_ && !pair_counts_.contains(pair)) {
        if (auto* m = sim_.metrics()) {
            m->counter("sdn.flow_memory.idle_notifications").inc();
        }
        idle_cb_(symbols_.name(static_cast<sim::SymbolId>(pair >> 32)),
                 symbols_.name(static_cast<sim::SymbolId>(pair)));
    }
    return true;
}

std::size_t FlowMemory::flows_for_service(std::string_view service_name) const {
    const auto service = symbols_.find(service_name);
    if (!service) return 0;
    const auto it = service_counts_.find(*service);
    return it == service_counts_.end() ? 0 : it->second;
}

std::size_t FlowMemory::flows_for_service(std::string_view service_name,
                                          std::string_view cluster) const {
    const auto service = symbols_.find(service_name);
    const auto cluster_id = symbols_.find(cluster);
    if (!service || !cluster_id) return 0;
    const auto it = pair_counts_.find(pack_pair(*service, *cluster_id));
    return it == pair_counts_.end() ? 0 : it->second;
}

std::uint64_t FlowMemory::bucket_for(sim::SimTime deadline) const {
    const std::int64_t period = config_.scan_period.ns();
    const std::int64_t bucket = (deadline.ns() + period - 1) / period;
    // A non-positive idle timeout can put the deadline in the past; the old
    // periodic scan would first have seen such a flow on its next tick. For
    // positive timeouts the max() is a no-op: deadline > now already implies
    // ceil(deadline / period) > floor(now / period).
    const std::int64_t next_tick = sim_.now().ns() / period + 1;
    return static_cast<std::uint64_t>(std::max(bucket, next_tick));
}

FlowMemory::ExpiryBucket& FlowMemory::bucket_node(std::uint64_t bucket) {
    if (cached_bucket_node_ != nullptr && cached_bucket_ == bucket) {
        return *cached_bucket_node_;
    }
    auto [it, fresh] = expiry_buckets_.try_emplace(bucket);
    cached_bucket_ = bucket;
    cached_bucket_node_ = &it->second;
    if (fresh) {
        it->second.event = sim_.schedule_at(
            sim::SimTime{static_cast<std::int64_t>(bucket) *
                         config_.scan_period.ns()},
            [this, bucket] { fire_bucket(bucket); }, /*daemon=*/true);
    }
    return it->second;
}

void FlowMemory::file_expiry(Key64 key, FlowRec& rec) {
    const std::uint64_t bucket = bucket_for(rec.last_used + config_.idle_timeout);
    if (rec.expiry_bucket == bucket) return; // already filed at this deadline
    rec.expiry_bucket = bucket;
    bucket_node(bucket).items.push_back(ExpiryItem{key, 0});
}

void FlowMemory::file_fluid_expiry(Key64 pair, std::uint64_t count) {
    const std::uint64_t bucket = bucket_for(sim_.now() + config_.idle_timeout);
    ExpiryBucket& node = bucket_node(bucket);
    // Consecutive admissions to the same cohort within one scan quantum are
    // one run: per-bucket filing cost is O(live cohorts), not O(flows).
    if (!node.items.empty() && node.items.back().count > 0 &&
        node.items.back().key == pair) {
        node.items.back().count += count;
        return;
    }
    node.items.push_back(ExpiryItem{pair, count});
}

void FlowMemory::fire_bucket(std::uint64_t bucket) {
    const auto it = expiry_buckets_.find(bucket);
    if (it == expiry_buckets_.end()) return;
    const std::vector<ExpiryItem> items = std::move(it->second.items);
    if (cached_bucket_ == bucket) cached_bucket_node_ = nullptr;
    expiry_buckets_.erase(it); // re-files below may re-occupy this map
    const sim::SimTime now = sim_.now();
    std::vector<Key64> expired_pairs;
    std::unordered_map<Key64, bool> seen;
    std::size_t removed = 0;
    for (const ExpiryItem& item : items) {
        if (item.count > 0) {
            // A run of anonymous cohort flows. They are never touched after
            // admission, so the whole run expires here.
            drain_fluid(item.key, item.count, expired_pairs, seen, removed);
            continue;
        }
        const Key64 key = item.key;
        const std::size_t slot = find_slot(key);
        if (slot == kNpos) continue; // erased (stale recall/forget) since filing
        const std::size_t index = index_at(slot);
        FlowRec& rec = pool_[index].rec;
        if (rec.expiry_bucket != bucket) continue; // re-filed, or key reused
        if (now - rec.last_used >= config_.idle_timeout) {
            const Key64 pair = pack_pair(rec.service, rec.cluster);
            if (idle_cb_ && seen.emplace(pair, true).second) {
                expired_pairs.push_back(pair);
            }
            erase_entry(index);
            ++removed;
        } else {
            // Touched since filing: re-file under the deadline its refreshed
            // last_used implies. That deadline is beyond this bucket's
            // instant, so the new bucket is strictly later -- no livelock.
            rec.expiry_bucket = 0;
            file_expiry(key, rec);
        }
    }
    finish_expiry(expired_pairs, removed);
}

void FlowMemory::drain_fluid(Key64 pair, std::uint64_t count,
                             std::vector<Key64>& expired_pairs,
                             std::unordered_map<Key64, bool>& seen,
                             std::size_t& removed) {
    const auto it = cohorts_.find(pair);
    if (it == cohorts_.end()) return;
    FluidCohort& cohort = it->second;
    // Filed runs for members forget_service() already removed are stale;
    // cancel them in filing (FIFO) order before touching live members.
    const std::uint64_t cancelled = std::min(count, cohort.anonymous_forgotten);
    cohort.anonymous_forgotten -= cancelled;
    const std::uint64_t n = std::min(count - cancelled, cohort.anonymous_live);
    if (n == 0) return;
    cohort.anonymous_live -= n;
    fluid_anonymous_ -= n;
    bump_counters_by(cohort.service, cohort.cluster, n, /*add=*/false);
    removed += static_cast<std::size_t>(n);
    if (idle_cb_ && seen.emplace(pair, true).second) {
        expired_pairs.push_back(pair);
    }
}

std::size_t FlowMemory::expire() {
    const sim::SimTime now = sim_.now();
    // (service, cluster) pairs that lost at least one flow this sweep, in
    // first-expiry order, deduplicated.
    std::vector<Key64> expired_pairs;
    std::unordered_map<Key64, bool> seen;
    std::size_t removed = 0;
    std::size_t index = 0;
    while (index < pool_.size()) {
        const FlowRec& rec = pool_[index].rec;
        if (now - rec.last_used >= config_.idle_timeout) {
            const Key64 pair = pack_pair(rec.service, rec.cluster);
            if (idle_cb_ && seen.emplace(pair, true).second) {
                expired_pairs.push_back(pair);
            }
            erase_entry(index); // swap-remove: re-examine the same index
            ++removed;
        } else {
            ++index;
        }
    }
    // Anonymous cohort members record their deadlines only through filed
    // runs, quantized to bucket instants (the observable-expiry contract of
    // bucketed expiry). A manual sweep drains every run whose bucket instant
    // has been reached, in bucket order; exact keys stay for their events.
    if (epoch_ != nullptr && fluid_anonymous_ > 0) {
        const auto due =
            static_cast<std::uint64_t>(now.ns() / config_.scan_period.ns());
        std::vector<std::uint64_t> due_buckets;
        for (const auto& [bucket, pending] : expiry_buckets_) {
            if (bucket <= due) due_buckets.push_back(bucket);
        }
        std::sort(due_buckets.begin(), due_buckets.end());
        for (const std::uint64_t bucket : due_buckets) {
            auto& items = expiry_buckets_[bucket].items;
            std::size_t kept = 0;
            for (const ExpiryItem& item : items) {
                if (item.count > 0) {
                    drain_fluid(item.key, item.count, expired_pairs, seen,
                                removed);
                } else {
                    items[kept++] = item;
                }
            }
            items.resize(kept);
        }
    }
    finish_expiry(expired_pairs, removed);
    return removed;
}

void FlowMemory::finish_expiry(const std::vector<Key64>& expired_pairs,
                               std::size_t removed) {
    if (idle_cb_) {
        // Report (service, cluster) pairs whose *last* flow just expired.
        // The count must be per pair: a flow still active on cluster B must
        // not suppress the idle notification for the expired instance on
        // cluster A, or A's instance would never be torn down. The counter
        // makes this check O(1) per expired pair.
        for (const Key64 pair : expired_pairs) {
            if (pair_counts_.contains(pair)) continue; // still has live flows
            if (auto* m = sim_.metrics()) {
                m->counter("sdn.flow_memory.idle_notifications").inc();
            }
            idle_cb_(symbols_.name(static_cast<sim::SymbolId>(pair >> 32)),
                     symbols_.name(static_cast<sim::SymbolId>(pair)));
        }
    }
    if (removed != 0) {
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.expired").inc(removed);
    }
}

void FlowMemory::for_each(const std::function<void(const MemorizedFlow&)>& fn) const {
    for (const Entry& entry : pool_) {
        fn(materialize(entry.key, entry.rec));
    }
}

void FlowMemory::reserve(std::size_t flows) {
    pool_.reserve(flows);
    // Probe-array headroom so `flows` inserts stay under the load limit
    // without growing mid-fill.
    std::size_t wanted = kInitialCapacity;
    while (load_limit(wanted) <= flows) wanted *= 2;
    if (wanted > capacity()) grow(wanted);
}

} // namespace tedge::sdn
