#include "sdn/flow_memory.hpp"

#include <stdexcept>

#include "simcore/metrics_registry.hpp"

namespace tedge::sdn {

namespace {
constexpr std::size_t kInitialCapacity = 16;
// Grow when live + tombstones exceed 3/4 of capacity: linear probing stays
// short and the probe array never fills.
constexpr std::size_t load_limit(std::size_t capacity) {
    return capacity - capacity / 4;
}
} // namespace

FlowMemory::FlowMemory(sim::Simulation& sim, Config config)
    : sim_(sim), config_(config), slots_(kInitialCapacity, kEmptySlot) {
    scan_ = sim_.schedule_periodic(config_.scan_period, [this] { expire(); },
                                   /*daemon=*/true);
}

FlowMemory::~FlowMemory() {
    scan_.cancel();
}

std::uint32_t FlowMemory::intern_address(const net::ServiceAddress& address) {
    if (const auto it = address_ids_.find(address); it != address_ids_.end()) {
        return it->second;
    }
    const auto id = static_cast<std::uint32_t>(addresses_.size());
    if (id == 0xFFFFFFFFu) throw std::length_error("FlowMemory: address space full");
    address_ids_.emplace(address, id);
    addresses_.push_back(address);
    return id;
}

std::optional<std::uint32_t>
FlowMemory::find_address(const net::ServiceAddress& address) const {
    const auto it = address_ids_.find(address);
    return it == address_ids_.end() ? std::nullopt : std::optional{it->second};
}

std::size_t FlowMemory::probe(Key64 key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash_key(key) & mask;
    std::size_t insert_at = kNpos;
    for (;;) {
        const std::uint32_t index = slots_[slot];
        if (index == kEmptySlot) return insert_at != kNpos ? insert_at : slot;
        if (index == kTombstoneSlot) {
            if (insert_at == kNpos) insert_at = slot;
        } else if (pool_[index].key == key) {
            return slot;
        }
        slot = (slot + 1) & mask;
    }
}

std::size_t FlowMemory::find_slot(Key64 key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t slot = hash_key(key) & mask;
    for (;;) {
        const std::uint32_t index = slots_[slot];
        if (index == kEmptySlot) return kNpos;
        if (index != kTombstoneSlot && pool_[index].key == key) return slot;
        slot = (slot + 1) & mask;
    }
}

void FlowMemory::grow(std::size_t min_capacity) {
    std::size_t capacity = min_capacity < kInitialCapacity ? kInitialCapacity
                                                           : min_capacity;
    while (pool_.size() >= load_limit(capacity)) capacity *= 2;
    slots_.assign(capacity, kEmptySlot);
    tombstones_ = 0;
    const std::size_t mask = capacity - 1;
    for (std::size_t i = 0; i < pool_.size(); ++i) {
        std::size_t slot = hash_key(pool_[i].key) & mask;
        while (slots_[slot] != kEmptySlot) slot = (slot + 1) & mask;
        slots_[slot] = static_cast<std::uint32_t>(i);
        pool_[i].slot = static_cast<std::uint32_t>(slot);
    }
}

void FlowMemory::insert(Key64 key, const FlowRec& rec) {
    if (pool_.size() + tombstones_ + 1 > load_limit(slots_.size())) {
        // Mostly tombstones (expire/forget churn): rehash in place to scrub
        // them instead of doubling forever; otherwise double.
        grow(pool_.size() * 2 >= load_limit(slots_.size()) ? slots_.size() * 2
                                                           : slots_.size());
    }
    const std::size_t slot = probe(key);
    const std::uint32_t index = slots_[slot];
    if (index != kEmptySlot && index != kTombstoneSlot &&
        pool_[index].key == key) {
        bump_counters(pool_[index].rec, -1);
        pool_[index].rec = rec;
    } else {
        if (index == kTombstoneSlot) --tombstones_;
        if (pool_.size() >= kTombstoneSlot) {
            throw std::length_error("FlowMemory: flow table full");
        }
        slots_[slot] = static_cast<std::uint32_t>(pool_.size());
        pool_.push_back(Entry{key, rec, static_cast<std::uint32_t>(slot)});
    }
    bump_counters(rec, +1);
}

void FlowMemory::erase_entry(std::size_t index) {
    bump_counters(pool_[index].rec, -1);
    slots_[pool_[index].slot] = kTombstoneSlot;
    ++tombstones_;
    const std::size_t last = pool_.size() - 1;
    if (index != last) {
        pool_[index] = pool_[last];
        slots_[pool_[index].slot] = static_cast<std::uint32_t>(index);
    }
    pool_.pop_back();
}

void FlowMemory::bump_counters(const FlowRec& rec, std::int64_t delta) {
    if (delta > 0) {
        ++pair_counts_[pack_pair(rec.service, rec.cluster)];
        ++service_counts_[rec.service];
    } else {
        auto pair_it = pair_counts_.find(pack_pair(rec.service, rec.cluster));
        if (pair_it != pair_counts_.end() && --pair_it->second == 0) {
            // Keep zero entries out of the map so its size stays bounded by
            // the number of *live* (service, cluster) combinations.
            pair_counts_.erase(pair_it);
        }
        auto svc_it = service_counts_.find(rec.service);
        if (svc_it != service_counts_.end() && --svc_it->second == 0) {
            service_counts_.erase(svc_it);
        }
    }
}

MemorizedFlow FlowMemory::materialize(Key64 key, const FlowRec& rec) const {
    MemorizedFlow flow;
    flow.client_ip = net::Ipv4{static_cast<std::uint32_t>(key >> 32)};
    flow.service_address = addresses_[static_cast<std::uint32_t>(key)];
    flow.service_name = symbols_.name(rec.service);
    flow.instance_node = rec.instance_node;
    flow.instance_port = rec.instance_port;
    flow.cluster = symbols_.name(rec.cluster);
    flow.created = rec.created;
    flow.last_used = rec.last_used;
    return flow;
}

void FlowMemory::memorize(const MemorizedFlow& flow) {
    FlowRec rec;
    rec.service = symbols_.intern(flow.service_name);
    rec.cluster = symbols_.intern(flow.cluster);
    rec.instance_node = flow.instance_node;
    rec.instance_port = flow.instance_port;
    rec.created = flow.created == sim::SimTime::zero() ? sim_.now() : flow.created;
    rec.last_used = sim_.now();
    insert(pack_key(flow.client_ip.value(), intern_address(flow.service_address)),
           rec);
}

std::optional<MemorizedFlow>
FlowMemory::recall(net::Ipv4 client_ip, const net::ServiceAddress& service) {
    const auto address_id = find_address(service);
    const std::size_t slot =
        address_id ? find_slot(pack_key(client_ip.value(), *address_id)) : kNpos;
    if (slot == kNpos) {
        ++misses_;
        return std::nullopt;
    }
    Entry& entry = pool_[slots_[slot]];
    if (sim_.now() - entry.rec.last_used >= config_.idle_timeout) {
        ++misses_;
        // Erase, don't just miss: a lingering stale entry would donate its
        // old `created` timestamp to the next memorize() of the same key
        // (created != zero suppresses the reset), skewing flow-age stats.
        erase_entry(slots_[slot]);
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.stale_recalls").inc();
        return std::nullopt;
    }
    entry.rec.last_used = sim_.now();
    ++hits_;
    return materialize(entry.key, entry.rec);
}

const MemorizedFlow*
FlowMemory::peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const {
    const auto address_id = find_address(service);
    if (!address_id) return nullptr;
    const std::size_t slot = find_slot(pack_key(client_ip.value(), *address_id));
    if (slot == kNpos) return nullptr;
    const Entry& entry = pool_[slots_[slot]];
    peek_scratch_ = materialize(entry.key, entry.rec);
    return &peek_scratch_;
}

std::size_t FlowMemory::forget_service(std::string_view service_name) {
    const auto service = symbols_.find(service_name);
    if (!service || pool_.empty()) return 0;
    std::size_t removed = 0;
    std::size_t index = 0;
    while (index < pool_.size()) {
        if (pool_[index].rec.service == *service) {
            erase_entry(index); // swap-remove: re-examine the same index
            ++removed;
        } else {
            ++index;
        }
    }
    return removed;
}

std::size_t FlowMemory::flows_for_service(std::string_view service_name) const {
    const auto service = symbols_.find(service_name);
    if (!service) return 0;
    const auto it = service_counts_.find(*service);
    return it == service_counts_.end() ? 0 : it->second;
}

std::size_t FlowMemory::flows_for_service(std::string_view service_name,
                                          std::string_view cluster) const {
    const auto service = symbols_.find(service_name);
    const auto cluster_id = symbols_.find(cluster);
    if (!service || !cluster_id) return 0;
    const auto it = pair_counts_.find(pack_pair(*service, *cluster_id));
    return it == pair_counts_.end() ? 0 : it->second;
}

std::size_t FlowMemory::expire() {
    const sim::SimTime now = sim_.now();
    // (service, cluster) pairs that lost at least one flow this sweep, in
    // first-expiry order, deduplicated.
    std::vector<Key64> expired_pairs;
    std::unordered_map<Key64, bool> seen;
    std::size_t removed = 0;
    std::size_t index = 0;
    while (index < pool_.size()) {
        const FlowRec& rec = pool_[index].rec;
        if (now - rec.last_used >= config_.idle_timeout) {
            const Key64 pair = pack_pair(rec.service, rec.cluster);
            if (idle_cb_ && seen.emplace(pair, true).second) {
                expired_pairs.push_back(pair);
            }
            erase_entry(index); // swap-remove: re-examine the same index
            ++removed;
        } else {
            ++index;
        }
    }
    if (idle_cb_) {
        // Report (service, cluster) pairs whose *last* flow just expired.
        // The count must be per pair: a flow still active on cluster B must
        // not suppress the idle notification for the expired instance on
        // cluster A, or A's instance would never be torn down. The counter
        // makes this check O(1) per expired pair.
        for (const Key64 pair : expired_pairs) {
            if (pair_counts_.contains(pair)) continue; // still has live flows
            if (auto* m = sim_.metrics()) {
                m->counter("sdn.flow_memory.idle_notifications").inc();
            }
            idle_cb_(symbols_.name(static_cast<sim::SymbolId>(pair >> 32)),
                     symbols_.name(static_cast<sim::SymbolId>(pair)));
        }
    }
    if (removed != 0) {
        if (auto* m = sim_.metrics()) m->counter("sdn.flow_memory.expired").inc(removed);
    }
    return removed;
}

void FlowMemory::for_each(const std::function<void(const MemorizedFlow&)>& fn) const {
    for (const Entry& entry : pool_) {
        fn(materialize(entry.key, entry.rec));
    }
}

void FlowMemory::reserve(std::size_t flows) {
    pool_.reserve(flows);
    // Probe-array headroom so `flows` inserts stay under the load limit
    // without growing mid-fill.
    std::size_t capacity = kInitialCapacity;
    while (load_limit(capacity) <= flows) capacity *= 2;
    if (capacity > slots_.size()) grow(capacity);
}

} // namespace tedge::sdn
