#include "sdn/session_plane.hpp"

namespace tedge::sdn {

UeSession* SessionPlane::find(net::Ipv4 ip) {
    const auto it = by_ip_.find(ip.value());
    return it == by_ip_.end() ? nullptr : &it->second;
}

const UeSession& SessionPlane::attach(net::NodeId ue, net::Ipv4 ip,
                                      net::OvsSwitch& ingress) {
    UeSession* s = find(ip);
    if (s == nullptr) {
        UeSession session;
        session.ue = ue;
        session.ip = ip;
        session.ingress = ingress.node();
        session.ingress_switch = &ingress;
        session.epoch = 1;
        session.attached_at = sim_.now();
        session.explicit_attachment = true;
        ++stats_.attaches;
        auto [it, _] = by_ip_.emplace(ip.value(), std::move(session));
        ip_by_node_[ue.value] = ip.value();
        return it->second;
    }
    // An implicit session being claimed, or a re-attach. Bind the node
    // either way: implicit sessions have no node mapping yet.
    s->ue = ue;
    ip_by_node_[ue.value] = ip.value();
    if (s->ingress == ingress.node()) {
        // Same cell: upgrade to explicit (first claim counts as an attach),
        // refresh the switch pointer; no epoch bump, no callbacks.
        if (!s->explicit_attachment) {
            s->explicit_attachment = true;
            ++stats_.attaches;
        }
        s->ingress_switch = &ingress;
        return *s;
    }
    const net::NodeId old_ingress = s->ingress;
    s->ingress = ingress.node();
    s->ingress_switch = &ingress;
    s->attached_at = sim_.now();
    s->explicit_attachment = true;
    ++s->epoch;
    ++s->handovers;
    ++stats_.handovers;
    for (const auto& cb : callbacks_) cb(*s, old_ingress);
    return *s;
}

bool SessionPlane::detach(net::Ipv4 ip) {
    const auto it = by_ip_.find(ip.value());
    if (it == by_ip_.end()) return false;
    if (it->second.ue.valid()) ip_by_node_.erase(it->second.ue.value);
    by_ip_.erase(it);
    ++stats_.detaches;
    return true;
}

void SessionPlane::observe_packet(net::Ipv4 ip, net::NodeId ingress_node) {
    UeSession* s = find(ip);
    if (s == nullptr) {
        UeSession session;
        session.ip = ip;
        session.ingress = ingress_node;
        session.epoch = 1;
        session.attached_at = sim_.now();
        ++stats_.implicit_sessions;
        by_ip_.emplace(ip.value(), std::move(session));
        return;
    }
    if (s->ingress == ingress_node) return;
    if (s->explicit_attachment) {
        // A straggler from the old cell (buffered before the handover).
        // The explicit attachment is authoritative; count, don't follow.
        ++stats_.out_of_cell_packets;
        return;
    }
    // Implicit sessions follow the packets (legacy last-packet-wins).
    s->ingress = ingress_node;
    s->ingress_switch = nullptr;
    s->attached_at = sim_.now();
    ++s->epoch;
}

void SessionPlane::note_served_by(net::Ipv4 ip, const std::string& cluster) {
    UeSession* s = find(ip);
    if (s != nullptr && s->serving_cluster != cluster) s->serving_cluster = cluster;
}

const UeSession* SessionPlane::by_ip(net::Ipv4 ip) const {
    const auto it = by_ip_.find(ip.value());
    return it == by_ip_.end() ? nullptr : &it->second;
}

const UeSession* SessionPlane::by_node(net::NodeId ue) const {
    const auto it = ip_by_node_.find(ue.value);
    if (it == ip_by_node_.end()) return nullptr;
    const auto sit = by_ip_.find(it->second);
    return sit == by_ip_.end() ? nullptr : &sit->second;
}

std::optional<net::NodeId> SessionPlane::location(net::Ipv4 ip) const {
    const UeSession* s = by_ip(ip);
    if (s == nullptr) return std::nullopt;
    return s->ingress;
}

net::OvsSwitch* SessionPlane::current_ingress(net::NodeId client) {
    const UeSession* s = by_node(client);
    return s == nullptr ? nullptr : s->ingress_switch;
}

} // namespace tedge::sdn
