#include "sdn/scheduler.hpp"

#include <stdexcept>

namespace tedge::sdn {

namespace detail {
// Defined in sdn/schedulers/*.cpp. Called once on first registry access so
// the built-ins are present even when the library is linked statically (a
// plain static-initializer registration would be dead-stripped).
void register_proximity(SchedulerRegistry& registry);
void register_round_robin(SchedulerRegistry& registry);
void register_least_loaded(SchedulerRegistry& registry);
void register_hierarchical(SchedulerRegistry& registry);
void register_utilization_balancing(SchedulerRegistry& registry);
void register_deadline_slo(SchedulerRegistry& registry);
} // namespace detail

SchedulerRegistry& SchedulerRegistry::instance() {
    static SchedulerRegistry registry = [] {
        SchedulerRegistry r;
        detail::register_proximity(r);
        detail::register_round_robin(r);
        detail::register_least_loaded(r);
        detail::register_hierarchical(r);
        detail::register_utilization_balancing(r);
        detail::register_deadline_slo(r);
        return r;
    }();
    return registry;
}

void SchedulerRegistry::register_factory(std::string name, Factory factory) {
    factories_[std::move(name)] = std::move(factory);
}

std::unique_ptr<GlobalScheduler>
SchedulerRegistry::create(std::string_view name, const yamlite::Node& params) const {
    const auto it = factories_.find(name);
    if (it == factories_.end()) {
        throw std::invalid_argument("unknown scheduler: " + std::string(name));
    }
    return it->second(params);
}

std::vector<std::string> SchedulerRegistry::names() const {
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto& [name, factory] : factories_) out.push_back(name);
    return out;
}

bool SchedulerRegistry::contains(std::string_view name) const {
    return factories_.find(name) != factories_.end();
}

SchedulerRegistration::SchedulerRegistration(std::string name,
                                             SchedulerRegistry::Factory factory) {
    SchedulerRegistry::instance().register_factory(std::move(name),
                                                   std::move(factory));
}

} // namespace tedge::sdn
