// FlowMemory (paper §V): the controller memorizes every flow it installs.
//
// This lets the switch run with *low* idle timeouts (keeping its TCAM small)
// while the controller can still answer re-appearing flows instantly from
// memory. Memorized flows carry their own, longer idle timeout; expiry both
// drops stale entries and signals which edge services have gone idle so the
// controller may scale them down.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "simcore/simulation.hpp"

namespace tedge::sdn {

struct MemorizedFlow {
    net::Ipv4 client_ip;
    net::ServiceAddress service_address;   ///< the registered (cloud) address
    std::string service_name;
    net::NodeId instance_node;
    std::uint16_t instance_port = 0;
    std::string cluster;                   ///< cluster serving the flow
    sim::SimTime created;
    sim::SimTime last_used;
};

class FlowMemory {
public:
    using IdleServiceCallback =
        std::function<void(const std::string& service_name, const std::string& cluster)>;

    struct Config {
        sim::SimTime idle_timeout = sim::seconds(60);
        sim::SimTime scan_period = sim::seconds(5);
    };

    FlowMemory(sim::Simulation& sim, Config config);
    ~FlowMemory();

    /// Record (or refresh) a flow.
    void memorize(const MemorizedFlow& flow);

    /// Look up a live flow and touch its idle timer.
    [[nodiscard]] std::optional<MemorizedFlow>
    recall(net::Ipv4 client_ip, const net::ServiceAddress& service);

    /// Look up without touching (for inspection).
    [[nodiscard]] const MemorizedFlow*
    peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const;

    /// Drop all flows towards a service instance (e.g. after scale-down).
    std::size_t forget_service(const std::string& service_name);

    /// Number of live memorized flows.
    [[nodiscard]] std::size_t size() const { return flows_.size(); }

    /// Live flows currently referencing `service_name` (across all clusters).
    [[nodiscard]] std::size_t flows_for_service(const std::string& service_name) const;

    /// Live flows referencing `service_name` served by `cluster`. Idle
    /// detection is per (service, cluster): the same service may be active
    /// on one cluster while its instance on another has gone idle.
    [[nodiscard]] std::size_t flows_for_service(const std::string& service_name,
                                                const std::string& cluster) const;

    /// Fired when the last flow of a service expires -- the hook the
    /// controller uses to scale idle services down.
    void set_idle_service_callback(IdleServiceCallback cb) { idle_cb_ = std::move(cb); }

    /// Expire stale flows now (also runs periodically). Returns expired count.
    std::size_t expire();

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

private:
    using Key = std::pair<std::uint32_t, net::ServiceAddress>;

    sim::Simulation& sim_;
    Config config_;
    std::map<Key, MemorizedFlow> flows_;
    IdleServiceCallback idle_cb_;
    sim::Simulation::PeriodicHandle scan_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace tedge::sdn
