// FlowMemory (paper §V): the controller memorizes every flow it installs.
//
// This lets the switch run with *low* idle timeouts (keeping its TCAM small)
// while the controller can still answer re-appearing flows instantly from
// memory. Memorized flows carry their own, longer idle timeout; expiry both
// drops stale entries and signals which edge services have gone idle so the
// controller may scale them down.
//
// Scale path: flows are keyed by a packed 64-bit (client-ip,
// service-address-id) key; service and cluster names are interned through a
// sim::SymbolTable so per-flow state is 56 bytes of POD instead of two heap
// strings plus red-black-tree nodes. Storage is split: an open-addressed
// probe array (power-of-two, linear probing, tombstones) over a dense record
// pool, so the half-empty probe slots stay cheap and expiry/iteration walk
// packed memory. Probe metadata is chunked, one cache line per 8 slots: a
// byte tag (7 bits of key hash, or an empty/tombstone sentinel) is checked
// first, and the pool index sharing its line -- then the pool entry -- are
// dereferenced only on a tag match. An absent-key probe (the packet-in hot
// path: every new flow is a recall miss before its install) therefore
// touches ~one random cache line instead of chasing random 72-byte pool
// entries for key comparison, and an insert lands its tag and index on that
// same line; at a million flows that is the difference between a cache-line
// visit and several DRAM round trips per packet-in. Per-(service, cluster) and per-service live-flow counters are
// maintained on every insert/erase, making flows_for_service() and the idle
// check O(1) instead of an O(n) scan over all memorized flows.
//
// Expiry is batched into deadline buckets instead of a periodic full-pool
// scan. Time is quantized into scan_period-wide buckets; a flow whose idle
// deadline (last_used + idle_timeout) rounds up into bucket b is filed under
// b, and one daemon kernel event per *non-empty* bucket fires at b *
// scan_period — the same instant the old periodic scan would first have seen
// the flow as expired, so observable expiry timing is unchanged. Touching a
// flow does not re-file it (that would be a hot-path hash lookup): when its
// old bucket fires, a still-fresh flow is lazily re-filed under its current
// deadline. With this, a million idle flows cost one kernel event and one
// O(batch) sweep per occupied bucket rather than O(pool) work every
// scan_period tick.
// Hybrid fidelity (DESIGN §9): under Fidelity::kHybrid, established flows
// collapse into per-(service, cluster) *fluid cohorts*. A cohort has two
// tiers. Tracked fluid flows keep their pool record (identity, expiry
// filing, everything) and only carry a flag: promotion and demotion are O(1)
// flips, and recall() demotes automatically -- so a fluid flow that
// re-appears is indistinguishable from an exact one. Anonymous fluid flows
// (admit_fluid) have no per-flow record at all: a batch of n established
// flows is one cohort-counter bump plus one run-length drain entry in the
// deadline bucket its admission instant files under, interleaved with exact
// keys in filing order so idle notifications fire at the same instants and
// in the same order exact mode would produce. The live-flow counters behind
// flows_for_service() fuse all three populations (exact + tracked +
// anonymous), so the Dispatcher, autoscaler and idle checks read one number
// and never care which representation a flow is in. Cohort arrival-rate
// counters advance lazily on the sim::AggregateEpoch grid: no kernel events
// unless ticks are explicitly requested.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "sdn/fidelity.hpp"
#include "simcore/simulation.hpp"
#include "simcore/symbol_table.hpp"

namespace tedge::sim {
class AggregateEpoch;
}

namespace tedge::sdn {

/// The caller-facing view of one memorized flow. Materialized on demand from
/// the packed internal record; the strings are the interned spellings.
struct MemorizedFlow {
    net::Ipv4 client_ip;
    net::ServiceAddress service_address;   ///< the registered (cloud) address
    std::string service_name;
    net::NodeId instance_node;
    std::uint16_t instance_port = 0;
    std::string cluster;                   ///< cluster serving the flow
    sim::SimTime created;
    sim::SimTime last_used;
};

class FlowMemory {
public:
    using IdleServiceCallback =
        std::function<void(const std::string& service_name, const std::string& cluster)>;

    struct Config {
        sim::SimTime idle_timeout = sim::seconds(60);
        sim::SimTime scan_period = sim::seconds(5);
        /// kExact: every flow is an individually-evented record. kHybrid:
        /// established flows may collapse into fluid cohorts (see above).
        Fidelity fidelity = Fidelity::kExact;
        /// Epoch grid period for cohort rate accounting (hybrid only).
        sim::SimTime epoch_period = sim::milliseconds(100);
        /// Maintain a per-client key index so flows_of_client() /
        /// extract_client() are O(client's flows) instead of O(pool). Off by
        /// default: the index costs a hash update per insert/erase and only
        /// mobility scenarios (handover, cross-shard handoff) read it.
        bool track_clients = false;
    };

    FlowMemory(sim::Simulation& sim, Config config);
    ~FlowMemory();

    /// Record (or refresh) a flow. `established` marks a flow whose install
    /// decision was already settled (memory hit / ready redirect); under
    /// hybrid fidelity such flows are promoted into their fluid cohort at
    /// install time. Promotion changes no observable decision or timing --
    /// exact fidelity ignores the hint entirely.
    void memorize(const MemorizedFlow& flow, bool established = false);

    /// Look up a live flow and touch its idle timer.
    [[nodiscard]] std::optional<MemorizedFlow>
    recall(net::Ipv4 client_ip, const net::ServiceAddress& service);

    /// Warm the probe line for an upcoming recall()/memorize() of this flow.
    /// A recall at million-flow occupancy is one dependent random load --
    /// effectively a full DRAM round trip that nothing in a packet-in
    /// handler can overlap. A pipeline that knows packet k+1 while serving
    /// packet k calls this to start that load early, hiding the latency
    /// behind the current packet's work. Purely a hint: no observable state
    /// changes.
    void prefetch(net::Ipv4 client_ip, const net::ServiceAddress& service) const;

    /// Look up without touching (for inspection). The returned pointer is
    /// valid until the next FlowMemory call.
    [[nodiscard]] const MemorizedFlow*
    peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const;

    /// Drop all flows towards a service instance (e.g. after scale-down).
    /// Covers every representation: exact and tracked-fluid records are
    /// erased, anonymous cohort members are cancelled against their filed
    /// expiry drains.
    std::size_t forget_service(std::string_view service_name);

    // -------------------------------------------------- client-scoped state
    /// All live flows of one client (materialized copies). O(client's flows)
    /// with track_clients, O(pool) otherwise.
    [[nodiscard]] std::vector<MemorizedFlow> flows_of_client(net::Ipv4 client_ip) const;

    /// Remove and return all of a client's flows -- the donor half of a
    /// cross-shard handoff. Deliberately NO idle notifications: the flows
    /// are moving, not going idle; the adopting shard re-memorizes them and
    /// their idle clock restarts there.
    [[nodiscard]] std::vector<MemorizedFlow> extract_client(net::Ipv4 client_ip);

    /// Drop one (client, service) flow, e.g. after a migration cut-over
    /// re-homed it to a new instance. With `notify_if_idle`, fires the idle
    /// callback when this was the last flow of its (service, cluster) pair
    /// -- the old instance just lost its last user and may scale down.
    bool forget_flow(net::Ipv4 client_ip, const net::ServiceAddress& service,
                     bool notify_if_idle);

    // ------------------------------------------------ hybrid fluid cohorts
    /// Admit `count` established flows into the (service, cluster) fluid
    /// cohort as of now() -- equivalent to `count` memorize() calls of flows
    /// that are never individually recalled, at O(1) cost: cohort counters
    /// plus one run-length expiry drain. Requires hybrid fidelity.
    void admit_fluid(std::string_view service_name, std::string_view cluster,
                     net::NodeId instance_node, std::uint16_t instance_port,
                     std::uint64_t count);

    /// Promote a memorized flow into its cohort (O(1) flag flip). Returns
    /// false when the flow is unknown, already fluid, or fidelity is exact.
    bool promote(net::Ipv4 client_ip, const net::ServiceAddress& service);

    /// Demote a tracked-fluid flow back to exact representation (O(1)).
    /// recall() does this automatically on a hit. Returns false when the
    /// flow is unknown or already exact.
    bool demote(net::Ipv4 client_ip, const net::ServiceAddress& service);

    /// Live fluid flows (tracked + anonymous), total and per cohort.
    [[nodiscard]] std::uint64_t fluid_flows() const {
        return fluid_tracked_ + fluid_anonymous_;
    }
    [[nodiscard]] std::uint64_t fluid_flows(std::string_view service_name,
                                            std::string_view cluster) const;

    /// Cohort admission rate (flows/s), an EWMA over completed epochs that
    /// advances lazily on the AggregateEpoch grid: querying it at time t
    /// folds in every epoch boundary since the cohort was last touched
    /// without a single kernel event having fired.
    [[nodiscard]] double fluid_rate_per_s(std::string_view service_name,
                                          std::string_view cluster);

    /// The epoch grid daemon (null under exact fidelity).
    [[nodiscard]] sim::AggregateEpoch* epoch() { return epoch_.get(); }

    /// Number of live memorized flows, across all representations.
    [[nodiscard]] std::size_t size() const {
        return pool_.size() + static_cast<std::size_t>(fluid_anonymous_);
    }

    /// Live flows currently referencing `service_name` (across all
    /// clusters). O(1): answered from the maintained counter.
    [[nodiscard]] std::size_t flows_for_service(std::string_view service_name) const;

    /// Live flows referencing `service_name` served by `cluster`. Idle
    /// detection is per (service, cluster): the same service may be active
    /// on one cluster while its instance on another has gone idle. O(1).
    [[nodiscard]] std::size_t flows_for_service(std::string_view service_name,
                                                std::string_view cluster) const;

    /// Fired when the last flow of a service expires -- the hook the
    /// controller uses to scale idle services down.
    void set_idle_service_callback(IdleServiceCallback cb) { idle_cb_ = std::move(cb); }

    /// Expire stale flows now (also runs periodically). Returns expired count.
    std::size_t expire();

    /// Visit every live flow (materialized view). Order is unspecified but
    /// deterministic for a given operation history.
    void for_each(const std::function<void(const MemorizedFlow&)>& fn) const;

    /// Pre-size the table for `flows` entries (no-op if already larger).
    void reserve(std::size_t flows);

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

    /// The interning table behind service/cluster names (diagnostics).
    [[nodiscard]] const sim::SymbolTable& symbols() const { return symbols_; }

private:
    /// Packed per-flow record; client ip and service address live in the key.
    struct FlowRec {
        sim::SymbolId service = sim::kInvalidSymbol;
        sim::SymbolId cluster = sim::kInvalidSymbol;
        net::NodeId instance_node;
        std::uint16_t instance_port = 0;
        sim::SimTime created;
        sim::SimTime last_used;
        /// Expiry bucket this flow is currently filed under (0 = unfiled).
        /// Stale filings — the flow was touched, re-memorized or its key
        /// reused since — are detected by comparing against this field when
        /// the bucket fires.
        std::uint64_t expiry_bucket = 0;
        /// Tracked-fluid flag (hybrid only): the record is a cohort member.
        /// Representation only -- expiry filing and recall behave exactly as
        /// for a plain record, which is what makes promote/demote free of
        /// observable effects.
        bool fluid = false;
    };

    using Key64 = std::uint64_t;

    static Key64 pack_key(std::uint32_t client_ip, std::uint32_t address_id) {
        return (Key64{client_ip} << 32) | address_id;
    }
    static std::size_t hash_key(Key64 key) {
        // SplitMix64 finalizer: cheap, full-avalanche mix for the packed key.
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ULL;
        key ^= key >> 27;
        key *= 0x94d049bb133111ebULL;
        key ^= key >> 31;
        return static_cast<std::size_t>(key);
    }
    static Key64 pack_pair(sim::SymbolId service, sim::SymbolId cluster) {
        return (Key64{service} << 32) | cluster;
    }

    /// One live flow in the dense pool; `slot` back-references the probe
    /// array so swap-removal can redirect the moved entry's slot in O(1).
    struct Entry {
        Key64 key = 0;
        FlowRec rec;
        std::uint32_t slot = 0;
    };

    [[nodiscard]] std::uint32_t intern_address(const net::ServiceAddress& address);
    [[nodiscard]] std::optional<std::uint32_t>
    find_address(const net::ServiceAddress& address) const;

    /// Slot holding `key`, or the insertion slot if absent.
    [[nodiscard]] std::size_t probe(Key64 key) const;
    [[nodiscard]] std::size_t find_slot(Key64 key) const;  ///< npos if absent
    void grow(std::size_t min_capacity);
    std::size_t insert(Key64 key, const FlowRec& rec);  ///< returns pool index
    void erase_entry(std::size_t index);  ///< pool index; swap-removes
    void client_index_add(Key64 key);
    void client_index_remove(Key64 key);

    void bump_counters(const FlowRec& rec, std::int64_t delta);
    /// Fused-counter bulk update for anonymous cohort members.
    void bump_counters_by(sim::SymbolId service, sim::SymbolId cluster,
                          std::uint64_t count, bool add);
    [[nodiscard]] MemorizedFlow materialize(Key64 key, const FlowRec& rec) const;

    /// Quantized expiry bucket whose firing instant (bucket * scan_period)
    /// is the first tick at or after `deadline`.
    [[nodiscard]] std::uint64_t bucket_for(sim::SimTime deadline) const;
    /// File the flow under its current deadline's bucket, scheduling the
    /// bucket's kernel event if this is its first occupant.
    void file_expiry(Key64 key, FlowRec& rec);
    /// File a run of `count` anonymous cohort flows admitted now() under
    /// their deadline bucket (merged into the bucket's last item when it is
    /// a drain for the same cohort).
    void file_fluid_expiry(Key64 pair, std::uint64_t count);
    /// Expire/re-file everything filed under `bucket` (the bucket's event).
    void fire_bucket(std::uint64_t bucket);
    /// Shared tail of fire_bucket()/expire(): idle notifications + metrics.
    void finish_expiry(const std::vector<Key64>& expired_pairs, std::size_t removed);

    static constexpr std::size_t kNpos = ~std::size_t{0};
    /// Tag-array sentinels; key tags are 7-bit (0..127) and can't collide.
    static constexpr std::uint8_t kEmptyTag = 0xFF;
    static constexpr std::uint8_t kTombstoneTag = 0xFE;
    /// Cap on pool indices so the table-full check has a concrete bound.
    static constexpr std::uint32_t kMaxFlows = 0xFFFFFFFEu;
    /// Probe slots per chunk (one cache line).
    static constexpr std::size_t kChunkSlots = 8;

    /// One cache line of probe metadata: 8 classification tags and the 8
    /// matching pool indices. A probe step reads the tag and -- on a match,
    /// or to insert -- the index from the *same* line, so each step costs
    /// one random cache line instead of the two a split tag-array/index-array
    /// layout would touch.
    struct alignas(64) Chunk {
        std::array<std::uint8_t, kChunkSlots> tags;
        std::array<std::uint32_t, kChunkSlots> indices;
    };
    static_assert(sizeof(Chunk) == 64);

    /// All-empty chunk (fill value for a fresh probe array).
    static constexpr Chunk kEmptyChunk{{kEmptyTag, kEmptyTag, kEmptyTag,
                                        kEmptyTag, kEmptyTag, kEmptyTag,
                                        kEmptyTag, kEmptyTag},
                                       {}};

    /// Key tag stored in the byte array: hash bits *not* used for the probe
    /// position (position uses the low bits), so slot collisions and tag
    /// collisions are independent.
    static std::uint8_t tag_of(Key64 key) {
        return static_cast<std::uint8_t>((hash_key(key) >> 57) & 0x7F);
    }

    sim::Simulation& sim_;
    Config config_;

    /// Tag of probe slot `slot` (empty / tombstone / 7-bit key tag).
    [[nodiscard]] std::uint8_t& tag_at(std::size_t slot) {
        return chunks_[slot / kChunkSlots].tags[slot % kChunkSlots];
    }
    [[nodiscard]] std::uint8_t tag_at(std::size_t slot) const {
        return chunks_[slot / kChunkSlots].tags[slot % kChunkSlots];
    }
    /// Pool index of probe slot `slot`; meaningful only under a key tag.
    [[nodiscard]] std::uint32_t& index_at(std::size_t slot) {
        return chunks_[slot / kChunkSlots].indices[slot % kChunkSlots];
    }
    [[nodiscard]] std::uint32_t index_at(std::size_t slot) const {
        return chunks_[slot / kChunkSlots].indices[slot % kChunkSlots];
    }
    /// Probe-array capacity in slots (power of two).
    [[nodiscard]] std::size_t capacity() const {
        return chunks_.size() * kChunkSlots;
    }

    // Chunked probe metadata over a dense entry pool: chunks_ holds the
    // per-slot tags and pool indices (see Chunk), pool_ the packed records.
    std::vector<Chunk> chunks_;
    std::vector<Entry> pool_;
    std::size_t tombstones_ = 0;

    // One-entry miss cache: the packet-in hot path is recall() miss followed
    // immediately by memorize() of the same key, so recall() remembers the
    // insertion slot its probe already found and insert() reuses it instead
    // of walking the chain again. Invalidated by every probe-array mutation.
    Key64 pending_key_ = 0;
    std::size_t pending_slot_ = kNpos;

    // Identifier interning: names via the symbol table, service addresses
    // via a dense side index so they pack into the 64-bit key.
    sim::SymbolTable symbols_;
    std::unordered_map<net::ServiceAddress, std::uint32_t> address_ids_;
    std::vector<net::ServiceAddress> addresses_;

    // Live-flow counters maintained on every insert/erase; the O(1) answers
    // behind flows_for_service() and expire()'s idle detection.
    std::unordered_map<Key64, std::size_t> pair_counts_;
    std::unordered_map<sim::SymbolId, std::size_t> service_counts_;

    /// Per-client live keys (track_clients only): client ip value -> keys.
    /// Entries are swap-removed; the map drops a client when its last flow
    /// goes.
    std::unordered_map<std::uint32_t, std::vector<Key64>> client_keys_;

    /// One filed expiry: an exact flow key (count == 0), or a run of `count`
    /// anonymous cohort flows keyed by their (service, cluster) pair. Runs
    /// sit in the same vector as keys, in filing order, so a bucket's sweep
    /// emits idle notifications in the order exact mode would have.
    struct ExpiryItem {
        Key64 key = 0;
        std::uint64_t count = 0;
    };

    /// Flows awaiting expiry, grouped by quantized deadline. One daemon
    /// kernel event per non-empty bucket (cancelled on destruction).
    struct ExpiryBucket {
        std::vector<ExpiryItem> items;
        sim::EventHandle event;
    };
    std::unordered_map<std::uint64_t, ExpiryBucket> expiry_buckets_;

    /// The bucket's node (cached; created -- and its kernel event scheduled
    /// -- on first occupancy).
    [[nodiscard]] ExpiryBucket& bucket_node(std::uint64_t bucket);

    // One-entry bucket cache: consecutive inserts file under the same
    // deadline bucket for a whole scan period, so keep the last bucket's
    // node address (stable -- unordered_map nodes never move) and skip the
    // map lookup. Cleared when that bucket fires.
    std::uint64_t cached_bucket_ = 0;
    ExpiryBucket* cached_bucket_node_ = nullptr;

    // ------------------------------------------------------- fluid cohorts
    /// Per-(service, cluster) fluid aggregate (hybrid only). Live membership
    /// is two counters; arrival-rate accounting is lazy: `epoch_arrivals`
    /// accumulates in epoch `epoch_k`, and the first touch in a *later*
    /// epoch folds the completed epochs into the EWMA in closed form.
    struct FluidCohort {
        sim::SymbolId service = sim::kInvalidSymbol;
        sim::SymbolId cluster = sim::kInvalidSymbol;
        net::NodeId instance_node;        ///< latest admitted endpoint
        std::uint16_t instance_port = 0;
        std::uint64_t tracked_live = 0;   ///< promoted pool records
        std::uint64_t anonymous_live = 0; ///< batch-admitted, no identity
        std::uint64_t admitted_total = 0;
        /// Anonymous members removed out-of-band (forget_service) whose
        /// filed expiry drains are now stale; drains cancel against this
        /// in filing (FIFO) order before removing live members.
        std::uint64_t anonymous_forgotten = 0;
        std::int64_t epoch_k = -1;        ///< grid index of epoch_arrivals
        std::uint64_t epoch_arrivals = 0;
        double rate_per_s = 0.0;          ///< EWMA over completed epochs
    };

    [[nodiscard]] FluidCohort& cohort_for(sim::SymbolId service,
                                          sim::SymbolId cluster);
    /// Fold completed epochs since the cohort's last touch into its EWMA.
    void advance_cohort(FluidCohort& cohort);
    void promote_entry(Entry& entry);  ///< requires !rec.fluid and hybrid
    void demote_entry(Entry& entry);   ///< requires rec.fluid
    /// Expire up to `count` anonymous members of cohort `pair` (one filed
    /// drain run), feeding the shared idle-notification dedup.
    void drain_fluid(Key64 pair, std::uint64_t count,
                     std::vector<Key64>& expired_pairs,
                     std::unordered_map<Key64, bool>& seen,
                     std::size_t& removed);

    std::unordered_map<Key64, FluidCohort> cohorts_;
    std::uint64_t fluid_tracked_ = 0;
    std::uint64_t fluid_anonymous_ = 0;
    /// Epoch grid daemon; non-null exactly under hybrid fidelity.
    std::unique_ptr<sim::AggregateEpoch> epoch_;

    IdleServiceCallback idle_cb_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    mutable MemorizedFlow peek_scratch_;
};

} // namespace tedge::sdn
