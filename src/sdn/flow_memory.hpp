// FlowMemory (paper §V): the controller memorizes every flow it installs.
//
// This lets the switch run with *low* idle timeouts (keeping its TCAM small)
// while the controller can still answer re-appearing flows instantly from
// memory. Memorized flows carry their own, longer idle timeout; expiry both
// drops stale entries and signals which edge services have gone idle so the
// controller may scale them down.
//
// Scale path: flows are keyed by a packed 64-bit (client-ip,
// service-address-id) key; service and cluster names are interned through a
// sim::SymbolTable so per-flow state is 48 bytes of POD instead of two heap
// strings plus red-black-tree nodes. Storage is split: an open-addressed
// probe array of 4-byte pool indices (power-of-two, linear probing,
// tombstones) over a dense record pool, so the half-empty probe slots cost
// 4 bytes each instead of a full record, and expiry/iteration walk packed
// memory. Per-(service, cluster) and per-service live-flow counters are
// maintained on every insert/erase, making flows_for_service() and the idle
// check O(1) instead of an O(n) scan over all memorized flows.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "simcore/simulation.hpp"
#include "simcore/symbol_table.hpp"

namespace tedge::sdn {

/// The caller-facing view of one memorized flow. Materialized on demand from
/// the packed internal record; the strings are the interned spellings.
struct MemorizedFlow {
    net::Ipv4 client_ip;
    net::ServiceAddress service_address;   ///< the registered (cloud) address
    std::string service_name;
    net::NodeId instance_node;
    std::uint16_t instance_port = 0;
    std::string cluster;                   ///< cluster serving the flow
    sim::SimTime created;
    sim::SimTime last_used;
};

class FlowMemory {
public:
    using IdleServiceCallback =
        std::function<void(const std::string& service_name, const std::string& cluster)>;

    struct Config {
        sim::SimTime idle_timeout = sim::seconds(60);
        sim::SimTime scan_period = sim::seconds(5);
    };

    FlowMemory(sim::Simulation& sim, Config config);
    ~FlowMemory();

    /// Record (or refresh) a flow.
    void memorize(const MemorizedFlow& flow);

    /// Look up a live flow and touch its idle timer.
    [[nodiscard]] std::optional<MemorizedFlow>
    recall(net::Ipv4 client_ip, const net::ServiceAddress& service);

    /// Look up without touching (for inspection). The returned pointer is
    /// valid until the next FlowMemory call.
    [[nodiscard]] const MemorizedFlow*
    peek(net::Ipv4 client_ip, const net::ServiceAddress& service) const;

    /// Drop all flows towards a service instance (e.g. after scale-down).
    std::size_t forget_service(std::string_view service_name);

    /// Number of live memorized flows.
    [[nodiscard]] std::size_t size() const { return pool_.size(); }

    /// Live flows currently referencing `service_name` (across all
    /// clusters). O(1): answered from the maintained counter.
    [[nodiscard]] std::size_t flows_for_service(std::string_view service_name) const;

    /// Live flows referencing `service_name` served by `cluster`. Idle
    /// detection is per (service, cluster): the same service may be active
    /// on one cluster while its instance on another has gone idle. O(1).
    [[nodiscard]] std::size_t flows_for_service(std::string_view service_name,
                                                std::string_view cluster) const;

    /// Fired when the last flow of a service expires -- the hook the
    /// controller uses to scale idle services down.
    void set_idle_service_callback(IdleServiceCallback cb) { idle_cb_ = std::move(cb); }

    /// Expire stale flows now (also runs periodically). Returns expired count.
    std::size_t expire();

    /// Visit every live flow (materialized view). Order is unspecified but
    /// deterministic for a given operation history.
    void for_each(const std::function<void(const MemorizedFlow&)>& fn) const;

    /// Pre-size the table for `flows` entries (no-op if already larger).
    void reserve(std::size_t flows);

    [[nodiscard]] std::uint64_t hits() const { return hits_; }
    [[nodiscard]] std::uint64_t misses() const { return misses_; }

    /// The interning table behind service/cluster names (diagnostics).
    [[nodiscard]] const sim::SymbolTable& symbols() const { return symbols_; }

private:
    /// Packed per-flow record; client ip and service address live in the key.
    struct FlowRec {
        sim::SymbolId service = sim::kInvalidSymbol;
        sim::SymbolId cluster = sim::kInvalidSymbol;
        net::NodeId instance_node;
        std::uint16_t instance_port = 0;
        sim::SimTime created;
        sim::SimTime last_used;
    };

    using Key64 = std::uint64_t;

    static Key64 pack_key(std::uint32_t client_ip, std::uint32_t address_id) {
        return (Key64{client_ip} << 32) | address_id;
    }
    static std::size_t hash_key(Key64 key) {
        // SplitMix64 finalizer: cheap, full-avalanche mix for the packed key.
        key ^= key >> 30;
        key *= 0xbf58476d1ce4e5b9ULL;
        key ^= key >> 27;
        key *= 0x94d049bb133111ebULL;
        key ^= key >> 31;
        return static_cast<std::size_t>(key);
    }
    static Key64 pack_pair(sim::SymbolId service, sim::SymbolId cluster) {
        return (Key64{service} << 32) | cluster;
    }

    /// One live flow in the dense pool; `slot` back-references the probe
    /// array so swap-removal can redirect the moved entry's slot in O(1).
    struct Entry {
        Key64 key = 0;
        FlowRec rec;
        std::uint32_t slot = 0;
    };

    [[nodiscard]] std::uint32_t intern_address(const net::ServiceAddress& address);
    [[nodiscard]] std::optional<std::uint32_t>
    find_address(const net::ServiceAddress& address) const;

    /// Slot holding `key`, or the insertion slot if absent.
    [[nodiscard]] std::size_t probe(Key64 key) const;
    [[nodiscard]] std::size_t find_slot(Key64 key) const;  ///< npos if absent
    void grow(std::size_t min_capacity);
    void insert(Key64 key, const FlowRec& rec);
    void erase_entry(std::size_t index);  ///< pool index; swap-removes

    void bump_counters(const FlowRec& rec, std::int64_t delta);
    [[nodiscard]] MemorizedFlow materialize(Key64 key, const FlowRec& rec) const;

    static constexpr std::size_t kNpos = ~std::size_t{0};
    static constexpr std::uint32_t kEmptySlot = 0xFFFFFFFFu;
    static constexpr std::uint32_t kTombstoneSlot = 0xFFFFFFFEu;

    sim::Simulation& sim_;
    Config config_;

    // Split storage: probe array of pool indices over a dense entry pool.
    std::vector<std::uint32_t> slots_;
    std::vector<Entry> pool_;
    std::size_t tombstones_ = 0;

    // Identifier interning: names via the symbol table, service addresses
    // via a dense side index so they pack into the 64-bit key.
    sim::SymbolTable symbols_;
    std::unordered_map<net::ServiceAddress, std::uint32_t> address_ids_;
    std::vector<net::ServiceAddress> addresses_;

    // Live-flow counters maintained on every insert/erase; the O(1) answers
    // behind flows_for_service() and expire()'s idle detection.
    std::unordered_map<Key64, std::size_t> pair_counts_;
    std::unordered_map<sim::SymbolId, std::size_t> service_counts_;

    IdleServiceCallback idle_cb_;
    sim::Simulation::PeriodicHandle scan_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    mutable MemorizedFlow peek_scratch_;
};

} // namespace tedge::sdn
