// Automatic annotation of service definition files (paper §V).
//
// Developers write a plain Kubernetes Deployment YAML where only the image
// name is mandatory. The Annotator then:
//  - assigns a unique worldwide service name,
//  - adds the matchLabels Kubernetes requires plus an `edge.service` label
//    so edge services can be addressed and queried distinctly,
//  - sets replicas to 0 ("scale to zero"),
//  - sets schedulerName when a Local Scheduler is configured, and
//  - generates the Kubernetes Service definition (exposed port, target
//    port, TCP) unless the developer already included one.
// The same annotated definition drives both Docker and Kubernetes clusters.
#pragma once

#include <functional>
#include <string>

#include "container/app_profile.hpp"
#include "container/image.hpp"
#include "net/address.hpp"
#include "orchestrator/cluster.hpp"
#include "yamlite/value.hpp"

namespace tedge::sdn {

/// Resolves the behavioural profile for an image (the service catalog).
using AppProfileResolver =
    std::function<const container::AppProfile*(const container::ImageRef&)>;

struct AnnotatorConfig {
    /// Local Scheduler to set as schedulerName ("" = cluster default).
    std::string local_scheduler;
    /// Prefix for generated unique worldwide names.
    std::string name_prefix = "edge";
};

/// The annotation result: machine-usable spec plus the annotated documents.
struct AnnotatedService {
    orchestrator::ServiceSpec spec;
    yamlite::Node deployment;
    yamlite::Node service;

    /// Both documents as a multi-document YAML stream.
    [[nodiscard]] std::string yaml() const;
};

class Annotator {
public:
    explicit Annotator(AppProfileResolver resolver, AnnotatorConfig config = {});

    /// Annotate a service definition registered under `address`.
    /// Throws std::invalid_argument / yamlite::ParseError on malformed input.
    [[nodiscard]] AnnotatedService annotate(const std::string& yaml_text,
                                            const net::ServiceAddress& address) const;

    /// The unique worldwide name assigned to a service at this address.
    [[nodiscard]] std::string unique_name(const net::ServiceAddress& address) const;

private:
    AppProfileResolver resolver_;
    AnnotatorConfig config_;
};

} // namespace tedge::sdn
