// Calibration constants for the simulated C3 testbed.
//
// Every constant is motivated by a statement in the paper or a cited
// external source; absolute values are tuned so the *shapes* of the paper's
// results hold (Docker scale-up < 1 s, Kubernetes ~= 3 s, Create adds
// ~100 ms, pull ordered by size/layers, private registry 1.5-2 s faster,
// ResNet wait-ready > 1/4 of total).
#pragma once

#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "orchestrator/docker_cluster.hpp"
#include "orchestrator/k8s/k8s_cluster.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace tedge::testbed::calibration {

// ---------------------------------------------------------------- network
// C3 (paper §VI): clients are Raspberry Pis on 1 Gbps; the EGS has 10 Gbps;
// one layer-3 switch connects everything. The overlay adds some latency.
inline constexpr sim::SimTime kClientLinkLatency = sim::microseconds(110);
inline constexpr sim::SimTime kEgsLinkLatency = sim::microseconds(120);
inline constexpr sim::SimTime kControllerLinkLatency = sim::microseconds(80);
inline constexpr sim::SimTime kCloudLatency = sim::milliseconds(18);
inline constexpr std::int64_t kClientGbps = 1;
inline constexpr std::int64_t kEgsGbps = 10;

// ------------------------------------------------------------- registries
// Fig. 13: pulls from Docker Hub / Google Container Registry vs a private
// registry in the same network (1.5-2 s faster per image).
inline container::RegistryProfile docker_hub() {
    container::RegistryProfile p;
    p.host = "docker.io";
    p.rtt = sim::milliseconds(35);
    p.bandwidth = sim::mbit_per_sec(400);
    p.manifest_overhead = sim::milliseconds(320);  // auth token + manifest
    p.per_layer_overhead = sim::milliseconds(130);
    return p;
}

inline container::RegistryProfile gcr() {
    container::RegistryProfile p;
    p.host = "gcr.io";
    p.rtt = sim::milliseconds(40);
    p.bandwidth = sim::mbit_per_sec(380);
    p.manifest_overhead = sim::milliseconds(340);
    p.per_layer_overhead = sim::milliseconds(140);
    return p;
}

inline container::RegistryProfile private_registry() {
    container::RegistryProfile p;
    p.host = "registry.local";
    p.rtt = sim::milliseconds(1);
    p.bandwidth = sim::mbit_per_sec(900);  // same-network 1 Gbps port
    p.manifest_overhead = sim::milliseconds(25);
    p.per_layer_overhead = sim::milliseconds(15);
    return p;
}

// --------------------------------------------------------------- runtime
// Container start cost is dominated by network-namespace setup (~90 % of
// the startup time; Mohan et al. [23] as cited in the paper's §III).
// Total Docker scale-up lands at ~0.4-0.5 s, matching fig. 11's < 1 s.
inline container::RuntimeCostModel runtime_costs() {
    container::RuntimeCostModel m;
    m.create_rootfs = sim::milliseconds(80);   // fig. 12: Create adds ~100 ms
    m.create_per_volume = sim::milliseconds(6);
    m.ns_setup_median = sim::milliseconds(300);
    m.ns_setup_sigma = 0.08;
    m.runtime_exec = sim::milliseconds(40);
    m.stop_time = sim::milliseconds(60);
    m.remove_time = sim::milliseconds(40);
    return m;
}

inline container::PullerConfig puller_config() {
    container::PullerConfig c;
    c.max_parallel_layers = 3;                         // docker default
    c.extract_rate = sim::DataRate{150LL * 8 * 1024 * 1024};  // NVMe-class EGS
    c.per_layer_extract_overhead = sim::milliseconds(25);
    c.local_hit_latency = sim::milliseconds(5);
    return c;
}

// ----------------------------------------------------------------- docker
inline orchestrator::DockerClusterConfig docker_config() {
    orchestrator::DockerClusterConfig c;
    c.api_latency = sim::milliseconds(15);  // Python docker client + dockerd
    return c;
}

// ------------------------------------------------------------------- k8s
// The ~3 s Kubernetes scale-up (fig. 11) emerges from the control-loop
// chain; the pod sandbox (pause container + CNI) dominates.
inline orchestrator::k8s::K8sClusterConfig k8s_config() {
    orchestrator::k8s::K8sClusterConfig c;
    c.api.request_latency = sim::milliseconds(9);
    c.api.watch_latency = sim::milliseconds(28);
    c.controllers.deployment_sync = sim::milliseconds(40);
    c.controllers.replicaset_sync = sim::milliseconds(40);
    c.controllers.endpoints_sync = sim::milliseconds(45);
    c.scheduler.scheduling_latency = sim::milliseconds(70);
    c.kubelet.sync_latency = sim::milliseconds(90);
    c.kubelet.sandbox_median = sim::milliseconds(1850);
    c.kubelet.sandbox_sigma = 0.10;
    c.kubelet.status_update = sim::milliseconds(12);
    c.kubelet.teardown_grace = sim::milliseconds(120);
    c.kubeproxy_program = sim::milliseconds(180);
    c.proxy_poll = sim::milliseconds(20);
    c.runtime_costs = runtime_costs();
    c.puller = puller_config();
    return c;
}

// --------------------------------------------------------------- prober
// The controller "continuously tests if the respective port is open".
inline constexpr sim::SimTime kProbeInterval = sim::milliseconds(25);

} // namespace tedge::testbed::calibration
