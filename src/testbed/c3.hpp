// The Carinthian Computing Continuum (C3) testbed as used in the paper's
// evaluation (fig. 8): the SDN controller, the virtual OVS switch, the
// Kubernetes cluster, and Docker all run on the Edge Gateway Server (EGS,
// 12 cores, 10 Gbps); the clients run on 20 Raspberry Pis (1 Gbps). A cloud
// node and the three registries (Docker Hub, GCR, private) complete the
// picture. Optionally a second, farther edge cluster models the
// without-waiting scenario (fig. 3).
#pragma once

#include <memory>
#include <vector>

#include "core/edge_platform.hpp"
#include "testbed/services.hpp"

namespace tedge::testbed {

struct C3Options {
    std::uint64_t seed = 42;
    std::size_t num_clients = 20;
    bool with_docker = true;
    bool with_k8s = true;
    bool with_cloud = true;
    /// Second edge cluster behind an extra 4 ms of latency (fig. 3's
    /// "running service instance in an edge further away").
    bool with_far_edge = false;
    /// Route all pulls through the private in-network registry.
    bool use_private_registry_mirror = false;
    /// Extra gNB cells beyond the primary (mobility scenarios): cell k is a
    /// secondary ingress switch behind k x gnb_backbone_latency of backbone,
    /// a simple linear corridor. 0 = classic single-cell C3.
    std::size_t extra_gnbs = 0;
    sim::SimTime gnb_backbone_latency = sim::milliseconds(2);
    sdn::ControllerConfig controller;
    /// Host the testbed on an external kernel (a sim::Domain's simulation
    /// inside a ShardedSimulation) instead of letting the platform own one.
    /// Must outlive the testbed when set.
    sim::Simulation* host_sim = nullptr;
};

struct C3Testbed {
    core::EdgePlatform platform;
    std::vector<net::NodeId> clients;        ///< the 20 Raspberry Pis
    net::NodeId egs_docker;                  ///< EGS: Docker side
    net::NodeId egs_k8s;                     ///< EGS: Kubernetes side
    net::NodeId controller_host;             ///< EGS: controller process
    net::NodeId far_edge_host;               ///< optional far edge
    container::Registry* docker_hub = nullptr;
    container::Registry* gcr = nullptr;
    container::Registry* private_registry = nullptr;
    orchestrator::Cluster* docker = nullptr;
    orchestrator::Cluster* k8s = nullptr;
    orchestrator::Cluster* far_edge = nullptr;
    /// Secondary cells (extra_gnbs of them), nearest first. The primary
    /// ingress is platform.ingress(), not listed here.
    std::vector<net::OvsSwitch*> gnbs;

    explicit C3Testbed(core::EdgePlatformConfig config) : platform(std::move(config)) {}
    C3Testbed(sim::Simulation& host_sim, core::EdgePlatformConfig config)
        : platform(host_sim, std::move(config)) {}

    /// Register all Table I services with the platform.
    void register_table1_services();

    /// Register one service under an arbitrary address (many-services runs).
    void register_service_as(const TestService& service,
                             const net::ServiceAddress& address);
};

/// Build the testbed; the controller is started and attached to the switch.
[[nodiscard]] std::unique_ptr<C3Testbed> build_c3(const C3Options& options = {});

} // namespace tedge::testbed
