#include "testbed/services.hpp"

#include <stdexcept>

namespace tedge::testbed {
namespace {

// Image sizes and layer counts from Table I.
container::Image asm_image() {
    container::Image image;
    image.ref = *container::ImageRef::parse("josefhammer/web-asm:amd64");
    image.layers = container::make_layers("web-asm", sim::kib(6.18), 1);
    return image;
}

container::Image nginx_image() {
    container::Image image;
    image.ref = *container::ImageRef::parse("nginx:1.23.2");
    image.layers = container::make_layers("nginx-1.23.2", sim::mib(135), 6);
    return image;
}

container::Image resnet_image() {
    container::Image image;
    image.ref = *container::ImageRef::parse("gcr.io/tensorflow-serving/resnet:latest");
    image.layers = container::make_layers("tf-serving-resnet", sim::mib(308), 9);
    return image;
}

// Nginx+Py totals 181 MiB / 7 layers = nginx (135/6) + the Python writer
// (46 MiB / 1 layer). The nginx layers are the *same* blobs, so pulling
// Nginx+Py after Nginx only fetches the Python layer (layer sharing).
container::Image envwriter_image() {
    container::Image image;
    image.ref = *container::ImageRef::parse("josefhammer/env-writer-py:latest");
    image.layers = container::make_layers("env-writer-py", sim::mib(46), 1);
    return image;
}

std::vector<TestService> build_catalog() {
    std::vector<TestService> catalog;

    {
        TestService s;
        s.key = "asm";
        s.display_name = "Asm";
        s.address = {net::Ipv4{203, 0, 113, 10}, 80};
        s.request_size = 120;
        s.http_method = "GET";
        s.images = {asm_image()};
        s.yaml = R"(# asmttpd -- web server written in amd64 assembly
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web-asm
          image: josefhammer/web-asm:amd64
          ports:
            - containerPort: 80
)";
        catalog.push_back(std::move(s));
    }
    {
        TestService s;
        s.key = "nginx";
        s.display_name = "Nginx";
        s.address = {net::Ipv4{203, 0, 113, 11}, 80};
        s.request_size = 120;
        s.http_method = "GET";
        s.images = {nginx_image()};
        s.yaml = R"(kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
)";
        catalog.push_back(std::move(s));
    }
    {
        TestService s;
        s.key = "resnet";
        s.display_name = "ResNet";
        s.address = {net::Ipv4{203, 0, 113, 12}, 8501};
        s.request_size = sim::kib(83);  // the cat picture (83 KiB payload)
        s.http_method = "POST";
        s.images = {resnet_image()};
        s.yaml = R"(kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: resnet
          image: gcr.io/tensorflow-serving/resnet:latest
          ports:
            - containerPort: 8501
)";
        catalog.push_back(std::move(s));
    }
    {
        TestService s;
        s.key = "nginx_py";
        s.display_name = "Nginx+Py";
        s.address = {net::Ipv4{203, 0, 113, 13}, 80};
        s.request_size = 120;
        s.http_method = "GET";
        s.images = {nginx_image(), envwriter_image()};
        s.yaml = R"(kind: Deployment
spec:
  template:
    spec:
      volumes:
        - name: shared-html
          hostPath:
            path: /srv/edge/html
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
          volumeMounts:
            - name: shared-html
              mountPath: /usr/share/nginx/html
        - name: env-writer
          image: josefhammer/env-writer-py:latest
          env:
            - name: WRITE_INTERVAL
              value: "1"
          volumeMounts:
            - name: shared-html
              mountPath: /out
)";
        catalog.push_back(std::move(s));
    }
    return catalog;
}

} // namespace

const std::vector<TestService>& table1_services() {
    static const std::vector<TestService> catalog = build_catalog();
    return catalog;
}

const TestService& service_by_key(const std::string& key) {
    for (const auto& s : table1_services()) {
        if (s.key == key) return s;
    }
    throw std::invalid_argument("unknown test service: " + key);
}

void install_services(core::EdgePlatform& platform, container::Registry& hub,
                      container::Registry& gcr, container::Registry* mirror) {
    // --- behavioural profiles (startup / request handling) -------------
    {
        // asmttpd: "negligible launch time" -- measures pure container
        // overhead. Serves a short plain-text file.
        container::AppProfile p;
        p.name = "web-asm";
        p.init_median = sim::milliseconds(3);
        p.init_sigma = 0.2;
        p.service_median = sim::microseconds(120);
        p.service_sigma = 0.2;
        p.response_size = 256;
        p.concurrency = 8;
        p.port = 80;
        platform.add_app_profile("josefhammer/web-asm:amd64", p);
    }
    {
        // nginx: config parse + workers before listening.
        container::AppProfile p;
        p.name = "nginx";
        p.init_median = sim::milliseconds(45);
        p.init_sigma = 0.15;
        p.service_median = sim::microseconds(180);
        p.service_sigma = 0.2;
        p.response_size = 512;
        p.concurrency = 64;
        p.port = 80;
        platform.add_app_profile("nginx:1.23.2", p);
    }
    {
        // TensorFlow Serving with the built-in ResNet50: loading the model
        // takes time (paper: "we expect a higher startup time"), and
        // inference dominates the per-request latency (fig. 16).
        container::AppProfile p;
        p.name = "tf-serving-resnet";
        p.init_median = sim::milliseconds(1600);
        p.init_sigma = 0.30;
        p.service_median = sim::milliseconds(140);
        p.service_sigma = 0.25;
        p.response_size = sim::kib(2);
        p.concurrency = 2;
        p.port = 8501;
        platform.add_app_profile("gcr.io/tensorflow-serving/resnet:latest", p);
    }
    {
        // Python env-writer: interpreter startup, then writes index.html
        // once per second; no port of its own.
        container::AppProfile p;
        p.name = "env-writer-py";
        p.init_median = sim::milliseconds(260);
        p.init_sigma = 0.18;
        p.service_median = sim::milliseconds(1);
        p.service_sigma = 0.2;
        p.response_size = 0;
        p.concurrency = 1;
        p.port = 0;
        platform.add_app_profile("josefhammer/env-writer-py:latest", p);
    }

    // --- publish images -------------------------------------------------
    for (const auto& service : table1_services()) {
        for (const auto& image : service.images) {
            if (image.ref.registry == "gcr.io") {
                gcr.put(image);
            } else {
                hub.put(image);
            }
            if (mirror != nullptr) mirror->put(image);
        }
    }
}

} // namespace tedge::testbed
