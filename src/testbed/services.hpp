// The four edge services of the paper's Table I:
//
//   Asm       asmttpd web server        6.18 KiB / 1 layer   1 container  GET
//   Nginx     nginx:1.23.2              135 MiB  / 6 layers  1 container  GET
//   ResNet    TF Serving + ResNet50     308 MiB  / 9 layers  1 container  POST
//   Nginx+Py  nginx + env-writer-py     181 MiB  / 7 layers  2 containers GET
//
// Each entry carries the registered cloud address, the developer-written
// service definition YAML, the request payload, and the image content for
// the registries; install() wires profiles and images into a platform.
#pragma once

#include <string>
#include <vector>

#include "container/image.hpp"
#include "container/registry.hpp"
#include "core/edge_platform.hpp"
#include "net/address.hpp"

namespace tedge::testbed {

struct TestService {
    std::string key;               ///< "asm", "nginx", "resnet", "nginx_py"
    std::string display_name;      ///< Table I name
    net::ServiceAddress address;   ///< registered cloud address
    std::string yaml;              ///< developer-written definition
    sim::Bytes request_size;       ///< GET ~ 100 B; ResNet POST = 83 KiB
    std::string http_method;
    std::vector<container::Image> images;  ///< content served by registries
};

/// The full Table I catalog.
[[nodiscard]] const std::vector<TestService>& table1_services();

[[nodiscard]] const TestService& service_by_key(const std::string& key);

/// Register the catalog's app profiles with a platform and publish its
/// images into the given registries (hub also serves the docker.io images;
/// gcr serves the ResNet image; the mirror, if non-null, serves everything).
void install_services(core::EdgePlatform& platform, container::Registry& hub,
                      container::Registry& gcr,
                      container::Registry* mirror = nullptr);

} // namespace tedge::testbed
