#include "testbed/c3.hpp"

#include <stdexcept>

#include "testbed/calibration.hpp"

namespace tedge::testbed {

void C3Testbed::register_table1_services() {
    for (const auto& service : table1_services()) {
        platform.register_service(service.address, service.yaml);
    }
}

void C3Testbed::register_service_as(const TestService& service,
                                    const net::ServiceAddress& address) {
    platform.register_service(address, service.yaml);
}

std::unique_ptr<C3Testbed> build_c3(const C3Options& options) {
    namespace cal = calibration;

    core::EdgePlatformConfig platform_config;
    platform_config.seed = options.seed;
    platform_config.prober.interval = cal::kProbeInterval;

    auto testbed = options.host_sim != nullptr
                       ? std::make_unique<C3Testbed>(*options.host_sim, platform_config)
                       : std::make_unique<C3Testbed>(platform_config);
    auto& p = testbed->platform;

    // --- hosts -----------------------------------------------------------
    // The EGS runs everything; we give the Docker side, the K8s side, and
    // the controller process their own host nodes joined by near-zero
    // latency links (same physical box, distinct port spaces).
    testbed->egs_docker = p.add_edge_host("egs-docker", net::Ipv4{10, 0, 0, 2}, 12,
                                          cal::kEgsLinkLatency,
                                          sim::gbit_per_sec(cal::kEgsGbps));
    testbed->egs_k8s = p.add_edge_host("egs-k8s", net::Ipv4{10, 0, 0, 3}, 12,
                                       cal::kEgsLinkLatency,
                                       sim::gbit_per_sec(cal::kEgsGbps));
    testbed->controller_host = p.add_edge_host("egs-ctl", net::Ipv4{10, 0, 0, 4}, 12,
                                               cal::kControllerLinkLatency,
                                               sim::gbit_per_sec(cal::kEgsGbps));

    for (std::size_t i = 0; i < options.num_clients; ++i) {
        const auto ip = net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(10 + i)};
        testbed->clients.push_back(
            p.add_client("rpi" + std::to_string(i + 1), ip, cal::kClientLinkLatency,
                         sim::gbit_per_sec(cal::kClientGbps)));
    }

    if (options.with_cloud) {
        p.add_cloud("cloud", cal::kCloudLatency, sim::gbit_per_sec(10));
    }

    // --- registries -------------------------------------------------------
    testbed->docker_hub = &p.add_registry(cal::docker_hub());
    testbed->gcr = &p.add_registry(cal::gcr());
    testbed->private_registry = &p.add_registry(cal::private_registry());
    install_services(p, *testbed->docker_hub, *testbed->gcr,
                     testbed->private_registry);
    if (options.use_private_registry_mirror) {
        p.registries().set_mirror(testbed->private_registry);
    }

    // --- clusters ----------------------------------------------------------
    if (options.with_docker) {
        testbed->docker = &p.add_docker_cluster("egs-docker", testbed->egs_docker,
                                                cal::docker_config(),
                                                cal::runtime_costs(),
                                                cal::puller_config());
    }
    if (options.with_k8s) {
        testbed->k8s = &p.add_k8s_cluster("egs-k8s", {testbed->egs_k8s},
                                          cal::k8s_config());
    }
    if (options.with_far_edge) {
        testbed->far_edge_host =
            p.add_edge_host("far-edge", net::Ipv4{10, 0, 2, 2}, 24,
                            sim::milliseconds(4), sim::gbit_per_sec(10));
        testbed->far_edge = &p.add_docker_cluster("far-edge", testbed->far_edge_host,
                                                  cal::docker_config(),
                                                  cal::runtime_costs(),
                                                  cal::puller_config());
    }
    if (p.clusters().empty() && !options.with_cloud) {
        throw std::invalid_argument("C3 testbed needs at least one cluster or cloud");
    }

    // --- extra cells (mobility) ------------------------------------------
    for (std::size_t i = 0; i < options.extra_gnbs; ++i) {
        testbed->gnbs.push_back(&p.add_ingress(
            "gnb" + std::to_string(i + 2),
            options.gnb_backbone_latency * static_cast<std::int64_t>(i + 1)));
    }

    // --- controller ---------------------------------------------------------
    p.start_controller(testbed->controller_host, options.controller);
    return testbed;
}

} // namespace tedge::testbed
