// WebAssembly serverless runtime (the paper's future work, §VIII: "enabling
// the side-by-side operation of containers and serverless applications").
//
// Modelled after the WASM edge runtimes the paper cites (Gackstatter et al.
// [7], Faasm [25], aWsm [24]): modules are small, cold starts are
// milliseconds (AoT-compiled module instantiation) instead of the hundreds
// of milliseconds a container namespace setup costs, and idle instances are
// reclaimed after a keep-alive window. Requests that arrive with no warm
// instance pay the cold-start latency inline -- the serverless analogue of
// "on-demand deployment with waiting".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>

#include "container/app_profile.hpp"
#include "container/image.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

namespace tedge::serverless {

/// A deployable function: a WASM module (distributed through the same
/// registry substrate as container images; module = single-layer "image")
/// plus its behavioural profile.
struct FunctionSpec {
    std::string name;
    container::ImageRef module;          ///< module reference in a registry
    const container::AppProfile* app = nullptr;
    std::uint16_t port = 0;              ///< port the gateway listens on
    int max_instances = 64;              ///< per-node instance cap
};

struct WasmRuntimeCosts {
    /// AoT-compiled module instantiation (linear memory setup, imports).
    sim::SimTime cold_start_median = sim::milliseconds(6);
    double cold_start_sigma = 0.25;
    /// One-time module compile/validate on first load from the store.
    sim::SimTime module_load = sim::milliseconds(25);
    /// Warm instances are reclaimed after this idle window.
    sim::SimTime keep_alive = sim::seconds(30);
    /// Added per request by the gateway/runtime trampoline.
    sim::SimTime invoke_overhead = sim::microseconds(40);
};

/// Per-node WASM function runtime with a warm-instance pool and a gateway
/// endpoint per deployed function.
class WasmRuntime {
public:
    WasmRuntime(sim::Simulation& sim, net::Topology& topo, net::NodeId node,
                net::EndpointDirectory& endpoints, sim::Rng rng,
                WasmRuntimeCosts costs = {});
    ~WasmRuntime();

    /// Deploy a function: loads the module (must already be in the local
    /// module store -- the cluster pulls it first), binds the gateway port,
    /// and serves requests with scale-from-zero semantics.
    void deploy(const FunctionSpec& spec, std::uint16_t gateway_port,
                std::function<void()> done);

    /// Remove a function: unbind the gateway, drop warm instances.
    void remove(const std::string& name, std::function<void()> done);

    [[nodiscard]] bool deployed(const std::string& name) const;
    [[nodiscard]] int warm_instances(const std::string& name) const;
    [[nodiscard]] std::uint64_t cold_starts() const { return cold_starts_; }
    [[nodiscard]] std::uint64_t invocations() const { return invocations_; }
    [[nodiscard]] net::NodeId node() const { return node_; }

    /// Pre-warm up to `count` instances (the serverless analogue of Scale Up).
    void prewarm(const std::string& name, int count, std::function<void()> done);

    /// Drop the warm pool immediately (explicit scale-to-zero). Busy
    /// instances finish their requests.
    void cool_down(const std::string& name);

private:
    struct Function {
        FunctionSpec spec;
        std::uint16_t gateway_port = 0;
        bool module_loaded = false;
        int warm = 0;      ///< idle instances ready to serve
        int busy = 0;      ///< instances currently serving
        std::deque<std::function<void()>> backlog; ///< waiting for capacity
        sim::SimTime last_used;
    };

    void invoke(Function& fn, sim::Bytes request,
                net::EndpointDirectory::ReplyFn reply);
    void finish_invocation(const std::string& name,
                           net::EndpointDirectory::ReplyFn reply);
    void reap_idle();

    sim::Simulation& sim_;
    net::Topology& topo_;
    net::NodeId node_;
    net::EndpointDirectory& endpoints_;
    sim::Rng rng_;
    WasmRuntimeCosts costs_;
    std::map<std::string, Function> functions_;
    sim::Simulation::PeriodicHandle reaper_;
    std::uint64_t cold_starts_ = 0;
    std::uint64_t invocations_ = 0;
};

} // namespace tedge::serverless
