#include "serverless/wasm_runtime.hpp"

#include <stdexcept>

namespace tedge::serverless {

WasmRuntime::WasmRuntime(sim::Simulation& sim, net::Topology& topo,
                         net::NodeId node, net::EndpointDirectory& endpoints,
                         sim::Rng rng, WasmRuntimeCosts costs)
    : sim_(sim), topo_(topo), node_(node), endpoints_(endpoints), rng_(rng),
      costs_(costs) {
    reaper_ = sim_.schedule_periodic(sim::seconds(5), [this] { reap_idle(); },
                                     /*daemon=*/true);
}

WasmRuntime::~WasmRuntime() {
    reaper_.cancel();
}

void WasmRuntime::deploy(const FunctionSpec& spec, std::uint16_t gateway_port,
                         std::function<void()> done) {
    if (spec.app == nullptr) throw std::invalid_argument("function needs a profile");
    auto& fn = functions_[spec.name];
    fn.spec = spec;
    fn.gateway_port = gateway_port;
    fn.last_used = sim_.now();

    const sim::SimTime load = fn.module_loaded ? sim::SimTime::zero()
                                               : costs_.module_load;
    sim_.schedule(load, [this, name = spec.name, done = std::move(done)] {
        auto& fn = functions_.at(name);
        fn.module_loaded = true;
        topo_.open_port(node_, fn.gateway_port);
        endpoints_.bind(node_, fn.gateway_port,
                        [this, name](sim::Bytes request,
                                     net::EndpointDirectory::ReplyFn reply) {
            invoke(functions_.at(name), request, std::move(reply));
        });
        done();
    });
}

void WasmRuntime::remove(const std::string& name, std::function<void()> done) {
    const auto it = functions_.find(name);
    if (it == functions_.end()) {
        sim_.schedule(sim::SimTime::zero(), std::move(done));
        return;
    }
    topo_.close_port(node_, it->second.gateway_port);
    endpoints_.unbind(node_, it->second.gateway_port);
    functions_.erase(it);
    sim_.schedule(sim::milliseconds(1), std::move(done));
}

bool WasmRuntime::deployed(const std::string& name) const {
    return functions_.contains(name);
}

int WasmRuntime::warm_instances(const std::string& name) const {
    const auto it = functions_.find(name);
    return it == functions_.end() ? 0 : it->second.warm;
}

void WasmRuntime::prewarm(const std::string& name, int count,
                          std::function<void()> done) {
    auto& fn = functions_.at(name);
    const int to_start =
        std::min(count, fn.spec.max_instances - fn.warm - fn.busy);
    if (to_start <= 0) {
        sim_.schedule(sim::SimTime::zero(), std::move(done));
        return;
    }
    // Instantiations run concurrently; completion when the slowest is up.
    auto remaining = std::make_shared<int>(to_start);
    for (int i = 0; i < to_start; ++i) {
        const sim::SimTime cold = sim::from_seconds(rng_.lognormal_median(
            costs_.cold_start_median.seconds(), costs_.cold_start_sigma));
        sim_.schedule(cold, [this, name, remaining, done] {
            ++cold_starts_;
            ++functions_.at(name).warm;
            if (--*remaining == 0) done();
        });
    }
}

void WasmRuntime::cool_down(const std::string& name) {
    const auto it = functions_.find(name);
    if (it != functions_.end()) it->second.warm = 0;
}

void WasmRuntime::invoke(Function& fn, sim::Bytes /*request*/,
                         net::EndpointDirectory::ReplyFn reply) {
    ++invocations_;
    fn.last_used = sim_.now();
    const std::string name = fn.spec.name;

    auto serve = [this, name](net::EndpointDirectory::ReplyFn reply,
                              sim::SimTime extra_delay) {
        auto& fn = functions_.at(name);
        ++fn.busy;
        const sim::SimTime service = fn.spec.app->sample_service(rng_);
        sim_.schedule(extra_delay + costs_.invoke_overhead + service,
                      [this, name, reply = std::move(reply)] {
            finish_invocation(name, reply);
        });
    };

    if (fn.warm > 0) {
        --fn.warm;
        serve(std::move(reply), sim::SimTime::zero());
        return;
    }
    if (fn.warm + fn.busy < fn.spec.max_instances) {
        // Cold start inline: instantiate, then serve.
        ++cold_starts_;
        const sim::SimTime cold = sim::from_seconds(rng_.lognormal_median(
            costs_.cold_start_median.seconds(), costs_.cold_start_sigma));
        serve(std::move(reply), cold);
        return;
    }
    // At capacity: queue until an instance frees up.
    fn.backlog.push_back([this, name, reply = std::move(reply)]() mutable {
        auto& fn = functions_.at(name);
        --fn.warm;
        ++fn.busy;
        const sim::SimTime service = fn.spec.app->sample_service(rng_);
        sim_.schedule(costs_.invoke_overhead + service,
                      [this, name, reply = std::move(reply)] {
            finish_invocation(name, reply);
        });
    });
}

void WasmRuntime::finish_invocation(const std::string& name,
                                    net::EndpointDirectory::ReplyFn reply) {
    auto& fn = functions_.at(name);
    --fn.busy;
    ++fn.warm; // the instance stays warm for the keep-alive window
    reply(fn.spec.app->response_size);
    if (!fn.backlog.empty()) {
        auto next = std::move(fn.backlog.front());
        fn.backlog.pop_front();
        next();
    }
}

void WasmRuntime::reap_idle() {
    for (auto& [name, fn] : functions_) {
        if (fn.warm > 0 && sim_.now() - fn.last_used >= costs_.keep_alive) {
            fn.warm = 0; // reclaim the idle pool
        }
    }
}

} // namespace tedge::serverless
