#include "serverless/faas_cluster.hpp"

#include <stdexcept>

#include "simcore/metrics_registry.hpp"

namespace tedge::serverless {

FaasCluster::FaasCluster(std::string name, sim::Simulation& sim,
                         net::Topology& topo, net::NodeId node,
                         net::EndpointDirectory& endpoints,
                         orchestrator::RegistryDirectory& registries, sim::Rng rng,
                         FaasClusterConfig config)
    : name_(std::move(name)), sim_(sim), topo_(topo), node_(node),
      registries_(registries), config_(config),
      puller_(sim, store_, config.puller),
      runtime_(sim, topo, node, endpoints, rng, config.runtime),
      ledger_(config.capacity) {}

std::uint16_t FaasCluster::allocate_port(std::uint16_t preferred) {
    if (preferred != 0 && used_ports_.insert(preferred).second) return preferred;
    while (used_ports_.contains(next_port_)) ++next_port_;
    const std::uint16_t port = next_port_++;
    used_ports_.insert(port);
    return port;
}

void FaasCluster::ensure_image(const orchestrator::ServiceSpec& spec,
                               PullCallback done) {
    if (spec.containers.empty()) {
        sim_.schedule(sim::SimTime::zero(),
                      [done = std::move(done)] { done(false, {}); });
        return;
    }
    // Serverless deployments use the FIRST container's image as the module
    // (multi-container pods do not map onto functions).
    const auto module = spec.containers.front().image;
    auto* registry = registries_.resolve(module);
    if (registry == nullptr) {
        sim_.schedule(sim::SimTime::zero(),
                      [done = std::move(done)] { done(false, {}); });
        return;
    }
    sim_.schedule(config_.api_latency, [this, module, registry,
                                        done = std::move(done)] {
        puller_.pull(module, *registry, std::move(done));
    });
}

bool FaasCluster::has_image(const orchestrator::ServiceSpec& spec) const {
    return !spec.containers.empty() &&
           store_.has_image(spec.containers.front().image);
}

void FaasCluster::create_service(const orchestrator::ServiceSpec& spec,
                                 BoolCallback done) {
    if (services_.contains(spec.name)) {
        sim_.schedule(config_.api_latency, [done = std::move(done)] { done(true); });
        return;
    }
    if (!spec.valid() || !has_image(spec)) {
        sim_.schedule(config_.api_latency, [done = std::move(done)] { done(false); });
        return;
    }
    services_[spec.name] = spec;
    const std::uint16_t gateway = allocate_port(spec.expose_port);
    gateway_ports_[spec.name] = gateway;

    FunctionSpec function;
    function.name = spec.name;
    function.module = spec.containers.front().image;
    function.app = spec.containers.front().app;
    function.port = spec.target_port;
    sim_.schedule(config_.api_latency, [this, function, gateway,
                                        done = std::move(done)] {
        runtime_.deploy(function, gateway, [done] { done(true); });
    });
}

bool FaasCluster::has_service(const std::string& name) const {
    return services_.contains(name);
}

void FaasCluster::scale_up(const std::string& name, BoolCallback done) {
    const auto it = services_.find(name);
    if (it == services_.end()) {
        sim_.schedule(config_.api_latency, [done = std::move(done)] { done(false); });
        return;
    }
    // A warm instance holds its request until cool-down. Rejections are
    // typed, mirroring the container clusters' admission control.
    if (!warm_.contains(name)) {
        if (const auto reason = ledger_.admit(it->second.resource_request());
            reason != orchestrator::AdmissionReason::kAdmitted) {
            if (auto* m = sim_.metrics()) {
                m->counter("faas." + name_ + ".rejections").inc();
            }
            sim_.schedule(config_.api_latency,
                          [done = std::move(done)] { done(false); });
            return;
        }
        warm_.insert(name);
    }
    sim_.schedule(config_.api_latency, [this, name, done = std::move(done)] {
        runtime_.prewarm(name, 1, [done] { done(true); });
    });
}

void FaasCluster::scale_down(const std::string& name, BoolCallback done) {
    // Serverless scales itself back to zero via keep-alive expiry; an
    // explicit scale-down just drops the warm pool immediately.
    const bool known = services_.contains(name);
    if (known && warm_.erase(name) != 0) {
        ledger_.release(services_.at(name).resource_request());
    }
    sim_.schedule(config_.api_latency, [this, name, known, done = std::move(done)] {
        if (known) runtime_.cool_down(name);
        done(known);
    });
}

void FaasCluster::remove_service(const std::string& name, BoolCallback done) {
    const auto it = services_.find(name);
    if (it == services_.end()) {
        sim_.schedule(config_.api_latency, [done = std::move(done)] { done(false); });
        return;
    }
    if (warm_.erase(name) != 0) {
        ledger_.release(it->second.resource_request());
    }
    services_.erase(it);
    const auto port = gateway_ports_.find(name);
    if (port != gateway_ports_.end()) {
        used_ports_.erase(port->second);
        gateway_ports_.erase(port);
    }
    sim_.schedule(config_.api_latency, [this, name, done = std::move(done)] {
        runtime_.remove(name, [done] { done(true); });
    });
}

void FaasCluster::delete_image(const orchestrator::ServiceSpec& spec) {
    if (spec.containers.empty()) return;
    store_.remove_image(spec.containers.front().image);
    store_.gc();
}

std::vector<orchestrator::InstanceInfo>
FaasCluster::instances(const std::string& name) const {
    std::vector<orchestrator::InstanceInfo> out;
    const auto it = gateway_ports_.find(name);
    if (it == gateway_ports_.end() || !runtime_.deployed(name)) return out;
    orchestrator::InstanceInfo info;
    info.service = name;
    info.node = node_;
    info.port = it->second;
    info.ready = topo_.port_open(node_, it->second);
    out.push_back(info);
    return out;
}

std::size_t FaasCluster::total_instances() const {
    return services_.size();
}

orchestrator::ClusterUtilization FaasCluster::utilization() const {
    orchestrator::ClusterUtilization u;
    u.capacity = ledger_.capacity();
    u.used = ledger_.used();
    u.peak_used = ledger_.peak();
    u.admissions = ledger_.admissions();
    u.rejections = ledger_.rejections();
    return u;
}

orchestrator::AdmissionReason
FaasCluster::admits(const orchestrator::ServiceSpec& spec) const {
    if (!ledger_.limited() || warm_.contains(spec.name)) {
        return orchestrator::AdmissionReason::kAdmitted;
    }
    return ledger_.check(spec.resource_request());
}

} // namespace tedge::serverless
