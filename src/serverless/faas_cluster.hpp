// FaasCluster: a serverless edge cluster behind the standard Cluster
// interface, so the SDN controller can deploy the SAME annotated service
// definition either as containers (Docker/K8s) or as a WASM function --
// the side-by-side operation the paper names as future work (§VIII).
//
// Phase mapping (fig. 4): Pull = fetch the module from the registry;
// Create = register the function and bind its gateway port; Scale Up =
// pre-warm one instance (optional -- scale-from-zero also works, the first
// request then pays a few ms of cold start instead of a container's
// hundreds of ms).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "container/image_store.hpp"
#include "container/puller.hpp"
#include "orchestrator/cluster.hpp"
#include "serverless/wasm_runtime.hpp"

namespace tedge::serverless {

struct FaasClusterConfig {
    sim::SimTime api_latency = sim::milliseconds(3);  ///< gateway control API
    WasmRuntimeCosts runtime;
    container::PullerConfig puller;
    /// Gateway host CPU/mem budget for warm instances; default unlimited.
    orchestrator::ResourceCapacity capacity;
};

class FaasCluster final : public orchestrator::Cluster {
public:
    FaasCluster(std::string name, sim::Simulation& sim, net::Topology& topo,
                net::NodeId node, net::EndpointDirectory& endpoints,
                orchestrator::RegistryDirectory& registries, sim::Rng rng,
                FaasClusterConfig config = {});

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] net::NodeId location() const override { return node_; }

    void ensure_image(const orchestrator::ServiceSpec& spec,
                      PullCallback done) override;
    [[nodiscard]] bool has_image(const orchestrator::ServiceSpec& spec) const override;
    void create_service(const orchestrator::ServiceSpec& spec,
                        BoolCallback done) override;
    [[nodiscard]] bool has_service(const std::string& name) const override;
    void scale_up(const std::string& name, BoolCallback done) override;
    void scale_down(const std::string& name, BoolCallback done) override;
    void remove_service(const std::string& name, BoolCallback done) override;
    void delete_image(const orchestrator::ServiceSpec& spec) override;
    [[nodiscard]] std::vector<orchestrator::InstanceInfo>
    instances(const std::string& name) const override;
    [[nodiscard]] std::size_t total_instances() const override;
    [[nodiscard]] orchestrator::ClusterUtilization utilization() const override;
    [[nodiscard]] orchestrator::AdmissionReason
    admits(const orchestrator::ServiceSpec& spec) const override;

    [[nodiscard]] WasmRuntime& runtime() { return runtime_; }
    [[nodiscard]] container::ImageStore& module_store() { return store_; }

private:
    std::uint16_t allocate_port(std::uint16_t preferred);

    std::string name_;
    sim::Simulation& sim_;
    net::Topology& topo_;
    net::NodeId node_;
    orchestrator::RegistryDirectory& registries_;
    FaasClusterConfig config_;
    container::ImageStore store_;
    container::Puller puller_;
    WasmRuntime runtime_;
    std::map<std::string, orchestrator::ServiceSpec> services_;
    std::map<std::string, std::uint16_t> gateway_ports_;
    orchestrator::ResourceLedger ledger_;  ///< reserved by warm functions
    std::set<std::string> warm_;  ///< functions holding a reservation
    std::set<std::uint16_t> used_ports_;
    std::uint16_t next_port_ = 9000;
};

} // namespace tedge::serverless
