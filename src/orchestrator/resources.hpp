// Finite cluster resources (DESIGN §10).
//
// The paper's deployment pipeline assumes every edge cluster accepts every
// deployment; real MEC nodes have finite CPU and memory budgets (Simu5G's
// MEC-app model, GenioSim's per-node resources). This header gives the
// orchestrator a shared vocabulary for that: per-app requests, per-node
// capacities, a ledger that reserves/releases against a capacity with typed
// rejection reasons, and the utilization snapshot schedulers read.
//
// The default everywhere is *unlimited* (capacity zero means "no limit"), so
// existing scenarios -- including the fig. 9/12 reproductions -- behave and
// serialize byte-identically unless a capacity is configured.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tedge::orchestrator {

/// Resources one container (or one service instance: the sum over its
/// containers) asks for. Zero fields request nothing.
struct ResourceRequest {
    std::uint64_t cpu_millicores = 0;  ///< 1000 = one core
    std::uint64_t memory_bytes = 0;

    [[nodiscard]] bool is_zero() const {
        return cpu_millicores == 0 && memory_bytes == 0;
    }

    ResourceRequest& operator+=(const ResourceRequest& other) {
        cpu_millicores += other.cpu_millicores;
        memory_bytes += other.memory_bytes;
        return *this;
    }
    friend ResourceRequest operator+(ResourceRequest a, const ResourceRequest& b) {
        return a += b;
    }
    bool operator==(const ResourceRequest&) const = default;
};

/// A node's (or a whole cluster's, summed) resource budget. Zero means
/// unlimited for that dimension -- the backwards-compatible default.
struct ResourceCapacity {
    std::uint64_t cpu_millicores = 0;  ///< 0 = unlimited
    std::uint64_t memory_bytes = 0;    ///< 0 = unlimited

    [[nodiscard]] bool limited() const {
        return cpu_millicores != 0 || memory_bytes != 0;
    }
    ResourceCapacity& operator+=(const ResourceCapacity& other) {
        cpu_millicores += other.cpu_millicores;
        memory_bytes += other.memory_bytes;
        return *this;
    }
    bool operator==(const ResourceCapacity&) const = default;
};

/// Why a placement was (not) admitted. Every rejection is typed so the
/// deployment path, metrics, and benches can report *what* ran out.
enum class AdmissionReason : std::uint8_t {
    kAdmitted,
    kInsufficientCpu,
    kInsufficientMemory,
};

[[nodiscard]] const char* to_string(AdmissionReason reason);

/// Reservation book-keeping against one capacity. `admit` is atomic with its
/// feasibility check (it never partially reserves), `release` asserts the
/// free-capacity-never-negative invariant by construction: you can only give
/// back what was admitted.
class ResourceLedger {
public:
    ResourceLedger() = default;
    explicit ResourceLedger(ResourceCapacity capacity) : capacity_(capacity) {}

    /// Would `request` fit into the free capacity right now?
    [[nodiscard]] AdmissionReason check(const ResourceRequest& request) const {
        if (capacity_.cpu_millicores != 0 &&
            used_.cpu_millicores + request.cpu_millicores > capacity_.cpu_millicores) {
            return AdmissionReason::kInsufficientCpu;
        }
        if (capacity_.memory_bytes != 0 &&
            used_.memory_bytes + request.memory_bytes > capacity_.memory_bytes) {
            return AdmissionReason::kInsufficientMemory;
        }
        return AdmissionReason::kAdmitted;
    }

    /// Reserve `request`; on rejection nothing is reserved.
    AdmissionReason admit(const ResourceRequest& request) {
        const auto reason = check(request);
        if (reason != AdmissionReason::kAdmitted) {
            ++rejections_;
            return reason;
        }
        used_ += request;
        ++admissions_;
        if (used_.cpu_millicores > peak_.cpu_millicores) {
            peak_.cpu_millicores = used_.cpu_millicores;
        }
        if (used_.memory_bytes > peak_.memory_bytes) {
            peak_.memory_bytes = used_.memory_bytes;
        }
        return AdmissionReason::kAdmitted;
    }

    /// Give back a previous admission. Clamped at zero (a double release is a
    /// caller bug, but must never make free capacity exceed the budget).
    void release(const ResourceRequest& request) {
        used_.cpu_millicores -= request.cpu_millicores <= used_.cpu_millicores
                                    ? request.cpu_millicores
                                    : used_.cpu_millicores;
        used_.memory_bytes -= request.memory_bytes <= used_.memory_bytes
                                  ? request.memory_bytes
                                  : used_.memory_bytes;
    }

    [[nodiscard]] const ResourceRequest& used() const { return used_; }
    [[nodiscard]] const ResourceRequest& peak() const { return peak_; }
    [[nodiscard]] const ResourceCapacity& capacity() const { return capacity_; }
    [[nodiscard]] bool limited() const { return capacity_.limited(); }
    [[nodiscard]] std::uint64_t admissions() const { return admissions_; }
    [[nodiscard]] std::uint64_t rejections() const { return rejections_; }

    /// Utilization fractions in [0, 1]; 0 for an unlimited dimension.
    [[nodiscard]] double cpu_fraction() const {
        return capacity_.cpu_millicores == 0
                   ? 0.0
                   : static_cast<double>(used_.cpu_millicores) /
                         static_cast<double>(capacity_.cpu_millicores);
    }
    [[nodiscard]] double mem_fraction() const {
        return capacity_.memory_bytes == 0
                   ? 0.0
                   : static_cast<double>(used_.memory_bytes) /
                         static_cast<double>(capacity_.memory_bytes);
    }
    /// The binding dimension: max of the two fractions.
    [[nodiscard]] double pressure() const {
        const double cpu = cpu_fraction();
        const double mem = mem_fraction();
        return cpu > mem ? cpu : mem;
    }

private:
    ResourceCapacity capacity_;
    ResourceRequest used_;
    ResourceRequest peak_;  ///< high-water mark (overload-bench invariant)
    std::uint64_t admissions_ = 0;
    std::uint64_t rejections_ = 0;
};

/// A cluster's aggregate resource snapshot, gathered per scheduling decision.
/// For an unlimited cluster every field is zero and `limited()` is false.
struct ClusterUtilization {
    ResourceCapacity capacity;  ///< aggregate over nodes (0 = unlimited)
    ResourceRequest used;       ///< aggregate reserved
    ResourceRequest peak_used;  ///< high-water mark of `used`
    std::uint64_t admissions = 0;
    std::uint64_t rejections = 0;

    [[nodiscard]] bool limited() const { return capacity.limited(); }
    [[nodiscard]] double cpu_fraction() const {
        return capacity.cpu_millicores == 0
                   ? 0.0
                   : static_cast<double>(used.cpu_millicores) /
                         static_cast<double>(capacity.cpu_millicores);
    }
    [[nodiscard]] double mem_fraction() const {
        return capacity.memory_bytes == 0
                   ? 0.0
                   : static_cast<double>(used.memory_bytes) /
                         static_cast<double>(capacity.memory_bytes);
    }
    [[nodiscard]] double pressure() const {
        const double cpu = cpu_fraction();
        const double mem = mem_fraction();
        return cpu > mem ? cpu : mem;
    }
};

/// Parse a Kubernetes CPU quantity ("500m", "2", "0.5") into millicores.
[[nodiscard]] std::optional<std::uint64_t> parse_cpu_millicores(std::string_view text);

/// Parse a Kubernetes memory quantity ("128Mi", "1Gi", "64M", "1024") into
/// bytes. Supports the binary (Ki/Mi/Gi/Ti) and decimal (k/M/G/T) suffixes.
[[nodiscard]] std::optional<std::uint64_t> parse_memory_bytes(std::string_view text);

/// Render millicores / bytes back to the canonical spellings ("500m", "128Mi").
[[nodiscard]] std::string format_cpu_millicores(std::uint64_t millicores);
[[nodiscard]] std::string format_memory_bytes(std::uint64_t bytes);

} // namespace tedge::orchestrator
