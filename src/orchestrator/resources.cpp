#include "orchestrator/resources.hpp"

#include <cctype>
#include <charconv>
#include <cmath>

namespace tedge::orchestrator {

const char* to_string(AdmissionReason reason) {
    switch (reason) {
    case AdmissionReason::kAdmitted: return "admitted";
    case AdmissionReason::kInsufficientCpu: return "insufficient-cpu";
    case AdmissionReason::kInsufficientMemory: return "insufficient-memory";
    }
    return "unknown";
}

namespace {

std::string_view trim(std::string_view text) {
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())) != 0) {
        text.remove_prefix(1);
    }
    while (!text.empty() && std::isspace(static_cast<unsigned char>(text.back())) != 0) {
        text.remove_suffix(1);
    }
    return text;
}

// Parse the leading decimal number of `text`; the unparsed suffix is left in
// `text`. Returns nullopt for no digits / negative values.
std::optional<double> parse_number(std::string_view& text) {
    const char* begin = text.data();
    const char* end = text.data() + text.size();
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr == begin || value < 0.0) {
        return std::nullopt;
    }
    text.remove_prefix(static_cast<std::size_t>(ptr - begin));
    return value;
}

} // namespace

std::optional<std::uint64_t> parse_cpu_millicores(std::string_view text) {
    text = trim(text);
    auto value = parse_number(text);
    if (!value) {
        return std::nullopt;
    }
    if (text.empty()) {
        // Whole or fractional cores: "2", "0.5".
        return static_cast<std::uint64_t>(std::llround(*value * 1000.0));
    }
    if (text == "m") {
        return static_cast<std::uint64_t>(std::llround(*value));
    }
    return std::nullopt;
}

std::optional<std::uint64_t> parse_memory_bytes(std::string_view text) {
    text = trim(text);
    auto value = parse_number(text);
    if (!value) {
        return std::nullopt;
    }
    double scale = 1.0;
    if (text == "Ki") {
        scale = 1024.0;
    } else if (text == "Mi") {
        scale = 1024.0 * 1024.0;
    } else if (text == "Gi") {
        scale = 1024.0 * 1024.0 * 1024.0;
    } else if (text == "Ti") {
        scale = 1024.0 * 1024.0 * 1024.0 * 1024.0;
    } else if (text == "k" || text == "K") {
        scale = 1e3;
    } else if (text == "M") {
        scale = 1e6;
    } else if (text == "G") {
        scale = 1e9;
    } else if (text == "T") {
        scale = 1e12;
    } else if (!text.empty()) {
        return std::nullopt;
    }
    return static_cast<std::uint64_t>(std::llround(*value * scale));
}

std::string format_cpu_millicores(std::uint64_t millicores) {
    if (millicores % 1000 == 0) {
        return std::to_string(millicores / 1000);
    }
    return std::to_string(millicores) + "m";
}

std::string format_memory_bytes(std::uint64_t bytes) {
    constexpr std::uint64_t kKi = 1024;
    constexpr std::uint64_t kMi = kKi * 1024;
    constexpr std::uint64_t kGi = kMi * 1024;
    if (bytes >= kGi && bytes % kGi == 0) {
        return std::to_string(bytes / kGi) + "Gi";
    }
    if (bytes >= kMi && bytes % kMi == 0) {
        return std::to_string(bytes / kMi) + "Mi";
    }
    if (bytes >= kKi && bytes % kKi == 0) {
        return std::to_string(bytes / kKi) + "Ki";
    }
    return std::to_string(bytes);
}

} // namespace tedge::orchestrator
