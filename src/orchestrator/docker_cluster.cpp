#include "orchestrator/docker_cluster.hpp"

#include <algorithm>
#include <set>

#include "simcore/metrics_registry.hpp"

namespace tedge::orchestrator {

DockerCluster::DockerCluster(std::string name, sim::Simulation& sim,
                             net::Topology& topo, net::NodeId node,
                             net::EndpointDirectory& endpoints,
                             RegistryDirectory& registries, sim::Rng rng,
                             DockerClusterConfig config,
                             container::RuntimeCostModel runtime_costs,
                             container::PullerConfig puller_config)
    : name_(std::move(name)), sim_(sim), topo_(topo), node_(node),
      registries_(registries), config_(config), store_(),
      puller_(sim, store_, puller_config),
      runtime_(sim, topo, node, endpoints, rng, runtime_costs),
      log_(sim, "docker/" + name_), ledger_(config.capacity) {}

void DockerCluster::with_api_latency(std::function<void()> fn) {
    sim_.schedule(config_.api_latency, std::move(fn));
}

void DockerCluster::ensure_image(const ServiceSpec& spec, PullCallback done) {
    // Distinct images only; a multi-container service may reuse one image.
    std::set<std::string> seen;
    std::vector<container::ImageRef> images;
    for (const auto& c : spec.containers) {
        if (seen.insert(c.image.full()).second) images.push_back(c.image);
    }

    struct Progress {
        std::size_t remaining;
        bool ok = true;
        container::PullTiming total;
        PullCallback done;
    };
    auto progress = std::make_shared<Progress>();
    progress->remaining = images.size();
    progress->total.started = sim_.now();
    progress->done = std::move(done);

    with_api_latency([this, images, progress] {
        for (const auto& ref : images) {
            auto* registry = registries_.resolve(ref);
            if (registry == nullptr) {
                log_.warn("no registry for " + ref.full());
                progress->ok = false;
                if (--progress->remaining == 0) {
                    progress->total.finished = sim_.now();
                    progress->done(false, progress->total);
                }
                continue;
            }
            puller_.pull(ref, *registry,
                         [progress, this](bool ok, const container::PullTiming& t) {
                progress->ok = progress->ok && ok;
                progress->total.bytes_downloaded += t.bytes_downloaded;
                progress->total.layers_downloaded += t.layers_downloaded;
                progress->total.layers_cached += t.layers_cached;
                progress->total.layers_shared += t.layers_shared;
                if (--progress->remaining == 0) {
                    progress->total.finished = sim_.now();
                    progress->done(progress->ok, progress->total);
                }
            });
        }
    });
}

bool DockerCluster::has_image(const ServiceSpec& spec) const {
    return std::all_of(spec.containers.begin(), spec.containers.end(),
                       [this](const ContainerTemplate& c) {
                           return store_.has_image(c.image);
                       });
}

void DockerCluster::create_service(const ServiceSpec& spec, BoolCallback done) {
    if (services_.contains(spec.name)) {
        with_api_latency([done = std::move(done)] { done(true); });
        return;
    }
    if (!spec.valid() || !has_image(spec)) {
        // docker create fails when the image is absent locally (we never
        // implicitly pull here; the Pull phase is explicit).
        with_api_latency([done = std::move(done)] { done(false); });
        return;
    }
    if (ledger_.limited()) {
        // Reject a service that can never start: its per-instance request
        // exceeds the host's *total* budget. Transient pressure is not
        // checked here -- resources are only reserved at Scale Up.
        const auto request = spec.resource_request();
        const ResourceLedger empty_host(ledger_.capacity());
        if (const auto reason = empty_host.check(request);
            reason != AdmissionReason::kAdmitted) {
            log_.warn("create " + spec.name + " rejected: " + to_string(reason));
            if (auto* m = sim_.metrics()) {
                m->counter("docker." + name_ + ".rejections").inc();
            }
            with_api_latency([done = std::move(done)] { done(false); });
            return;
        }
    }
    auto& svc = services_[spec.name];
    svc.spec = spec;
    svc.state = SvcState::kCreated;
    svc.state_since = sim_.now();
    svc.host_port = allocate_host_port(spec.expose_port);

    auto remaining = std::make_shared<std::size_t>(spec.containers.size());
    auto cb = std::make_shared<BoolCallback>(std::move(done));
    with_api_latency([this, spec, remaining, cb] {
        for (const auto& tmpl : spec.containers) {
            container::ContainerConfig config;
            config.name = spec.name + "." + tmpl.name;
            config.image = tmpl.image;
            config.app = tmpl.app;
            config.volumes = tmpl.volumes;
            config.env = tmpl.env;
            config.labels = spec.labels;
            config.labels["edge.service"] = spec.name;
            runtime_.create(std::move(config),
                            [this, name = spec.name, remaining, cb](container::ContainerId id) {
                auto it = services_.find(name);
                if (it != services_.end()) it->second.containers.push_back(id);
                if (--*remaining == 0) (*cb)(true);
            });
        }
    });
}

bool DockerCluster::has_service(const std::string& name) const {
    return services_.contains(name);
}

void DockerCluster::scale_up(const std::string& name, BoolCallback done) {
    const auto it = services_.find(name);
    if (it == services_.end()) {
        with_api_latency([done = std::move(done)] { done(false); });
        return;
    }
    auto& svc = it->second;
    if (svc.state == SvcState::kRunning || svc.state == SvcState::kStarting) {
        with_api_latency([done = std::move(done)] { done(true); });
        return;
    }
    // Admission control: a starting instance reserves its request until
    // Scale Down releases it. Rejections are typed and surface as metrics
    // so schedulers and benches can see *why* a host refused work.
    if (const auto reason = ledger_.admit(svc.spec.resource_request());
        reason != AdmissionReason::kAdmitted) {
        log_.warn("scale up " + name + " rejected: " + to_string(reason));
        if (auto* m = sim_.metrics()) {
            m->counter("docker." + name_ + ".rejections").inc();
            m->counter(std::string("docker.rejected.") + to_string(reason)).inc();
        }
        with_api_latency([done = std::move(done)] { done(false); });
        return;
    }
    svc.state = SvcState::kStarting;
    svc.state_since = sim_.now();

    auto remaining = std::make_shared<std::size_t>(svc.containers.size());
    auto cb = std::make_shared<BoolCallback>(std::move(done));
    with_api_latency([this, name, remaining, cb] {
        auto& svc = services_.at(name);
        for (std::size_t i = 0; i < svc.containers.size(); ++i) {
            const auto& tmpl = svc.spec.containers[i];
            // Only the container serving the target port publishes the
            // service's host port (-p host:target).
            const std::uint16_t host_port =
                (tmpl.container_port != 0 && tmpl.container_port == svc.spec.target_port)
                    ? svc.host_port
                    : 0;
            runtime_.start(svc.containers[i], host_port, [this, name, remaining, cb] {
                if (--*remaining == 0) {
                    auto it2 = services_.find(name);
                    if (it2 != services_.end()) {
                        it2->second.state = SvcState::kRunning;
                        it2->second.state_since = sim_.now();
                    }
                    (*cb)(true);
                }
            });
        }
    });
}

void DockerCluster::scale_down(const std::string& name, BoolCallback done) {
    const auto it = services_.find(name);
    if (it == services_.end() || it->second.state == SvcState::kStopped ||
        it->second.state == SvcState::kCreated) {
        const bool exists = it != services_.end();
        with_api_latency([done = std::move(done), exists] { done(exists); });
        return;
    }
    auto& svc = it->second;
    svc.state = SvcState::kStopped;
    svc.state_since = sim_.now();
    ledger_.release(svc.spec.resource_request());
    auto remaining = std::make_shared<std::size_t>(svc.containers.size());
    auto cb = std::make_shared<BoolCallback>(std::move(done));
    with_api_latency([this, name, remaining, cb] {
        for (const auto id : services_.at(name).containers) {
            runtime_.stop(id, [remaining, cb] {
                if (--*remaining == 0) (*cb)(true);
            });
        }
    });
}

void DockerCluster::remove_service(const std::string& name, BoolCallback done) {
    const auto it = services_.find(name);
    if (it == services_.end()) {
        with_api_latency([done = std::move(done)] { done(false); });
        return;
    }
    const bool needs_stop = it->second.state == SvcState::kRunning ||
                            it->second.state == SvcState::kStarting;
    auto finish = [this, name, done = std::move(done)](bool /*ok*/) {
        auto& svc = services_.at(name);
        auto remaining = std::make_shared<std::size_t>(svc.containers.size());
        auto cb = std::make_shared<BoolCallback>(std::move(done));
        if (svc.containers.empty()) {
            used_ports_.erase(svc.host_port);
            services_.erase(name);
            with_api_latency([cb] { (*cb)(true); });
            return;
        }
        for (const auto id : svc.containers) {
            runtime_.remove(id, [this, name, remaining, cb] {
                if (--*remaining == 0) {
                    used_ports_.erase(services_.at(name).host_port);
                    services_.erase(name);
                    (*cb)(true);
                }
            });
        }
    };
    if (needs_stop) {
        scale_down(name, finish);
    } else {
        finish(true);
    }
}

void DockerCluster::delete_image(const ServiceSpec& spec) {
    for (const auto& c : spec.containers) store_.remove_image(c.image);
    store_.gc();
}

std::vector<InstanceInfo> DockerCluster::instances(const std::string& name) const {
    std::vector<InstanceInfo> out;
    const auto it = services_.find(name);
    if (it == services_.end()) return out;
    const auto& svc = it->second;
    if (svc.state != SvcState::kRunning && svc.state != SvcState::kStarting) return out;
    InstanceInfo info;
    info.service = name;
    info.node = node_;
    info.port = svc.host_port;
    info.ready = topo_.port_open(node_, svc.host_port);
    info.since = svc.state_since;
    out.push_back(info);
    return out;
}

std::uint16_t DockerCluster::allocate_host_port(std::uint16_t preferred) {
    if (preferred != 0 && used_ports_.insert(preferred).second) return preferred;
    while (used_ports_.contains(next_port_)) ++next_port_;
    const std::uint16_t port = next_port_++;
    used_ports_.insert(port);
    return port;
}

ClusterUtilization DockerCluster::utilization() const {
    ClusterUtilization u;
    u.capacity = ledger_.capacity();
    u.used = ledger_.used();
    u.peak_used = ledger_.peak();
    u.admissions = ledger_.admissions();
    u.rejections = ledger_.rejections();
    return u;
}

AdmissionReason DockerCluster::admits(const ServiceSpec& spec) const {
    if (!ledger_.limited()) return AdmissionReason::kAdmitted;
    const auto it = services_.find(spec.name);
    if (it != services_.end() && (it->second.state == SvcState::kRunning ||
                                  it->second.state == SvcState::kStarting)) {
        // Already reserved; a repeated Scale Up is a no-op.
        return AdmissionReason::kAdmitted;
    }
    return ledger_.check(spec.resource_request());
}

std::size_t DockerCluster::total_instances() const {
    std::size_t count = 0;
    for (const auto& [name, svc] : services_) {
        if (svc.state == SvcState::kRunning || svc.state == SvcState::kStarting) {
            ++count;
        }
    }
    return count;
}

} // namespace tedge::orchestrator
