// A single-host Docker "cluster" (the paper's lightweight alternative to
// Kubernetes). Create makes the containers (`docker create`); Scale Up
// starts them (`docker start`); the published host port opens as soon as the
// HTTP container's application is listening -- which is why Docker answers
// the first request in well under a second.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>

#include "orchestrator/cluster.hpp"
#include "simcore/logging.hpp"
#include "simcore/simulation.hpp"

namespace tedge::orchestrator {

struct DockerClusterConfig {
    /// Docker Engine API call overhead (client library + dockerd).
    sim::SimTime api_latency = sim::milliseconds(15);
    /// Host CPU/mem budget; default unlimited (admits everything).
    ResourceCapacity capacity;
};

class DockerCluster final : public Cluster {
public:
    DockerCluster(std::string name, sim::Simulation& sim, net::Topology& topo,
                  net::NodeId node, net::EndpointDirectory& endpoints,
                  RegistryDirectory& registries, sim::Rng rng,
                  DockerClusterConfig config = {},
                  container::RuntimeCostModel runtime_costs = {},
                  container::PullerConfig puller_config = {});

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] net::NodeId location() const override { return node_; }

    void ensure_image(const ServiceSpec& spec, PullCallback done) override;
    [[nodiscard]] bool has_image(const ServiceSpec& spec) const override;
    void create_service(const ServiceSpec& spec, BoolCallback done) override;
    [[nodiscard]] bool has_service(const std::string& name) const override;
    void scale_up(const std::string& name, BoolCallback done) override;
    void scale_down(const std::string& name, BoolCallback done) override;
    void remove_service(const std::string& name, BoolCallback done) override;
    void delete_image(const ServiceSpec& spec) override;
    [[nodiscard]] std::vector<InstanceInfo>
    instances(const std::string& name) const override;
    [[nodiscard]] std::size_t total_instances() const override;
    [[nodiscard]] ClusterUtilization utilization() const override;
    [[nodiscard]] AdmissionReason admits(const ServiceSpec& spec) const override;

    [[nodiscard]] container::ImageStore& image_store() { return store_; }
    [[nodiscard]] container::ContainerRuntime& runtime() { return runtime_; }
    [[nodiscard]] const ResourceLedger& ledger() const { return ledger_; }

private:
    enum class SvcState { kCreated, kStarting, kRunning, kStopped };

    struct Service {
        ServiceSpec spec;
        SvcState state = SvcState::kCreated;
        std::vector<container::ContainerId> containers;
        sim::SimTime state_since;
        /// Host port published for the service. Defaults to the spec's
        /// exposed port but moves to a free port when several services would
        /// collide on one host -- the SDN layer rewrites the destination
        /// port anyway, so the concrete value is invisible to clients.
        std::uint16_t host_port = 0;
    };

    void with_api_latency(std::function<void()> fn);
    std::uint16_t allocate_host_port(std::uint16_t preferred);

    std::string name_;
    sim::Simulation& sim_;
    net::Topology& topo_;
    net::NodeId node_;
    RegistryDirectory& registries_;
    DockerClusterConfig config_;
    container::ImageStore store_;
    container::Puller puller_;
    container::ContainerRuntime runtime_;
    sim::Logger log_;
    ResourceLedger ledger_;  ///< reserved by starting/running services
    std::map<std::string, Service> services_;
    std::set<std::uint16_t> used_ports_;
    std::uint16_t next_port_ = 8000;
};

} // namespace tedge::orchestrator
