#include "orchestrator/k8s/k8s_cluster.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "simcore/metrics_registry.hpp"

namespace tedge::orchestrator::k8s {
namespace {

/// The cluster-level node_capacity is the default for the scheduler's
/// capacity filter; an explicitly-set scheduler capacity wins.
KubeSchedulerConfig scheduler_config(KubeSchedulerConfig cfg,
                                     const ResourceCapacity& node_capacity) {
    if (!cfg.node_capacity.limited()) cfg.node_capacity = node_capacity;
    return cfg;
}

} // namespace

K8sCluster::K8sCluster(std::string name, sim::Simulation& sim, net::Topology& topo,
                       std::vector<net::NodeId> nodes,
                       net::EndpointDirectory& endpoints,
                       RegistryDirectory& registries, sim::Rng rng,
                       K8sClusterConfig config)
    : name_(std::move(name)), sim_(sim), topo_(topo), nodes_(std::move(nodes)),
      endpoints_(endpoints), registries_(registries), config_(config),
      api_(sim, config.api), controllers_(sim, api_, config.controllers),
      scheduler_(sim, api_, nodes_,
                 scheduler_config(config.scheduler, config.node_capacity)),
      log_(sim, "k8s/" + name_) {
    if (nodes_.empty()) throw std::invalid_argument("K8sCluster needs >= 1 node");

    KubeletConfig kubelet_config = config.kubelet;
    if (!kubelet_config.allocatable.limited()) {
        kubelet_config.allocatable = config.node_capacity;
    }
    for (const auto node : nodes_) {
        auto agents = std::make_unique<NodeAgents>();
        agents->node = node;
        agents->puller =
            std::make_unique<container::Puller>(sim, agents->store, config.puller);
        agents->runtime = std::make_unique<container::ContainerRuntime>(
            sim, topo, node, endpoints, rng.split(), config.runtime_costs);
        agents->kubelet = std::make_unique<Kubelet>(
            sim, api_, node, *agents->runtime, *agents->puller, registries,
            rng.split(), kubelet_config);
        agents_.push_back(std::move(agents));
    }

    controllers_.start();
    scheduler_.start();
    for (auto& a : agents_) a->kubelet->start();

    // kube-proxy: react to service/endpoint updates.
    api_.services().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.kubeproxy_program,
                      [this, name = event.name] { reconcile_proxy(name); });
    });
}

K8sCluster::~K8sCluster() {
    for (auto& [key, alias] : aliases_) alias.poll.cancel();
}

K8sCluster::NodeAgents& K8sCluster::agents_for(net::NodeId node) {
    for (auto& a : agents_) {
        if (a->node == node) return *a;
    }
    throw std::logic_error("agents_for: node not in cluster");
}

void K8sCluster::ensure_image(const ServiceSpec& spec, PullCallback done) {
    std::set<std::string> seen;
    std::vector<container::ImageRef> images;
    for (const auto& c : spec.containers) {
        if (seen.insert(c.image.full()).second) images.push_back(c.image);
    }
    struct Progress {
        std::size_t remaining = 0;
        bool ok = true;
        container::PullTiming total;
        PullCallback done;
    };
    auto progress = std::make_shared<Progress>();
    progress->remaining = images.size() * agents_.size();
    progress->total.started = sim_.now();
    progress->done = std::move(done);
    if (progress->remaining == 0) {
        sim_.schedule(sim::SimTime::zero(), [this, progress] {
            progress->total.finished = sim_.now();
            progress->done(true, progress->total);
        });
        return;
    }
    for (auto& agents : agents_) {
        for (const auto& ref : images) {
            auto* registry = registries_.resolve(ref);
            if (registry == nullptr) {
                progress->ok = false;
                if (--progress->remaining == 0) {
                    progress->total.finished = sim_.now();
                    progress->done(false, progress->total);
                }
                continue;
            }
            agents->puller->pull(ref, *registry,
                                 [this, progress](bool ok, const container::PullTiming& t) {
                progress->ok = progress->ok && ok;
                progress->total.bytes_downloaded += t.bytes_downloaded;
                progress->total.layers_downloaded += t.layers_downloaded;
                progress->total.layers_cached += t.layers_cached;
                progress->total.layers_shared += t.layers_shared;
                if (--progress->remaining == 0) {
                    progress->total.finished = sim_.now();
                    progress->done(progress->ok, progress->total);
                }
            });
        }
    }
}

bool K8sCluster::has_image(const ServiceSpec& spec) const {
    for (const auto& agents : agents_) {
        for (const auto& c : spec.containers) {
            if (!agents->store.has_image(c.image)) return false;
        }
    }
    return true;
}

void K8sCluster::create_service(const ServiceSpec& spec, BoolCallback done) {
    if (!spec.valid()) {
        sim_.schedule(sim::SimTime::zero(), [done = std::move(done)] { done(false); });
        return;
    }
    if (has_service(spec.name)) {
        sim_.schedule(config_.api.request_latency,
                      [done = std::move(done)] { done(true); });
        return;
    }
    DeploymentObj deployment;
    deployment.name = spec.name;
    deployment.spec = spec;
    deployment.replicas = spec.replicas;

    ServiceObj service;
    service.name = spec.name;
    service.expose_port = spec.expose_port;
    // NodePort-style entry point: prefer the declared port, move to a free
    // one when several services would collide on the node. The SDN layer
    // rewrites the destination port, so clients never see the difference.
    service.node_port = allocate_node_port(spec.expose_port);
    service.target_port = spec.target_port;
    service.selector = {{"edge.service", spec.name}};

    // Two API calls (kubectl apply of a two-document manifest).
    api_.request([this, deployment] {
        api_.deployments().upsert(deployment.name, deployment);
    });
    api_.request([this, service] { api_.services().upsert(service.name, service); },
                 [done = std::move(done)] { done(true); });
}

bool K8sCluster::has_service(const std::string& name) const {
    return api_.deployments().get(name) != nullptr;
}

void K8sCluster::scale_up(const std::string& name, BoolCallback done) {
    // Admission pre-flight: without it an over-capacity replica would sit
    // Pending until the deployment engine's await timeout. Rejecting here
    // fails fast with a typed reason; the kube-scheduler's per-node filter
    // remains the placement-time enforcement point.
    if (config_.node_capacity.limited()) {
        const auto* deployment = api_.deployments().get(name);
        if (deployment != nullptr) {
            if (const auto reason = admits(deployment->spec);
                reason != AdmissionReason::kAdmitted) {
                ++rejections_;
                log_.warn("scale up " + name + " rejected: " + to_string(reason));
                if (auto* m = sim_.metrics()) {
                    m->counter("k8s." + name_ + ".rejections").inc();
                    m->counter(std::string("k8s.rejected.") + to_string(reason))
                        .inc();
                }
                sim_.schedule(config_.api.request_latency,
                              [done = std::move(done)] { done(false); });
                return;
            }
            ++admissions_;
        }
    }
    api_.request(
        [this, name] {
            auto* deployment = api_.deployments().get_mutable(name);
            if (deployment == nullptr) return;
            DeploymentObj updated = *deployment;
            updated.replicas += 1;
            ++updated.generation;
            api_.deployments().upsert(name, updated);
        },
        [this, name, done = std::move(done)] { done(has_service(name)); });
}

void K8sCluster::scale_down(const std::string& name, BoolCallback done) {
    api_.request(
        [this, name] {
            auto* deployment = api_.deployments().get_mutable(name);
            if (deployment == nullptr) return;
            DeploymentObj updated = *deployment;
            updated.replicas = std::max(0, updated.replicas - 1);
            ++updated.generation;
            api_.deployments().upsert(name, updated);
        },
        [this, name, done = std::move(done)] { done(has_service(name)); });
}

void K8sCluster::remove_service(const std::string& name, BoolCallback done) {
    const bool existed = has_service(name);
    const auto* svc_obj = api_.services().get(name);
    const std::uint16_t expose = svc_obj != nullptr ? svc_obj->node_port : 0;
    api_.request(
        [this, name] {
            // Cascade: terminate owned pods, drop RS/Deployment/Service.
            const std::string rs_name = name + "-rs";
            std::vector<PodObj> to_terminate;
            for (const auto& [pod_name, pod] : api_.pods().items()) {
                if (pod.owner_rs == rs_name && pod.phase != PodPhase::kTerminating) {
                    PodObj updated = pod;
                    updated.phase = PodPhase::kTerminating;
                    updated.ready = false;
                    updated.phase_since = sim_.now();
                    to_terminate.push_back(updated);
                }
            }
            for (const auto& pod : to_terminate) {
                api_.pods().upsert(pod.name, pod);
            }
            api_.deployments().erase(name);
            api_.replicasets().erase(rs_name);
            api_.services().erase(name);
        },
        [this, name, existed, expose, done = std::move(done)] {
            // Tear down any proxy aliases for the removed service.
            if (expose != 0) {
                for (const auto node : nodes_) {
                    close_alias(name, node, expose);
                }
                used_node_ports_.erase(expose);
            }
            done(existed);
        });
}

void K8sCluster::delete_image(const ServiceSpec& spec) {
    for (auto& agents : agents_) {
        for (const auto& c : spec.containers) agents->store.remove_image(c.image);
        agents->store.gc();
    }
}

std::vector<InstanceInfo> K8sCluster::instances(const std::string& name) const {
    std::vector<InstanceInfo> out;
    const auto* svc = api_.services().get(name);
    const std::uint16_t expose = svc != nullptr ? svc->node_port : 0;
    for (const auto& [pod_name, pod] : api_.pods().items()) {
        if (pod.spec.name != name) continue;
        if (pod.phase == PodPhase::kTerminating) continue;
        if (!pod.node.valid()) continue;
        InstanceInfo info;
        info.service = name;
        info.node = pod.node;
        info.port = expose != 0 ? expose : pod.spec.expose_port;
        info.ready = topo_.port_open(pod.node, info.port);
        info.since = pod.phase_since;
        out.push_back(info);
    }
    return out;
}

std::uint16_t K8sCluster::allocate_node_port(std::uint16_t preferred) {
    if (preferred != 0 && used_node_ports_.insert(preferred).second) return preferred;
    while (used_node_ports_.contains(next_node_port_)) ++next_node_port_;
    const std::uint16_t port = next_node_port_++;
    used_node_ports_.insert(port);
    return port;
}

std::size_t K8sCluster::total_instances() const {
    std::size_t count = 0;
    for (const auto& [name, pod] : api_.pods().items()) {
        if (pod.phase != PodPhase::kTerminating) ++count;
    }
    return count;
}

ResourceRequest K8sCluster::pods_used() const {
    ResourceRequest used;
    for (const auto& [name, pod] : api_.pods().items()) {
        if (pod.phase != PodPhase::kTerminating) used += pod.resources;
    }
    return used;
}

ClusterUtilization K8sCluster::utilization() const {
    ClusterUtilization u;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
        u.capacity += config_.node_capacity;
    }
    u.used = pods_used();
    if (u.used.cpu_millicores > peak_used_.cpu_millicores) {
        peak_used_.cpu_millicores = u.used.cpu_millicores;
    }
    if (u.used.memory_bytes > peak_used_.memory_bytes) {
        peak_used_.memory_bytes = u.used.memory_bytes;
    }
    u.peak_used = peak_used_;
    u.admissions = admissions_;
    u.rejections = rejections_;
    return u;
}

AdmissionReason K8sCluster::admits(const ServiceSpec& spec) const {
    if (!config_.node_capacity.limited()) return AdmissionReason::kAdmitted;
    const auto request = spec.resource_request();

    // Free capacity per node after the pods already bound there.
    std::vector<ResourceLedger> node_free;
    node_free.reserve(nodes_.size());
    for (const auto node : nodes_) {
        ResourceLedger ledger(config_.node_capacity);
        for (const auto& [pod_name, pod] : api_.pods().items()) {
            if (pod.node == node && pod.phase != PodPhase::kTerminating) {
                ledger.admit(pod.resources);
            }
        }
        node_free.push_back(ledger);
    }
    // Pending unbound pods will be placed by the capacity-filtered
    // scheduler; account for them first-fit (name order, the API store's
    // iteration order) so this pre-flight cannot over-admit.
    for (const auto& [pod_name, pod] : api_.pods().items()) {
        if (pod.node.valid() || pod.phase == PodPhase::kTerminating) continue;
        for (auto& ledger : node_free) {
            if (ledger.admit(pod.resources) == AdmissionReason::kAdmitted) break;
        }
    }
    bool cpu_fits_somewhere = false;
    for (const auto& ledger : node_free) {
        const auto reason = ledger.check(request);
        if (reason == AdmissionReason::kAdmitted) return reason;
        if (reason != AdmissionReason::kInsufficientCpu) cpu_fits_somewhere = true;
    }
    return cpu_fits_somewhere ? AdmissionReason::kInsufficientMemory
                              : AdmissionReason::kInsufficientCpu;
}

void K8sCluster::reconcile_proxy(const std::string& svc_name) {
    const auto* svc = api_.services().get(svc_name);
    if (svc == nullptr) return;

    // Nodes that should expose the service: every node hosting an endpoint.
    std::set<std::uint32_t> want_nodes;
    for (const auto& ep : svc->endpoints) want_nodes.insert(ep.node.value);

    for (const auto node : nodes_) {
        const auto key = std::make_pair(svc_name, node.value);
        const bool want = want_nodes.contains(node.value);
        auto& alias = aliases_[key];
        if (want && !alias.open && !alias.poll.active()) {
            // Wait until the pod's application is actually listening before
            // the DNAT path can complete a connection.
            const std::uint16_t expose = svc->node_port;
            alias.poll = sim_.schedule_periodic(config_.proxy_poll,
                                                [this, svc_name, node, expose] {
                const auto* s = api_.services().get(svc_name);
                if (s == nullptr) {
                    auto& a = aliases_[std::make_pair(svc_name, node.value)];
                    a.poll.cancel();
                    return;
                }
                for (const auto& ep : s->endpoints) {
                    if (ep.node == node && topo_.port_open(node, ep.pod_port)) {
                        open_alias(svc_name, node, expose);
                        return;
                    }
                }
            });
        } else if (!want && alias.open) {
            close_alias(svc_name, node, svc->node_port);
        } else if (!want && alias.poll.active()) {
            alias.poll.cancel();
        }
    }
}

void K8sCluster::open_alias(const std::string& svc_name, net::NodeId node,
                            std::uint16_t expose_port) {
    auto& alias = aliases_[std::make_pair(svc_name, node.value)];
    alias.poll.cancel();
    if (alias.open) return;
    alias.open = true;
    topo_.open_port(node, expose_port);
    endpoints_.bind(node, expose_port,
                    [this, svc_name, node](sim::Bytes request,
                                           net::EndpointDirectory::ReplyFn reply) {
        // DNAT to a ready endpoint on this node (round robin).
        const auto* svc = api_.services().get(svc_name);
        if (svc == nullptr || svc->endpoints.empty()) {
            reply(0);
            return;
        }
        std::vector<const EndpointEntry*> local;
        for (const auto& ep : svc->endpoints) {
            if (ep.node == node) local.push_back(&ep);
        }
        if (local.empty()) {
            reply(0);
            return;
        }
        auto& cursor = rr_cursor_[svc_name];
        const auto* chosen = local[cursor % local.size()];
        ++cursor;
        const auto* handler = endpoints_.find(node, chosen->pod_port);
        if (handler == nullptr) {
            reply(0);
            return;
        }
        (*handler)(request, std::move(reply));
    });
    log_.debug("kube-proxy: " + svc_name + " reachable on node " +
               std::to_string(node.value));
}

void K8sCluster::close_alias(const std::string& svc_name, net::NodeId node,
                             std::uint16_t expose_port) {
    auto& alias = aliases_[std::make_pair(svc_name, node.value)];
    alias.poll.cancel();
    if (!alias.open) return;
    alias.open = false;
    topo_.close_port(node, expose_port);
    endpoints_.unbind(node, expose_port);
}

} // namespace tedge::orchestrator::k8s
