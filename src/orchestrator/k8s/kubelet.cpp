#include "orchestrator/k8s/kubelet.hpp"

#include <memory>
#include <set>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::orchestrator::k8s {

Kubelet::Kubelet(sim::Simulation& sim, ApiServer& api, net::NodeId node,
                 container::ContainerRuntime& runtime, container::Puller& puller,
                 RegistryDirectory& registries, sim::Rng rng, KubeletConfig config)
    : sim_(sim), api_(api), node_(node), runtime_(runtime), puller_(puller),
      registries_(registries), rng_(rng), config_(config),
      log_(sim, "kubelet/" + std::to_string(node.value)) {}

void Kubelet::start() {
    if (started_) return;
    started_ = true;
    api_.pods().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.sync_latency,
                      [this, name = event.name] { sync_pod(name); });
    });
}

void Kubelet::sync_pod(const std::string& pod_name) {
    const auto* pod = api_.pods().get(pod_name);
    if (pod == nullptr || pod->node != node_) return;
    if (auto* tr = sim_.tracer()) tr->instant("k8s.kubelet_sync");

    if (pod->phase == PodPhase::kPending && !starting_.contains(pod_name)) {
        starting_.insert(pod_name);
        start_pod(pod_name);
    } else if (pod->phase == PodPhase::kTerminating) {
        teardown_pod(pod_name);
    }
}

void Kubelet::pull_images(const ServiceSpec& spec, std::function<void(bool)> done) {
    std::set<std::string> seen;
    std::vector<container::ImageRef> images;
    for (const auto& c : spec.containers) {
        if (seen.insert(c.image.full()).second) images.push_back(c.image);
    }
    struct Progress {
        std::size_t remaining;
        bool ok = true;
        std::function<void(bool)> done;
    };
    auto progress = std::make_shared<Progress>();
    progress->remaining = images.size();
    progress->done = std::move(done);
    if (images.empty()) {
        sim_.schedule(sim::SimTime::zero(), [progress] { progress->done(true); });
        return;
    }
    for (const auto& ref : images) {
        auto* registry = registries_.resolve(ref);
        if (registry == nullptr) {
            progress->ok = false;
            if (--progress->remaining == 0) progress->done(false);
            continue;
        }
        puller_.pull(ref, *registry,
                     [progress](bool ok, const container::PullTiming&) {
            progress->ok = progress->ok && ok;
            if (--progress->remaining == 0) progress->done(progress->ok);
        });
    }
}

void Kubelet::start_pod(const std::string& pod_name) {
    const auto* pod = api_.pods().get(pod_name);
    if (pod == nullptr) { starting_.erase(pod_name); return; }
    const ServiceSpec spec = pod->spec;
    const std::uint16_t pod_port = pod->pod_port;

    // Node-state accounting: the binding reserves the pod's request until
    // teardown. The scheduler's capacity filter should make overcommit
    // impossible; a warning here means the two disagree.
    work_[pod_name].reserved = pod->resources;
    used_ += pod->resources;
    if (config_.allocatable.limited() &&
        ((config_.allocatable.cpu_millicores != 0 &&
          used_.cpu_millicores > config_.allocatable.cpu_millicores) ||
         (config_.allocatable.memory_bytes != 0 &&
          used_.memory_bytes > config_.allocatable.memory_bytes))) {
        log_.warn("pod " + pod_name + " overcommits node " +
                  std::to_string(node_.value) + " allocatable");
    }

    sim::SpanId pod_span = 0;
    if (auto* tr = sim_.tracer()) {
        pod_span = tr->begin("k8s.pod_start");
        tr->arg(pod_span, "pod", pod_name);
    }

    // Move the pod to Creating (containers not yet up).
    {
        PodObj updated = *pod;
        updated.phase = PodPhase::kCreating;
        updated.phase_since = sim_.now();
        api_.request([this, updated] {
            if (api_.pods().get(updated.name) != nullptr) {
                api_.pods().upsert(updated.name, updated);
            }
        });
    }

    // 1. Image pull (IfNotPresent -- a no-op when cached).
    pull_images(spec, [this, pod_name, spec, pod_port, pod_span](bool ok) {
        if (!ok) {
            log_.warn("image pull failed for pod " + pod_name);
            starting_.erase(pod_name);
            if (auto* tr = sim_.tracer()) {
                if (pod_span != 0) {
                    tr->arg(pod_span, "ok", "false");
                    tr->end(pod_span);
                }
            }
            return;
        }
        // 2. Pod sandbox: pause container, network namespace via CNI,
        //    cgroup hierarchy. The dominant fixed cost of a K8s pod start.
        const sim::SimTime sandbox = sim::from_seconds(rng_.lognormal_median(
            config_.sandbox_median.seconds(), config_.sandbox_sigma));
        sim_.schedule(sandbox, [this, pod_name, spec, pod_port, pod_span] {
            // 3. Create + start each container inside the sandbox.
            auto remaining = std::make_shared<std::size_t>(spec.containers.size());
            for (const auto& tmpl : spec.containers) {
                container::ContainerConfig config;
                config.name = pod_name + "." + tmpl.name;
                config.image = tmpl.image;
                config.app = tmpl.app;
                config.volumes = tmpl.volumes;
                config.env = tmpl.env;
                config.labels = spec.labels;
                config.labels["io.kubernetes.pod.name"] = pod_name;
                const std::uint16_t host_port =
                    (tmpl.container_port != 0 && tmpl.container_port == spec.target_port)
                        ? pod_port
                        : 0;
                runtime_.create(std::move(config),
                                [this, pod_name, host_port, pod_span,
                                 remaining](container::ContainerId id) {
                    work_[pod_name].containers.push_back(id);
                    runtime_.start(id, host_port,
                                   [this, pod_name, remaining, pod_span] {
                        if (--*remaining > 0) return;
                        // 4. All containers running: report status. Without a
                        // readinessProbe, Kubernetes marks the pod Ready as
                        // soon as its containers are running.
                        sim_.schedule(config_.status_update,
                                      [this, pod_name, pod_span] {
                            const auto* p = api_.pods().get(pod_name);
                            if (p == nullptr || p->phase == PodPhase::kTerminating) {
                                if (auto* tr = sim_.tracer()) {
                                    if (pod_span != 0) tr->end(pod_span);
                                }
                                return;
                            }
                            PodObj updated = *p;
                            updated.phase = PodPhase::kRunning;
                            updated.ready = true;
                            updated.phase_since = sim_.now();
                            api_.request([this, updated] {
                                if (api_.pods().get(updated.name) != nullptr) {
                                    api_.pods().upsert(updated.name, updated);
                                }
                            });
                            ++pods_started_;
                            starting_.erase(pod_name);
                            if (auto* tr = sim_.tracer()) {
                                if (pod_span != 0) {
                                    tr->arg(pod_span, "ok", "true");
                                    tr->end(pod_span);
                                }
                            }
                            if (auto* m = sim_.metrics()) {
                                m->counter("k8s.pods_started").inc();
                            }
                        });
                    });
                });
            }
        });
    });
}

void Kubelet::teardown_pod(const std::string& pod_name) {
    auto& work = work_[pod_name];
    if (work.tearing_down) return;
    work.tearing_down = true;

    auto containers = work.containers;
    auto remaining = std::make_shared<std::size_t>(containers.size());
    auto finish = [this, pod_name, reserved = work.reserved] {
        used_.cpu_millicores -= reserved.cpu_millicores <= used_.cpu_millicores
                                    ? reserved.cpu_millicores
                                    : used_.cpu_millicores;
        used_.memory_bytes -= reserved.memory_bytes <= used_.memory_bytes
                                  ? reserved.memory_bytes
                                  : used_.memory_bytes;
        work_.erase(pod_name);
        starting_.erase(pod_name);
        api_.request([this, pod_name] { api_.pods().erase(pod_name); });
    };
    if (containers.empty()) {
        sim_.schedule(config_.teardown_grace, finish);
        return;
    }
    sim_.schedule(config_.teardown_grace, [this, containers, remaining, finish] {
        for (const auto id : containers) {
            runtime_.stop(id, [this, id, remaining, finish] {
                runtime_.remove(id, [remaining, finish] {
                    if (--*remaining == 0) finish();
                });
            });
        }
    });
}

} // namespace tedge::orchestrator::k8s
