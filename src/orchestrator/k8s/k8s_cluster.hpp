// K8sCluster: the Cluster facade over the simulated Kubernetes control
// plane. Create makes a Deployment (replicas=0, "scale to zero") plus a
// Service; Scale Up patches the Deployment and lets the control loops do
// their work: deployment controller -> replicaset controller -> scheduler ->
// kubelet (sandbox + containers) -> status -> endpoints -> kube-proxy. The
// exposed service port only accepts traffic after kube-proxy has programmed
// the rules AND the application inside the pod is listening -- which is why
// Kubernetes needs ~3 s where plain Docker needs well under one.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "orchestrator/cluster.hpp"
#include "orchestrator/k8s/api_server.hpp"
#include "orchestrator/k8s/controller_manager.hpp"
#include "orchestrator/k8s/kube_scheduler.hpp"
#include "orchestrator/k8s/kubelet.hpp"
#include "simcore/logging.hpp"

namespace tedge::orchestrator::k8s {

struct K8sClusterConfig {
    ApiServerConfig api;
    ControllerManagerConfig controllers;
    KubeSchedulerConfig scheduler;
    KubeletConfig kubelet;
    container::RuntimeCostModel runtime_costs;
    container::PullerConfig puller;
    sim::SimTime kubeproxy_program = sim::milliseconds(150); ///< iptables write
    sim::SimTime proxy_poll = sim::milliseconds(20);         ///< alias readiness poll
    /// Uniform per-node CPU/mem budget; default unlimited. Propagated to the
    /// kube-scheduler's capacity filter and each kubelet's allocatable.
    ResourceCapacity node_capacity;
};

class K8sCluster final : public Cluster {
public:
    K8sCluster(std::string name, sim::Simulation& sim, net::Topology& topo,
               std::vector<net::NodeId> nodes, net::EndpointDirectory& endpoints,
               RegistryDirectory& registries, sim::Rng rng,
               K8sClusterConfig config = {});
    ~K8sCluster() override;

    [[nodiscard]] const std::string& name() const override { return name_; }
    [[nodiscard]] net::NodeId location() const override { return nodes_.front(); }

    void ensure_image(const ServiceSpec& spec, PullCallback done) override;
    [[nodiscard]] bool has_image(const ServiceSpec& spec) const override;
    void create_service(const ServiceSpec& spec, BoolCallback done) override;
    [[nodiscard]] bool has_service(const std::string& name) const override;
    void scale_up(const std::string& name, BoolCallback done) override;
    void scale_down(const std::string& name, BoolCallback done) override;
    void remove_service(const std::string& name, BoolCallback done) override;
    void delete_image(const ServiceSpec& spec) override;
    [[nodiscard]] std::vector<InstanceInfo>
    instances(const std::string& name) const override;
    [[nodiscard]] std::size_t total_instances() const override;
    [[nodiscard]] ClusterUtilization utilization() const override;
    [[nodiscard]] AdmissionReason admits(const ServiceSpec& spec) const override;

    [[nodiscard]] ApiServer& api() { return api_; }
    [[nodiscard]] const ApiServer& api() const { return api_; }
    [[nodiscard]] KubeScheduler& scheduler() { return scheduler_; }
    [[nodiscard]] const std::vector<net::NodeId>& nodes() const { return nodes_; }

private:
    struct NodeAgents {
        net::NodeId node;
        container::ImageStore store;
        std::unique_ptr<container::Puller> puller;
        std::unique_ptr<container::ContainerRuntime> runtime;
        std::unique_ptr<Kubelet> kubelet;
    };

    /// kube-proxy programming state for one (service, node) pair.
    struct ProxyAlias {
        bool open = false;
        sim::Simulation::PeriodicHandle poll;
    };

    void reconcile_proxy(const std::string& svc_name);
    void open_alias(const std::string& svc_name, net::NodeId node,
                    std::uint16_t expose_port);
    void close_alias(const std::string& svc_name, net::NodeId node,
                     std::uint16_t expose_port);
    NodeAgents& agents_for(net::NodeId node);

    std::string name_;
    sim::Simulation& sim_;
    net::Topology& topo_;
    std::vector<net::NodeId> nodes_;
    net::EndpointDirectory& endpoints_;
    RegistryDirectory& registries_;
    K8sClusterConfig config_;
    ApiServer api_;
    ControllerManager controllers_;
    KubeScheduler scheduler_;
    std::vector<std::unique_ptr<NodeAgents>> agents_;
    sim::Logger log_;
    /// (service name, node id) -> alias state
    std::map<std::pair<std::string, std::uint32_t>, ProxyAlias> aliases_;
    /// round-robin cursor per service for multi-endpoint forwarding
    std::map<std::string, std::size_t> rr_cursor_;
    std::set<std::uint16_t> used_node_ports_;
    std::uint16_t next_node_port_ = 30000;
    mutable ResourceRequest peak_used_;  ///< high-water mark of pod requests
    std::uint64_t admissions_ = 0;
    std::uint64_t rejections_ = 0;

    std::uint16_t allocate_node_port(std::uint16_t preferred);
    /// Summed requests of all non-terminating pods (bound or pending).
    [[nodiscard]] ResourceRequest pods_used() const;
};

} // namespace tedge::orchestrator::k8s
