// Kubernetes API object model (the subset the paper's pipeline touches):
// Deployments, ReplicaSets, Pods, and Services with endpoints.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "orchestrator/cluster.hpp"
#include "simcore/time.hpp"

namespace tedge::orchestrator::k8s {

struct DeploymentObj {
    std::string name;
    ServiceSpec spec;
    int replicas = 0;
    std::uint64_t generation = 0;
};

struct ReplicaSetObj {
    std::string name;
    std::string owner;  ///< owning Deployment
    ServiceSpec spec;
    int replicas = 0;
};

enum class PodPhase {
    kPending,      ///< created, possibly not yet bound to a node
    kCreating,     ///< kubelet building sandbox + containers
    kRunning,      ///< all containers started
    kTerminating,
};

[[nodiscard]] inline const char* to_string(PodPhase phase) {
    switch (phase) {
        case PodPhase::kPending: return "Pending";
        case PodPhase::kCreating: return "Creating";
        case PodPhase::kRunning: return "Running";
        case PodPhase::kTerminating: return "Terminating";
    }
    return "?";
}

struct PodObj {
    std::string name;
    std::string owner_rs;
    ServiceSpec spec;
    std::string scheduler_name;    ///< empty -> default scheduler
    net::NodeId node;              ///< invalid until bound
    PodPhase phase = PodPhase::kPending;
    bool ready = false;            ///< containers running (no probes defined)
    std::uint16_t pod_port = 0;    ///< models the pod IP:targetPort endpoint
    ResourceRequest resources;     ///< summed container requests (pod unit)
    sim::SimTime phase_since;
};

struct EndpointEntry {
    std::string pod;
    net::NodeId node;
    std::uint16_t pod_port = 0;
    bool operator==(const EndpointEntry&) const = default;
};

struct ServiceObj {
    std::string name;
    std::uint16_t expose_port = 0;   ///< the Service's declared port
    std::uint16_t node_port = 0;     ///< NodePort where traffic enters the node
    std::uint16_t target_port = 0;
    std::map<std::string, std::string> selector;
    std::vector<EndpointEntry> endpoints;  ///< maintained by endpoints controller
};

enum class WatchEventType { kAdded, kModified, kDeleted };

struct WatchEvent {
    WatchEventType type;
    std::string name;
};

} // namespace tedge::orchestrator::k8s
