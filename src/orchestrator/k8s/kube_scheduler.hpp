// kube-scheduler: binds pending pods to nodes. The placement policy is
// pluggable -- the paper's Local Scheduler (fig. 6) maps onto a named
// PodPlacementPolicy registered here and selected per pod via the
// schedulerName annotation.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "orchestrator/k8s/api_server.hpp"

namespace tedge::orchestrator::k8s {

/// Chooses a node for a pod among the feasible candidates.
class PodPlacementPolicy {
public:
    virtual ~PodPlacementPolicy() = default;
    [[nodiscard]] virtual std::optional<net::NodeId>
    pick(const PodObj& pod, const std::vector<net::NodeId>& nodes,
         const ApiServer& api) = 0;
};

/// Default policy: the node with the fewest bound pods (LeastAllocated).
class LeastPodsPolicy final : public PodPlacementPolicy {
public:
    [[nodiscard]] std::optional<net::NodeId>
    pick(const PodObj& pod, const std::vector<net::NodeId>& nodes,
         const ApiServer& api) override;
};

struct KubeSchedulerConfig {
    /// Queue wait + scheduling cycle + binding preparation.
    sim::SimTime scheduling_latency = sim::milliseconds(60);
    /// Per-node CPU/mem budget; default unlimited. When limited, the
    /// scheduler filters out nodes whose free capacity cannot hold the
    /// pod's request before the placement policy scores the survivors --
    /// this is what keeps per-node admitted work <= capacity.
    ResourceCapacity node_capacity;
};

class KubeScheduler {
public:
    KubeScheduler(sim::Simulation& sim, ApiServer& api,
                  std::vector<net::NodeId> nodes, KubeSchedulerConfig config = {});

    /// Register a named policy (the paper's Local Scheduler). The default
    /// policy handles pods without a schedulerName.
    void register_policy(const std::string& name,
                         std::unique_ptr<PodPlacementPolicy> policy);

    void start();

    [[nodiscard]] std::uint64_t pods_scheduled() const { return scheduled_; }
    [[nodiscard]] std::uint64_t pods_unschedulable() const { return unschedulable_; }

    /// Requests of bound, non-terminating pods on `node`.
    [[nodiscard]] ResourceRequest node_used(net::NodeId node) const;

    /// Nodes whose free capacity can hold `request` (all of them when the
    /// capacity is unlimited).
    [[nodiscard]] std::vector<net::NodeId>
    feasible_nodes(const ResourceRequest& request) const;

private:
    void try_schedule(const std::string& pod_name);

    sim::Simulation& sim_;
    ApiServer& api_;
    std::vector<net::NodeId> nodes_;
    KubeSchedulerConfig config_;
    LeastPodsPolicy default_policy_;
    std::map<std::string, std::unique_ptr<PodPlacementPolicy>> policies_;
    std::uint64_t scheduled_ = 0;
    std::uint64_t unschedulable_ = 0;
    bool started_ = false;
};

} // namespace tedge::orchestrator::k8s
