#include "orchestrator/k8s/api_server.hpp"

namespace tedge::orchestrator::k8s {

ApiServer::ApiServer(sim::Simulation& sim, ApiServerConfig config)
    : sim_(sim), config_(config), deployments_(sim, config_),
      replicasets_(sim, config_), pods_(sim, config_), services_(sim, config_) {}

void ApiServer::request(std::function<void()> mutation, std::function<void()> done) {
    ++requests_;
    sim_.schedule(config_.request_latency,
                  [mutation = std::move(mutation), done = std::move(done)] {
                      mutation();
                      if (done) done();
                  });
}

} // namespace tedge::orchestrator::k8s
