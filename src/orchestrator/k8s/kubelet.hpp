// kubelet: the per-node agent. Reacts to pod bindings, pulls missing
// images, builds the pod sandbox (pause container + CNI network namespace --
// the dominant fixed cost of a Kubernetes pod start), creates and starts the
// containers through the node's container runtime, and reports status back
// through the API server.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "container/puller.hpp"
#include "container/runtime.hpp"
#include "orchestrator/cluster.hpp"
#include "orchestrator/k8s/api_server.hpp"
#include "simcore/logging.hpp"
#include "simcore/random.hpp"

namespace tedge::orchestrator::k8s {

struct KubeletConfig {
    sim::SimTime sync_latency = sim::milliseconds(80);    ///< reaction to binding
    sim::SimTime sandbox_median = sim::milliseconds(1400); ///< pause + CNI + cgroups
    double sandbox_sigma = 0.12;
    sim::SimTime status_update = sim::milliseconds(10);
    sim::SimTime teardown_grace = sim::milliseconds(100);
    /// Node CPU/mem budget reported as node state; default unlimited. The
    /// kube-scheduler's capacity filter is the admission point -- the
    /// kubelet tracks usage and warns if a binding ever overcommits it.
    ResourceCapacity allocatable;
};

class Kubelet {
public:
    Kubelet(sim::Simulation& sim, ApiServer& api, net::NodeId node,
            container::ContainerRuntime& runtime, container::Puller& puller,
            RegistryDirectory& registries, sim::Rng rng, KubeletConfig config = {});

    void start();

    [[nodiscard]] net::NodeId node() const { return node_; }
    [[nodiscard]] std::uint64_t pods_started() const { return pods_started_; }
    [[nodiscard]] const ResourceCapacity& allocatable() const {
        return config_.allocatable;
    }
    /// Requests of pods this kubelet has started and not yet torn down.
    [[nodiscard]] const ResourceRequest& used_resources() const { return used_; }

private:
    struct PodWork {
        std::vector<container::ContainerId> containers;
        ResourceRequest reserved;  ///< released when the pod tears down
        bool tearing_down = false;
    };

    void sync_pod(const std::string& pod_name);
    void start_pod(const std::string& pod_name);
    void teardown_pod(const std::string& pod_name);
    void pull_images(const ServiceSpec& spec, std::function<void(bool)> done);

    sim::Simulation& sim_;
    ApiServer& api_;
    net::NodeId node_;
    container::ContainerRuntime& runtime_;
    container::Puller& puller_;
    RegistryDirectory& registries_;
    sim::Rng rng_;
    KubeletConfig config_;
    sim::Logger log_;
    std::map<std::string, PodWork> work_;
    ResourceRequest used_;  ///< summed `reserved` across live pods
    std::set<std::string> starting_;  ///< pods whose startup is in flight
    std::uint64_t pods_started_ = 0;
    bool started_ = false;
};

} // namespace tedge::orchestrator::k8s
