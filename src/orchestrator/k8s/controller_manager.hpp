// kube-controller-manager: the deployment, replicaset, and endpoints
// control loops. Each loop reacts to watch events after its sync latency and
// writes desired state back through the API server -- never directly, so
// every hop pays realistic propagation costs.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

#include "orchestrator/k8s/api_server.hpp"

namespace tedge::orchestrator::k8s {

struct ControllerManagerConfig {
    sim::SimTime deployment_sync = sim::milliseconds(35);
    sim::SimTime replicaset_sync = sim::milliseconds(35);
    sim::SimTime endpoints_sync = sim::milliseconds(40);
    std::uint16_t pod_port_base = 20000;  ///< models per-pod IP:targetPort
};

class ControllerManager {
public:
    ControllerManager(sim::Simulation& sim, ApiServer& api,
                      ControllerManagerConfig config = {});

    /// Register the watches; call once after construction.
    void start();

    [[nodiscard]] std::uint64_t deployment_syncs() const { return deployment_syncs_; }
    [[nodiscard]] std::uint64_t replicaset_syncs() const { return replicaset_syncs_; }

private:
    void sync_deployment(const std::string& name);
    void sync_replicaset(const std::string& name);
    void sync_endpoints();

    sim::Simulation& sim_;
    ApiServer& api_;
    ControllerManagerConfig config_;
    // Expectations (as in kube-controller-manager): pod writes requested but
    // not yet observable through the API server. Without them, two syncs of
    // the same replicaset racing within one API round-trip both see the old
    // pod count and both act -- duplicate pods on create, double deletes on
    // scale-down.
    std::map<std::string, int> pending_creates_;       ///< rs name -> in-flight pod creates
    std::set<std::string> pending_terminations_;       ///< pod names being terminated
    std::uint64_t pod_counter_ = 0;
    std::uint16_t next_pod_port_;
    std::uint64_t deployment_syncs_ = 0;
    std::uint64_t replicaset_syncs_ = 0;
    bool started_ = false;
};

} // namespace tedge::orchestrator::k8s
