// The Kubernetes API server: a typed object store with asynchronous request
// latency and watch fan-out. Every control-loop hop in the cluster crosses
// this component, which is precisely where the paper's ~3 s Kubernetes
// scale-up overhead accumulates.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "orchestrator/k8s/objects.hpp"
#include "simcore/simulation.hpp"

namespace tedge::orchestrator::k8s {

struct ApiServerConfig {
    sim::SimTime request_latency = sim::milliseconds(8);  ///< per API round trip
    sim::SimTime watch_latency = sim::milliseconds(25);   ///< event propagation
};

/// One typed collection with watch support.
template <typename T>
class ObjectStore {
public:
    using Watcher = std::function<void(const WatchEvent&)>;

    explicit ObjectStore(sim::Simulation& sim, ApiServerConfig& config)
        : sim_(&sim), config_(&config) {}

    [[nodiscard]] const T* get(const std::string& name) const {
        const auto it = items_.find(name);
        return it == items_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] T* get_mutable(const std::string& name) {
        const auto it = items_.find(name);
        return it == items_.end() ? nullptr : &it->second;
    }

    [[nodiscard]] std::vector<std::string> names() const {
        std::vector<std::string> out;
        out.reserve(items_.size());
        for (const auto& [name, item] : items_) out.push_back(name);
        return out;
    }

    [[nodiscard]] const std::map<std::string, T>& items() const { return items_; }
    [[nodiscard]] std::size_t size() const { return items_.size(); }

    void watch(Watcher watcher) { watchers_.push_back(std::move(watcher)); }

    // Store-side mutations (already past request latency; used by ApiServer).
    bool upsert(const std::string& name, T item) {
        const auto [it, inserted] = items_.insert_or_assign(name, std::move(item));
        notify(WatchEvent{inserted ? WatchEventType::kAdded : WatchEventType::kModified,
                          name});
        return inserted;
    }

    bool erase(const std::string& name) {
        if (items_.erase(name) == 0) return false;
        notify(WatchEvent{WatchEventType::kDeleted, name});
        return true;
    }

private:
    void notify(const WatchEvent& event) {
        for (const auto& w : watchers_) {
            sim_->schedule(config_->watch_latency, [w, event] { w(event); });
        }
    }

    sim::Simulation* sim_;
    ApiServerConfig* config_;
    std::map<std::string, T> items_;
    std::vector<Watcher> watchers_;
};

class ApiServer {
public:
    explicit ApiServer(sim::Simulation& sim, ApiServerConfig config = {});

    /// Run `mutation` against the stores after one request round trip, then
    /// invoke `done` (if given). All writes go through here so request
    /// latency is uniformly charged.
    void request(std::function<void()> mutation, std::function<void()> done = {});

    [[nodiscard]] ObjectStore<DeploymentObj>& deployments() { return deployments_; }
    [[nodiscard]] ObjectStore<ReplicaSetObj>& replicasets() { return replicasets_; }
    [[nodiscard]] ObjectStore<PodObj>& pods() { return pods_; }
    [[nodiscard]] ObjectStore<ServiceObj>& services() { return services_; }
    [[nodiscard]] const ObjectStore<DeploymentObj>& deployments() const {
        return deployments_;
    }
    [[nodiscard]] const ObjectStore<ReplicaSetObj>& replicasets() const {
        return replicasets_;
    }
    [[nodiscard]] const ObjectStore<PodObj>& pods() const { return pods_; }
    [[nodiscard]] const ObjectStore<ServiceObj>& services() const { return services_; }

    [[nodiscard]] const ApiServerConfig& config() const { return config_; }
    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] std::uint64_t request_count() const { return requests_; }

private:
    sim::Simulation& sim_;
    ApiServerConfig config_;
    ObjectStore<DeploymentObj> deployments_;
    ObjectStore<ReplicaSetObj> replicasets_;
    ObjectStore<PodObj> pods_;
    ObjectStore<ServiceObj> services_;
    std::uint64_t requests_ = 0;
};

} // namespace tedge::orchestrator::k8s
