#include "orchestrator/k8s/kube_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::orchestrator::k8s {

std::optional<net::NodeId>
LeastPodsPolicy::pick(const PodObj& /*pod*/, const std::vector<net::NodeId>& nodes,
                      const ApiServer& api) {
    if (nodes.empty()) return std::nullopt;
    std::optional<net::NodeId> best;
    std::size_t best_count = std::numeric_limits<std::size_t>::max();
    for (const auto node : nodes) {
        std::size_t count = 0;
        for (const auto& [name, pod] : api.pods().items()) {
            if (pod.node == node && pod.phase != PodPhase::kTerminating) ++count;
        }
        if (count < best_count) {
            best_count = count;
            best = node;
        }
    }
    return best;
}

KubeScheduler::KubeScheduler(sim::Simulation& sim, ApiServer& api,
                             std::vector<net::NodeId> nodes,
                             KubeSchedulerConfig config)
    : sim_(sim), api_(api), nodes_(std::move(nodes)), config_(config) {}

void KubeScheduler::register_policy(const std::string& name,
                                    std::unique_ptr<PodPlacementPolicy> policy) {
    policies_[name] = std::move(policy);
}

void KubeScheduler::start() {
    if (started_) return;
    started_ = true;
    api_.pods().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.scheduling_latency,
                      [this, name = event.name] { try_schedule(name); });
    });
}

ResourceRequest KubeScheduler::node_used(net::NodeId node) const {
    ResourceRequest used;
    for (const auto& [name, pod] : api_.pods().items()) {
        if (pod.node == node && pod.phase != PodPhase::kTerminating) {
            used += pod.resources;
        }
    }
    return used;
}

std::vector<net::NodeId>
KubeScheduler::feasible_nodes(const ResourceRequest& request) const {
    if (!config_.node_capacity.limited()) return nodes_;
    std::vector<net::NodeId> feasible;
    for (const auto node : nodes_) {
        ResourceLedger ledger(config_.node_capacity);
        ledger.admit(node_used(node));
        if (ledger.check(request) == AdmissionReason::kAdmitted) {
            feasible.push_back(node);
        }
    }
    return feasible;
}

void KubeScheduler::try_schedule(const std::string& pod_name) {
    const auto* pod = api_.pods().get(pod_name);
    if (pod == nullptr || pod->node.valid() || pod->phase != PodPhase::kPending) {
        return;
    }
    PodPlacementPolicy* policy = &default_policy_;
    if (!pod->scheduler_name.empty()) {
        const auto it = policies_.find(pod->scheduler_name);
        if (it != policies_.end()) policy = it->second.get();
    }
    // Capacity filter runs before the policy (mirrors the NodeResourcesFit
    // plugin): the policy only scores nodes the pod actually fits on.
    const auto feasible = feasible_nodes(pod->resources);
    if (feasible.empty()) {
        ++unschedulable_;
        if (auto* m = sim_.metrics()) m->counter("k8s.unschedulable").inc();
        return; // unschedulable; a real scheduler would retry/backoff
    }
    const auto node = policy->pick(*pod, feasible, api_);
    if (!node) return; // unschedulable; a real scheduler would retry/backoff

    PodObj updated = *pod;
    updated.node = *node;
    sim::SpanId bind_span = 0;
    if (auto* tr = sim_.tracer()) {
        bind_span = tr->begin("k8s.schedule_bind");
        tr->arg(bind_span, "pod", pod_name);
        tr->arg(bind_span, "node", std::to_string(node->value));
    }
    api_.request([this, updated, bind_span] {
        // Re-check the pod still exists (it may have been terminated while
        // the binding request was in flight).
        if (api_.pods().get(updated.name) != nullptr) {
            api_.pods().upsert(updated.name, updated);
            ++scheduled_;
            if (auto* m = sim_.metrics()) m->counter("k8s.binds").inc();
        }
        if (auto* tr = sim_.tracer()) {
            if (bind_span != 0) tr->end(bind_span);
        }
    });
}

} // namespace tedge::orchestrator::k8s
