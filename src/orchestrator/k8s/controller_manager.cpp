#include "orchestrator/k8s/controller_manager.hpp"

#include <algorithm>
#include <vector>

namespace tedge::orchestrator::k8s {

ControllerManager::ControllerManager(sim::Simulation& sim, ApiServer& api,
                                     ControllerManagerConfig config)
    : sim_(sim), api_(api), config_(config),
      next_pod_port_(config.pod_port_base) {}

void ControllerManager::start() {
    if (started_) return;
    started_ = true;

    api_.deployments().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.deployment_sync,
                      [this, name = event.name] { sync_deployment(name); });
    });
    api_.replicasets().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.replicaset_sync,
                      [this, name = event.name] { sync_replicaset(name); });
    });
    // Pod lifecycle changes drive both the owning replicaset (replacements)
    // and the endpoints of any selecting service.
    api_.pods().watch([this](const WatchEvent& event) {
        sim_.schedule(config_.endpoints_sync, [this] { sync_endpoints(); });
        if (event.type == WatchEventType::kDeleted) {
            // The owner RS may need a replacement pod.
            sim_.schedule(config_.replicaset_sync, [this] {
                for (const auto& name : api_.replicasets().names()) {
                    sync_replicaset(name);
                }
            });
        }
    });
    api_.services().watch([this](const WatchEvent& event) {
        if (event.type == WatchEventType::kDeleted) return;
        sim_.schedule(config_.endpoints_sync, [this] { sync_endpoints(); });
    });
}

void ControllerManager::sync_deployment(const std::string& name) {
    ++deployment_syncs_;
    const auto* deployment = api_.deployments().get(name);
    if (deployment == nullptr) return;
    const std::string rs_name = name + "-rs";
    const auto* rs = api_.replicasets().get(rs_name);

    if (rs == nullptr) {
        ReplicaSetObj new_rs;
        new_rs.name = rs_name;
        new_rs.owner = name;
        new_rs.spec = deployment->spec;
        new_rs.replicas = deployment->replicas;
        api_.request([this, new_rs] {
            api_.replicasets().upsert(new_rs.name, new_rs);
        });
        return;
    }
    if (rs->replicas != deployment->replicas) {
        ReplicaSetObj updated = *rs;
        updated.replicas = deployment->replicas;
        api_.request([this, updated] {
            api_.replicasets().upsert(updated.name, updated);
        });
    }
}

void ControllerManager::sync_replicaset(const std::string& name) {
    ++replicaset_syncs_;
    const auto* rs = api_.replicasets().get(name);
    if (rs == nullptr) return;

    // Pods with an in-flight termination request count as already gone;
    // in-flight creates count as already present. This mirrors the
    // expectations mechanism in kube-controller-manager and keeps two syncs
    // racing within one API round-trip from both acting on stale counts.
    std::vector<const PodObj*> owned;
    for (const auto& [pod_name, pod] : api_.pods().items()) {
        if (pod.owner_rs == name && pod.phase != PodPhase::kTerminating &&
            pending_terminations_.count(pod_name) == 0) {
            owned.push_back(&pod);
        }
    }

    const int want = rs->replicas;
    const int have = static_cast<int>(owned.size()) + pending_creates_[name];

    if (have < want) {
        for (int i = 0; i < want - have; ++i) {
            PodObj pod;
            pod.name = name + "-" + std::to_string(pod_counter_++);
            pod.owner_rs = name;
            pod.spec = rs->spec;
            pod.scheduler_name = rs->spec.scheduler_name;
            pod.resources = rs->spec.resource_request();
            pod.pod_port = next_pod_port_++;
            if (next_pod_port_ < config_.pod_port_base) {
                next_pod_port_ = config_.pod_port_base; // wrapped
            }
            pod.phase = PodPhase::kPending;
            pod.phase_since = sim_.now();
            ++pending_creates_[name];
            api_.request([this, pod, name] {
                --pending_creates_[name];
                api_.pods().upsert(pod.name, pod);
            });
        }
    } else if (have > want) {
        // Terminate the newest pods first (Kubernetes' default preference is
        // similar: not-ready and youngest first).
        std::sort(owned.begin(), owned.end(), [](const PodObj* a, const PodObj* b) {
            if (a->ready != b->ready) return !a->ready; // not-ready first
            return a->phase_since > b->phase_since;     // youngest first
        });
        for (int i = 0; i < have - want; ++i) {
            PodObj updated = *owned[static_cast<std::size_t>(i)];
            updated.phase = PodPhase::kTerminating;
            updated.ready = false;
            updated.phase_since = sim_.now();
            pending_terminations_.insert(updated.name);
            api_.request([this, updated] {
                pending_terminations_.erase(updated.name);
                api_.pods().upsert(updated.name, updated);
            });
        }
    }
}

void ControllerManager::sync_endpoints() {
    for (const auto& [svc_name, svc] : api_.services().items()) {
        std::vector<EndpointEntry> endpoints;
        for (const auto& [pod_name, pod] : api_.pods().items()) {
            if (pod.phase != PodPhase::kRunning || !pod.ready) continue;
            if (!pod.node.valid()) continue;
            // Selector match: every selector pair must appear in pod labels
            // (ServiceSpec labels carry edge.service=<name>).
            bool match = true;
            for (const auto& [k, v] : svc.selector) {
                const auto it = pod.spec.labels.find(k);
                if (it == pod.spec.labels.end() || it->second != v) {
                    match = false;
                    break;
                }
            }
            if (!match) continue;
            endpoints.push_back(EndpointEntry{pod_name, pod.node, pod.pod_port});
        }
        if (endpoints != svc.endpoints) {
            ServiceObj updated = svc;
            updated.endpoints = std::move(endpoints);
            api_.request([this, updated] { api_.services().upsert(updated.name, updated); });
        }
    }
}

} // namespace tedge::orchestrator::k8s
