// The cluster abstraction the SDN controller deploys to.
//
// The paper's deployment pipeline is cluster-type agnostic: the same service
// definition drives both a Docker host and a Kubernetes cluster, through the
// three phases Pull / Create / Scale Up (fig. 4), plus Scale Down / Remove /
// Delete for teardown. Each edge cluster implements this interface.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/app_profile.hpp"
#include "container/image.hpp"
#include "container/puller.hpp"
#include "container/registry.hpp"
#include "container/runtime.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "orchestrator/resources.hpp"

namespace tedge::orchestrator {

/// One container within a service (a Kubernetes pod member or a member of a
/// Docker multi-container group).
struct ContainerTemplate {
    std::string name;
    container::ImageRef image;
    const container::AppProfile* app = nullptr;
    std::uint16_t container_port = 0;  ///< port the app listens on (0 = none)
    std::vector<container::VolumeMount> volumes;
    std::map<std::string, std::string> env;
    ResourceRequest resources;  ///< requested CPU/mem (zero = request nothing)
};

/// A fully-annotated edge service definition (the output of the Annotator).
struct ServiceSpec {
    std::string name;                    ///< unique worldwide service name
    net::ServiceAddress cloud_address;   ///< the registered (perceived) address
    std::uint16_t expose_port = 0;       ///< port of the generated Service
    std::uint16_t target_port = 0;       ///< container port traffic goes to
    std::vector<ContainerTemplate> containers;
    std::map<std::string, std::string> labels;  ///< includes "edge.service"
    int replicas = 0;                    ///< initial replicas ("scale to zero")
    std::string scheduler_name;          ///< Local Scheduler, may be empty

    [[nodiscard]] bool valid() const {
        return !name.empty() && !containers.empty() && expose_port != 0 &&
               target_port != 0;
    }

    /// Resources one instance of this service reserves: the sum of its
    /// containers' requests (a pod is scheduled as a unit).
    [[nodiscard]] ResourceRequest resource_request() const {
        ResourceRequest total;
        for (const auto& c : containers) total += c.resources;
        return total;
    }
};

/// A running (or starting) service instance inside a cluster.
struct InstanceInfo {
    std::string service;
    net::NodeId node;
    std::uint16_t port = 0;   ///< where the instance accepts traffic
    bool ready = false;       ///< accepting connections end to end
    sim::SimTime since;       ///< when the instance reached its current state
};

/// Registry lookup shared by all clusters: which Registry serves a given
/// registry host (plus an optional pull-through mirror override).
class RegistryDirectory {
public:
    void add(container::Registry& registry) { by_host_[registry.host()] = &registry; }

    /// Route all pulls to `mirror` regardless of image registry host (models
    /// the paper's private in-network registry experiment).
    void set_mirror(container::Registry* mirror) { mirror_ = mirror; }

    [[nodiscard]] container::Registry* resolve(const container::ImageRef& ref) const {
        if (mirror_ != nullptr) return mirror_;
        const auto it = by_host_.find(ref.registry);
        return it == by_host_.end() ? nullptr : it->second;
    }

private:
    std::map<std::string, container::Registry*> by_host_;
    container::Registry* mirror_ = nullptr;
};

class Cluster {
public:
    using BoolCallback = std::function<void(bool ok)>;
    using PullCallback = std::function<void(bool ok, const container::PullTiming&)>;

    virtual ~Cluster() = default;

    [[nodiscard]] virtual const std::string& name() const = 0;

    /// Representative network location of the cluster (its ingress node);
    /// schedulers use this for proximity decisions.
    [[nodiscard]] virtual net::NodeId location() const = 0;

    // --- Pull phase ------------------------------------------------------
    virtual void ensure_image(const ServiceSpec& spec, PullCallback done) = 0;
    [[nodiscard]] virtual bool has_image(const ServiceSpec& spec) const = 0;

    // --- Create phase ----------------------------------------------------
    virtual void create_service(const ServiceSpec& spec, BoolCallback done) = 0;
    [[nodiscard]] virtual bool has_service(const std::string& name) const = 0;

    // --- Scale Up / Scale Down ------------------------------------------
    virtual void scale_up(const std::string& name, BoolCallback done) = 0;
    virtual void scale_down(const std::string& name, BoolCallback done) = 0;

    // --- Remove / Delete --------------------------------------------------
    virtual void remove_service(const std::string& name, BoolCallback done) = 0;
    virtual void delete_image(const ServiceSpec& spec) = 0;

    /// Current instances (running or starting) of a service.
    [[nodiscard]] virtual std::vector<InstanceInfo>
    instances(const std::string& name) const = 0;

    /// Total service instances currently placed on the cluster (running or
    /// starting, across all services) -- the load signal schedulers use.
    [[nodiscard]] virtual std::size_t total_instances() const = 0;

    // --- Resource model (DESIGN §10) --------------------------------------
    // Default: unlimited. Clusters without a configured capacity admit
    // everything and report a zero (unlimited) utilization snapshot, so
    // existing scenarios are unaffected.

    /// Aggregate capacity/usage snapshot for pressure-aware schedulers.
    [[nodiscard]] virtual ClusterUtilization utilization() const { return {}; }

    /// Would one more instance of `spec` fit right now? Used by the
    /// DeploymentEngine as a pre-flight check and by schedulers to skip
    /// full clusters before committing to a placement.
    [[nodiscard]] virtual AdmissionReason admits(const ServiceSpec& spec) const {
        (void)spec;
        return AdmissionReason::kAdmitted;
    }

    /// Instances accepting traffic right now.
    [[nodiscard]] std::vector<InstanceInfo>
    ready_instances(const std::string& name) const {
        std::vector<InstanceInfo> out;
        for (auto& i : instances(name)) {
            if (i.ready) out.push_back(i);
        }
        return out;
    }
};

} // namespace tedge::orchestrator
