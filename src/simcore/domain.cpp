#include "simcore/domain.hpp"

#include <stdexcept>
#include <utility>

#include "simcore/sharded_simulation.hpp"

namespace tedge::sim {

Domain::Domain(ShardedSimulation& coordinator, DomainId id, std::string name,
               QueueBackend backend, std::uint64_t run_seed)
    : coordinator_(&coordinator),
      id_(id),
      name_(std::move(name)),
      sim_(backend),
      rng_(Rng::for_stream(run_seed, id)) {}

void Domain::enable_tracing() {
    tracer_.attach(sim_);
    tracer_.enable();
}

Logger Domain::make_logger(const std::string& component, LogLevel level) {
    Logger logger(sim_, component, level);
    logger.set_sink(log_buffer_.sink());
    return logger;
}

SimTime Domain::lookahead() const { return coordinator_->lookahead(); }

std::size_t Domain::domain_count() const { return coordinator_->domain_count(); }

void Domain::post(DomainId dst, SimTime at, EventQueue::Callback cb, bool daemon) {
    if (dst >= coordinator_->domain_count()) {
        throw std::out_of_range("Domain::post: unknown destination domain");
    }
    const SimTime lookahead = coordinator_->lookahead();
    // The conservative contract: the receiver may already be executing up to
    // lookahead ahead of this domain's clock, so anything earlier than
    // now + lookahead could land in its past. SimTime::max() means the
    // coordinator was never given a finite lookahead -- posting is an error.
    if (lookahead == SimTime::max()) {
        throw std::logic_error(
            "Domain::post: coordinator has no finite lookahead (set one from "
            "the topology partition before using cross-domain messages)");
    }
    if (at < sim_.now() + lookahead) {
        throw std::logic_error(
            "Domain::post: message timestamp violates the lookahead contract "
            "(at < now + lookahead)");
    }
    outbox_.push_back(Message{at, id_, dst, next_send_seq_++, std::move(cb), daemon});
}

} // namespace tedge::sim
