#include "simcore/domain.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "simcore/sharded_simulation.hpp"

namespace tedge::sim {

Domain::Domain(ShardedSimulation& coordinator, DomainId id, std::string name,
               QueueBackend backend, std::uint64_t run_seed)
    : coordinator_(&coordinator),
      id_(id),
      name_(std::move(name)),
      sim_(backend),
      rng_(Rng::for_stream(run_seed, id)) {
    // The coordinator's daemon fence is the max user timestamp scheduled
    // anywhere; every domain kernel reports its local contribution.
    sim_.track_user_horizon();
}

void Domain::enable_tracing() {
    tracer_.attach(sim_);
    tracer_.enable();
}

Logger Domain::make_logger(const std::string& component, LogLevel level) {
    Logger logger(sim_, component, level);
    logger.set_sink(log_buffer_.sink());
    return logger;
}

SimTime Domain::lookahead() const { return coordinator_->lookahead(); }

SimTime Domain::lookahead_to(DomainId dst) const {
    return coordinator_->channel_lookahead(id_, dst);
}

std::size_t Domain::domain_count() const { return coordinator_->domain_count(); }

void Domain::post(DomainId dst, SimTime at, EventQueue::Callback cb, bool daemon) {
    if (dst >= coordinator_->domain_count()) {
        throw std::out_of_range("Domain::post: unknown destination domain");
    }
    const SimTime lookahead = coordinator_->channel_lookahead(id_, dst);
    // The conservative contract: the receiver may already be executing up to
    // the channel lookahead ahead of this domain's clock, so anything earlier
    // than now + lookahead could land in its past. SimTime::max() means the
    // coordinator was never given a finite lookahead -- posting is an error.
    if (lookahead == SimTime::max()) {
        throw std::logic_error(
            "Domain::post: coordinator has no finite lookahead (set one from "
            "the topology partition before using cross-domain messages)");
    }
    if (at < sim_.now() + lookahead) {
        throw std::logic_error(
            "Domain::post: message timestamp violates the lookahead contract "
            "(at < now + channel lookahead)");
    }
    if (!daemon && at > posted_user_horizon_) posted_user_horizon_ = at;
    if (dst == id_) {
        // A self-post is a deferred local schedule: insert immediately. The
        // channel coordinator's window is bounded only by *other* domains'
        // horizons, so routing a self-post through the outbox could let this
        // domain execute past the timestamp before delivery; insertion at
        // post time is a fixed point of the domain's own deterministic
        // execution, identical under every coordinator and window structure.
        sim_.schedule_at(at, std::move(cb), daemon);
        ++delivered_;
        return;
    }
    outbox_.push_back(Message{at, id_, dst, next_send_seq_++, std::move(cb), daemon});
}

void Domain::stage_inbound(Message&& m) {
    if (!m.daemon) ++inbox_user_;
    inbox_.push_back(std::move(m));
    std::push_heap(inbox_.begin(), inbox_.end(), message_after);
}

void Domain::stage_inbound_batch(std::vector<Message>& batch) {
    for (auto& m : batch) stage_inbound(std::move(m));
    batch.clear();
}

SimTime Domain::next_work_time() const {
    SimTime next = inbox_next_time();
    if (sim_.has_pending_events()) next = std::min(next, sim_.next_time());
    return next;
}

bool Domain::has_eligible_work(SimTime fence) const {
    if (has_user_work()) return true;
    if (sim_.has_pending_events() && sim_.next_time() <= fence) return true;
    return !inbox_.empty() && inbox_.front().at <= fence;
}

SimTime Domain::user_horizon() const {
    return std::max(sim_.user_horizon(), posted_user_horizon_);
}

std::uint64_t Domain::advance_window(SimTime end, SimTime fence) {
    std::uint64_t executed = 0;
    for (;;) {
        const SimTime tm = inbox_next_time();
        const SimTime bound = std::min(end, tm);
        executed += sim_.run_window_fenced(bound, fence);
        if (sim_.has_pending_events() && sim_.next_time() < bound) {
            break;  // fence-blocked daemon; the window cannot pop past it
        }
        // A daemon message past the fence is not yet eligible; leaving it
        // staged (rather than inserting and blocking on it) keeps insertion —
        // and the delivered counter — window-structure independent. A *user*
        // message never trips this: the sender extended the fence to at
        // least its timestamp when it posted.
        if (tm >= end || tm > fence) break;
        // Boundary insertion: the kernel stopped just before `tm`, so these
        // messages enter the queue before the first pop at or past their
        // timestamp. Heap order hands them over in (at, src, seq) — the merge
        // total order — and any local event already pending at `tm` keeps its
        // earlier insertion seq, a tie-break no window structure can perturb.
        while (!inbox_.empty() && inbox_.front().at == tm) {
            std::pop_heap(inbox_.begin(), inbox_.end(), message_after);
            Message m = std::move(inbox_.back());
            inbox_.pop_back();
            if (!m.daemon) --inbox_user_;
            sim_.schedule_at(m.at, std::move(m.fn), m.daemon);
            ++delivered_;
        }
    }
    return executed;
}

} // namespace tedge::sim
