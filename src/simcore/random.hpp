// Seeded random-number suite for reproducible experiments.
//
// We use xoshiro256** (public-domain; Blackman & Vigna) seeded via SplitMix64
// so that a single 64-bit experiment seed expands into independent,
// well-mixed streams. Distributions are implemented here rather than via
// <random> distributions because libstdc++/libc++ distributions are not
// cross-platform-stable; ours are, which keeps experiment outputs identical
// everywhere.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tedge::sim {

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }

    result_type operator()();

    /// Derive an independent child stream (e.g., one per simulated node).
    [[nodiscard]] Rng split();

    /// Derive the seed of an independent stream from a run seed and a stable
    /// stream id. Unlike split(), the derivation consumes no generator state:
    /// stream `id` always yields the same seed for a given run seed, no
    /// matter how many other streams exist or in which order they are
    /// created. The sharded kernel uses this for per-domain RNGs -- each
    /// Domain draws from for_stream(run_seed, domain_id), so its sequence is
    /// independent of shard count, thread count, and domain creation order.
    [[nodiscard]] static std::uint64_t stream_seed(std::uint64_t run_seed,
                                                   std::uint64_t stream_id);

    /// Convenience: an Rng seeded with stream_seed(run_seed, stream_id).
    [[nodiscard]] static Rng for_stream(std::uint64_t run_seed,
                                        std::uint64_t stream_id);

    /// Uniform double in [0, 1).
    double uniform01();

    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);

    /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

    /// Exponential with the given mean (mean > 0).
    double exponential(double mean);

    /// Log-normal parameterized by the *target* median and sigma of the
    /// underlying normal. median(X) = median, and sigma controls spread.
    double lognormal_median(double median, double sigma);

    /// Normal (Box-Muller; consumes two uniforms every call, no cached spare,
    /// to keep the stream position deterministic and split-friendly).
    double normal(double mean, double stddev);

    /// Bernoulli trial.
    bool chance(double p);

    /// Poisson count with the given mean (mean >= 0). Exact (Knuth product)
    /// for small means; large means use the normal approximation, whose
    /// relative error is O(1/sqrt(mean)) -- negligible at the epoch-batch
    /// sizes the hybrid fluid workload draws. Either branch consumes a
    /// deterministic position-stable slice of the stream for a given mean.
    std::uint64_t poisson(double mean);

    /// Pick an index in [0, weights.size()) proportionally to weights.
    /// Requires a non-empty vector with non-negative entries and positive sum.
    std::size_t weighted_index(const std::vector<double>& weights);

private:
    std::array<std::uint64_t, 4> s_{};
};

/// Zipf(s, n) sampler over ranks {0, .., n-1}: P(k) proportional to 1/(k+1)^s.
/// Precomputes the CDF once; sampling is a binary search.
class ZipfDistribution {
public:
    ZipfDistribution(std::size_t n, double s);

    [[nodiscard]] std::size_t n() const { return cdf_.size(); }

    std::size_t sample(Rng& rng) const;

    /// Probability mass of rank k.
    [[nodiscard]] double pmf(std::size_t k) const;

private:
    std::vector<double> cdf_;
};

} // namespace tedge::sim
