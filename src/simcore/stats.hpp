// Statistics collectors used throughout the evaluation harness.
//
// The paper reports medians (box plots) over 42 deployments / 1708 requests,
// so sample sets are small; we simply keep all samples and compute exact
// order statistics. OnlineStats (Welford) is provided for long-running
// counters where storing samples would be wasteful.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace tedge::sim {

/// Streaming mean/variance via Welford's algorithm. O(1) memory.
class OnlineStats {
public:
    void add(double x);

    [[nodiscard]] std::size_t count() const { return n_; }
    [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
    [[nodiscard]] double variance() const;       ///< sample variance (n-1)
    [[nodiscard]] double stddev() const;
    [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
    [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

    /// Merge another collector into this one (parallel reduction).
    void merge(const OnlineStats& other);

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/// Exact order statistics over a retained sample set.
class SampleSet {
public:
    void add(double x);
    void add_time(SimTime t) { add(t.ms()); } ///< convenience: record in ms

    [[nodiscard]] std::size_t count() const { return samples_.size(); }
    [[nodiscard]] bool empty() const { return samples_.empty(); }

    /// Exact p-quantile in [0,1] via linear interpolation between order
    /// statistics (type-7, the numpy/R default). Requires non-empty set.
    [[nodiscard]] double quantile(double p) const;

    [[nodiscard]] double median() const { return quantile(0.5); }
    [[nodiscard]] double p25() const { return quantile(0.25); }
    [[nodiscard]] double p75() const { return quantile(0.75); }
    [[nodiscard]] double p95() const { return quantile(0.95); }
    [[nodiscard]] double min() const;
    [[nodiscard]] double max() const;
    [[nodiscard]] double mean() const;

    [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

    void merge(const SampleSet& other);
    void clear() { samples_.clear(); sorted_ = true; }

    /// "median=12.3 iqr=[10.1,14.2] n=42" -- the figure caption format used
    /// by the bench harness.
    [[nodiscard]] std::string summary(const std::string& unit = "ms") const;

private:
    void ensure_sorted() const;
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

} // namespace tedge::sim
