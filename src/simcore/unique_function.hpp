// Move-only type-erased callable with small-buffer optimization.
//
// The event kernel schedules millions of short-lived closures; std::function
// heap-allocates anything beyond ~2 pointers of captures and requires
// copyability. UniqueFunction stores callables up to kInlineSize bytes inline
// (no allocation) and accepts move-only captures. The dispatch table is three
// raw function pointers, so an empty-check plus an indirect call is the whole
// invocation cost.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace tedge::sim {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
public:
    /// Inline storage: sized so that typical simulation lambdas (a `this`
    /// pointer plus a handful of captured values) and a std::function<void()>
    /// both fit without touching the allocator.
    static constexpr std::size_t kInlineSize = 48;
    static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

    UniqueFunction() noexcept = default;
    UniqueFunction(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::decay_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, UniqueFunction> &&
                                          std::is_invocable_r_v<R, D&, Args...>>>
    UniqueFunction(F&& f) {
        if constexpr (fits_inline<D>()) {
            ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
            ops_ = &inline_ops<D>;
        } else {
            ::new (static_cast<void*>(&storage_)) D*(new D(std::forward<F>(f)));
            ops_ = &heap_ops<D>;
        }
    }

    UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
        if (ops_) {
            ops_->relocate(&storage_, &other.storage_);
            other.ops_ = nullptr;
        }
    }

    UniqueFunction& operator=(UniqueFunction&& other) noexcept {
        if (this != &other) {
            reset();
            ops_ = other.ops_;
            if (ops_) {
                ops_->relocate(&storage_, &other.storage_);
                other.ops_ = nullptr;
            }
        }
        return *this;
    }

    UniqueFunction(const UniqueFunction&) = delete;
    UniqueFunction& operator=(const UniqueFunction&) = delete;

    ~UniqueFunction() { reset(); }

    UniqueFunction& operator=(std::nullptr_t) noexcept {
        reset();
        return *this;
    }

    R operator()(Args... args) {
        return ops_->invoke(&storage_, std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

private:
    struct Ops {
        R (*invoke)(void*, Args&&...);
        // Move-construct into `dst` from `src`, then destroy `src`'s object.
        void (*relocate)(void* dst, void* src) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr bool fits_inline() {
        return sizeof(D) <= kInlineSize && alignof(D) <= kInlineAlign &&
               std::is_nothrow_move_constructible_v<D>;
    }

    template <typename D>
    static constexpr Ops inline_ops = {
        [](void* buf, Args&&... args) -> R {
            return (*std::launder(static_cast<D*>(buf)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            D* from = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        },
        [](void* buf) noexcept { std::launder(static_cast<D*>(buf))->~D(); },
    };

    template <typename D>
    static constexpr Ops heap_ops = {
        [](void* buf, Args&&... args) -> R {
            return (**std::launder(static_cast<D**>(buf)))(std::forward<Args>(args)...);
        },
        [](void* dst, void* src) noexcept {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        },
        [](void* buf) noexcept { delete *std::launder(static_cast<D**>(buf)); },
    };

    void reset() noexcept {
        if (ops_) {
            ops_->destroy(&storage_);
            ops_ = nullptr;
        }
    }

    alignas(kInlineAlign) std::byte storage_[kInlineSize];
    const Ops* ops_ = nullptr;
};

} // namespace tedge::sim
