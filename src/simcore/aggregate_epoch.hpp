// Control-plane epoch grid for hybrid-fidelity aggregation.
//
// The hybrid fast path collapses established flows into fluid aggregates
// whose rate counters advance *lazily*: instead of one kernel event per
// per-flow packet, the aggregate's effective state at time t is computed
// from the epoch grid (floor/ceil hooks below) whenever someone looks.
// The only real kernel events are one daemon tick per epoch, and only
// while a subscriber has asked for ticks (request_ticks_until) -- an idle
// hybrid run schedules nothing at all.
//
// Ticks fire at absolute multiples of the period (the "epoch grid"), so
// two components agreeing on a period agree on every tick instant; that
// shared grid is what makes lazily-computed aggregate state reproduce the
// exact per-event schedule bit-for-bit (see sdn::FlowMemory's fluid
// cohorts).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class AggregateEpoch {
public:
    /// Called at each epoch tick with the tick's grid instant.
    using Subscriber = std::function<void(SimTime tick)>;

    /// `period` must be positive; ticks fire at k * period (k >= 1).
    AggregateEpoch(Simulation& sim, SimTime period);
    ~AggregateEpoch();

    AggregateEpoch(const AggregateEpoch&) = delete;
    AggregateEpoch& operator=(const AggregateEpoch&) = delete;

    [[nodiscard]] SimTime period() const { return period_; }

    // ------------------------------------------------- lazy-advance hooks
    /// Largest grid instant <= t (clamped at zero). The "lazy clock": a
    /// component that refreshes state on the grid can reconstruct its
    /// effective timestamp at any query time without having executed a
    /// single tick event.
    [[nodiscard]] SimTime floor(SimTime t) const;
    /// Smallest grid instant >= t.
    [[nodiscard]] SimTime ceil(SimTime t) const;
    /// First grid instant strictly after t (where a flow installed at t
    /// makes its first epoch refresh).
    [[nodiscard]] SimTime next_after(SimTime t) const;

    // ------------------------------------------------------- tick daemon
    /// Register a per-tick callback. Returns an id for unsubscribe().
    std::size_t subscribe(Subscriber fn);
    void unsubscribe(std::size_t id);

    /// Ask the daemon to keep firing grid ticks up to and including the
    /// grid floor of `until`. Extends (never shrinks) the armed horizon and
    /// schedules the next tick if none is pending. Ticks are daemon events:
    /// they never keep Simulation::run() alive on their own.
    void request_ticks_until(SimTime until);

    /// Grid ticks fired so far.
    [[nodiscard]] std::uint64_t ticks_fired() const { return ticks_fired_; }
    /// The armed horizon (zero when nothing was ever requested).
    [[nodiscard]] SimTime horizon() const { return horizon_; }

private:
    void arm();
    void fire(SimTime tick);

    Simulation& sim_;
    SimTime period_;
    SimTime horizon_ = SimTime::zero();
    bool armed_ = false;
    std::uint64_t ticks_fired_ = 0;
    std::size_t next_id_ = 0;
    std::vector<std::pair<std::size_t, Subscriber>> subscribers_;
};

} // namespace tedge::sim
