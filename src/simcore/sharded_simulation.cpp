#include "simcore/sharded_simulation.hpp"

#include <algorithm>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "simcore/thread_pool.hpp"

namespace tedge::sim {

namespace {

/// `a + b` clamped to SimTime::max() (infinite-lookahead windows).
SimTime saturating_add(SimTime a, SimTime b) {
    if (b == SimTime::max() || a > SimTime::max() - b) return SimTime::max();
    return a + b;
}

} // namespace

ShardedSimulation::ShardedSimulation() : ShardedSimulation(Options{}) {}

ShardedSimulation::ShardedSimulation(Options options) : options_(options) {
    if (options_.lookahead <= SimTime::zero()) {
        throw std::invalid_argument(
            "ShardedSimulation: lookahead must be positive (zero lookahead "
            "cannot make conservative progress)");
    }
}

ShardedSimulation::~ShardedSimulation() = default;

Domain& ShardedSimulation::add_domain(std::string name) {
    if (running_) {
        throw std::logic_error("ShardedSimulation: add_domain during a run");
    }
    const auto id = static_cast<DomainId>(domains_.size());
    domains_.push_back(std::unique_ptr<Domain>(new Domain(
        *this, id, std::move(name), options_.backend, options_.seed)));
    return *domains_.back();
}

void ShardedSimulation::set_lookahead(SimTime lookahead) {
    if (lookahead <= SimTime::zero()) {
        throw std::invalid_argument("ShardedSimulation: lookahead must be positive");
    }
    options_.lookahead = lookahead;
}

std::size_t ShardedSimulation::shard_count() const {
    if (domains_.empty()) return 0;
    const std::size_t lanes =
        options_.shards == 0 ? domains_.size() : options_.shards;
    return std::min(lanes, domains_.size());
}

std::uint64_t ShardedSimulation::run() { return drive(Mode::kRun, SimTime::max()); }

std::uint64_t ShardedSimulation::run_until(SimTime deadline) {
    return drive(Mode::kRunUntil, deadline);
}

SimTime ShardedSimulation::now() const {
    SimTime latest = SimTime::zero();
    for (const auto& d : domains_) latest = std::max(latest, d->sim().now());
    return latest;
}

std::uint64_t ShardedSimulation::events_executed() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->sim().events_executed();
    return total;
}

std::uint64_t ShardedSimulation::drive(Mode mode, SimTime deadline) {
    if (domains_.empty()) return 0;
    running_ = true;
    const std::uint64_t executed_before = events_executed();
    const std::size_t lanes = shard_count();

    if (lanes > 1 && pool_ == nullptr) {
        std::size_t workers = options_.workers;
        if (workers == 0) {
            workers = std::min<std::size_t>(
                lanes, std::max(1u, std::thread::hardware_concurrency()));
        }
        pool_ = std::make_unique<ThreadPool>(workers);
    }

    std::vector<bool> require_user(domains_.size(), false);
    for (;;) {
        // ---- round-start snapshot (deterministic: barrier state only) ----
        std::size_t domains_with_user = 0;
        for (const auto& d : domains_) {
            if (d->sim().has_user_events()) ++domains_with_user;
        }
        if (mode == Mode::kRun && domains_with_user == 0) break;

        std::optional<SimTime> next;
        for (const auto& d : domains_) {
            if (!d->sim().has_pending_events()) continue;
            const SimTime t = d->sim().next_time();
            if (!next || t < *next) next = t;
        }
        if (!next || (mode == Mode::kRunUntil && *next > deadline)) {
            if (mode == Mode::kRunUntil) {
                // Nothing left at or before the deadline: advance every
                // clock exactly like Simulation::run_until would.
                for (auto& d : domains_) d->sim().run_until(deadline);
            }
            break;
        }

        SimTime window_end = saturating_add(*next, options_.lookahead);
        if (mode == Mode::kRunUntil) {
            // Events at exactly `deadline` still execute: the window is
            // half-open, so end one tick past it (deadline < max here).
            window_end = std::min(window_end, deadline + nanoseconds(1));
        }

        // run() semantics: a domain may grind daemon-only housekeeping while
        // user work exists *elsewhere*; a domain whose own user events are
        // the only ones left stops at its last user event, exactly like the
        // serial kernel. run_until executes daemons unconditionally.
        for (std::size_t i = 0; i < domains_.size(); ++i) {
            const bool others_have_user =
                domains_with_user >
                (domains_[i]->sim().has_user_events() ? 1u : 0u);
            require_user[i] = mode == Mode::kRun && !others_have_user;
        }

        execute_windows(window_end, require_user);
        ++rounds_;
        collect_and_deliver();
        flush_logs_if_configured();
    }

    running_ = false;
    flush_logs_if_configured();
    return events_executed() - executed_before;
}

void ShardedSimulation::execute_windows(SimTime window_end,
                                        const std::vector<bool>& require_user) {
    const std::size_t lanes = shard_count();
    auto run_lane = [&](std::size_t lane) {
        // Each lane owns the domains with id % lanes == lane and runs their
        // sub-windows sequentially in id order; no two lanes ever touch the
        // same domain, so lanes share no mutable state.
        for (std::size_t i = lane; i < domains_.size(); i += lanes) {
            domains_[i]->sim().run_window(window_end, require_user[i]);
        }
    };
    if (lanes <= 1 || pool_ == nullptr || pool_->size() <= 1) {
        // One lane, or one worker (single-core host): dispatching through the
        // pool buys nothing but wakeup latency. Lane order cannot matter --
        // lanes share no state -- so inline execution is the same run.
        for (std::size_t lane = 0; lane < lanes; ++lane) run_lane(lane);
    } else {
        pool_->parallel_for(lanes, run_lane);
    }
}

void ShardedSimulation::collect_and_deliver() {
    mail_.clear();
    for (auto& d : domains_) {
        if (d->outbox_.empty()) continue;
        std::move(d->outbox_.begin(), d->outbox_.end(), std::back_inserter(mail_));
        d->outbox_.clear();
    }
    if (mail_.empty()) return;
    // (timestamp, source, per-source seq) is a total order independent of
    // which thread ran which domain -- the determinism linchpin. Insertion
    // into the destination queue in this order also fixes same-timestamp
    // tie-breaks against locally scheduled events.
    std::sort(mail_.begin(), mail_.end(),
              [](const Domain::Message& a, const Domain::Message& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.src != b.src) return a.src < b.src;
                  return a.seq < b.seq;
              });
    for (auto& m : mail_) {
        domains_[m.dst]->sim().schedule_at(m.at, std::move(m.fn), m.daemon);
    }
    messages_delivered_ += mail_.size();
    mail_.clear();
}

void ShardedSimulation::dump_metrics(std::ostream& os) const {
    MetricsRegistry merged;
    for (const auto& d : domains_) merged.merge_from(d->metrics());
    merged.dump(os);
}

std::string ShardedSimulation::dump_metrics() const {
    std::ostringstream os;
    dump_metrics(os);
    return os.str();
}

void ShardedSimulation::write_chrome_trace(std::ostream& os) const {
    std::vector<const Tracer*> tracers;
    tracers.reserve(domains_.size());
    for (const auto& d : domains_) tracers.push_back(&d->tracer());
    Tracer::write_merged_chrome_trace(os, tracers);
}

void ShardedSimulation::flush_logs(std::ostream& os) {
    for (auto& d : domains_) d->log_buffer().flush_to(os);
}

void ShardedSimulation::flush_logs_if_configured() {
    if (log_output_ != nullptr) flush_logs(*log_output_);
}

} // namespace tedge::sim
