#include "simcore/sharded_simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "simcore/thread_pool.hpp"

namespace tedge::sim {

namespace {

/// `a + b` clamped to SimTime::max() (infinite-lookahead windows).
SimTime saturating_add(SimTime a, SimTime b) {
    if (b == SimTime::max() || a > SimTime::max() - b) return SimTime::max();
    return a + b;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

} // namespace

SyncMode ShardedSimulation::default_sync() {
    const char* env = std::getenv("TEDGE_SYNC");
    if (env != nullptr) {
        if (std::strcmp(env, "barrier") == 0) return SyncMode::kBarrier;
        if (std::strcmp(env, "channel-locked") == 0 ||
            std::strcmp(env, "locked") == 0) {
            return SyncMode::kChannelLocked;
        }
    }
    return SyncMode::kChannel;
}

bool ShardedSimulation::default_pin() {
    const char* env = std::getenv("TEDGE_PIN");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

double ShardedSimulation::default_grain() {
    const char* env = std::getenv("TEDGE_GRAIN");
    if (env != nullptr && *env != '\0') {
        char* end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0' && v >= 0.0) return v;
    }
    return 0.25;
}

ShardedSimulation::ShardedSimulation() : ShardedSimulation(Options{}) {}

ShardedSimulation::ShardedSimulation(Options options) : options_(options) {
    if (options_.lookahead <= SimTime::zero()) {
        throw std::invalid_argument(
            "ShardedSimulation: lookahead must be positive (zero lookahead "
            "cannot make conservative progress)");
    }
}

ShardedSimulation::~ShardedSimulation() = default;

Domain& ShardedSimulation::add_domain(std::string name) {
    if (running_) {
        throw std::logic_error("ShardedSimulation: add_domain during a run");
    }
    const auto id = static_cast<DomainId>(domains_.size());
    domains_.push_back(std::unique_ptr<Domain>(new Domain(
        *this, id, std::move(name), options_.backend, options_.seed)));
    return *domains_.back();
}

void ShardedSimulation::set_channel(DomainId src, DomainId dst, SimTime lookahead) {
    if (running_) {
        throw std::logic_error("ShardedSimulation: set_channel during a run");
    }
    if (lookahead <= SimTime::zero() || lookahead == SimTime::max()) {
        throw std::invalid_argument(
            "ShardedSimulation: channel lookahead must be positive and finite");
    }
    channels_[channel_key(src, dst)] = lookahead;
    min_channel_lookahead_ = std::min(min_channel_lookahead_, lookahead);
    in_channels_built_ = false;
    plane_built_ = false;
}

SimTime ShardedSimulation::channel_lookahead(DomainId src, DomainId dst) const {
    if (channels_.empty()) return options_.lookahead;
    const auto it = channels_.find(channel_key(src, dst));
    if (it == channels_.end()) {
        throw std::logic_error(
            "ShardedSimulation: no channel between these domains (explicit "
            "channels are installed; declare one with set_channel)");
    }
    return it->second;
}

SimTime ShardedSimulation::lookahead() const {
    return channels_.empty() ? options_.lookahead : min_channel_lookahead_;
}

void ShardedSimulation::set_lookahead(SimTime lookahead) {
    if (lookahead <= SimTime::zero()) {
        throw std::invalid_argument("ShardedSimulation: lookahead must be positive");
    }
    options_.lookahead = lookahead;
}

std::size_t ShardedSimulation::shard_count() const {
    if (domains_.empty()) return 0;
    const std::size_t lanes =
        options_.shards == 0 ? domains_.size() : options_.shards;
    return std::min(lanes, domains_.size());
}

std::uint64_t ShardedSimulation::run() { return drive(Mode::kRun, SimTime::max()); }

std::uint64_t ShardedSimulation::run_until(SimTime deadline) {
    return drive(Mode::kRunUntil, deadline);
}

SimTime ShardedSimulation::now() const {
    SimTime latest = SimTime::zero();
    for (const auto& d : domains_) latest = std::max(latest, d->sim().now());
    return latest;
}

std::uint64_t ShardedSimulation::events_executed() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->sim().events_executed();
    return total;
}

std::uint64_t ShardedSimulation::messages_delivered() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->delivered_;
    return total;
}

SimTime ShardedSimulation::compute_fence() const {
    SimTime fence = SimTime::zero();
    for (const auto& d : domains_) fence = std::max(fence, d->user_horizon());
    return fence;
}

void ShardedSimulation::build_in_channels() {
    if (in_channels_built_ && in_channels_.size() == domains_.size()) return;
    in_channels_.assign(domains_.size(), {});
    if (channels_.empty()) {
        // Implicit full mesh at the global lookahead. SimTime::max() means
        // "no cross-domain messaging": nothing can ever arrive, so domains
        // have no in-channels and run unbounded windows.
        if (options_.lookahead != SimTime::max()) {
            for (DomainId dst = 0; dst < domains_.size(); ++dst) {
                for (DomainId src = 0; src < domains_.size(); ++src) {
                    if (src == dst) continue;
                    in_channels_[dst].emplace_back(src, options_.lookahead);
                }
            }
        }
    } else {
        for (const auto& [key, lookahead] : channels_) {
            const auto src = static_cast<DomainId>(key >> 32);
            const auto dst = static_cast<DomainId>(key & 0xffffffffu);
            // Self-channels never gate anything: self-posts are inserted at
            // post time (Domain::post), so a domain does not wait on itself.
            if (src == dst) continue;
            if (src >= domains_.size() || dst >= domains_.size()) continue;
            in_channels_[dst].emplace_back(src, lookahead);
        }
        for (auto& in : in_channels_) std::sort(in.begin(), in.end());
    }
    in_channels_built_ = true;
}

void ShardedSimulation::drain_staged_inboxes() {
    for (std::size_t i = 0; i < staged_.size() && i < domains_.size(); ++i) {
        for (auto& m : staged_[i]) domains_[i]->stage_inbound(std::move(m));
        staged_[i].clear();
    }
    // Mailbox rings are always drained by normal lock-free termination
    // (quiescence requires them empty); this only matters after an
    // exceptional run or a coordinator-mode switch mid-flight.
    if (plane_built_) {
        std::vector<Domain::Message> batch;
        for (std::size_t e = 0; e < edges_.size(); ++e) {
            while (rings_[e]->try_pop(batch)) {
                domains_[edges_[e].dst]->stage_inbound_batch(batch);
            }
        }
    }
}

std::uint64_t ShardedSimulation::drive(Mode mode, SimTime deadline) {
    if (domains_.empty()) return 0;
    running_ = true;
    const std::uint64_t executed_before = events_executed();
    try {
        if (domains_.size() == 1) {
            drive_single(mode, deadline);
        } else if (options_.sync == SyncMode::kBarrier ||
                   (mode == Mode::kRunUntil && deadline == SimTime::max())) {
            // run_until(max) has no finite quiescence point for the channel
            // horizon fixpoint; the barrier driver handles it directly (all
            // coordinators produce identical results by construction).
            drive_barrier(mode, deadline);
        } else if (options_.sync == SyncMode::kChannelLocked) {
            drive_channel_locked(mode, deadline);
        } else {
            drive_channel(mode, deadline);
        }
    } catch (...) {
        running_ = false;
        throw;
    }
    running_ = false;
    flush_logs_if_configured();
    return events_executed() - executed_before;
}

// With a single domain the coordinator is the serial kernel plus an optional
// self-mailbox; windowed execution buys nothing and the old (pre-channel)
// windowing is kept verbatim so single-domain runs stay bit-identical to
// Simulation::run()/run_until().
void ShardedSimulation::drive_single(Mode mode, SimTime deadline) {
    Domain& d = *domains_[0];
    for (;;) {
        if (mode == Mode::kRun && !d.sim().has_user_events()) break;
        if (!d.sim().has_pending_events() ||
            (mode == Mode::kRunUntil && d.sim().next_time() > deadline)) {
            if (mode == Mode::kRunUntil) d.sim().run_until(deadline);
            break;
        }
        SimTime window_end = saturating_add(d.sim().next_time(), lookahead());
        if (mode == Mode::kRunUntil) {
            // Events at exactly `deadline` still execute: the window is
            // half-open, so end one tick past it.
            window_end = std::min(window_end, saturating_add(deadline, nanoseconds(1)));
        }
        d.sim().run_window(window_end, mode == Mode::kRun);
        ++rounds_;
        if (!d.outbox_.empty()) {
            // Self-posts normally insert at post time; this only runs for
            // messages staged before the immediate-insert rule could apply
            // (none today -- kept for robustness).
            std::sort(d.outbox_.begin(), d.outbox_.end(),
                      [](const Domain::Message& a, const Domain::Message& b) {
                          if (a.at != b.at) return a.at < b.at;
                          return a.seq < b.seq;
                      });
            for (auto& m : d.outbox_) {
                d.sim().schedule_at(m.at, std::move(m.fn), m.daemon);
                ++d.delivered_;
            }
            d.outbox_.clear();
        }
    }
}

void ShardedSimulation::drive_barrier(Mode mode, SimTime deadline) {
    const std::size_t lanes = shard_count();
    if (lanes > 1 && pool_ == nullptr) {
        std::size_t workers = options_.workers;
        if (workers == 0) {
            workers = std::min<std::size_t>(
                lanes, std::max(1u, std::thread::hardware_concurrency()));
        }
        pool_ = std::make_unique<ThreadPool>(workers, options_.pin_lanes);
    }
    // A prior channel-mode run can leave batches staged, and messages posted
    // outside any window (before the first run, or between runs) sit in
    // their sender's outbox; merge both before the eligibility scan so a
    // run whose only work arrives by mail still starts.
    drain_staged_inboxes();
    for (auto& d : domains_) {
        for (auto& m : d->outbox_) domains_[m.dst]->stage_inbound(std::move(m));
        d->outbox_.clear();
    }

    for (;;) {
        // ---- round-start snapshot (deterministic: barrier state only) ----
        const SimTime fence = mode == Mode::kRun ? compute_fence() : SimTime::max();
        if (mode == Mode::kRun) {
            bool any_eligible = false;
            for (const auto& d : domains_) {
                if (d->has_eligible_work(fence)) { any_eligible = true; break; }
            }
            if (!any_eligible) break;
        }

        SimTime next = SimTime::max();
        for (const auto& d : domains_) next = std::min(next, d->next_work_time());
        if (next == SimTime::max() ||
            (mode == Mode::kRunUntil && next > deadline)) {
            if (mode == Mode::kRunUntil) {
                // Nothing left at or before the deadline: advance every
                // clock exactly like Simulation::run_until would.
                for (auto& d : domains_) d->sim().run_until(deadline);
            }
            break;
        }

        SimTime window_end = saturating_add(next, lookahead());
        if (mode == Mode::kRunUntil) {
            window_end = std::min(window_end, saturating_add(deadline, nanoseconds(1)));
        }

        // Each lane owns the domains with id % lanes == lane and runs their
        // sub-windows sequentially in id order; no two lanes ever touch the
        // same domain, so lanes share no mutable state.
        auto run_lane = [&](std::size_t lane) {
            for (std::size_t i = lane; i < domains_.size(); i += lanes) {
                domains_[i]->advance_window(window_end, fence);
            }
        };
        if (lanes <= 1 || pool_ == nullptr || pool_->size() <= 1) {
            // One lane, or one worker (single-core host): dispatching through
            // the pool buys nothing but wakeup latency. Lane order cannot
            // matter -- lanes share no state -- so inline execution is the
            // same run.
            for (std::size_t lane = 0; lane < lanes; ++lane) run_lane(lane);
        } else {
            pool_->parallel_for(lanes, run_lane);
        }
        ++rounds_;

        // Barrier delivery: stage every outbox into the destination inbox
        // heaps. Insertion into destination queues happens at execution
        // boundaries (Domain::advance_window), identically to channel mode.
        for (auto& d : domains_) {
            for (auto& m : d->outbox_) {
                const DomainId dst = m.dst;
                domains_[dst]->stage_inbound(std::move(m));
            }
            d->outbox_.clear();
        }
    }
}

void ShardedSimulation::drive_channel_locked(Mode mode, SimTime deadline) {
    build_in_channels();
    const std::size_t lanes = shard_count();
    std::size_t workers = options_.workers;
    if (workers == 0) {
        workers = std::min<std::size_t>(
            lanes, std::max(1u, std::thread::hardware_concurrency()));
    }
    const std::size_t nlanes = std::min(lanes, std::max<std::size_t>(1, workers));

    // A prior lock-free run that died exceptionally can leave batches in the
    // mailbox rings; merge them (and any staged leftovers) before lanes
    // start. All horizons start at zero and only climb (publications are
    // monotone); staged_ keeps its per-destination capacity across windows
    // and runs.
    drain_staged_inboxes();
    horizon_.assign(domains_.size(), SimTime::zero());
    if (staged_.size() < domains_.size()) staged_.resize(domains_.size());
    fence_ = compute_fence();
    version_ = 0;
    busy_lanes_ = 0;
    done_ = false;
    lane_error_ = nullptr;
    lane_stats_.assign(nlanes, LaneStat{});

    if (nlanes <= 1) {
        // Deterministic inline path: one lane, calling thread, fixed pass
        // order -- window and null-message counters are reproducible here.
        channel_lane_locked(0, 1, mode, deadline);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nlanes);
        for (std::size_t t = 0; t < nlanes; ++t) {
            threads.emplace_back([this, t, nlanes, mode, deadline] {
                if (options_.pin_lanes) pin_current_thread_to_core(t);
                channel_lane_locked(t, nlanes, mode, deadline);
            });
        }
        for (auto& th : threads) th.join();
    }
    for (const auto& stat : lane_stats_) rounds_ += stat.windows;
    if (lane_error_ != nullptr) {
        std::exception_ptr err = lane_error_;
        lane_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

SimTime ShardedSimulation::safe_end_locked(DomainId dst) const {
    SimTime end = SimTime::max();
    for (const auto& [src, lookahead] : in_channels_[dst]) {
        end = std::min(end, saturating_add(horizon_[src], lookahead));
    }
    return end;
}

bool ShardedSimulation::quiescent_locked(Mode mode, SimTime deadline) const {
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        const Domain& d = *domains_[i];
        for (const auto& m : staged_[i]) {
            if (mode == Mode::kRun) {
                if (!m.daemon || m.at <= fence_) return false;
            } else if (m.at <= deadline) {
                return false;
            }
        }
        if (mode == Mode::kRun) {
            if (d.has_eligible_work(fence_)) return false;
        } else {
            const SimTime next = d.next_work_time();
            if (next <= deadline && next != SimTime::max()) return false;
            if (d.sim().now() < deadline) return false;
        }
    }
    return true;
}

// One lane of the *locked* channel coordinator (PR-8, kept for differential
// testing). All shared state (horizons, fence, staged batches, version
// counter) lives under sync_mu_; domain windows run unlocked -- a domain is
// only ever touched by its owning lane (id % nlanes).
//
// Each pass over the lane's domains: merge staged batches into the inbox,
// execute up to the channel-safe bound, flush the outbox as one batch per
// destination, then publish fence and horizon updates. A horizon publication
// that carried no execution and no payload is a pure null message. When a
// full pass makes no progress and nothing was published since the pass
// started, the lane either detects global quiescence (no lane executing,
// nothing eligible anywhere) or sleeps until the version counter moves.
void ShardedSimulation::channel_lane_locked(std::size_t lane, std::size_t nlanes,
                                            Mode mode, SimTime deadline) {
    using Clock = std::chrono::steady_clock;
    LaneStat& stat = lane_stats_[lane];
    const SimTime past_deadline = mode == Mode::kRunUntil
                                      ? saturating_add(deadline, nanoseconds(1))
                                      : SimTime::max();
    std::unique_lock<std::mutex> lock(sync_mu_);
    try {
        for (;;) {
            if (done_) return;
            const std::uint64_t seen = version_;
            bool progressed = false;
            for (std::size_t i = lane; i < domains_.size(); i += nlanes) {
                Domain& d = *domains_[i];
                if (!staged_[i].empty()) {
                    for (auto& m : staged_[i]) d.stage_inbound(std::move(m));
                    staged_[i].clear();
                    progressed = true;
                }
                const SimTime fence = mode == Mode::kRun ? fence_ : SimTime::max();
                SimTime end = safe_end_locked(static_cast<DomainId>(i));
                if (mode == Mode::kRunUntil) end = std::min(end, past_deadline);
                std::uint64_t executed = 0;
                bool published = false;
                // Attempt a window only when it can actually execute
                // something: next work inside the safe bound AND not entirely
                // fence-blocked daemons. A futile attempt would be a no-op
                // (run_window_fenced does not even advance the clock), and
                // publishing for it would keep every lane spinning on
                // version bumps that carry no information -- with all lanes
                // perpetually "busy" on empty windows, the quiescence check
                // below could starve forever.
                if (d.next_work_time() < end && d.has_eligible_work(fence)) {
                    ++busy_lanes_;
                    lock.unlock();
                    const auto t0 = Clock::now();
                    executed = d.advance_window(end, fence);
                    const auto t1 = Clock::now();
                    stat.busy_ns += elapsed_ns(t0, t1);
                    ++stat.windows;
                    lock.lock();
                    --busy_lanes_;
                    if (executed > 0) progressed = true;
                }
                bool sent = false;
                if (!d.outbox_.empty()) {
                    // One batch append per (src, dst, window): messages to the
                    // same destination land contiguously in its staging
                    // vector under a single lock hold, and the single version
                    // bump below is the one wakeup the whole batch costs.
                    for (auto& m : d.outbox_) {
                        staged_[m.dst].push_back(std::move(m));
                    }
                    d.outbox_.clear();
                    sent = true;
                    published = true;
                }
                if (mode == Mode::kRun) {
                    const SimTime uh = d.user_horizon();
                    if (uh > fence_) {
                        fence_ = uh;
                        published = true;
                    }
                } else {
                    // run_until semantics: once nothing at or before the
                    // deadline remains and nothing more can arrive (the safe
                    // bound cleared the deadline), pin the clock to it. The
                    // queue holds nothing <= deadline, so this executes zero
                    // events and is fine under the lock.
                    const SimTime next = d.next_work_time();
                    const bool drained = next > deadline || next == SimTime::max();
                    if (drained && d.sim().now() < deadline &&
                        safe_end_locked(static_cast<DomainId>(i)) >= past_deadline) {
                        d.sim().run_until(deadline);
                    }
                }
                // Horizon: a lower bound on anything this domain will still
                // execute -- its earliest pending work, capped by its own
                // safe bound (staged messages it has not seen yet can only
                // arrive at or after that). Monotone by construction.
                const SimTime h = std::min(
                    d.next_work_time(),
                    safe_end_locked(static_cast<DomainId>(i)));
                if (h > horizon_[i]) {
                    horizon_[i] = h;
                    if (executed == 0 && !sent) ++null_messages_;
                    published = true;
                }
                if (published) {
                    ++version_;
                    sync_cv_.notify_all();
                }
            }
            if (progressed) continue;
            // Quiescence falls to whichever lane finishes last: a lane only
            // sleeps while another is mid-window (busy_lanes_ > 0) or has
            // pending publications to absorb, and every change that could
            // enable a sleeping lane's domains -- a message batch, a horizon
            // climb, a fence extension -- bumps the version and wakes it. So
            // the final no-progress pass always runs with busy_lanes_ == 0
            // on some lane, which detects quiescence here and releases the
            // rest via done_.
            if (busy_lanes_ == 0 && quiescent_locked(mode, deadline)) {
                done_ = true;
                sync_cv_.notify_all();
                return;
            }
            if (version_ != seen) continue;  // horizons or fence moved: re-pass
            if (nlanes == 1) {
                // A single lane has nobody to wait for: a stable, no-progress,
                // non-quiescent pass means the protocol is wedged.
                throw std::logic_error(
                    "ShardedSimulation: channel coordinator stalled (no "
                    "progress, no pending publications, not quiescent)");
            }
            const auto t0 = Clock::now();
            sync_cv_.wait(lock, [&] { return done_ || version_ != seen; });
            stat.blocked_ns += elapsed_ns(t0, Clock::now());
        }
    } catch (...) {
        if (!lock.owns_lock()) lock.lock();
        if (lane_error_ == nullptr) lane_error_ = std::current_exception();
        done_ = true;
        sync_cv_.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Lock-free channel plane (SyncMode::kChannel). See DESIGN §8.7.
// ---------------------------------------------------------------------------

void ShardedSimulation::build_channel_plane() {
    const bool channels_stale =
        !in_channels_built_ || in_channels_.size() != domains_.size();
    build_in_channels();
    if (plane_built_ && !channels_stale && in_edges_.size() == domains_.size()) {
        return;
    }
    const std::size_t n = domains_.size();
    edges_.clear();
    in_edges_.assign(n, {});
    out_edges_.assign(n, {});
    const double frac = std::max(0.0, options_.horizon_grain);
    for (DomainId dst = 0; dst < n; ++dst) {
        for (const auto& [src, lookahead] : in_channels_[dst]) {
            const auto idx = static_cast<std::uint32_t>(edges_.size());
            // Infinite-lookahead edges never exist here (in_channels_ holds
            // finite lookaheads only), so the grain product is finite.
            const auto grain = static_cast<std::int64_t>(
                frac * static_cast<double>(lookahead.ns()));
            edges_.push_back(ChannelEdge{src, dst, lookahead, grain});
            in_edges_[dst].push_back(idx);
            out_edges_[src].push_back(idx);
        }
    }
    edge_of_.assign(n * n, kNoEdge);
    for (std::uint32_t e = 0; e < edges_.size(); ++e) {
        edge_of_[static_cast<std::size_t>(edges_[e].src) * n + edges_[e].dst] = e;
    }
    clocks_ = std::make_unique<ChannelClock[]>(std::max<std::size_t>(1, edges_.size()));
    rings_.clear();
    rings_.reserve(edges_.size());
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        rings_.push_back(
            std::make_unique<SpscRing<std::vector<Domain::Message>>>(64));
    }
    dirty_ = std::make_unique<std::atomic<std::uint8_t>[]>(std::max<std::size_t>(1, n));
    fence_wait_ = std::make_unique<std::atomic<std::int64_t>[]>(std::max<std::size_t>(1, n));
    plane_built_ = true;
}

bool ShardedSimulation::plane_clean() const {
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        if (dirty_[i].load(std::memory_order_seq_cst) != 0) return false;
    }
    for (const auto& ring : rings_) {
        if (!ring->empty()) return false;
    }
    return true;
}

bool ShardedSimulation::quiescent_lockfree(Mode mode, SimTime deadline) {
    // Horizon lift (DESIGN §8.7): with every lane idle and the plane clean,
    // the incremental EIT climb -- one lookahead per examination, the source
    // of almost every null message in a drained stretch -- can be replaced by
    // its own fixpoint, computed here in one shot. Each domain's next-work
    // time floors its next execution; relaxing x[dst] <- min(x[dst], x[src] +
    // L(src, dst)) over the channel graph (Bellman-Ford, at most n rounds
    // with positive lookaheads) converges to x[j] = min over sources k of
    // (next_work(k) + dist(k, j)) -- a sound execution floor because any
    // earlier event at j would have to ride a message chain from some k, each
    // hop costing at least its channel lookahead. Publishing the lifted
    // floors jumps every horizon straight past the drained gap; the heal
    // below then wakes exactly the domains the jump made eligible. Grain 0
    // keeps the PR-8 incremental behavior (no lift, no suppression), which is
    // what the null-message A/B in CI measures against.
    if (options_.horizon_grain > 0 && !edges_.empty()) {
        std::vector<std::int64_t> x(domains_.size());
        for (std::size_t i = 0; i < domains_.size(); ++i) {
            x[i] = domains_[i]->next_work_time().ns();
        }
        for (std::size_t round = 0; round < domains_.size(); ++round) {
            bool changed = false;
            for (const auto& edge : edges_) {
                const std::int64_t cand =
                    saturating_add(SimTime{x[edge.src]}, edge.lookahead).ns();
                if (cand < x[edge.dst]) {
                    x[edge.dst] = cand;
                    changed = true;
                }
            }
            if (!changed) break;
        }
        for (std::size_t e = 0; e < edges_.size(); ++e) {
            ChannelClock& clk = clocks_[e];
            const std::int64_t lifted = x[edges_[e].src];
            if (lifted > clk.horizon.load(std::memory_order_relaxed)) {
                clk.horizon.store(lifted, std::memory_order_seq_cst);
                // The jump satisfies any pending pull on this channel; the
                // demander, if it still owes work, is re-armed by the heal.
                clk.demand.store(0, std::memory_order_seq_cst);
            }
        }
    }
    bool quiescent = true;
    const SimTime fence{fence_ns_.load(std::memory_order_seq_cst)};
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        const Domain& d = *domains_[i];
        bool owes = false;
        if (mode == Mode::kRun) {
            owes = d.has_eligible_work(fence);
        } else {
            const SimTime next = d.next_work_time();
            owes = (next <= deadline && next != SimTime::max()) ||
                   d.sim().now() < deadline;
        }
        if (owes) {
            // The plane is clean (no dirty flags, no ring content) yet this
            // domain still owes work: a wakeup was suppressed by the grain or
            // lost to the fence_wait_ race. Re-arm the owner -- this heal is
            // the liveness backstop that lets suppression be aggressive.
            dirty_[i].store(1, std::memory_order_seq_cst);
            quiescent = false;
        }
    }
    if (!quiescent) {
        for (auto& gate : gates_) gate->notify();
    }
    return quiescent;
}

// One lane of the lock-free channel coordinator. A domain is examined only
// when its dirty flag is set (a mailbox push, an in-channel horizon advance,
// a fence raise it was waiting on, or a demand aimed at it); one examination
// drains its mailboxes, runs a window to its EIT, flushes its outbox as one
// SPSC batch per destination, and publishes its horizon per out-channel
// subject to the suppression grain. No lock is taken anywhere on that path.
// When a full pass finds nothing dirty the lane registers idle under
// sync_mu_ (the only lock left) and parks on its Eventcount; the last lane
// to idle with a clean plane runs the quiescence scan.
void ShardedSimulation::channel_lane(std::size_t lane, std::size_t nlanes,
                                     Mode mode, SimTime deadline) {
    using Clock = std::chrono::steady_clock;
    LaneStat& stat = lane_stats_[lane];
    Eventcount& gate = *gates_[lane];
    const std::size_t n = domains_.size();
    const SimTime past_deadline = mode == Mode::kRunUntil
                                      ? saturating_add(deadline, nanoseconds(1))
                                      : SimTime::max();
    // Lane-local scratch, reused across windows: per-destination batch
    // accumulators and the pop buffer whose capacity the rings recycle.
    std::vector<std::vector<Domain::Message>> pending(n);
    std::vector<DomainId> touched;
    std::vector<Domain::Message> popped;

    // Wake the owner of domain d. Only the 0 -> 1 transition notifies: if the
    // flag was already set, the notify that accompanied that earlier setting
    // is still outstanding (the owner has not consumed the flag), so another
    // epoch bump would be redundant.
    auto mark_dirty = [&](DomainId d) {
        if (dirty_[d].exchange(1, std::memory_order_seq_cst) == 0) {
            gates_[d % nlanes]->notify();
        }
    };

    // EIT(i): min over in-channels of published horizon + lookahead. Pure
    // atomic loads -- the hot read the whole redesign exists for.
    auto eit_of = [&](std::size_t i) {
        SimTime eit = SimTime::max();
        for (const auto e : in_edges_[i]) {
            const SimTime h{clocks_[e].horizon.load(std::memory_order_acquire)};
            eit = std::min(eit, saturating_add(h, edges_[e].lookahead));
        }
        return eit;
    };

    // Demand-driven null request: poke exactly the in-channel whose clock
    // binds EIT(i). The producer treats a pending demand as "publish any
    // advance, grain notwithstanding" and forwards the pull upstream when it
    // is itself input-limited, so the request climbs the laggard chain until
    // it reaches a domain that can actually act.
    auto demand_upstream = [&](std::size_t i) {
        std::uint32_t laggard = kNoEdge;
        SimTime laggard_eit = SimTime::max();
        for (const auto e : in_edges_[i]) {
            const SimTime h{clocks_[e].horizon.load(std::memory_order_acquire)};
            const SimTime v = saturating_add(h, edges_[e].lookahead);
            if (v < laggard_eit) {
                laggard_eit = v;
                laggard = e;
            }
        }
        if (laggard == kNoEdge) return;
        if (clocks_[laggard].demand.exchange(1, std::memory_order_seq_cst) == 0) {
            ++stat.demands;
            mark_dirty(edges_[laggard].src);
        }
    };

    // Examine one owned domain; returns true when it made progress (drained
    // mail, executed events).
    auto examine = [&](std::size_t i) -> bool {
        Domain& d = *domains_[i];
        bool progressed = false;
        // Order matters for correctness (DESIGN §8.7): read the horizons
        // *before* draining the rings. A batch pushed after its channel's
        // horizon h was published carries timestamps >= h + L, so an EIT
        // computed from pre-drain horizons can never authorize execution
        // past a message this drain misses.
        SimTime eit = eit_of(i);
        for (const auto e : in_edges_[i]) {
            while (rings_[e]->try_pop(popped)) {
                d.stage_inbound_batch(popped);
                progressed = true;
            }
        }
        const SimTime fence = mode == Mode::kRun
                                  ? SimTime{fence_ns_.load(std::memory_order_acquire)}
                                  : SimTime::max();
        SimTime end = eit;
        if (mode == Mode::kRunUntil) end = std::min(end, past_deadline);
        std::uint64_t executed = 0;
        if (d.next_work_time() < end && d.has_eligible_work(fence)) {
            const auto t0 = Clock::now();
            executed = d.advance_window(end, fence);
            stat.busy_ns += elapsed_ns(t0, Clock::now());
            ++stat.windows;
            if (executed > 0) progressed = true;
        } else {
            // Obliged work exists but the window is EIT-blocked: pull the
            // laggard instead of waiting for it to broadcast.
            const SimTime next = d.next_work_time();
            const bool obliged = mode == Mode::kRun ? d.has_eligible_work(fence)
                                                    : next < past_deadline;
            if (obliged && eit != SimTime::max() && eit <= next) {
                demand_upstream(i);
            }
        }
        // Flush the outbox: one SPSC batch per destination. The batch must
        // be in the ring before the horizon publication below (release order
        // hands it to any consumer that sees the new horizon).
        bool sent_any = false;
        if (!d.outbox_.empty()) {
            touched.clear();
            for (auto& m : d.outbox_) {
                if (pending[m.dst].empty()) touched.push_back(m.dst);
                pending[m.dst].push_back(std::move(m));
            }
            d.outbox_.clear();
            sent_any = true;
            for (const DomainId dst : touched) {
                const std::uint32_t e = edge_of_[i * n + dst];
                auto& ring = *rings_[e];
                while (!ring.try_push(pending[dst])) {
                    // Ring full: the consumer lane is behind. Wake it, then
                    // help by draining our own inbound mail -- in any cycle
                    // of producers blocked on full rings every one of them
                    // is also a consumer, so someone's drain breaks the
                    // cycle -- and retry.
                    mark_dirty(dst);
                    for (std::size_t j = lane; j < n; j += nlanes) {
                        for (const auto e2 : in_edges_[j]) {
                            while (rings_[e2]->try_pop(popped)) {
                                domains_[j]->stage_inbound_batch(popped);
                                dirty_[j].store(1, std::memory_order_seq_cst);
                            }
                        }
                    }
                    cpu_relax();
                }
                mark_dirty(dst);
            }
        }
        // Fence extension (kRun): CAS-max, then wake exactly the domains
        // whose recorded fence-blocked daemon the raise unblocked.
        if (mode == Mode::kRun) {
            const std::int64_t uh = d.user_horizon().ns();
            std::int64_t cur = fence_ns_.load(std::memory_order_relaxed);
            bool raised = false;
            while (uh > cur) {
                if (fence_ns_.compare_exchange_weak(cur, uh,
                                                    std::memory_order_seq_cst,
                                                    std::memory_order_relaxed)) {
                    raised = true;
                    break;
                }
            }
            if (raised) {
                for (std::size_t j = 0; j < n; ++j) {
                    if (fence_wait_[j].load(std::memory_order_seq_cst) <= uh) {
                        mark_dirty(static_cast<DomainId>(j));
                    }
                }
            }
        } else {
            // run_until semantics: once nothing at or before the deadline
            // remains and nothing more can arrive (EIT cleared the deadline),
            // pin the clock to it; if the EIT has not cleared it yet, pull
            // the laggard until it does.
            const SimTime next = d.next_work_time();
            const bool drained = next > deadline || next == SimTime::max();
            if (drained && d.sim().now() < deadline) {
                if (eit_of(i) >= past_deadline) {
                    d.sim().run_until(deadline);
                } else {
                    demand_upstream(i);
                }
            }
        }
        // Horizon publication, per out-channel. h is a lower bound on
        // anything this domain will still execute (and hence send + L
        // later); monotone because both inputs are. Publication never wakes
        // the destination by itself — only a *demanded* publication does.
        // An undemanded horizon advance is pure bookkeeping: any domain that
        // actually needs it is (or will be, next time it is examined)
        // blocked, and a blocked domain always demands its laggard, whose
        // forced publication wakes it. Without this rule two drained
        // domains would re-dirty each other forever while their horizons
        // climb off each other toward infinity.
        const SimTime eit_now = eit_of(i);
        const SimTime h = std::min(d.next_work_time(), eit_now);
        const std::int64_t hns = h.ns();
        // A pure-null advance (nothing executed, nothing sent) is one step of
        // the incremental EIT climb. With a positive grain those steps are
        // withheld entirely -- demanded or not -- because the quiescence-time
        // horizon lift computes the climb's fixpoint in one shot once the
        // plane drains; publishing them here would keep the plane busy (each
        // step re-dirties a consumer) and the lift would never run. Grain 0
        // restores the incremental climb, where a demanded advance must
        // always go out: it is then the only way a blocked consumer ever
        // makes progress.
        const bool pure_null = executed == 0 && !sent_any;
        const bool lift_covers = pure_null && options_.horizon_grain > 0;
        bool published_any = false;
        for (const auto e : out_edges_[i]) {
            ChannelClock& clk = clocks_[e];
            const std::int64_t cur = clk.horizon.load(std::memory_order_relaxed);
            const bool demanded = clk.demand.load(std::memory_order_seq_cst) != 0;
            if (hns > cur && lift_covers) {
                ++stat.suppressed;
            } else if (hns > cur) {
                if (demanded || executed > 0 || sent_any ||
                    hns - cur >= edges_[e].grain_ns) {
                    clk.horizon.store(hns, std::memory_order_seq_cst);
                    published_any = true;
                    if (demanded) {
                        clk.demand.store(0, std::memory_order_seq_cst);
                        mark_dirty(edges_[e].dst);
                    }
                } else {
                    ++stat.suppressed;
                }
            } else if (demanded) {
                // The pull cannot be honoured right now; leave the flag set
                // (so the eventual advance wakes the consumer) and either
                // climb the chain or hand the decision back.
                if (eit_now <= d.next_work_time() && !in_edges_[i].empty()) {
                    // Input-limited: this clock cannot advance until our own
                    // laggard does. Forward the pull up the chain.
                    demand_upstream(i);
                } else {
                    // We hold local work that will advance this clock when
                    // the fence or deadline lets it run; bounce the pull so
                    // the consumer re-evaluates its laggard.
                    mark_dirty(edges_[e].dst);
                }
            }
        }
        if (published_any) {
            publications_.fetch_add(1, std::memory_order_relaxed);
            if (executed == 0 && !sent_any) ++stat.nulls;
        }
        // Record what this domain is fence-blocked on (max = nothing), so a
        // fence raise wakes it without a broadcast. A racing raise that
        // misses this store is healed by the quiescence scan.
        if (mode == Mode::kRun) {
            std::int64_t fw = std::numeric_limits<std::int64_t>::max();
            const SimTime fence_now{fence_ns_.load(std::memory_order_seq_cst)};
            if (!d.has_eligible_work(fence_now)) {
                const SimTime next = d.next_work_time();
                if (next != SimTime::max()) fw = next.ns();
            }
            fence_wait_[i].store(fw, std::memory_order_seq_cst);
        }
        // Re-arm: the window ran up to the EIT but obliged work remains
        // beyond it. The next examination either executes (the horizon
        // moved) or issues the demand pull above.
        if (executed > 0) {
            const SimTime next = d.next_work_time();
            const bool obliged =
                mode == Mode::kRun
                    ? d.has_eligible_work(
                          SimTime{fence_ns_.load(std::memory_order_acquire)})
                    : next < past_deadline;
            if (obliged && eit_now != SimTime::max() && eit_now <= next) {
                dirty_[i].store(1, std::memory_order_seq_cst);
            }
        }
        return progressed;
    };

    try {
        for (;;) {
            if (lf_done_.load(std::memory_order_acquire)) return;
            bool progressed = false;
            for (std::size_t i = lane; i < n; i += nlanes) {
                if (dirty_[i].exchange(0, std::memory_order_seq_cst) == 0) continue;
                if (examine(i)) progressed = true;
            }
            if (progressed) continue;
            // Pre-park protocol: take the gate ticket first, then re-check
            // for late arrivals. Any dirty mark after the ticket bumps the
            // epoch (mark_dirty notifies on the 0 -> 1 transition), so
            // wait() returns immediately; any mark before it is seen here.
            const std::uint64_t ticket = gate.prepare();
            if (lf_done_.load(std::memory_order_seq_cst)) return;
            bool any_dirty = false;
            for (std::size_t i = lane; i < n; i += nlanes) {
                if (dirty_[i].load(std::memory_order_seq_cst) != 0) {
                    any_dirty = true;
                    break;
                }
            }
            if (any_dirty) continue;
            {
                std::unique_lock<std::mutex> lock(sync_mu_);
                ++idle_lanes_;
                if (idle_lanes_ == nlanes && plane_clean()) {
                    // Last lane in with a clean plane: every other lane's
                    // domain state is visible (each registered idle under
                    // this mutex after its final pass).
                    if (quiescent_lockfree(mode, deadline)) {
                        --idle_lanes_;
                        lf_done_.store(true, std::memory_order_seq_cst);
                        lock.unlock();
                        for (auto& g : gates_) g->notify();
                        return;
                    }
                    // Not quiescent: the scan healed (re-marked) every domain
                    // still owing work. Two consecutive heals bracketing zero
                    // executed events and zero publications mean no amount of
                    // re-examination can help -- the protocol is wedged.
                    const std::uint64_t ev = events_executed();
                    const std::uint64_t pub =
                        publications_.load(std::memory_order_relaxed);
                    if (ev == heal_events_ && pub == heal_pubs_) {
                        throw std::logic_error(
                            "ShardedSimulation: lock-free channel coordinator "
                            "stalled (no progress, clean plane, not quiescent)");
                    }
                    heal_events_ = ev;
                    heal_pubs_ = pub;
                }
            }
            const auto t0 = Clock::now();
            const bool parked = gate.wait(ticket, &stat.parked_ns);
            stat.blocked_ns += elapsed_ns(t0, Clock::now());
            if (parked) ++stat.parks;
            ++stat.wakeups;
            {
                std::lock_guard<std::mutex> lock(sync_mu_);
                --idle_lanes_;
            }
        }
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(sync_mu_);
            if (lane_error_ == nullptr) lane_error_ = std::current_exception();
        }
        lf_done_.store(true, std::memory_order_seq_cst);
        for (auto& g : gates_) g->notify();
    }
}

void ShardedSimulation::drive_channel(Mode mode, SimTime deadline) {
    build_channel_plane();
    const std::size_t lanes = shard_count();
    std::size_t workers = options_.workers;
    if (workers == 0) {
        workers = std::min<std::size_t>(
            lanes, std::max(1u, std::thread::hardware_concurrency()));
    }
    const std::size_t nlanes = std::min(lanes, std::max<std::size_t>(1, workers));

    // Single-threaded setup: merge leftovers from prior runs of other
    // coordinators plus messages posted outside any window, reset the plane
    // (clocks are monotone *within* a run), and arm every domain.
    drain_staged_inboxes();
    for (auto& d : domains_) {
        for (auto& m : d->outbox_) domains_[m.dst]->stage_inbound(std::move(m));
        d->outbox_.clear();
    }
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        clocks_[e].horizon.store(0, std::memory_order_relaxed);
        clocks_[e].demand.store(0, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        dirty_[i].store(1, std::memory_order_relaxed);
        fence_wait_[i].store(std::numeric_limits<std::int64_t>::max(),
                             std::memory_order_relaxed);
    }
    fence_ns_.store(mode == Mode::kRun ? compute_fence().ns() : 0,
                    std::memory_order_relaxed);
    lf_done_.store(false, std::memory_order_relaxed);
    publications_.store(0, std::memory_order_relaxed);
    idle_lanes_ = 0;
    heal_events_ = ~std::uint64_t{0};
    heal_pubs_ = ~std::uint64_t{0};
    lane_error_ = nullptr;
    lane_stats_.assign(nlanes, LaneStat{});
    if (gates_.size() != nlanes) {
        gates_.clear();
        for (std::size_t t = 0; t < nlanes; ++t) {
            gates_.push_back(std::make_unique<Eventcount>());
        }
    }

    if (nlanes <= 1) {
        // Deterministic inline path: one lane, calling thread, fixed pass
        // order -- the window, null, suppression, and demand counters are
        // all reproducible here (the CI gates rely on it).
        channel_lane(0, 1, mode, deadline);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nlanes);
        for (std::size_t t = 0; t < nlanes; ++t) {
            threads.emplace_back([this, t, nlanes, mode, deadline] {
                if (options_.pin_lanes) pin_current_thread_to_core(t);
                channel_lane(t, nlanes, mode, deadline);
            });
        }
        for (auto& th : threads) th.join();
    }
    for (const auto& stat : lane_stats_) {
        rounds_ += stat.windows;
        null_messages_ += stat.nulls;
        suppressed_publications_ += stat.suppressed;
        demand_requests_ += stat.demands;
        wakeups_ += stat.wakeups;
    }
    if (lane_error_ != nullptr) {
        std::exception_ptr err = lane_error_;
        lane_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

void ShardedSimulation::dump_metrics(std::ostream& os) const {
    MetricsRegistry merged;
    for (const auto& d : domains_) merged.merge_from(d->metrics());
    merged.dump(os);
}

std::string ShardedSimulation::dump_metrics() const {
    std::ostringstream os;
    dump_metrics(os);
    return os.str();
}

void ShardedSimulation::write_chrome_trace(std::ostream& os) const {
    std::vector<const Tracer*> tracers;
    tracers.reserve(domains_.size());
    for (const auto& d : domains_) tracers.push_back(&d->tracer());
    Tracer::write_merged_chrome_trace(os, tracers);
}

void ShardedSimulation::flush_logs(std::ostream& os) {
    for (auto& d : domains_) d->log_buffer().flush_to(os);
}

void ShardedSimulation::flush_logs_if_configured() {
    if (log_output_ != nullptr) flush_logs(*log_output_);
}

} // namespace tedge::sim
