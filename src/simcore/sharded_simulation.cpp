#include "simcore/sharded_simulation.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "simcore/thread_pool.hpp"

namespace tedge::sim {

namespace {

/// `a + b` clamped to SimTime::max() (infinite-lookahead windows).
SimTime saturating_add(SimTime a, SimTime b) {
    if (b == SimTime::max() || a > SimTime::max() - b) return SimTime::max();
    return a + b;
}

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0,
                         std::chrono::steady_clock::time_point t1) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

} // namespace

SyncMode ShardedSimulation::default_sync() {
    const char* env = std::getenv("TEDGE_SYNC");
    if (env != nullptr && std::strcmp(env, "barrier") == 0) {
        return SyncMode::kBarrier;
    }
    return SyncMode::kChannel;
}

bool ShardedSimulation::default_pin() {
    const char* env = std::getenv("TEDGE_PIN");
    return env != nullptr && std::strcmp(env, "1") == 0;
}

ShardedSimulation::ShardedSimulation() : ShardedSimulation(Options{}) {}

ShardedSimulation::ShardedSimulation(Options options) : options_(options) {
    if (options_.lookahead <= SimTime::zero()) {
        throw std::invalid_argument(
            "ShardedSimulation: lookahead must be positive (zero lookahead "
            "cannot make conservative progress)");
    }
}

ShardedSimulation::~ShardedSimulation() = default;

Domain& ShardedSimulation::add_domain(std::string name) {
    if (running_) {
        throw std::logic_error("ShardedSimulation: add_domain during a run");
    }
    const auto id = static_cast<DomainId>(domains_.size());
    domains_.push_back(std::unique_ptr<Domain>(new Domain(
        *this, id, std::move(name), options_.backend, options_.seed)));
    return *domains_.back();
}

void ShardedSimulation::set_channel(DomainId src, DomainId dst, SimTime lookahead) {
    if (running_) {
        throw std::logic_error("ShardedSimulation: set_channel during a run");
    }
    if (lookahead <= SimTime::zero() || lookahead == SimTime::max()) {
        throw std::invalid_argument(
            "ShardedSimulation: channel lookahead must be positive and finite");
    }
    channels_[channel_key(src, dst)] = lookahead;
    min_channel_lookahead_ = std::min(min_channel_lookahead_, lookahead);
    in_channels_built_ = false;
}

SimTime ShardedSimulation::channel_lookahead(DomainId src, DomainId dst) const {
    if (channels_.empty()) return options_.lookahead;
    const auto it = channels_.find(channel_key(src, dst));
    if (it == channels_.end()) {
        throw std::logic_error(
            "ShardedSimulation: no channel between these domains (explicit "
            "channels are installed; declare one with set_channel)");
    }
    return it->second;
}

SimTime ShardedSimulation::lookahead() const {
    return channels_.empty() ? options_.lookahead : min_channel_lookahead_;
}

void ShardedSimulation::set_lookahead(SimTime lookahead) {
    if (lookahead <= SimTime::zero()) {
        throw std::invalid_argument("ShardedSimulation: lookahead must be positive");
    }
    options_.lookahead = lookahead;
}

std::size_t ShardedSimulation::shard_count() const {
    if (domains_.empty()) return 0;
    const std::size_t lanes =
        options_.shards == 0 ? domains_.size() : options_.shards;
    return std::min(lanes, domains_.size());
}

std::uint64_t ShardedSimulation::run() { return drive(Mode::kRun, SimTime::max()); }

std::uint64_t ShardedSimulation::run_until(SimTime deadline) {
    return drive(Mode::kRunUntil, deadline);
}

SimTime ShardedSimulation::now() const {
    SimTime latest = SimTime::zero();
    for (const auto& d : domains_) latest = std::max(latest, d->sim().now());
    return latest;
}

std::uint64_t ShardedSimulation::events_executed() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->sim().events_executed();
    return total;
}

std::uint64_t ShardedSimulation::messages_delivered() const {
    std::uint64_t total = 0;
    for (const auto& d : domains_) total += d->delivered_;
    return total;
}

SimTime ShardedSimulation::compute_fence() const {
    SimTime fence = SimTime::zero();
    for (const auto& d : domains_) fence = std::max(fence, d->user_horizon());
    return fence;
}

void ShardedSimulation::build_in_channels() {
    if (in_channels_built_ && in_channels_.size() == domains_.size()) return;
    in_channels_.assign(domains_.size(), {});
    if (channels_.empty()) {
        // Implicit full mesh at the global lookahead. SimTime::max() means
        // "no cross-domain messaging": nothing can ever arrive, so domains
        // have no in-channels and run unbounded windows.
        if (options_.lookahead != SimTime::max()) {
            for (DomainId dst = 0; dst < domains_.size(); ++dst) {
                for (DomainId src = 0; src < domains_.size(); ++src) {
                    if (src == dst) continue;
                    in_channels_[dst].emplace_back(src, options_.lookahead);
                }
            }
        }
    } else {
        for (const auto& [key, lookahead] : channels_) {
            const auto src = static_cast<DomainId>(key >> 32);
            const auto dst = static_cast<DomainId>(key & 0xffffffffu);
            // Self-channels never gate anything: self-posts are inserted at
            // post time (Domain::post), so a domain does not wait on itself.
            if (src == dst) continue;
            if (src >= domains_.size() || dst >= domains_.size()) continue;
            in_channels_[dst].emplace_back(src, lookahead);
        }
        for (auto& in : in_channels_) std::sort(in.begin(), in.end());
    }
    in_channels_built_ = true;
}

void ShardedSimulation::drain_staged_inboxes() {
    for (std::size_t i = 0; i < staged_.size() && i < domains_.size(); ++i) {
        for (auto& m : staged_[i]) domains_[i]->stage_inbound(std::move(m));
        staged_[i].clear();
    }
}

std::uint64_t ShardedSimulation::drive(Mode mode, SimTime deadline) {
    if (domains_.empty()) return 0;
    running_ = true;
    const std::uint64_t executed_before = events_executed();
    try {
        if (domains_.size() == 1) {
            drive_single(mode, deadline);
        } else if (options_.sync == SyncMode::kBarrier ||
                   (mode == Mode::kRunUntil && deadline == SimTime::max())) {
            // run_until(max) has no finite quiescence point for the channel
            // horizon fixpoint; the barrier driver handles it directly (the
            // two coordinators produce identical results by construction).
            drive_barrier(mode, deadline);
        } else {
            drive_channel(mode, deadline);
        }
    } catch (...) {
        running_ = false;
        throw;
    }
    running_ = false;
    flush_logs_if_configured();
    return events_executed() - executed_before;
}

// With a single domain the coordinator is the serial kernel plus an optional
// self-mailbox; windowed execution buys nothing and the old (pre-channel)
// windowing is kept verbatim so single-domain runs stay bit-identical to
// Simulation::run()/run_until().
void ShardedSimulation::drive_single(Mode mode, SimTime deadline) {
    Domain& d = *domains_[0];
    for (;;) {
        if (mode == Mode::kRun && !d.sim().has_user_events()) break;
        if (!d.sim().has_pending_events() ||
            (mode == Mode::kRunUntil && d.sim().next_time() > deadline)) {
            if (mode == Mode::kRunUntil) d.sim().run_until(deadline);
            break;
        }
        SimTime window_end = saturating_add(d.sim().next_time(), lookahead());
        if (mode == Mode::kRunUntil) {
            // Events at exactly `deadline` still execute: the window is
            // half-open, so end one tick past it.
            window_end = std::min(window_end, saturating_add(deadline, nanoseconds(1)));
        }
        d.sim().run_window(window_end, mode == Mode::kRun);
        ++rounds_;
        if (!d.outbox_.empty()) {
            // Self-posts normally insert at post time; this only runs for
            // messages staged before the immediate-insert rule could apply
            // (none today -- kept for robustness).
            std::sort(d.outbox_.begin(), d.outbox_.end(),
                      [](const Domain::Message& a, const Domain::Message& b) {
                          if (a.at != b.at) return a.at < b.at;
                          return a.seq < b.seq;
                      });
            for (auto& m : d.outbox_) {
                d.sim().schedule_at(m.at, std::move(m.fn), m.daemon);
                ++d.delivered_;
            }
            d.outbox_.clear();
        }
    }
}

void ShardedSimulation::drive_barrier(Mode mode, SimTime deadline) {
    const std::size_t lanes = shard_count();
    if (lanes > 1 && pool_ == nullptr) {
        std::size_t workers = options_.workers;
        if (workers == 0) {
            workers = std::min<std::size_t>(
                lanes, std::max(1u, std::thread::hardware_concurrency()));
        }
        pool_ = std::make_unique<ThreadPool>(workers, options_.pin_lanes);
    }
    // A prior channel-mode run can leave batches staged, and messages posted
    // outside any window (before the first run, or between runs) sit in
    // their sender's outbox; merge both before the eligibility scan so a
    // run whose only work arrives by mail still starts.
    drain_staged_inboxes();
    for (auto& d : domains_) {
        for (auto& m : d->outbox_) domains_[m.dst]->stage_inbound(std::move(m));
        d->outbox_.clear();
    }

    for (;;) {
        // ---- round-start snapshot (deterministic: barrier state only) ----
        const SimTime fence = mode == Mode::kRun ? compute_fence() : SimTime::max();
        if (mode == Mode::kRun) {
            bool any_eligible = false;
            for (const auto& d : domains_) {
                if (d->has_eligible_work(fence)) { any_eligible = true; break; }
            }
            if (!any_eligible) break;
        }

        SimTime next = SimTime::max();
        for (const auto& d : domains_) next = std::min(next, d->next_work_time());
        if (next == SimTime::max() ||
            (mode == Mode::kRunUntil && next > deadline)) {
            if (mode == Mode::kRunUntil) {
                // Nothing left at or before the deadline: advance every
                // clock exactly like Simulation::run_until would.
                for (auto& d : domains_) d->sim().run_until(deadline);
            }
            break;
        }

        SimTime window_end = saturating_add(next, lookahead());
        if (mode == Mode::kRunUntil) {
            window_end = std::min(window_end, saturating_add(deadline, nanoseconds(1)));
        }

        // Each lane owns the domains with id % lanes == lane and runs their
        // sub-windows sequentially in id order; no two lanes ever touch the
        // same domain, so lanes share no mutable state.
        auto run_lane = [&](std::size_t lane) {
            for (std::size_t i = lane; i < domains_.size(); i += lanes) {
                domains_[i]->advance_window(window_end, fence);
            }
        };
        if (lanes <= 1 || pool_ == nullptr || pool_->size() <= 1) {
            // One lane, or one worker (single-core host): dispatching through
            // the pool buys nothing but wakeup latency. Lane order cannot
            // matter -- lanes share no state -- so inline execution is the
            // same run.
            for (std::size_t lane = 0; lane < lanes; ++lane) run_lane(lane);
        } else {
            pool_->parallel_for(lanes, run_lane);
        }
        ++rounds_;

        // Barrier delivery: stage every outbox into the destination inbox
        // heaps. Insertion into destination queues happens at execution
        // boundaries (Domain::advance_window), identically to channel mode.
        for (auto& d : domains_) {
            for (auto& m : d->outbox_) {
                const DomainId dst = m.dst;
                domains_[dst]->stage_inbound(std::move(m));
            }
            d->outbox_.clear();
        }
    }
}

void ShardedSimulation::drive_channel(Mode mode, SimTime deadline) {
    build_in_channels();
    const std::size_t lanes = shard_count();
    std::size_t workers = options_.workers;
    if (workers == 0) {
        workers = std::min<std::size_t>(
            lanes, std::max(1u, std::thread::hardware_concurrency()));
    }
    const std::size_t nlanes = std::min(lanes, std::max<std::size_t>(1, workers));

    // All horizons start at zero and only climb (publications are monotone);
    // staged_ keeps its per-destination capacity across windows and runs.
    horizon_.assign(domains_.size(), SimTime::zero());
    if (staged_.size() < domains_.size()) staged_.resize(domains_.size());
    fence_ = compute_fence();
    version_ = 0;
    busy_lanes_ = 0;
    done_ = false;
    lane_error_ = nullptr;
    lane_stats_.assign(nlanes, LaneStat{});

    if (nlanes <= 1) {
        // Deterministic inline path: one lane, calling thread, fixed pass
        // order -- window and null-message counters are reproducible here.
        channel_lane(0, 1, mode, deadline);
    } else {
        std::vector<std::thread> threads;
        threads.reserve(nlanes);
        for (std::size_t t = 0; t < nlanes; ++t) {
            threads.emplace_back([this, t, nlanes, mode, deadline] {
                if (options_.pin_lanes) pin_current_thread_to_core(t);
                channel_lane(t, nlanes, mode, deadline);
            });
        }
        for (auto& th : threads) th.join();
    }
    for (const auto& stat : lane_stats_) rounds_ += stat.windows;
    if (lane_error_ != nullptr) {
        std::exception_ptr err = lane_error_;
        lane_error_ = nullptr;
        std::rethrow_exception(err);
    }
}

SimTime ShardedSimulation::safe_end_locked(DomainId dst) const {
    SimTime end = SimTime::max();
    for (const auto& [src, lookahead] : in_channels_[dst]) {
        end = std::min(end, saturating_add(horizon_[src], lookahead));
    }
    return end;
}

bool ShardedSimulation::quiescent_locked(Mode mode, SimTime deadline) const {
    for (std::size_t i = 0; i < domains_.size(); ++i) {
        const Domain& d = *domains_[i];
        for (const auto& m : staged_[i]) {
            if (mode == Mode::kRun) {
                if (!m.daemon || m.at <= fence_) return false;
            } else if (m.at <= deadline) {
                return false;
            }
        }
        if (mode == Mode::kRun) {
            if (d.has_eligible_work(fence_)) return false;
        } else {
            const SimTime next = d.next_work_time();
            if (next <= deadline && next != SimTime::max()) return false;
            if (d.sim().now() < deadline) return false;
        }
    }
    return true;
}

// One lane of the channel coordinator. All shared state (horizons, fence,
// staged batches, version counter) lives under sync_mu_; domain windows run
// unlocked -- a domain is only ever touched by its owning lane (id % nlanes).
//
// Each pass over the lane's domains: merge staged batches into the inbox,
// execute up to the channel-safe bound, flush the outbox as one batch per
// destination, then publish fence and horizon updates. A horizon publication
// that carried no execution and no payload is a pure null message. When a
// full pass makes no progress and nothing was published since the pass
// started, the lane either detects global quiescence (no lane executing,
// nothing eligible anywhere) or sleeps until the version counter moves.
void ShardedSimulation::channel_lane(std::size_t lane, std::size_t nlanes,
                                     Mode mode, SimTime deadline) {
    using Clock = std::chrono::steady_clock;
    LaneStat& stat = lane_stats_[lane];
    const SimTime past_deadline = mode == Mode::kRunUntil
                                      ? saturating_add(deadline, nanoseconds(1))
                                      : SimTime::max();
    std::unique_lock<std::mutex> lock(sync_mu_);
    try {
        for (;;) {
            if (done_) return;
            const std::uint64_t seen = version_;
            bool progressed = false;
            for (std::size_t i = lane; i < domains_.size(); i += nlanes) {
                Domain& d = *domains_[i];
                if (!staged_[i].empty()) {
                    for (auto& m : staged_[i]) d.stage_inbound(std::move(m));
                    staged_[i].clear();
                    progressed = true;
                }
                const SimTime fence = mode == Mode::kRun ? fence_ : SimTime::max();
                SimTime end = safe_end_locked(static_cast<DomainId>(i));
                if (mode == Mode::kRunUntil) end = std::min(end, past_deadline);
                std::uint64_t executed = 0;
                bool published = false;
                // Attempt a window only when it can actually execute
                // something: next work inside the safe bound AND not entirely
                // fence-blocked daemons. A futile attempt would be a no-op
                // (run_window_fenced does not even advance the clock), and
                // publishing for it would keep every lane spinning on
                // version bumps that carry no information -- with all lanes
                // perpetually "busy" on empty windows, the quiescence check
                // below could starve forever.
                if (d.next_work_time() < end && d.has_eligible_work(fence)) {
                    ++busy_lanes_;
                    lock.unlock();
                    const auto t0 = Clock::now();
                    executed = d.advance_window(end, fence);
                    const auto t1 = Clock::now();
                    stat.busy_ns += elapsed_ns(t0, t1);
                    ++stat.windows;
                    lock.lock();
                    --busy_lanes_;
                    if (executed > 0) progressed = true;
                }
                bool sent = false;
                if (!d.outbox_.empty()) {
                    // One batch append per (src, dst, window): messages to the
                    // same destination land contiguously in its staging
                    // vector under a single lock hold, and the single version
                    // bump below is the one wakeup the whole batch costs.
                    for (auto& m : d.outbox_) {
                        staged_[m.dst].push_back(std::move(m));
                    }
                    d.outbox_.clear();
                    sent = true;
                    published = true;
                }
                if (mode == Mode::kRun) {
                    const SimTime uh = d.user_horizon();
                    if (uh > fence_) {
                        fence_ = uh;
                        published = true;
                    }
                } else {
                    // run_until semantics: once nothing at or before the
                    // deadline remains and nothing more can arrive (the safe
                    // bound cleared the deadline), pin the clock to it. The
                    // queue holds nothing <= deadline, so this executes zero
                    // events and is fine under the lock.
                    const SimTime next = d.next_work_time();
                    const bool drained = next > deadline || next == SimTime::max();
                    if (drained && d.sim().now() < deadline &&
                        safe_end_locked(static_cast<DomainId>(i)) >= past_deadline) {
                        d.sim().run_until(deadline);
                    }
                }
                // Horizon: a lower bound on anything this domain will still
                // execute -- its earliest pending work, capped by its own
                // safe bound (staged messages it has not seen yet can only
                // arrive at or after that). Monotone by construction.
                const SimTime h = std::min(
                    d.next_work_time(),
                    safe_end_locked(static_cast<DomainId>(i)));
                if (h > horizon_[i]) {
                    horizon_[i] = h;
                    if (executed == 0 && !sent) ++null_messages_;
                    published = true;
                }
                if (published) {
                    ++version_;
                    sync_cv_.notify_all();
                }
            }
            if (progressed) continue;
            // Quiescence falls to whichever lane finishes last: a lane only
            // sleeps while another is mid-window (busy_lanes_ > 0) or has
            // pending publications to absorb, and every change that could
            // enable a sleeping lane's domains -- a message batch, a horizon
            // climb, a fence extension -- bumps the version and wakes it. So
            // the final no-progress pass always runs with busy_lanes_ == 0
            // on some lane, which detects quiescence here and releases the
            // rest via done_.
            if (busy_lanes_ == 0 && quiescent_locked(mode, deadline)) {
                done_ = true;
                sync_cv_.notify_all();
                return;
            }
            if (version_ != seen) continue;  // horizons or fence moved: re-pass
            if (nlanes == 1) {
                // A single lane has nobody to wait for: a stable, no-progress,
                // non-quiescent pass means the protocol is wedged.
                throw std::logic_error(
                    "ShardedSimulation: channel coordinator stalled (no "
                    "progress, no pending publications, not quiescent)");
            }
            const auto t0 = Clock::now();
            sync_cv_.wait(lock, [&] { return done_ || version_ != seen; });
            stat.blocked_ns += elapsed_ns(t0, Clock::now());
        }
    } catch (...) {
        if (!lock.owns_lock()) lock.lock();
        if (lane_error_ == nullptr) lane_error_ = std::current_exception();
        done_ = true;
        sync_cv_.notify_all();
    }
}

void ShardedSimulation::dump_metrics(std::ostream& os) const {
    MetricsRegistry merged;
    for (const auto& d : domains_) merged.merge_from(d->metrics());
    merged.dump(os);
}

std::string ShardedSimulation::dump_metrics() const {
    std::ostringstream os;
    dump_metrics(os);
    return os.str();
}

void ShardedSimulation::write_chrome_trace(std::ostream& os) const {
    std::vector<const Tracer*> tracers;
    tracers.reserve(domains_.size());
    for (const auto& d : domains_) tracers.push_back(&d->tracer());
    Tracer::write_merged_chrome_trace(os, tracers);
}

void ShardedSimulation::flush_logs(std::ostream& os) {
    for (auto& d : domains_) d->log_buffer().flush_to(os);
}

void ShardedSimulation::flush_logs_if_configured() {
    if (log_output_ != nullptr) flush_logs(*log_output_);
}

} // namespace tedge::sim
