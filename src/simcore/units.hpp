// Data-size and data-rate units used by the network and container substrates.
#pragma once

#include <cstdint>

#include "simcore/time.hpp"

namespace tedge::sim {

/// A size in bytes. Plain integer alias; helpers below give readable literals.
using Bytes = std::int64_t;

[[nodiscard]] constexpr Bytes kib(double v) { return static_cast<Bytes>(v * 1024.0); }
[[nodiscard]] constexpr Bytes mib(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0); }
[[nodiscard]] constexpr Bytes gib(double v) { return static_cast<Bytes>(v * 1024.0 * 1024.0 * 1024.0); }

/// A data rate in bits per second.
class DataRate {
public:
    constexpr DataRate() = default;
    constexpr explicit DataRate(std::int64_t bits_per_sec) : bps_(bits_per_sec) {}

    [[nodiscard]] constexpr std::int64_t bps() const { return bps_; }
    [[nodiscard]] constexpr double mbps() const { return static_cast<double>(bps_) / 1e6; }

    /// Time needed to serialize `size` bytes at this rate. A zero rate means
    /// "infinitely fast" (useful for loopback links) and yields zero time.
    [[nodiscard]] constexpr SimTime transfer_time(Bytes size) const {
        if (bps_ <= 0 || size <= 0) return SimTime::zero();
        const double secs = static_cast<double>(size) * 8.0 / static_cast<double>(bps_);
        return from_seconds(secs);
    }

    constexpr auto operator<=>(const DataRate&) const = default;

private:
    std::int64_t bps_ = 0;
};

[[nodiscard]] constexpr DataRate mbit_per_sec(std::int64_t v) { return DataRate{v * 1'000'000}; }
[[nodiscard]] constexpr DataRate gbit_per_sec(std::int64_t v) { return DataRate{v * 1'000'000'000}; }

} // namespace tedge::sim
