#include "simcore/random.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace tedge::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

Rng Rng::split() {
    // A fresh generator seeded from this stream; statistically independent
    // for simulation purposes.
    return Rng{(*this)()};
}

std::uint64_t Rng::stream_seed(std::uint64_t run_seed, std::uint64_t stream_id) {
    // Two SplitMix64 steps over (run_seed, stream_id): the first whitens the
    // run seed, the second folds in the stream id, so adjacent ids (0, 1, 2,
    // ...) land far apart in seed space. Stateless and order-free.
    std::uint64_t x = run_seed;
    const std::uint64_t a = splitmix64(x);
    x = a ^ (stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
    return splitmix64(x);
}

Rng Rng::for_stream(std::uint64_t run_seed, std::uint64_t stream_id) {
    return Rng{stream_seed(run_seed, stream_id)};
}

double Rng::uniform01() {
    // 53 random mantissa bits -> uniform double in [0,1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)()); // full range
    // Debiased modulo (rejection sampling).
    const std::uint64_t limit = (~0ULL) - (~0ULL) % span;
    std::uint64_t v;
    do { v = (*this)(); } while (v >= limit);
    return lo + static_cast<std::int64_t>(v % span);
}

double Rng::exponential(double mean) {
    if (mean <= 0) throw std::invalid_argument("exponential: mean <= 0");
    double u;
    do { u = uniform01(); } while (u <= 0.0);
    return -mean * std::log(u);
}

double Rng::lognormal_median(double median, double sigma) {
    if (median <= 0) throw std::invalid_argument("lognormal: median <= 0");
    return median * std::exp(sigma * normal(0.0, 1.0));
}

double Rng::normal(double mean, double stddev) {
    double u1;
    do { u1 = uniform01(); } while (u1 <= 0.0);
    const double u2 = uniform01();
    const double z = std::sqrt(-2.0 * std::log(u1)) *
                     std::cos(2.0 * std::numbers::pi * u2);
    return mean + stddev * z;
}

bool Rng::chance(double p) {
    return uniform01() < p;
}

std::uint64_t Rng::poisson(double mean) {
    if (mean < 0) throw std::invalid_argument("poisson: mean < 0");
    if (mean == 0) return 0;
    if (mean < 32.0) {
        // Knuth: count uniforms until their product drops below e^-mean.
        const double threshold = std::exp(-mean);
        std::uint64_t count = 0;
        double product = uniform01();
        while (product > threshold) {
            ++count;
            product *= uniform01();
        }
        return count;
    }
    const double draw = std::round(normal(mean, std::sqrt(mean)));
    return draw <= 0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
    if (weights.empty()) throw std::invalid_argument("weighted_index: empty");
    double total = 0;
    for (double w : weights) {
        if (w < 0) throw std::invalid_argument("weighted_index: negative weight");
        total += w;
    }
    if (total <= 0) throw std::invalid_argument("weighted_index: zero total");
    double r = uniform(0.0, total);
    for (std::size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0) return i;
    }
    return weights.size() - 1;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
    if (n == 0) throw std::invalid_argument("zipf: n == 0");
    cdf_.resize(n);
    double acc = 0;
    for (std::size_t k = 0; k < n; ++k) {
        acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
        cdf_[k] = acc;
    }
    for (auto& c : cdf_) c /= acc;
}

std::size_t ZipfDistribution::sample(Rng& rng) const {
    const double u = rng.uniform01();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

double ZipfDistribution::pmf(std::size_t k) const {
    if (k >= cdf_.size()) return 0.0;
    return k == 0 ? cdf_[0] : cdf_[k] - cdf_[k - 1];
}

} // namespace tedge::sim
