// Hierarchical timing wheel (Varghese & Lauck) over absolute nanosecond
// timestamps: the O(1) alternative to the 4-ary heap behind EventQueue.
//
// Geometry. 11 levels x 64 buckets cover every bit of a 64-bit timestamp
// (6 bits per level). An entry at absolute time `at` is filed relative to the
// wheel's reference instant `cur_` (the timestamp of the most recently popped
// entry): with d = at ^ cur_, the entry lands on the level of d's highest set
// bit, in the bucket indexed by `at`'s 6-bit field at that level. Because
// buckets partition *aligned* blocks of absolute time, two invariants follow:
//
//   1. every entry on level L is earlier than every entry on any level > L
//      (level-L entries share cur_'s 2^(6(L+1))-aligned block; higher-level
//      entries lie in a later block), and
//   2. within a level, ascending bucket index is ascending time (all higher
//      bits are shared with cur_).
//
// So the globally earliest entry always sits in the lowest-indexed occupied
// bucket of the lowest occupied level -- found in O(1) with one countr_zero
// per level over the per-level occupancy bitmasks. A level-0 bucket holds
// exactly one timestamp; higher-level buckets hold a timestamp range.
//
// Determinism. Draining buckets in bulk must not disturb the kernel's
// (timestamp, insertion-seq) order. When the earliest bucket is staged, the
// entries at its minimum timestamp are sorted by seq into `ready_`; the rest
// re-file strictly below their old level (bucket-mates share all bits at and
// above the old level's field with the new cur_), so each entry cascades at
// most kLevels times over its lifetime -- amortized O(1). A push at exactly
// cur_ appends to `ready_` directly: its seq is globally maximal, so the
// sorted order is preserved without re-sorting.
//
// Advancing `cur_` happens only in pop_min(): min_time() computes the next
// timestamp non-destructively (cached between calls) because callers such as
// Simulation::run_until may consult it, stop *before* that instant, and then
// legally push new entries earlier than the pending minimum.
//
// Cancellation is the caller's concern: the wheel stores (at, seq, slot)
// records and lazily purges entries for which the caller-supplied drop filter
// returns true (EventQueue releases the slot inside the filter).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <vector>

namespace tedge::sim {

/// Multi-level timing wheel with deterministic (timestamp, seq) pop order.
class TimerWheel {
public:
    struct Entry {
        std::uint64_t at;    ///< absolute timestamp, nanoseconds (non-negative)
        std::uint64_t seq;   ///< insertion sequence; same-instant tie-break
        std::uint32_t slot;  ///< owner's slab slot id
    };

    /// Deterministic cascade accounting (same numbers at a fixed seed on any
    /// host): how much bulk work staging has done. `refiled` divided by the
    /// number of pushes is the amortized cascade cost per entry; the wheel
    /// geometry bounds it by kLevels, and a practical run with a horizon
    /// under 2^40 ns stays below 7.
    struct CascadeStats {
        std::uint64_t stages = 0;          ///< buckets staged (instant groups)
        std::uint64_t refiled = 0;         ///< entries re-filed to lower levels
        std::uint64_t max_stage_burst = 0; ///< largest single staged bucket
    };

    /// File an entry. Requires at >= current() -- the simulation clock never
    /// schedules into the past relative to the last popped event.
    void push(std::uint64_t at, std::uint64_t seq, std::uint32_t slot);

    /// Timestamp of the earliest entry surviving `drop`, without advancing
    /// the wheel. Returns false when no live entry remains. The result is
    /// cached until the next pop/cancel.
    template <typename Drop>
    [[nodiscard]] bool min_time(Drop&& drop, std::uint64_t& at_out);

    /// The earliest entry surviving `drop` in (at, seq) order, without
    /// advancing the wheel (same non-destructive contract as min_time, so
    /// callers may still push entries earlier than the reported minimum
    /// afterwards). Returns false when no live entry remains.
    template <typename Drop>
    [[nodiscard]] bool min_entry(Drop&& drop, Entry& out);

    /// Remove the earliest entry surviving `drop` in (at, seq) order.
    /// Advances current() to the popped timestamp. Returns false when empty.
    template <typename Drop>
    [[nodiscard]] bool pop_min(Drop&& drop, Entry& out);

    /// Visit every remaining entry (live and dropped alike, unspecified
    /// order) and leave the wheel empty with current() reset to zero.
    template <typename Visit>
    void consume_all(Visit&& visit);

    /// Invalidate the cached minimum (call when an entry is cancelled; the
    /// tombstone itself is purged lazily by the drop filter). The pending
    /// count lets the purge scans skip the per-entry drop filter -- and its
    /// slab load -- entirely while no cancellation is outstanding.
    void note_cancelled() {
        min_valid_ = false;
        ++cancelled_;
    }

    /// Reference instant: the timestamp of the most recently popped entry.
    [[nodiscard]] std::uint64_t current() const { return cur_; }

    /// Entries on the wheel, including not-yet-purged dropped ones.
    [[nodiscard]] std::size_t size() const { return size_; }
    [[nodiscard]] bool empty() const { return size_ == 0; }

    /// Cumulative staging/cascade work since construction.
    [[nodiscard]] const CascadeStats& cascade_stats() const { return cascade_; }

private:
    static constexpr int kLevelBits = 6;
    static constexpr std::size_t kBuckets = std::size_t{1} << kLevelBits;
    static constexpr int kLevels = (64 + kLevelBits - 1) / kLevelBits;  // 11

    using Bucket = std::vector<Entry>;

    static int level_of(std::uint64_t distance) {
        return (63 - std::countl_zero(distance)) / kLevelBits;
    }
    static std::size_t index_of(std::uint64_t at, int level) {
        return (at >> (level * kLevelBits)) & (kBuckets - 1);
    }

    void file(const Entry& e);
    void clear_bucket_bit(int level, std::size_t idx);
    // Advance cur_ to the minimum of bucket (level, idx) and stage that
    // instant's entries into ready_ (seq-sorted); re-file the rest.
    void stage(int level, std::size_t idx);

    template <typename Drop>
    void purge_ready(Drop& drop);
    template <typename Drop>
    void purge_bucket(Bucket& bucket, Drop& drop);
    // Locate the earliest non-empty bucket (purging as it scans) and stage
    // it. Returns false when nothing live remains.
    template <typename Drop>
    bool advance(Drop& drop);

    std::array<std::array<Bucket, kBuckets>, kLevels> buckets_{};
    std::array<std::uint64_t, kLevels> occupied_{};  ///< bit b: bucket b non-empty
    std::uint16_t level_mask_ = 0;   ///< bit L: occupied_[L] != 0
    std::vector<Entry> ready_;       ///< current instant's group, seq-ascending
    std::size_t ready_head_ = 0;     ///< drained prefix of ready_
    std::uint64_t cur_ = 0;
    std::uint64_t min_cache_ = 0;
    bool min_valid_ = false;
    std::size_t size_ = 0;
    std::size_t cancelled_ = 0;      ///< tombstones not yet purged
    CascadeStats cascade_;
};

// ---------------------------------------------------------------------------
// Hot paths, inline: push and the purge/scan loops run once per event.

inline void TimerWheel::file(const Entry& e) {
    const int level = level_of(e.at ^ cur_);
    const std::size_t idx = index_of(e.at, level);
    buckets_[level][idx].push_back(e);
    occupied_[level] |= std::uint64_t{1} << idx;
    level_mask_ |= static_cast<std::uint16_t>(1U << level);
}

inline void TimerWheel::clear_bucket_bit(int level, std::size_t idx) {
    occupied_[level] &= ~(std::uint64_t{1} << idx);
    if (occupied_[level] == 0) {
        level_mask_ &= static_cast<std::uint16_t>(~(1U << level));
    }
}

inline void TimerWheel::push(std::uint64_t at, std::uint64_t seq, std::uint32_t slot) {
    const Entry e{at, seq, slot};
    if (at == cur_) {
        // Same-instant push while that instant's group drains: seq is
        // globally maximal, so appending keeps ready_ sorted.
        ready_.push_back(e);
    } else {
        file(e);
        if (min_valid_ && at < min_cache_) min_cache_ = at;
    }
    ++size_;
}

template <typename Drop>
void TimerWheel::purge_ready(Drop& drop) {
    if (cancelled_ != 0) {
        while (ready_head_ < ready_.size() && drop(ready_[ready_head_].slot)) {
            ++ready_head_;
            --size_;
            --cancelled_;
        }
    }
    if (ready_head_ != 0 && ready_head_ == ready_.size()) {
        ready_.clear();
        ready_head_ = 0;
    }
}

template <typename Drop>
void TimerWheel::purge_bucket(Bucket& bucket, Drop& drop) {
    if (cancelled_ == 0) return;  // no tombstones anywhere: skip the scan
    std::size_t w = 0;
    for (const Entry& e : bucket) {
        if (drop(e.slot)) {
            --size_;
            --cancelled_;
        } else {
            bucket[w++] = e;
        }
    }
    bucket.resize(w);
}

template <typename Drop>
bool TimerWheel::advance(Drop& drop) {
    while (level_mask_ != 0) {
        const int level = std::countr_zero(level_mask_);
        while (occupied_[level] != 0) {
            const auto idx =
                static_cast<std::size_t>(std::countr_zero(occupied_[level]));
            Bucket& bucket = buckets_[level][idx];
            purge_bucket(bucket, drop);
            if (bucket.empty()) {
                clear_bucket_bit(level, idx);
                continue;  // next-lowest bucket on this level, then up
            }
            stage(level, idx);
            return true;
        }
    }
    return false;
}

template <typename Drop>
bool TimerWheel::min_time(Drop&& drop, std::uint64_t& at_out) {
    purge_ready(drop);
    if (ready_head_ < ready_.size()) {
        at_out = ready_[ready_head_].at;
        return true;
    }
    if (min_valid_) {
        at_out = min_cache_;
        return true;
    }
    // Scan for the first non-empty bucket; its minimum is the global one.
    // Cost is O(bucket) once per instant group (cached between pops).
    while (level_mask_ != 0) {
        const int level = std::countr_zero(level_mask_);
        while (occupied_[level] != 0) {
            const auto idx =
                static_cast<std::size_t>(std::countr_zero(occupied_[level]));
            Bucket& bucket = buckets_[level][idx];
            purge_bucket(bucket, drop);
            if (bucket.empty()) {
                clear_bucket_bit(level, idx);
                continue;
            }
            std::uint64_t best = bucket.front().at;
            for (const Entry& e : bucket) best = std::min(best, e.at);
            min_cache_ = best;
            min_valid_ = true;
            at_out = best;
            return true;
        }
    }
    return false;
}

template <typename Drop>
bool TimerWheel::min_entry(Drop&& drop, Entry& out) {
    purge_ready(drop);
    if (ready_head_ < ready_.size()) {
        out = ready_[ready_head_];
        return true;
    }
    // Same first-non-empty-bucket scan as min_time, but selecting the full
    // (at, seq)-minimal entry. Entries sharing a timestamp are always filed
    // in the same bucket (identical distance from cur_), so the winner of
    // this bucket is the global next pop. Deliberately not cached: the peek
    // runs only on the fence-blocked path, never per event.
    while (level_mask_ != 0) {
        const int level = std::countr_zero(level_mask_);
        while (occupied_[level] != 0) {
            const auto idx =
                static_cast<std::size_t>(std::countr_zero(occupied_[level]));
            Bucket& bucket = buckets_[level][idx];
            purge_bucket(bucket, drop);
            if (bucket.empty()) {
                clear_bucket_bit(level, idx);
                continue;
            }
            Entry best = bucket.front();
            for (const Entry& e : bucket) {
                if (e.at < best.at || (e.at == best.at && e.seq < best.seq)) {
                    best = e;
                }
            }
            min_cache_ = best.at;
            min_valid_ = true;
            out = best;
            return true;
        }
    }
    return false;
}

template <typename Drop>
bool TimerWheel::pop_min(Drop&& drop, Entry& out) {
    purge_ready(drop);
    if (ready_head_ == ready_.size()) {
        ready_.clear();
        ready_head_ = 0;
        if (!advance(drop)) return false;
    }
    out = ready_[ready_head_++];
    --size_;
    min_valid_ = false;
    if (ready_head_ == ready_.size()) {
        ready_.clear();
        ready_head_ = 0;
    }
    return true;
}

template <typename Visit>
void TimerWheel::consume_all(Visit&& visit) {
    for (std::size_t i = ready_head_; i < ready_.size(); ++i) visit(ready_[i]);
    ready_.clear();
    ready_head_ = 0;
    for (int level = 0; level < kLevels; ++level) {
        std::uint64_t occ = occupied_[level];
        while (occ != 0) {
            const auto idx = static_cast<std::size_t>(std::countr_zero(occ));
            occ &= occ - 1;
            for (const Entry& e : buckets_[level][idx]) visit(e);
            buckets_[level][idx].clear();
        }
        occupied_[level] = 0;
    }
    level_mask_ = 0;
    size_ = 0;
    cancelled_ = 0;  // tombstones were consumed along with everything else
    min_valid_ = false;
    // The wheel is empty, so the reference instant can rewind: future pushes
    // may use any non-negative timestamp again.
    cur_ = 0;
}

} // namespace tedge::sim
