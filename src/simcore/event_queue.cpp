// Cold-path members of EventQueue. The per-event hot path (push/pop/sift)
// lives inline in the header; cancellation, handle queries, and clear() are
// rare enough that an out-of-line definition keeps rebuilds cheap.
#include "simcore/event_queue.hpp"

namespace tedge::sim {

void EventHandle::cancel() {
    if (queue_) queue_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
    return queue_ && queue_->slot_pending(slot_, generation_);
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
    if (slot >= slots_.size()) return;
    Slot& s = slots_[slot];
    if (!s.in_use || s.cancelled || s.generation != generation) return;
    s.cancelled = true;
    s.cb = nullptr; // release captures eagerly; the heap entry is a tombstone
    ++dead_;
    --live_;
    if (!s.daemon) --live_user_;
}

bool EventQueue::slot_pending(std::uint32_t slot, std::uint32_t generation) const {
    if (slot >= slots_.size()) return false;
    const Slot& s = slots_[slot];
    return s.in_use && !s.cancelled && s.generation == generation;
}

void EventQueue::clear() {
    for (std::size_t i = kRoot; i < heap_.size(); ++i) {
        Slot& s = slots_[heap_[i].slot];
        if (s.in_use && !s.cancelled) {
            --live_;
            if (!s.daemon) --live_user_;
        }
        release_slot(heap_[i].slot);
    }
    heap_.resize(kRoot); // keep the physical pad before the root
    dead_ = 0;
}

} // namespace tedge::sim
