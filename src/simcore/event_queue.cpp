// Cold-path members of EventQueue. The per-event hot path (push/pop/sift)
// lives inline in the header; cancellation, handle queries, backend
// selection, reserve() and clear() are rare enough that an out-of-line
// definition keeps rebuilds cheap.
#include "simcore/event_queue.hpp"

#include <cstdlib>
#include <string_view>

namespace tedge::sim {

void EventHandle::cancel() {
    if (queue_) queue_->cancel_slot(slot_, generation_);
}

bool EventHandle::pending() const {
    return queue_ && queue_->slot_pending(slot_, generation_);
}

QueueBackend EventQueue::default_backend() {
    static const QueueBackend backend = [] {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at startup
        const char* env = std::getenv("TEDGE_EVENT_BACKEND");
        if (env == nullptr) return QueueBackend::kWheel;
        const std::string_view value{env};
        if (value == "heap") return QueueBackend::kHeap;
        if (value == "wheel") return QueueBackend::kWheel;
        throw std::invalid_argument(
            "TEDGE_EVENT_BACKEND must be 'heap' or 'wheel'");
    }();
    return backend;
}

void EventQueue::cancel_slot(std::uint32_t slot, std::uint32_t generation) {
    if (slot >= store_.slots.size()) return;
    Slot& s = store_.slots[slot];
    if (!s.in_use || s.cancelled || s.generation != generation) return;
    s.cancelled = true;
    s.cb = nullptr; // release captures eagerly; the backend entry is a tombstone
    ++store_.dead;
    --live_;
    if (!s.daemon) --live_user_;
    // The cancelled event may have been the cached wheel minimum.
    if (backend_ == QueueBackend::kWheel) store_.wheel.note_cancelled();
}

bool EventQueue::slot_pending(std::uint32_t slot, std::uint32_t generation) const {
    if (slot >= store_.slots.size()) return false;
    const Slot& s = store_.slots[slot];
    return s.in_use && !s.cancelled && s.generation == generation;
}

void EventQueue::clear() {
    if (backend_ == QueueBackend::kHeap) {
        for (std::size_t i = kRoot; i < store_.heap.size(); ++i) {
            Slot& s = store_.slots[store_.heap[i].slot];
            if (s.in_use && !s.cancelled) {
                --live_;
                if (!s.daemon) --live_user_;
            }
            release_slot(store_.heap[i].slot);
        }
        store_.heap.resize(kRoot); // keep the physical pad before the root
    } else {
        store_.wheel.consume_all([this](const TimerWheel::Entry& e) {
            Slot& s = store_.slots[e.slot];
            if (s.in_use && !s.cancelled) {
                --live_;
                if (!s.daemon) --live_user_;
            }
            release_slot(e.slot);
        });
    }
    store_.dead = 0;
}

void EventQueue::reserve(std::size_t events) {
    store_.slots.reserve(events);
    if (backend_ == QueueBackend::kHeap) store_.heap.reserve(events + kRoot);
}

} // namespace tedge::sim
