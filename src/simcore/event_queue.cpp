#include "simcore/event_queue.hpp"

#include <stdexcept>
#include <utility>

namespace tedge::sim {

void EventHandle::cancel() {
    if (alive_) *alive_ = false;
}

bool EventHandle::pending() const {
    return alive_ && *alive_;
}

EventHandle EventQueue::push(SimTime at, Callback cb) {
    auto alive = std::make_shared<bool>(true);
    heap_.push(Entry{at, seq_++, std::move(cb), alive});
    return EventHandle{std::move(alive)};
}

void EventQueue::drop_dead() const {
    while (!heap_.empty() && !*heap_.top().alive) {
        heap_.pop();
    }
}

bool EventQueue::empty() const {
    drop_dead();
    return heap_.empty();
}

SimTime EventQueue::next_time() const {
    drop_dead();
    if (heap_.empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_.top().at;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    drop_dead();
    if (heap_.empty()) throw std::logic_error("EventQueue::pop on empty queue");
    // priority_queue::top() is const; the entry is about to be destroyed, so
    // moving out of it is safe.
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    *e.alive = false; // handle now reports "not pending"
    return {e.at, std::move(e.cb)};
}

void EventQueue::clear() {
    while (!heap_.empty()) {
        *heap_.top().alive = false;
        heap_.pop();
    }
}

} // namespace tedge::sim
