#include "simcore/metrics_registry.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <vector>

namespace tedge::sim {

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_.emplace(name, Histogram(lo, hi, bins)).first->second;
}

const MetricsRegistry::Counter*
MetricsRegistry::find_counter(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
    for (const auto& [name, counter] : other.counters_) {
        counters_[name].inc(counter.value());
    }
    for (const auto& [name, gauge] : other.gauges_) {
        gauges_[name].set(gauge.value());
    }
    for (const auto& [name, histogram] : other.histograms_) {
        const auto it = histograms_.find(name);
        if (it == histograms_.end()) {
            histograms_.emplace(name, histogram);
        } else {
            it->second.merge(histogram);
        }
    }
}

void MetricsRegistry::dump(std::ostream& os) const {
    // One globally name-ordered listing across all metric kinds (counters,
    // gauges, histograms), so the dump diffs cleanly between runs.
    std::vector<std::pair<std::string, std::string>> lines;
    for (const auto& [name, counter] : counters_) {
        std::ostringstream line;
        line << name << ' ' << counter.value() << '\n';
        lines.emplace_back(name, line.str());
    }
    for (const auto& [name, gauge] : gauges_) {
        std::ostringstream line;
        line << name << ' ' << gauge.value() << '\n';
        lines.emplace_back(name, line.str());
    }
    for (const auto& [name, histogram] : histograms_) {
        std::ostringstream block;
        block << name << ".count " << histogram.total() << '\n';
        if (histogram.underflow() != 0) {
            block << name << ".underflow " << histogram.underflow() << '\n';
        }
        if (histogram.overflow() != 0) {
            block << name << ".overflow " << histogram.overflow() << '\n';
        }
        for (std::size_t i = 0; i < histogram.bins(); ++i) {
            if (histogram.bin_count(i) == 0) continue;
            block << name << '[' << histogram.bin_lo(i) << ','
                  << histogram.bin_hi(i) << ") " << histogram.bin_count(i) << '\n';
        }
        lines.emplace_back(name, block.str());
    }
    std::sort(lines.begin(), lines.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [name, text] : lines) os << text;
}

std::string MetricsRegistry::dump() const {
    std::ostringstream os;
    dump(os);
    return os.str();
}

} // namespace tedge::sim
