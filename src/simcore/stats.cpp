#include "simcore/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tedge::sim {

void OnlineStats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const {
    return std::sqrt(variance());
}

void OnlineStats::merge(const OnlineStats& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) { *this = other; return; }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(n_);
    const auto n2 = static_cast<double>(other.n_);
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    n_ += other.n_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void SampleSet::add(double x) {
    samples_.push_back(x);
    sorted_ = false;
}

void SampleSet::ensure_sorted() const {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double SampleSet::quantile(double p) const {
    if (samples_.empty()) throw std::logic_error("quantile of empty SampleSet");
    if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile p out of [0,1]");
    ensure_sorted();
    const double h = p * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double frac = h - std::floor(h);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
}

double SampleSet::min() const {
    if (samples_.empty()) throw std::logic_error("min of empty SampleSet");
    ensure_sorted();
    return samples_.front();
}

double SampleSet::max() const {
    if (samples_.empty()) throw std::logic_error("max of empty SampleSet");
    ensure_sorted();
    return samples_.back();
}

double SampleSet::mean() const {
    if (samples_.empty()) throw std::logic_error("mean of empty SampleSet");
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
}

void SampleSet::merge(const SampleSet& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
}

std::string SampleSet::summary(const std::string& unit) const {
    std::ostringstream os;
    if (samples_.empty()) {
        os << "n=0";
        return os.str();
    }
    os.precision(1);
    os << std::fixed << "median=" << median() << unit
       << " iqr=[" << p25() << "," << p75() << "]"
       << " n=" << count();
    return os.str();
}

} // namespace tedge::sim
