#include "simcore/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

namespace tedge::sim {

void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#elif defined(__aarch64__)
    asm volatile("yield" ::: "memory");
#else
    std::this_thread::yield();
#endif
}

void Eventcount::notify() {
    epoch_.fetch_add(1, std::memory_order_seq_cst);
    if (waiters_.load(std::memory_order_seq_cst) != 0) {
        // Taking the mutex (even empty-handed) orders this notify after any
        // waiter that registered but has not yet entered cv_.wait; without it
        // the notify_all could fire into the gap and be lost.
        std::lock_guard<std::mutex> lock(mu_);
        cv_.notify_all();
    }
}

bool Eventcount::wait(std::uint64_t ticket, std::uint64_t* parked_ns, int spin) {
    for (int i = 0; i < spin; ++i) {
        if (epoch_.load(std::memory_order_seq_cst) != ticket) return false;
        cpu_relax();
    }
    const auto t0 = std::chrono::steady_clock::now();
    waiters_.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] {
            return epoch_.load(std::memory_order_seq_cst) != ticket;
        });
    }
    waiters_.fetch_sub(1, std::memory_order_seq_cst);
    if (parked_ns != nullptr) {
        *parked_ns += static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
    return true;
}

bool pin_current_thread_to_core(std::size_t core) {
#ifdef __linux__
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const std::size_t target = core % hw;
    if (target >= CPU_SETSIZE) return false;
    cpu_set_t set;
    CPU_ZERO(&set);
    CPU_SET(target, &set);
    return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
    (void)core;
    return false;
#endif
}

ThreadPool::ThreadPool(std::size_t threads, bool pin_to_cores) {
    if (threads == 0) {
        threads = std::max(1u, std::thread::hardware_concurrency());
    }
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i, pin_to_cores] {
            if (pin_to_cores) pin_current_thread_to_core(i);
            worker_loop();
        });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock lock(mu_);
            cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return; // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();
    }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
    std::vector<std::future<void>> futures;
    futures.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        futures.push_back(submit([&fn, i] { fn(i); }));
    }
    std::exception_ptr first_error;
    for (auto& f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first_error) first_error = std::current_exception();
        }
    }
    if (first_error) std::rethrow_exception(first_error);
}

} // namespace tedge::sim
