// Simulation time: a strong 64-bit nanosecond tick type.
//
// All latencies, bandwidth-induced delays and timestamps in the simulator are
// expressed as SimTime. The type is deliberately narrow (integral nanoseconds)
// so that event ordering is exact and runs are bit-reproducible across
// platforms -- no floating-point clock drift.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace tedge::sim {

/// A point in (or duration of) simulated time, in integer nanoseconds.
class SimTime {
public:
    constexpr SimTime() = default;
    constexpr explicit SimTime(std::int64_t ns) : ns_(ns) {}

    [[nodiscard]] constexpr std::int64_t ns() const { return ns_; }
    [[nodiscard]] constexpr double us() const { return static_cast<double>(ns_) / 1e3; }
    [[nodiscard]] constexpr double ms() const { return static_cast<double>(ns_) / 1e6; }
    [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns_) / 1e9; }

    [[nodiscard]] static constexpr SimTime zero() { return SimTime{0}; }
    [[nodiscard]] static constexpr SimTime max() {
        return SimTime{std::numeric_limits<std::int64_t>::max()};
    }

    constexpr auto operator<=>(const SimTime&) const = default;

    constexpr SimTime& operator+=(SimTime rhs) { ns_ += rhs.ns_; return *this; }
    constexpr SimTime& operator-=(SimTime rhs) { ns_ -= rhs.ns_; return *this; }

    friend constexpr SimTime operator+(SimTime a, SimTime b) { return SimTime{a.ns_ + b.ns_}; }
    friend constexpr SimTime operator-(SimTime a, SimTime b) { return SimTime{a.ns_ - b.ns_}; }
    friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return SimTime{a.ns_ * k}; }
    friend constexpr SimTime operator*(std::int64_t k, SimTime a) { return SimTime{a.ns_ * k}; }

    /// Human-readable rendering with an adaptive unit (ns/us/ms/s).
    [[nodiscard]] std::string str() const;

private:
    std::int64_t ns_ = 0;
};

[[nodiscard]] constexpr SimTime nanoseconds(std::int64_t v) { return SimTime{v}; }
[[nodiscard]] constexpr SimTime microseconds(std::int64_t v) { return SimTime{v * 1'000}; }
[[nodiscard]] constexpr SimTime milliseconds(std::int64_t v) { return SimTime{v * 1'000'000}; }
[[nodiscard]] constexpr SimTime seconds(std::int64_t v) { return SimTime{v * 1'000'000'000}; }

/// Convert a floating-point duration in seconds to SimTime (round to nearest ns).
[[nodiscard]] constexpr SimTime from_seconds(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9 + (s >= 0 ? 0.5 : -0.5))};
}
[[nodiscard]] constexpr SimTime from_ms(double ms) { return from_seconds(ms / 1e3); }
[[nodiscard]] constexpr SimTime from_us(double us) { return from_seconds(us / 1e6); }

} // namespace tedge::sim
