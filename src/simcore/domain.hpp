// One shard of a sharded conservative parallel discrete-event simulation.
//
// A Domain is a self-contained simulation partition: it owns its *own*
// virtual clock and event queue (a full Simulation), its own seeded RNG
// stream (derived statelessly from the run seed and the domain's stable id,
// so draws are independent of shard count and thread count), its own
// MetricsRegistry, Tracer, and buffered log sink. Nothing inside a domain is
// shared with any other domain, which is what lets the ShardedSimulation
// coordinator execute domains on different threads without locks.
//
// Cross-domain interaction happens exclusively through post(): a timestamped
// message (timestamp, source domain, per-source sequence) delivered into the
// destination domain's event queue at a synchronization barrier. The
// coordinator enforces the conservative lookahead contract — a message must
// be timestamped at least `lookahead` after the sender's current clock — and
// merges all messages in (timestamp, source id, sequence) order, which makes
// the delivered sequence, and therefore the whole run, bit-identical at any
// shard or thread count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/logging.hpp"
#include "simcore/metrics_registry.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sim {

class ShardedSimulation;

/// Stable identifier of a domain: its creation index within the coordinator.
/// Everything derived from it (RNG stream, message tie-breaks, merge order)
/// depends only on this id, never on which shard or thread executes the
/// domain.
using DomainId = std::uint32_t;

class Domain {
public:
    Domain(const Domain&) = delete;
    Domain& operator=(const Domain&) = delete;

    [[nodiscard]] DomainId id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// The domain's private kernel. Components built for this domain take
    /// sim() exactly like they would a standalone Simulation.
    [[nodiscard]] Simulation& sim() { return sim_; }
    [[nodiscard]] const Simulation& sim() const { return sim_; }

    /// Per-domain RNG stream, seeded Rng::stream_seed(run_seed, id()).
    [[nodiscard]] Rng& rng() { return rng_; }

    /// Per-domain metrics. Not attached to sim() by default; call
    /// enable_metrics() to make components report into it. The coordinator
    /// merges all domain registries in id order for a deterministic dump.
    [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
    void enable_metrics() { sim_.set_metrics(&metrics_); }

    /// Per-domain tracer (attached to sim(), disabled until enable_tracing).
    [[nodiscard]] Tracer& tracer() { return tracer_; }
    [[nodiscard]] const Tracer& tracer() const { return tracer_; }
    void enable_tracing();

    /// Per-domain buffered log sink; make_logger() binds components to it.
    /// The coordinator flushes buffers in domain order at sync points.
    [[nodiscard]] LogBuffer& log_buffer() { return log_buffer_; }
    [[nodiscard]] Logger make_logger(const std::string& component,
                                     LogLevel level = LogLevel::kWarn);

    /// The coordinator's conservative lookahead (minimum cross-domain
    /// message delay). SimTime::max() when no finite lookahead was set.
    [[nodiscard]] SimTime lookahead() const;

    /// Number of domains in the coordinator (valid post() destinations).
    [[nodiscard]] std::size_t domain_count() const;

    /// Send a cross-domain message: `cb` runs inside domain `dst` at
    /// absolute (destination) time `at`. Requires at >= sim().now() +
    /// coordinator lookahead — the conservative contract that makes windowed
    /// parallel execution safe — and throws std::logic_error otherwise.
    /// Messages become user events in the destination unless `daemon`.
    void post(DomainId dst, SimTime at, EventQueue::Callback cb,
              bool daemon = false);

    /// Events executed by this domain so far.
    [[nodiscard]] std::uint64_t events_executed() const {
        return sim_.events_executed();
    }

private:
    friend class ShardedSimulation;

    struct Message {
        SimTime at;
        DomainId src = 0;
        DomainId dst = 0;
        std::uint64_t seq = 0;  ///< per-source send order
        EventQueue::Callback fn;
        bool daemon = false;
    };

    Domain(ShardedSimulation& coordinator, DomainId id, std::string name,
           QueueBackend backend, std::uint64_t run_seed);

    ShardedSimulation* coordinator_;
    DomainId id_;
    std::string name_;
    Simulation sim_;
    Rng rng_;
    MetricsRegistry metrics_;
    Tracer tracer_;
    LogBuffer log_buffer_;
    std::vector<Message> outbox_;  ///< drained by the coordinator at barriers
    std::uint64_t next_send_seq_ = 0;
};

} // namespace tedge::sim
