// One shard of a sharded conservative parallel discrete-event simulation.
//
// A Domain is a self-contained simulation partition: it owns its *own*
// virtual clock and event queue (a full Simulation), its own seeded RNG
// stream (derived statelessly from the run seed and the domain's stable id,
// so draws are independent of shard count and thread count), its own
// MetricsRegistry, Tracer, and buffered log sink. Nothing inside a domain is
// shared with any other domain, which is what lets the ShardedSimulation
// coordinator execute domains on different threads without locks.
//
// Cross-domain interaction happens exclusively through post(): a timestamped
// message (timestamp, source domain, per-source sequence) staged into the
// destination domain's inbox — a (timestamp, source id, sequence) min-heap —
// and inserted into its event queue immediately before the destination
// executes its first event at or past the message timestamp. That insertion
// rule is a pure merge of two deterministic sequences (local schedule order
// vs. message order), independent of how execution is windowed, which is what
// lets the barrier and channel-clock coordinators produce bit-identical runs
// at any shard or thread count. The coordinator enforces the conservative
// lookahead contract per directed channel: a message must be timestamped at
// least the channel's lookahead after the sender's current clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/logging.hpp"
#include "simcore/metrics_registry.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"
#include "simcore/tracer.hpp"

namespace tedge::sim {

class ShardedSimulation;

/// Stable identifier of a domain: its creation index within the coordinator.
/// Everything derived from it (RNG stream, message tie-breaks, merge order)
/// depends only on this id, never on which shard or thread executes the
/// domain.
using DomainId = std::uint32_t;

class Domain {
public:
    Domain(const Domain&) = delete;
    Domain& operator=(const Domain&) = delete;

    [[nodiscard]] DomainId id() const { return id_; }
    [[nodiscard]] const std::string& name() const { return name_; }

    /// The domain's private kernel. Components built for this domain take
    /// sim() exactly like they would a standalone Simulation.
    [[nodiscard]] Simulation& sim() { return sim_; }
    [[nodiscard]] const Simulation& sim() const { return sim_; }

    /// Per-domain RNG stream, seeded Rng::stream_seed(run_seed, id()).
    [[nodiscard]] Rng& rng() { return rng_; }

    /// Per-domain metrics. Not attached to sim() by default; call
    /// enable_metrics() to make components report into it. The coordinator
    /// merges all domain registries in id order for a deterministic dump.
    [[nodiscard]] MetricsRegistry& metrics() { return metrics_; }
    [[nodiscard]] const MetricsRegistry& metrics() const { return metrics_; }
    void enable_metrics() { sim_.set_metrics(&metrics_); }

    /// Per-domain tracer (attached to sim(), disabled until enable_tracing).
    [[nodiscard]] Tracer& tracer() { return tracer_; }
    [[nodiscard]] const Tracer& tracer() const { return tracer_; }
    void enable_tracing();

    /// Per-domain buffered log sink; make_logger() binds components to it.
    /// The coordinator flushes buffers in domain order at sync points.
    [[nodiscard]] LogBuffer& log_buffer() { return log_buffer_; }
    [[nodiscard]] Logger make_logger(const std::string& component,
                                     LogLevel level = LogLevel::kWarn);

    /// The coordinator's minimum conservative lookahead over all channels
    /// (the global window bound). SimTime::max() when no finite lookahead
    /// was set.
    [[nodiscard]] SimTime lookahead() const;

    /// Conservative lookahead of the directed channel id() -> dst: the
    /// smallest latency a message from this domain to `dst` can have. With
    /// explicit channels (ShardedSimulation::set_channel, typically derived
    /// from TopologyPartition cut links) this is the per-pair bound — often
    /// much larger than the global minimum, letting senders on slow links
    /// timestamp later and grant receivers wider windows. Throws
    /// std::logic_error when no such channel exists.
    [[nodiscard]] SimTime lookahead_to(DomainId dst) const;

    /// Number of domains in the coordinator (valid post() destinations).
    [[nodiscard]] std::size_t domain_count() const;

    /// Send a cross-domain message: `cb` runs inside domain `dst` at
    /// absolute (destination) time `at`. Requires at >= sim().now() +
    /// lookahead_to(dst) — the conservative contract that makes windowed
    /// parallel execution safe — and throws std::logic_error otherwise.
    /// Messages become user events in the destination unless `daemon`.
    /// Must be called from the sending domain's own execution (its event
    /// callbacks) — outboxes are flushed by the lane that owns the sender.
    void post(DomainId dst, SimTime at, EventQueue::Callback cb,
              bool daemon = false);

    /// Events executed by this domain so far.
    [[nodiscard]] std::uint64_t events_executed() const {
        return sim_.events_executed();
    }

private:
    friend class ShardedSimulation;

    struct Message {
        SimTime at;
        DomainId src = 0;
        DomainId dst = 0;
        std::uint64_t seq = 0;  ///< per-source send order
        EventQueue::Callback fn;
        bool daemon = false;
    };

    Domain(ShardedSimulation& coordinator, DomainId id, std::string name,
           QueueBackend backend, std::uint64_t run_seed);

    /// (at, src, seq) descending — std::push_heap/pop_heap with this
    /// comparator keep inbox_.front() the next message in merge order.
    static bool message_after(const Message& a, const Message& b) {
        if (a.at != b.at) return a.at > b.at;
        if (a.src != b.src) return a.src > b.src;
        return a.seq > b.seq;
    }

    /// Stage an inbound message (coordinator only; serialized by the barrier,
    /// by the locked channel coordinator's sync mutex, or — in the lock-free
    /// coordinator — by the fact that only the owning lane touches the inbox).
    void stage_inbound(Message&& m);

    /// Stage a whole mailbox batch (lock-free coordinator: one ring pop per
    /// batch). The vector is cleared but keeps its capacity, so handing it
    /// back to the SPSC ring recycles the allocation.
    void stage_inbound_batch(std::vector<Message>& batch);

    /// Timestamp of the earliest staged message; max() when none.
    [[nodiscard]] SimTime inbox_next_time() const {
        return inbox_.empty() ? SimTime::max() : inbox_.front().at;
    }

    /// Earliest thing this domain could execute: min over its queue and its
    /// staged inbox; max() when fully drained.
    [[nodiscard]] SimTime next_work_time() const;

    /// Pending user events, in the queue or staged in the inbox.
    [[nodiscard]] bool has_user_work() const {
        return sim_.has_user_events() || inbox_user_ > 0;
    }

    /// Anything left that run() semantics oblige us to execute: user work,
    /// or daemon work at or before the fence.
    [[nodiscard]] bool has_eligible_work(SimTime fence) const;

    /// This domain's contribution to the coordinator's daemon fence: the
    /// largest user-event timestamp it has scheduled locally or posted.
    [[nodiscard]] SimTime user_horizon() const;

    /// The shared execution primitive of both coordinators: execute events
    /// strictly before `end`, inserting staged messages into the queue
    /// immediately before the first pop at or past their timestamp, daemons
    /// fenced at `fence`. Returns events executed.
    std::uint64_t advance_window(SimTime end, SimTime fence);

    ShardedSimulation* coordinator_;
    DomainId id_;
    std::string name_;
    Simulation sim_;
    Rng rng_;
    MetricsRegistry metrics_;
    Tracer tracer_;
    LogBuffer log_buffer_;
    std::vector<Message> outbox_;  ///< drained by the owning lane per window
    std::vector<Message> inbox_;   ///< staged inbound, (at, src, seq) min-heap
    std::size_t inbox_user_ = 0;   ///< staged non-daemon messages
    std::uint64_t next_send_seq_ = 0;
    std::uint64_t delivered_ = 0;  ///< messages inserted into the queue
    SimTime posted_user_horizon_ = SimTime::zero();
};

} // namespace tedge::sim
