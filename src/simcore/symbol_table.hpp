// String interning for control-plane identifiers.
//
// The SDN layer names everything -- services, clusters, nodes -- by
// std::string, which at scale puts string hashing, comparison, and per-flow
// string storage on the packet-in hot path. A SymbolTable interns each
// distinct name once and hands out a dense 32-bit SymbolId; the round trip
// (name -> id -> name) is O(1) both ways and ids are stable for the table's
// lifetime (dense, insertion-ordered -- so a table populated in a
// deterministic order yields deterministic ids). Components keep SymbolIds
// in their per-flow state and go back through the table only at log/trace
// boundaries, via the InternedName wrapper, so human-readable output keeps
// the real names.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tedge::sim {

/// Dense identifier for an interned string. 0 is a valid id (the first
/// interned name); kInvalidSymbol marks "no symbol".
using SymbolId = std::uint32_t;
inline constexpr SymbolId kInvalidSymbol = 0xFFFFFFFFu;

/// Transparent (heterogeneous) string hash: lets unordered containers keyed
/// by std::string be probed with string_view / const char* without
/// constructing a temporary std::string on the hot path.
struct StringHash {
    using is_transparent = void;
    [[nodiscard]] std::size_t operator()(std::string_view s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
    [[nodiscard]] std::size_t operator()(const std::string& s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
    [[nodiscard]] std::size_t operator()(const char* s) const noexcept {
        return std::hash<std::string_view>{}(s);
    }
};

class SymbolTable;

/// A name that has been interned: carries the id for indexed lookups and a
/// back-pointer to the table so printing still yields the real name. Thin --
/// two words -- and trivially copyable.
class InternedName {
public:
    InternedName() = default;

    [[nodiscard]] SymbolId id() const { return id_; }
    [[nodiscard]] bool valid() const { return id_ != kInvalidSymbol; }

    /// The interned string. Requires valid().
    [[nodiscard]] const std::string& str() const;

    friend bool operator==(const InternedName& a, const InternedName& b) {
        return a.id_ == b.id_;
    }

private:
    friend class SymbolTable;
    InternedName(SymbolId id, const SymbolTable* table) : id_(id), table_(table) {}

    SymbolId id_ = kInvalidSymbol;
    const SymbolTable* table_ = nullptr;
};

/// Stable, append-only interning table. Not thread-safe: each Simulation /
/// controller owns its own table (the kernel is single-threaded; bench
/// replications run one independent table per replica), which also keeps id
/// assignment deterministic per run.
class SymbolTable {
public:
    /// Intern `name`, returning its stable id. Idempotent: the same spelling
    /// always returns the same id.
    SymbolId intern(std::string_view name);

    /// Intern and wrap in one step.
    [[nodiscard]] InternedName interned(std::string_view name) {
        return InternedName{intern(name), this};
    }

    /// Wrap an id previously handed out by this table.
    [[nodiscard]] InternedName wrap(SymbolId id) const {
        return InternedName{id, this};
    }

    /// The spelling of `id`. O(1). Throws std::out_of_range for foreign ids.
    [[nodiscard]] const std::string& name(SymbolId id) const;

    /// Look up without interning.
    [[nodiscard]] std::optional<SymbolId> find(std::string_view name) const;

    [[nodiscard]] std::size_t size() const { return names_.size(); }

private:
    // Keys live in the node-based map (stable addresses across rehash);
    // names_ is the id -> spelling side of the O(1) round trip.
    std::unordered_map<std::string, SymbolId, StringHash, std::equal_to<>> ids_;
    std::vector<const std::string*> names_;
};

inline const std::string& InternedName::str() const {
    return table_->name(id_);
}

} // namespace tedge::sim
