#include "simcore/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace tedge::sim {

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
    if (bins == 0) throw std::invalid_argument("Histogram: zero bins");
    counts_.assign(bins, 0);
}

void Histogram::add(double x) {
    ++total_;
    if (x < lo_) { ++underflow_; return; }
    if (x >= hi_) { ++overflow_; return; }
    const double frac = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::size_t>(frac * static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    ++counts_[idx];
}

void Histogram::merge(const Histogram& other) {
    if (lo_ != other.lo_ || hi_ != other.hi_ ||
        counts_.size() != other.counts_.size()) {
        throw std::invalid_argument("Histogram::merge: shape mismatch");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

double Histogram::bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const {
    return bin_lo(i + 1);
}

std::string Histogram::ascii(std::size_t width) const {
    std::uint64_t peak = 1;
    for (auto c : counts_) peak = std::max(peak, c);
    std::ostringstream os;
    os.precision(2);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        os << std::fixed << "[" << bin_lo(i) << "," << bin_hi(i) << ") "
           << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

TimeSeriesBins::TimeSeriesBins(SimTime horizon, SimTime bin_width)
    : bin_width_(bin_width) {
    if (bin_width <= SimTime::zero()) throw std::invalid_argument("bin_width <= 0");
    if (horizon <= SimTime::zero()) throw std::invalid_argument("horizon <= 0");
    const auto n = (horizon.ns() + bin_width.ns() - 1) / bin_width.ns();
    counts_.assign(static_cast<std::size_t>(n), 0);
}

void TimeSeriesBins::add(SimTime t, std::uint64_t weight) {
    auto idx = t < SimTime::zero()
                   ? std::size_t{0}
                   : static_cast<std::size_t>(t.ns() / bin_width_.ns());
    idx = std::min(idx, counts_.size() - 1);
    counts_[idx] += weight;
    total_ += weight;
}

SimTime TimeSeriesBins::bin_start(std::size_t i) const {
    return SimTime{bin_width_.ns() * static_cast<std::int64_t>(i)};
}

std::uint64_t TimeSeriesBins::max_bin() const {
    std::uint64_t peak = 0;
    for (auto c : counts_) peak = std::max(peak, c);
    return peak;
}

std::string TimeSeriesBins::ascii(std::size_t width) const {
    const std::uint64_t peak = std::max<std::uint64_t>(max_bin(), 1);
    std::ostringstream os;
    os.precision(0);
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<std::size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        os << std::fixed << bin_start(i).seconds() << "s "
           << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace tedge::sim
