// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock and the event queue. Components
// schedule callbacks at relative delays or absolute times; run() drains the
// queue in deterministic order. There is exactly one Simulation per
// experiment; components hold a reference to it.
//
// Events come in two flavours: user events (the default) drive the
// experiment forward; daemon events are housekeeping periodics (cache
// sweeps, idle reapers, autoscaler ticks) that execute normally while user
// events are pending but do not keep run() alive on their own — run()
// returns once only daemon events remain, exactly like daemon threads.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class MetricsRegistry;
class Tracer;

class Simulation {
public:
    /// The event-queue backend defaults to EventQueue::default_backend()
    /// (the timing wheel unless TEDGE_EVENT_BACKEND overrides it); pass one
    /// explicitly to pin a run to a specific backend, e.g. for differential
    /// determinism tests or heap-vs-wheel benchmarks.
    Simulation() = default;
    explicit Simulation(QueueBackend backend) : queue_(backend) {}

    // The kernel is referenced by every component; it must not move.
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Backend the event queue is running on.
    [[nodiscard]] QueueBackend backend() const { return queue_.backend(); }

    /// Pre-size the kernel for `events` concurrently pending events (see
    /// EventQueue::reserve). Call before the run when the peak is known.
    void reserve_events(std::size_t events) { queue_.reserve(events); }

    /// Current virtual time.
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedule `cb` to run `delay` after the current time.
    EventHandle schedule(SimTime delay, EventQueue::Callback cb, bool daemon = false);

    /// Schedule `cb` at absolute time `at` (must be >= now()).
    EventHandle schedule_at(SimTime at, EventQueue::Callback cb, bool daemon = false);

    /// Schedule a callback that re-arms itself every `period` until the
    /// returned handle is cancelled. The first firing is after `period`.
    /// Pass daemon=true for housekeeping periodics that should not keep
    /// run() alive once all user events have drained.
    class PeriodicHandle {
    public:
        void cancel() { if (stop_) *stop_ = true; }
        [[nodiscard]] bool active() const { return stop_ && !*stop_; }
    private:
        friend class Simulation;
        std::shared_ptr<bool> stop_;
    };
    PeriodicHandle schedule_periodic(SimTime period, std::function<void()> cb,
                                     bool daemon = false);

    /// Run until no user events remain or a stop was requested. Daemon
    /// events scheduled before the last user event still execute in time
    /// order. Returns the number of events executed.
    std::uint64_t run();

    /// Run until virtual time reaches `deadline` (events at exactly the
    /// deadline still execute, daemon or not). The clock is advanced to
    /// `deadline` if the queue drains earlier. Returns the number of events
    /// executed.
    std::uint64_t run_until(SimTime deadline);

    /// Run while `pred()` is true. The predicate is evaluated before each
    /// event; execution also stops when no user events remain or stop() is
    /// called. The clock is left at the last executed event. Returns the
    /// number of events executed. Replaces drain loops of the form
    /// `while (!cond) run_until(now() + slice)`.
    std::uint64_t run_while(const std::function<bool()>& pred);

    /// Like run_until(deadline), but returns as soon as no user events
    /// remain — without advancing the clock to the deadline — instead of
    /// grinding through remaining daemon housekeeping. If user events are
    /// still pending beyond the deadline, the clock is advanced to
    /// `deadline` exactly like run_until.
    std::uint64_t run_until_idle_or(SimTime deadline);

    /// Conservative-window primitive for the sharded kernel: execute events
    /// strictly before `end` (daemon or not) and leave the clock at the last
    /// executed event — the window boundary is never materialized as a clock
    /// value, so a later window (or a cross-domain delivery at exactly `end`)
    /// can still schedule there. With `require_user` set, execution also
    /// stops once no user events remain, mirroring run(); run_window(max,
    /// true) is exactly run(). Returns the number of events executed.
    std::uint64_t run_window(SimTime end, bool require_user);

    /// Fenced conservative window for the multi-domain coordinators: execute
    /// events strictly before `end` like run_window, but additionally stop —
    /// without popping — when the next event is a *daemon* with timestamp
    /// beyond `fence`. The fence is the global user-event horizon (the
    /// largest user timestamp scheduled anywhere in the sharded run): daemon
    /// housekeeping executes only while user work at or past it exists, a
    /// schedule-independent restatement of run()'s daemon semantics that is
    /// identical under any window structure. Pass fence = SimTime::max() to
    /// disable the fence (run_until-style windows). Returns events executed.
    std::uint64_t run_window_fenced(SimTime end, SimTime fence);

    /// Request that run()/run_until() return after the current event.
    void stop() { stop_requested_ = true; }

    /// True if any events (user or daemon) remain.
    [[nodiscard]] bool has_pending_events() const { return !queue_.empty(); }

    /// Timestamp of the earliest pending event. Only valid while
    /// has_pending_events(); the sharded coordinator uses it to compute the
    /// global conservative window.
    [[nodiscard]] SimTime next_time() const { return queue_.next_time(); }

    /// True while at least one non-daemon event remains.
    [[nodiscard]] bool has_user_events() const { return queue_.has_user_events(); }

    /// Number of events executed so far in this simulation's lifetime.
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

    /// Total number of events ever scheduled (determinism diagnostics).
    [[nodiscard]] std::uint64_t total_scheduled() const {
        return queue_.total_scheduled();
    }

    /// Enable user-horizon tracking (the sharded kernel turns this on for
    /// every domain kernel at construction; standalone kernels skip the
    /// bookkeeping). Once enabled, user_horizon() reports the largest
    /// timestamp of any non-daemon event ever scheduled here — the domain's
    /// contribution to the coordinator's daemon fence.
    void track_user_horizon() { track_user_horizon_ = true; }
    [[nodiscard]] SimTime user_horizon() const { return user_horizon_; }

    /// Wheel-backend cascade accounting (zeros under kHeap); deterministic
    /// at a fixed seed, so bench gates can bound amortized cascade work.
    [[nodiscard]] const TimerWheel::CascadeStats& wheel_cascade_stats() const {
        return queue_.wheel_cascade_stats();
    }

    /// The enabled tracer, or nullptr (the default, and whenever tracing is
    /// disabled). Components guard span emission with this single pointer
    /// load; the tracer itself never schedules kernel events.
    [[nodiscard]] Tracer* tracer() const { return tracer_; }
    /// Managed by Tracer::enable/disable -- not called directly.
    void set_tracer(Tracer* tracer) { tracer_ = tracer; }

    /// The installed metrics registry, or nullptr (the default).
    [[nodiscard]] MetricsRegistry* metrics() const { return metrics_; }
    void set_metrics(MetricsRegistry* metrics) { metrics_ = metrics; }

private:
    void execute_next();

    void note_scheduled(SimTime at, bool daemon) {
        if (track_user_horizon_ && !daemon && at > user_horizon_) {
            user_horizon_ = at;
        }
    }

    SimTime now_ = SimTime::zero();
    EventQueue queue_;
    bool stop_requested_ = false;
    std::uint64_t executed_ = 0;
    Tracer* tracer_ = nullptr;
    MetricsRegistry* metrics_ = nullptr;
    bool track_user_horizon_ = false;
    SimTime user_horizon_ = SimTime::zero();
};

} // namespace tedge::sim
