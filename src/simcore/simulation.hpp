// The discrete-event simulation kernel.
//
// A Simulation owns the virtual clock and the event queue. Components
// schedule callbacks at relative delays or absolute times; run() drains the
// queue in deterministic order. There is exactly one Simulation per
// experiment; components hold a reference to it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class Simulation {
public:
    Simulation() = default;

    // The kernel is referenced by every component; it must not move.
    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current virtual time.
    [[nodiscard]] SimTime now() const { return now_; }

    /// Schedule `cb` to run `delay` after the current time.
    EventHandle schedule(SimTime delay, EventQueue::Callback cb);

    /// Schedule `cb` at absolute time `at` (must be >= now()).
    EventHandle schedule_at(SimTime at, EventQueue::Callback cb);

    /// Schedule a callback that re-arms itself every `period` until the
    /// returned handle is cancelled. The first firing is after `period`.
    /// The callback receives no arguments; cancel via the shared handle.
    class PeriodicHandle {
    public:
        void cancel() { if (stop_) *stop_ = true; }
        [[nodiscard]] bool active() const { return stop_ && !*stop_; }
    private:
        friend class Simulation;
        std::shared_ptr<bool> stop_;
    };
    PeriodicHandle schedule_periodic(SimTime period, EventQueue::Callback cb);

    /// Run until the queue is empty or a stop was requested.
    /// Returns the number of events executed.
    std::uint64_t run();

    /// Run until virtual time reaches `deadline` (events at exactly the
    /// deadline still execute). The clock is advanced to `deadline` if the
    /// queue drains earlier. Returns the number of events executed.
    std::uint64_t run_until(SimTime deadline);

    /// Request that run()/run_until() return after the current event.
    void stop() { stop_requested_ = true; }

    /// True if any events remain.
    [[nodiscard]] bool has_pending_events() const { return !queue_.empty(); }

    /// Number of events executed so far in this simulation's lifetime.
    [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

private:
    SimTime now_ = SimTime::zero();
    EventQueue queue_;
    bool stop_requested_ = false;
    std::uint64_t executed_ = 0;
};

} // namespace tedge::sim
