// Work-stealing-free, queue-based thread pool used to run independent
// simulation replicas in parallel (one Simulation per task; the kernel itself
// is single-threaded and deterministic, so parallelism lives *across* runs).
// Also home to the low-level waiting primitives the sharded coordinator's
// lanes use: core pinning and the spin-then-park Eventcount.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tedge::sim {

/// Pin the calling thread to CPU core `core % hardware_concurrency` via the
/// platform affinity API. Returns false (and changes nothing) when pinning
/// is unsupported on this platform or the kernel rejects the mask; never
/// throws. Purely a wall-clock optimization -- results never depend on it.
bool pin_current_thread_to_core(std::size_t core);

/// Hint the CPU that the caller is spinning (PAUSE/YIELD where available).
void cpu_relax() noexcept;

/// Futex-style wait gate: one epoch counter on the fast path, mutex + condvar
/// only on the park slow path. The waiter protocol is
///
///     const auto ticket = gate.prepare();
///     if (recheck_condition()) continue;   // condition raced ahead: no park
///     gate.wait(ticket);
///
/// and a notifier makes its state visible (e.g. stores a dirty flag) *before*
/// calling notify(). notify() bumps the epoch, so any waiter holding an older
/// ticket either never parks (the spin loop sees the bump) or is woken from
/// the condvar. The waiter/epoch handshake uses seq_cst on both sides, which
/// rules out the classic lost-wakeup interleaving: if the notifier reads zero
/// waiters, the waiter's registration is later in the total order, so its
/// subsequent epoch check must observe the bump.
class Eventcount {
public:
    /// Take a wait ticket. Re-check the wakeup condition *after* this.
    [[nodiscard]] std::uint64_t prepare() const {
        return epoch_.load(std::memory_order_seq_cst);
    }

    /// Wake all current and in-flight waiters. Cheap when nobody waits: one
    /// RMW plus one load, no mutex.
    void notify();

    /// Block until the epoch leaves `ticket`: spin `spin` times, then park on
    /// the condvar. Returns true iff it parked (the slow path); when
    /// `parked_ns` is non-null it receives the wall-clock time spent parked.
    bool wait(std::uint64_t ticket, std::uint64_t* parked_ns = nullptr,
              int spin = 512);

private:
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<std::uint32_t> waiters_{0};
    std::mutex mu_;
    std::condition_variable cv_;
};

class ThreadPool {
public:
    /// Create a pool with `threads` workers (0 -> hardware_concurrency).
    /// With `pin_to_cores`, worker i pins itself to core i modulo the
    /// hardware size (fewer cores than workers degrades to sharing cores).
    explicit ThreadPool(std::size_t threads = 0, bool pin_to_cores = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue a task; the returned future reports its result/exception.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        auto fut = task->get_future();
        {
            std::lock_guard lock(mu_);
            if (stopping_) throw std::runtime_error("ThreadPool is stopping");
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Run fn(i) for i in [0, n) across the pool and wait for completion.
    /// Exceptions from tasks are rethrown (the first one encountered).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace tedge::sim
