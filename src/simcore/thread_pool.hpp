// Work-stealing-free, queue-based thread pool used to run independent
// simulation replicas in parallel (one Simulation per task; the kernel itself
// is single-threaded and deterministic, so parallelism lives *across* runs).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tedge::sim {

/// Pin the calling thread to CPU core `core % hardware_concurrency` via the
/// platform affinity API. Returns false (and changes nothing) when pinning
/// is unsupported on this platform or the kernel rejects the mask; never
/// throws. Purely a wall-clock optimization -- results never depend on it.
bool pin_current_thread_to_core(std::size_t core);

class ThreadPool {
public:
    /// Create a pool with `threads` workers (0 -> hardware_concurrency).
    /// With `pin_to_cores`, worker i pins itself to core i modulo the
    /// hardware size (fewer cores than workers degrades to sharing cores).
    explicit ThreadPool(std::size_t threads = 0, bool pin_to_cores = false);
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] std::size_t size() const { return workers_.size(); }

    /// Enqueue a task; the returned future reports its result/exception.
    template <typename F>
    auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
        auto fut = task->get_future();
        {
            std::lock_guard lock(mu_);
            if (stopping_) throw std::runtime_error("ThreadPool is stopping");
            queue_.emplace([task] { (*task)(); });
        }
        cv_.notify_one();
        return fut;
    }

    /// Run fn(i) for i in [0, n) across the pool and wait for completion.
    /// Exceptions from tasks are rethrown (the first one encountered).
    void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> queue_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace tedge::sim
