#include "simcore/symbol_table.hpp"

#include <stdexcept>

namespace tedge::sim {

SymbolId SymbolTable::intern(std::string_view name) {
    if (const auto it = ids_.find(name); it != ids_.end()) return it->second;
    const auto id = static_cast<SymbolId>(names_.size());
    if (id == kInvalidSymbol) throw std::length_error("SymbolTable full");
    const auto [it, inserted] = ids_.emplace(std::string(name), id);
    names_.push_back(&it->first);
    return id;
}

const std::string& SymbolTable::name(SymbolId id) const {
    if (id >= names_.size()) throw std::out_of_range("SymbolTable: unknown id");
    return *names_[id];
}

std::optional<SymbolId> SymbolTable::find(std::string_view name) const {
    const auto it = ids_.find(name);
    return it == ids_.end() ? std::nullopt : std::optional{it->second};
}

} // namespace tedge::sim
