// Bounded single-producer / single-consumer ring buffer.
//
// The sharded coordinator's lock-free mailbox primitive: each *directed*
// channel (src domain -> dst domain) gets one ring, its producer is the lane
// that owns src and its consumer the lane that owns dst — both fixed for the
// whole run (domains are assigned to lanes by id % nlanes), which is exactly
// the SPSC contract. Slots are exchanged by swap, so a consumer that hands a
// drained std::vector back in its pop argument recycles that vector's heap
// capacity into the ring: steady-state message batches move with zero
// allocation in either direction.
//
// Memory ordering is the textbook pair: the producer releases `tail_` after
// writing the slot, the consumer acquires `tail_` before reading it (and
// symmetrically for `head_` on the return path). Anything the producer wrote
// before the push — including *other* atomics such as a horizon clock it
// publishes afterwards — is therefore visible to a consumer that observed the
// push. Head and tail live on separate cache lines so the two sides do not
// false-share.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace tedge::sim {

template <typename T>
class SpscRing {
public:
    /// Capacity is rounded up to a power of two (minimum 2).
    explicit SpscRing(std::size_t capacity = 64) {
        std::size_t cap = 2;
        while (cap < capacity) cap <<= 1;
        slots_.resize(cap);
        mask_ = cap - 1;
    }

    SpscRing(const SpscRing&) = delete;
    SpscRing& operator=(const SpscRing&) = delete;

    /// Producer side. On success the pushed value is *swapped* into the ring
    /// and `item` holds whatever the slot previously contained (an empty
    /// vector whose capacity a past consumer recycled, typically). Returns
    /// false when the ring is full; `item` is untouched.
    bool try_push(T& item) {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        if (t - head_.load(std::memory_order_acquire) > mask_) return false;
        using std::swap;
        swap(slots_[t & mask_], item);
        tail_.store(t + 1, std::memory_order_release);
        return true;
    }

    /// Consumer side. On success the front value is swapped into `out` (and
    /// `out`'s previous value — ideally an empty, capacity-bearing vector —
    /// is left in the slot for the producer to reuse). Returns false when
    /// empty; `out` is untouched.
    bool try_pop(T& out) {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        if (tail_.load(std::memory_order_acquire) == h) return false;
        using std::swap;
        swap(out, slots_[h & mask_]);
        head_.store(h + 1, std::memory_order_release);
        return true;
    }

    /// Racy observer (exact only when the observing side is quiescent); the
    /// coordinator uses it from its quiescence scan, which runs with every
    /// lane idle and therefore sees exact values.
    [[nodiscard]] bool empty() const {
        return tail_.load(std::memory_order_acquire) ==
               head_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::size_t size() const {
        return tail_.load(std::memory_order_acquire) -
               head_.load(std::memory_order_acquire);
    }

    [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

private:
    std::vector<T> slots_;
    std::size_t mask_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

} // namespace tedge::sim
