// ShardedSimulation: conservative parallel discrete-event execution of
// independent Domains, deterministic at any shard count, thread count, and
// synchronization mode.
//
// ## Execution model
//
// Three coordinators are available (Options::sync), all built on the same
// per-domain primitives and producing bit-identical runs:
//
//  * kBarrier — global barrier rounds. Each round computes the earliest
//    pending work time across every domain, `next`, and executes all domains
//    up to `next + lookahead` (the minimum channel lookahead), then delivers
//    all cross-domain messages at the barrier. Simple, fully synchronous,
//    kept for differential testing.
//  * kChannelLocked — asynchronous channel clocks (Chandy-Misra-Bryant null
//    messages) with all shared state under one mutex + condvar (the PR-8
//    coordinator, kept for differential testing). Every domain continuously
//    publishes a *horizon* — a lower bound on the timestamp of anything it
//    will still execute (and therefore send + channel lookahead later). A
//    domain's safe execution bound is the minimum EIT (earliest input time)
//    over its in-channels,
//
//        safe_end(d) = min over channels (s -> d) of horizon(s) + L(s, d)
//
//    so a domain blocks only on its actual upstream channels — unrelated
//    domains never wait on each other, and a domain with no in-channels runs
//    its entire workload in one window. Horizon publications that carry no
//    payload are the null messages; strictly positive channel lookaheads
//    make the horizon fixpoint climb around any channel cycle, which is the
//    classic deadlock-freedom argument. Cross-domain messages travel in
//    per-(src, dst, window) batches: one staging append and one wakeup per
//    batch, not per message.
//  * kChannel (default) — the same channel-clock protocol on a mostly
//    lock-free synchronization plane (DESIGN §8.7). Horizons are monotone
//    atomics published per directed channel (release) and read into EIT
//    without any lock (acquire); message batches travel through bounded SPSC
//    mailbox rings, one per directed channel (the producer is the lane
//    owning src, the consumer the lane owning dst — both fixed for the run);
//    lanes track a per-domain dirty set and spin-then-park on a per-lane
//    Eventcount instead of a global condvar; horizon advances smaller than a
//    per-channel grain (Options::horizon_grain × lookahead) are withheld
//    unless a batch rode along or the downstream *demanded* the update — an
//    EIT-blocked domain pokes exactly its laggard upstream instead of all
//    upstreams broadcasting continuously. The sync mutex survives only on
//    the quiescence slow path (every lane idle).
//
// ## Determinism argument
//
//  * Within a domain, execution is the ordinary serial kernel: events run in
//    (timestamp, insertion seq) order.
//  * Cross-domain messages are staged into the destination's inbox — a
//    (timestamp, source id, sequence) min-heap, a total order independent of
//    execution interleaving — and inserted into the destination queue
//    immediately before the destination executes its first event at or past
//    the message timestamp. Conservative safety guarantees every message
//    with timestamp <= t has arrived before the domain may execute at t, so
//    the insertion point is well-defined and *window-structure independent*:
//    the pop sequence is a pure merge of the local schedule order and the
//    message order, the same under barrier rounds, channel windows, or any
//    thread interleaving.
//  * Daemon housekeeping is gated by the *fence*: the largest user-event
//    timestamp scheduled anywhere in the run so far (a monotone quantity
//    with a schedule-independent final value). A daemon event executes iff
//    its timestamp is <= the fence — run()'s "housekeeping rides along while
//    user work remains" semantics, restated without reference to rounds.
//    When a daemon's eligibility is still undecided the domain blocks; at
//    global quiescence no user work remains anywhere, the fence is final,
//    and every pending daemon past it is legitimately left unexecuted.
//
// Hence the whole run — event counts, per-domain clocks, metric values,
// trace exports, log buffers — is bit-identical across sync modes, shard
// counts, and worker counts. With a single domain, run()/run_until()
// reproduce Simulation::run()/run_until() exactly (same pop sequence, same
// daemon-event semantics, same final clock).
//
// ## Channels
//
// Channel lookaheads default to a full mesh at Options::lookahead (the PR-5
// behaviour). set_channel() — typically fed from
// net::TopologyPartition::channels(), i.e. per-directed-pair minimum
// cut-link latencies — replaces the mesh with the real channel graph:
// posting on a pair with no channel throws, per-pair lookaheads can far
// exceed the global minimum, and absent channels mean absent waiting.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "simcore/domain.hpp"
#include "simcore/spsc_ring.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class ThreadPool;
class Eventcount;

/// Coordinator algorithm selector (Options::sync, TEDGE_SYNC).
enum class SyncMode : std::uint8_t {
    kBarrier,        ///< global barrier rounds (PR-5 coordinator, kept for diffing)
    kChannelLocked,  ///< channel clocks, all state under one mutex (PR-8)
    kChannel,        ///< channel clocks on the lock-free plane (default)
};

class ShardedSimulation {
public:
    struct Options {
        /// Run seed; per-domain streams derive from it and the domain id.
        std::uint64_t seed = 42;
        /// Event-queue backend for every domain's kernel.
        QueueBackend backend = EventQueue::default_backend();
        /// Minimum cross-domain message latency of the implicit full-mesh
        /// channel graph used when no explicit channels are set. post()
        /// requires message timestamps >= sender now + channel lookahead.
        /// The default (SimTime::max) declares "no cross-domain messaging":
        /// windows are unbounded and post() throws. Derive a real value from
        /// the topology partition (net::TopologyPartition::lookahead()), or
        /// better, install per-pair channels (set_channel). Must be positive.
        SimTime lookahead = SimTime::max();
        /// Execution lanes. Domains are assigned round-robin by id
        /// (id % shards); each lane runs its domains' windows sequentially
        /// in id order. 0 = one lane per domain. shards=1 executes inline on
        /// the calling thread with zero coordination overhead.
        std::size_t shards = 0;
        /// Worker threads (0 = one per lane, capped by the hardware). Only
        /// affects wall-clock speed, never results.
        std::size_t workers = 0;
        /// Coordinator algorithm; results are identical under every mode.
        /// Defaults from TEDGE_SYNC ("barrier"/"channel-locked"/"channel"),
        /// else kChannel.
        SyncMode sync = default_sync();
        /// Null-message suppression grain of the lock-free channel
        /// coordinator, as a fraction of each directed channel's lookahead:
        /// a horizon advance smaller than grain × L(src, dst) is withheld
        /// unless the publishing pass executed events, flushed a batch, or
        /// the downstream demanded it. 0 publishes every advance (the PR-8
        /// behaviour). Changes scheduling pressure only — results are
        /// byte-identical at any grain. Defaults from TEDGE_GRAIN (a
        /// non-negative double), else 0.25.
        double horizon_grain = default_grain();
        /// Pin lane threads to cores (lane i -> core i mod hardware size)
        /// via pthread_setaffinity_np; cores < lanes degrades to sharing
        /// cores, unsupported platforms to a no-op. Defaults from
        /// TEDGE_PIN=1. Only affects wall-clock speed, never results.
        bool pin_lanes = default_pin();
    };

    /// Process-wide default sync mode: kChannel unless TEDGE_SYNC names
    /// another coordinator ("barrier" or "channel-locked").
    [[nodiscard]] static SyncMode default_sync();
    /// Process-wide default lane pinning: off unless TEDGE_PIN=1.
    [[nodiscard]] static bool default_pin();
    /// Process-wide default suppression grain: TEDGE_GRAIN, else 0.25.
    [[nodiscard]] static double default_grain();

    ShardedSimulation();
    explicit ShardedSimulation(Options options);
    ~ShardedSimulation();

    ShardedSimulation(const ShardedSimulation&) = delete;
    ShardedSimulation& operator=(const ShardedSimulation&) = delete;

    /// Create the next domain (ids are assigned 0, 1, 2, ... in creation
    /// order). Add all domains before the first run call. The reference is
    /// stable for the coordinator's lifetime.
    Domain& add_domain(std::string name);

    [[nodiscard]] Domain& domain(DomainId id) { return *domains_.at(id); }
    [[nodiscard]] const Domain& domain(DomainId id) const { return *domains_.at(id); }
    [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }

    /// Declare a directed channel src -> dst with the given conservative
    /// lookahead (must be positive; src/dst need not exist yet). The first
    /// call switches the coordinator from the implicit Options::lookahead
    /// full mesh to the explicit channel graph: posting on a pair with no
    /// channel throws, and in channel-sync mode a domain waits only on its
    /// declared in-channels. Typically fed from
    /// net::TopologyPartition::channels(). Call before the first run.
    void set_channel(DomainId src, DomainId dst, SimTime lookahead);

    /// True once set_channel() has installed an explicit channel graph.
    [[nodiscard]] bool has_explicit_channels() const { return !channels_.empty(); }

    /// Lookahead of the directed channel src -> dst: the explicit channel's,
    /// or Options::lookahead under the implicit full mesh. Throws
    /// std::logic_error for a pair with no explicit channel.
    [[nodiscard]] SimTime channel_lookahead(DomainId src, DomainId dst) const;

    /// Minimum channel lookahead (the global conservative window bound).
    [[nodiscard]] SimTime lookahead() const;
    void set_lookahead(SimTime lookahead);

    [[nodiscard]] SyncMode sync_mode() const { return options_.sync; }

    [[nodiscard]] std::size_t shard_count() const;

    /// Run until no user events remain in any domain and no daemon work at
    /// or before the fence (the largest user timestamp ever scheduled)
    /// remains; with one domain this is exactly Simulation::run(). Returns
    /// the number of events executed across all domains.
    std::uint64_t run();

    /// Run every domain up to and including `deadline` (daemon events too)
    /// and advance all domain clocks to `deadline`, like
    /// Simulation::run_until on each. Returns events executed.
    std::uint64_t run_until(SimTime deadline);

    /// Latest domain clock (the natural anchor for follow-up deadlines).
    [[nodiscard]] SimTime now() const;

    /// Total events executed across all domains so far.
    [[nodiscard]] std::uint64_t events_executed() const;

    /// Synchronization work so far: barrier mode counts global rounds,
    /// channel mode counts per-domain windows attempted. Deterministic with
    /// a single worker; multi-worker channel runs may split windows
    /// differently (results never change).
    [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

    /// Cross-domain messages inserted into destination queues so far.
    [[nodiscard]] std::uint64_t messages_delivered() const;

    /// Pure null messages so far: horizon publications that advanced a
    /// channel clock without carrying any message batch or executed event
    /// (channel modes only; barrier mode has none). Deterministic with a
    /// single worker — the liveness tests bound it.
    [[nodiscard]] std::uint64_t null_messages() const { return null_messages_; }

    /// Horizon advances withheld by the suppression grain so far (lock-free
    /// channel mode only). Deterministic with a single worker.
    [[nodiscard]] std::uint64_t suppressed_publications() const {
        return suppressed_publications_;
    }

    /// Demand pulls issued by EIT-blocked domains so far (lock-free channel
    /// mode only). Deterministic with a single worker.
    [[nodiscard]] std::uint64_t demand_requests() const { return demand_requests_; }

    /// Lane gate wakeups so far (lock-free channel mode only): returns from
    /// the per-lane Eventcount, spin or park alike. Wall-clock-dependent
    /// with multiple workers.
    [[nodiscard]] std::uint64_t lane_wakeups() const { return wakeups_; }

    /// Per-lane accounting of the most recent run call (channel modes;
    /// empty after barrier runs). The *_ns members are wall-clock quantities
    /// — reporting only, never part of simulation results.
    struct LaneStat {
        std::uint64_t busy_ns = 0;     ///< executing domain windows
        std::uint64_t blocked_ns = 0;  ///< waiting for upstream horizons
        std::uint64_t windows = 0;     ///< windows attempted
        std::uint64_t parks = 0;       ///< gate waits that hit the condvar slow path
        std::uint64_t parked_ns = 0;   ///< wall-clock spent parked on the condvar
        std::uint64_t wakeups = 0;     ///< returns from the lane gate
        std::uint64_t nulls = 0;       ///< pure null publications by this lane
        std::uint64_t suppressed = 0;  ///< advances withheld by the grain
        std::uint64_t demands = 0;     ///< demand pulls issued by this lane
    };
    [[nodiscard]] const std::vector<LaneStat>& lane_stats() const {
        return lane_stats_;
    }

    /// Deterministic merged metrics: per-domain registries folded in domain
    /// order (counters sum, same-shape histograms merge), then dumped
    /// name-ordered.
    void dump_metrics(std::ostream& os) const;
    [[nodiscard]] std::string dump_metrics() const;

    /// Deterministic merged Chrome trace: each domain's tracer exports under
    /// pid = domain id, spans in creation order, domains in id order.
    void write_chrome_trace(std::ostream& os) const;

    /// When set, every domain's log buffer is flushed to `os` in domain
    /// order at the end of each run call — the deterministic multi-domain
    /// replacement for the shared stderr sink. Flushing only at run
    /// boundaries (never mid-run) is what makes the flushed byte stream
    /// identical across sync modes: barrier rounds and channel windows
    /// interleave domains differently, but each domain's buffer content and
    /// the domain flush order do not depend on that.
    void set_log_output(std::ostream* os) { log_output_ = os; }

    /// Flush all domain log buffers in domain order now.
    void flush_logs(std::ostream& os);

private:
    friend class Domain;

    enum class Mode : std::uint8_t { kRun, kRunUntil };

    static std::uint64_t channel_key(DomainId src, DomainId dst) {
        return (static_cast<std::uint64_t>(src) << 32) | dst;
    }

    std::uint64_t drive(Mode mode, SimTime deadline);
    void drive_single(Mode mode, SimTime deadline);
    void drive_barrier(Mode mode, SimTime deadline);
    void drive_channel_locked(Mode mode, SimTime deadline);
    void channel_lane_locked(std::size_t lane, std::size_t nlanes, Mode mode,
                             SimTime deadline);
    void drive_channel(Mode mode, SimTime deadline);
    void channel_lane(std::size_t lane, std::size_t nlanes, Mode mode,
                      SimTime deadline);
    [[nodiscard]] SimTime safe_end_locked(DomainId dst) const;
    [[nodiscard]] bool quiescent_locked(Mode mode, SimTime deadline) const;
    void build_in_channels();
    void build_channel_plane();
    void drain_staged_inboxes();
    /// Quiescence scan of the lock-free plane. Call with sync_mu_ held and
    /// every lane registered idle. Not const: any domain that still owes
    /// work is re-marked dirty (healing suppressed or raced wakeups).
    [[nodiscard]] bool quiescent_lockfree(Mode mode, SimTime deadline);
    [[nodiscard]] bool plane_clean() const;
    [[nodiscard]] SimTime compute_fence() const;
    void flush_logs_if_configured();

    Options options_;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::unique_ptr<ThreadPool> pool_;  ///< barrier-mode lanes
    std::unordered_map<std::uint64_t, SimTime> channels_;
    SimTime min_channel_lookahead_ = SimTime::max();
    /// in_channels_[dst] = (src, lookahead) pairs; built at first drive from
    /// the explicit channel graph or the implicit mesh.
    std::vector<std::vector<std::pair<DomainId, SimTime>>> in_channels_;
    bool in_channels_built_ = false;

    // Locked-channel-coordinator shared state, guarded by sync_mu_. Horizons
    // and fence only ever grow; staged_ holds flushed batches until the
    // owning lane merges them into the domain inbox (buffers keep their
    // capacity across windows and runs — no per-round reallocation). The
    // lock-free coordinator reuses sync_mu_ for its idle-registration slow
    // path only.
    std::mutex sync_mu_;
    std::condition_variable sync_cv_;
    std::vector<SimTime> horizon_;
    std::vector<std::vector<Domain::Message>> staged_;
    SimTime fence_ = SimTime::zero();
    std::uint64_t version_ = 0;
    std::size_t busy_lanes_ = 0;  ///< lanes currently executing unlocked
    bool done_ = false;
    std::exception_ptr lane_error_;

    // ---- lock-free channel plane (SyncMode::kChannel; DESIGN §8.7) ----
    //
    // One ChannelEdge + ChannelClock + SPSC mailbox ring per directed
    // channel. The clock's horizon is published by the lane owning src
    // (release) and read lock-free into EIT(dst) (acquire); the demand flag
    // is the downstream's pull request. dirty_[d] says "domain d's inputs
    // may have advanced — re-examine it"; fence_wait_[d] records the daemon
    // timestamp d is fence-blocked on, so a fence raise wakes exactly the
    // domains it unblocks. All of it is rebuilt/reset at drive start and
    // torn into quiescence under sync_mu_ (the only lock on the whole path).
    struct ChannelEdge {
        DomainId src = 0;
        DomainId dst = 0;
        SimTime lookahead = SimTime::zero();
        std::int64_t grain_ns = 0;  ///< horizon_grain × lookahead, in ns
    };
    struct alignas(64) ChannelClock {
        std::atomic<std::int64_t> horizon{0};  ///< published ns, monotone
        std::atomic<std::uint8_t> demand{0};   ///< downstream pull request
    };
    static constexpr std::uint32_t kNoEdge = 0xffffffffu;
    std::vector<ChannelEdge> edges_;
    std::vector<std::vector<std::uint32_t>> in_edges_;   ///< dst -> edge ids
    std::vector<std::vector<std::uint32_t>> out_edges_;  ///< src -> edge ids
    std::vector<std::uint32_t> edge_of_;  ///< src * n + dst -> edge id
    std::unique_ptr<ChannelClock[]> clocks_;
    std::vector<std::unique_ptr<SpscRing<std::vector<Domain::Message>>>> rings_;
    std::unique_ptr<std::atomic<std::uint8_t>[]> dirty_;
    std::unique_ptr<std::atomic<std::int64_t>[]> fence_wait_;
    std::vector<std::unique_ptr<Eventcount>> gates_;  ///< one per lane
    std::atomic<std::int64_t> fence_ns_{0};
    std::atomic<bool> lf_done_{false};
    std::atomic<std::uint64_t> publications_{0};
    std::size_t idle_lanes_ = 0;  ///< guarded by sync_mu_
    std::uint64_t heal_events_ = 0;  ///< guarded by sync_mu_ (stall detection)
    std::uint64_t heal_pubs_ = 0;    ///< guarded by sync_mu_
    bool plane_built_ = false;

    std::uint64_t rounds_ = 0;
    std::uint64_t null_messages_ = 0;
    std::uint64_t suppressed_publications_ = 0;
    std::uint64_t demand_requests_ = 0;
    std::uint64_t wakeups_ = 0;
    std::vector<LaneStat> lane_stats_;
    std::ostream* log_output_ = nullptr;
    bool running_ = false;
};

} // namespace tedge::sim
