// ShardedSimulation: conservative parallel discrete-event execution of
// independent Domains, deterministic at any shard count and thread count.
//
// ## Execution model
//
// The coordinator advances all domains in barrier-synchronized rounds. Each
// round it computes the earliest pending event time across every domain,
// `next`, and executes all domains up to the window end
//
//     window_end = next + lookahead
//
// where `lookahead` is the minimum cross-domain message latency (for a
// partitioned topology: the smallest latency of any cut link). Because a
// message sent by an event executing at local time s >= next must be
// timestamped at s + lookahead >= window_end, no event inside the window can
// be invalidated by a message generated in the same window — every domain
// can safely run its sub-window [*, window_end) in parallel, one domain per
// thread, with no rollback (classic conservative / bounded-lag
// synchronization a la Chandy-Misra-Bryant, window-stepped).
//
// ## Determinism argument
//
//  * Within a domain, execution is the ordinary serial kernel: events run in
//    (timestamp, insertion seq) order.
//  * A domain's sub-window depends only on its own queue at the round start
//    plus its own RNG stream (derived from the stable domain id) — never on
//    which shard group or OS thread executes it, and never on how far other
//    domains have progressed.
//  * Cross-domain messages are buffered in per-domain outboxes during the
//    window and merged at the barrier in (timestamp, source id, sequence)
//    order — a total order independent of execution interleaving — then
//    inserted into destination queues in that order.
//  * The round structure itself (window ends, delivery batches) is a pure
//    function of round-start state, which inductively is identical at any
//    shard/thread count.
//
// Hence the whole run — event counts, per-domain clocks, metric values,
// trace exports, log buffers — is bit-identical whether the run uses one
// shard or many, one thread or many. With a single domain, run()/run_until()
// reproduce Simulation::run()/run_until() exactly (same pop sequence, same
// daemon-event semantics, same final clock).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "simcore/domain.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class ThreadPool;

class ShardedSimulation {
public:
    struct Options {
        /// Run seed; per-domain streams derive from it and the domain id.
        std::uint64_t seed = 42;
        /// Event-queue backend for every domain's kernel.
        QueueBackend backend = EventQueue::default_backend();
        /// Minimum cross-domain message latency. post() requires message
        /// timestamps >= sender now + lookahead. The default (SimTime::max)
        /// declares "no cross-domain messaging": windows are unbounded and
        /// post() throws. Derive a real value from the topology partition
        /// (net::TopologyPartition::lookahead()). Must be positive.
        SimTime lookahead = SimTime::max();
        /// Execution lanes. Domains are assigned round-robin by id
        /// (id % shards); each lane runs its domains' windows sequentially
        /// in id order. 0 = one lane per domain. shards=1 executes inline on
        /// the calling thread with zero coordination overhead.
        std::size_t shards = 0;
        /// Worker threads (0 = one per lane, capped by the hardware). Only
        /// affects wall-clock speed, never results.
        std::size_t workers = 0;
    };

    ShardedSimulation();
    explicit ShardedSimulation(Options options);
    ~ShardedSimulation();

    ShardedSimulation(const ShardedSimulation&) = delete;
    ShardedSimulation& operator=(const ShardedSimulation&) = delete;

    /// Create the next domain (ids are assigned 0, 1, 2, ... in creation
    /// order). Add all domains before the first run call. The reference is
    /// stable for the coordinator's lifetime.
    Domain& add_domain(std::string name);

    [[nodiscard]] Domain& domain(DomainId id) { return *domains_.at(id); }
    [[nodiscard]] const Domain& domain(DomainId id) const { return *domains_.at(id); }
    [[nodiscard]] std::size_t domain_count() const { return domains_.size(); }

    [[nodiscard]] SimTime lookahead() const { return options_.lookahead; }
    void set_lookahead(SimTime lookahead);

    [[nodiscard]] std::size_t shard_count() const;

    /// Run until no user events remain in any domain and no messages are in
    /// flight. Daemon housekeeping keeps executing while user work exists
    /// anywhere (round-start snapshot), mirroring Simulation::run()'s
    /// daemon-thread semantics; with one domain this is exactly run().
    /// Returns the number of events executed across all domains.
    std::uint64_t run();

    /// Run every domain up to and including `deadline` (daemon events too)
    /// and advance all domain clocks to `deadline`, like
    /// Simulation::run_until on each. Returns events executed.
    std::uint64_t run_until(SimTime deadline);

    /// Latest domain clock (the natural anchor for follow-up deadlines).
    [[nodiscard]] SimTime now() const;

    /// Total events executed across all domains so far.
    [[nodiscard]] std::uint64_t events_executed() const;

    /// Synchronization barriers completed so far (diagnostics: how many
    /// rounds the lookahead granted).
    [[nodiscard]] std::uint64_t rounds() const { return rounds_; }

    /// Cross-domain messages delivered so far.
    [[nodiscard]] std::uint64_t messages_delivered() const {
        return messages_delivered_;
    }

    /// Deterministic merged metrics: per-domain registries folded in domain
    /// order (counters sum, same-shape histograms merge), then dumped
    /// name-ordered.
    void dump_metrics(std::ostream& os) const;
    [[nodiscard]] std::string dump_metrics() const;

    /// Deterministic merged Chrome trace: each domain's tracer exports under
    /// pid = domain id, spans in creation order, domains in id order.
    void write_chrome_trace(std::ostream& os) const;

    /// When set, every domain's log buffer is flushed to `os` in domain
    /// order at each barrier and at the end of each run call — the
    /// deterministic multi-domain replacement for the shared stderr sink.
    void set_log_output(std::ostream* os) { log_output_ = os; }

    /// Flush all domain log buffers in domain order now.
    void flush_logs(std::ostream& os);

private:
    friend class Domain;

    enum class Mode { kRun, kRunUntil };

    std::uint64_t drive(Mode mode, SimTime deadline);
    void execute_windows(SimTime window_end, const std::vector<bool>& require_user);
    void collect_and_deliver();
    void flush_logs_if_configured();

    Options options_;
    std::vector<std::unique_ptr<Domain>> domains_;
    std::unique_ptr<ThreadPool> pool_;
    std::vector<Domain::Message> mail_;  ///< barrier staging, reused
    std::uint64_t rounds_ = 0;
    std::uint64_t messages_delivered_ = 0;
    std::ostream* log_output_ = nullptr;
    bool running_ = false;
};

} // namespace tedge::sim
