// Lifecycle tracing (paper figs. 12-16): named spans with parent/child
// links, correlated by a per-request id, over the simulation clock.
//
// The tracer is attached to a Simulation but is *off* by default: every
// call site guards with `if (auto* tr = sim.tracer())`, which is a single
// pointer load when tracing is disabled, and the tracer itself never
// schedules kernel events -- enabling or disabling it cannot perturb event
// order, timing, or counts. When enabled, the kernel captures the tracer's
// current TraceContext at schedule() time and restores it around the event's
// execution, so spans opened deep inside an async callback chain (pull ->
// create -> start -> probe) still parent under the packet-in / request that
// caused them -- the discrete-event analogue of async trace-context
// propagation.
//
// Export: Chrome trace_event JSON (chrome://tracing, Perfetto) with one
// track (tid) per request id, plus raw span access for histogram building.
//
// Lifetime: wrapped callbacks hold a pointer to the tracer, so an *enabled*
// tracer must outlive every event scheduled while it was enabled (in
// practice: create it right after the Simulation, destroy it after run()).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "simcore/event_queue.hpp"
#include "simcore/time.hpp"

namespace tedge::sim {

class Simulation;

using SpanId = std::uint64_t;     ///< 0 = "no span"
using RequestId = std::uint64_t;  ///< 0 = "no request"

/// The ambient position in the trace tree: which request is being served
/// and which span is currently open around the executing code.
struct TraceContext {
    RequestId request = 0;
    SpanId span = 0;

    [[nodiscard]] bool empty() const { return request == 0 && span == 0; }
};

struct TraceSpan {
    SpanId id = 0;
    SpanId parent = 0;
    RequestId request = 0;
    std::string name;
    SimTime start;
    SimTime end;
    bool open = false;     ///< begin() seen, end() not yet
    bool instant = false;  ///< zero-duration marker event
    std::vector<std::pair<std::string, std::string>> args;

    [[nodiscard]] SimTime duration() const { return end - start; }
};

class Tracer {
public:
    Tracer() = default;
    /// Construct attached (but still disabled) -- call enable() to arm.
    explicit Tracer(Simulation& sim) { attach(sim); }
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /// Bind to a simulation (detaching from any previous one). The tracer
    /// reads the clock from it and registers itself for context capture.
    void attach(Simulation& sim);
    void detach();

    /// Arm span recording. Requires attach() first. While disabled, begin/
    /// end/instant are no-ops returning 0 and the kernel never consults the
    /// tracer (Simulation::tracer() yields nullptr).
    void enable();
    void disable();
    [[nodiscard]] bool enabled() const { return enabled_; }

    /// Allocate a fresh request id (one per client request / packet-in).
    RequestId new_request() { return ++next_request_; }

    /// Open a span under the ambient context (current request + span).
    SpanId begin(std::string name);
    /// Open a span under an explicit parent context.
    SpanId begin(std::string name, TraceContext parent);
    /// Close a span. Safe on 0 and on already-closed ids.
    void end(SpanId id);

    /// Zero-duration marker under the ambient (or explicit) context.
    void instant(std::string name);
    void instant(std::string name, TraceContext parent);

    /// Attach a key/value annotation to an open or closed span.
    void arg(SpanId id, std::string key, std::string value);

    [[nodiscard]] TraceContext current() const { return current_; }
    void set_current(TraceContext ctx) { current_ = ctx; }
    [[nodiscard]] TraceContext context_of(SpanId id) const;

    /// RAII ambient-context switch around a synchronous call: everything
    /// scheduled inside the scope inherits `span` as its parent. Tolerates
    /// a null tracer and a zero span (both: no-op).
    class Scope {
    public:
        Scope(Tracer* tracer, SpanId span) : tracer_(tracer) {
            if (tracer_ == nullptr || span == 0) { tracer_ = nullptr; return; }
            saved_ = tracer_->current();
            tracer_->set_current(tracer_->context_of(span));
        }
        ~Scope() {
            if (tracer_ != nullptr) tracer_->set_current(saved_);
        }
        Scope(const Scope&) = delete;
        Scope& operator=(const Scope&) = delete;

    private:
        Tracer* tracer_ = nullptr;
        TraceContext saved_;
    };

    /// Kernel hook: wrap `cb` so it runs under the context that was ambient
    /// when it was scheduled. Returns `cb` unchanged when the context is
    /// empty (housekeeping stays unwrapped).
    [[nodiscard]] EventQueue::Callback propagate(EventQueue::Callback cb);

    [[nodiscard]] const std::vector<TraceSpan>& spans() const { return spans_; }
    [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
    /// Cap on recorded spans; further begin()s are counted in dropped().
    void set_max_spans(std::size_t cap) { max_spans_ = cap; }
    void clear();

    /// Chrome trace_event JSON ("X" complete events, "i" instants; ts/dur in
    /// microseconds; tid = request id). Deterministic: spans are emitted in
    /// creation order with integer-exact timestamps.
    void write_chrome_trace(std::ostream& os) const;
    [[nodiscard]] std::string chrome_trace() const;

    /// Merged export for a sharded run: one JSON document containing every
    /// tracer's spans, each tracer under pid = its index in `tracers` + 1
    /// (= domain id + 1), spans in creation order within a tracer, dropped
    /// counts summed. With a single tracer the output is byte-identical to
    /// write_chrome_trace (whose fixed pid is 1).
    static void write_merged_chrome_trace(std::ostream& os,
                                          const std::vector<const Tracer*>& tracers);

private:
    TraceSpan* find(SpanId id);
    [[nodiscard]] const TraceSpan* find(SpanId id) const;
    void write_events(std::ostream& os, std::uint64_t pid, bool& first) const;

    Simulation* sim_ = nullptr;
    bool enabled_ = false;
    TraceContext current_;
    std::vector<TraceSpan> spans_;
    std::size_t max_spans_ = 1'000'000;
    std::uint64_t dropped_ = 0;
    RequestId next_request_ = 0;
};

} // namespace tedge::sim
