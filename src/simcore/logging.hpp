// Minimal structured logger with simulation timestamps.
//
// Components log through a Logger bound to the Simulation clock; the global
// level filter keeps benches quiet by default while tests can raise
// verbosity.
//
// Thread-safety: a Logger (and the stderr default sink) belongs to one
// simulation and must only be used from the thread currently executing that
// simulation. When several simulations run concurrently — replicas across a
// ThreadPool, or the domains of a ShardedSimulation — give each one its own
// LogBuffer sink: the buffer is written only by its domain's executing
// thread, and the coordinator flushes all buffers in deterministic shard
// order at synchronization points, so concurrent domains never interleave
// bytes on a shared stream and the flushed output is reproducible at any
// shard or thread count.
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "simcore/time.hpp"

namespace tedge::sim {

class Simulation;

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
public:
    using Sink = std::function<void(LogLevel, SimTime, const std::string& component,
                                    const std::string& message)>;

    Logger(const Simulation& sim, std::string component,
           LogLevel level = LogLevel::kWarn);

    [[nodiscard]] LogLevel level() const { return level_; }
    void set_level(LogLevel level) { level_ = level; }
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    /// Create a child logger for a subcomponent, sharing sink and level.
    [[nodiscard]] Logger child(const std::string& sub) const;

    /// True when messages at `level` would be emitted. Use to guard log
    /// sites whose message is expensive to build.
    [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

    void log(LogLevel level, const std::string& message) const;

    /// Lazy variant: `build` is a callable returning the message, invoked
    /// only when `level` is enabled. Hot-path log sites (per-packet, per-
    /// event) use this so disabled levels cost one integer compare.
    template <typename Builder,
              typename = decltype(std::string(std::declval<Builder&>()()))>
    void log(LogLevel level, Builder&& build) const {
        if (enabled(level)) log(level, std::string(build()));
    }

    void trace(const std::string& m) const { log(LogLevel::kTrace, m); }
    void debug(const std::string& m) const { log(LogLevel::kDebug, m); }
    void info(const std::string& m) const { log(LogLevel::kInfo, m); }
    void warn(const std::string& m) const { log(LogLevel::kWarn, m); }
    void error(const std::string& m) const { log(LogLevel::kError, m); }

    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void trace(B&& b) const { log(LogLevel::kTrace, std::forward<B>(b)); }
    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void debug(B&& b) const { log(LogLevel::kDebug, std::forward<B>(b)); }
    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void info(B&& b) const { log(LogLevel::kInfo, std::forward<B>(b)); }

private:
    const Simulation* sim_;
    std::string component_;
    LogLevel level_;
    Sink sink_; // empty -> stderr
};

/// Buffered log sink for one simulation domain. Records formatted-input
/// tuples instead of writing to a stream; flush_to() renders them with the
/// exact same format as the default stderr sink, so routing a single-shard
/// run through a LogBuffer changes output bytes not at all — only *when*
/// they are written. Entries carry an append sequence so a coordinator can
/// merge several buffers deterministically.
class LogBuffer {
public:
    struct Entry {
        LogLevel level;
        SimTime at;
        std::string component;
        std::string message;
        std::uint64_t seq = 0;  ///< per-buffer append order
    };

    /// A Logger sink appending to this buffer. The buffer must outlive every
    /// Logger using the sink.
    [[nodiscard]] Logger::Sink sink();

    void append(LogLevel level, SimTime at, const std::string& component,
                const std::string& message);

    [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] bool empty() const { return entries_.empty(); }

    /// Render one entry exactly like the default stderr sink.
    static void format(std::ostream& os, const Entry& entry);

    /// Write all buffered entries in append order and clear the buffer.
    void flush_to(std::ostream& os);

    void clear() { entries_.clear(); }

private:
    std::vector<Entry> entries_;
    std::uint64_t next_seq_ = 0;
};

} // namespace tedge::sim
