// Minimal structured logger with simulation timestamps.
//
// Components log through a Logger bound to the Simulation clock; the global
// level filter keeps benches quiet by default while tests can raise
// verbosity. Not thread-safe across simulations by design: each replica
// carries its own Logger, and the sink is only shared when explicitly set.
#pragma once

#include <functional>
#include <iosfwd>
#include <sstream>
#include <string>
#include <utility>

#include "simcore/time.hpp"

namespace tedge::sim {

class Simulation;

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

[[nodiscard]] const char* to_string(LogLevel level);

class Logger {
public:
    using Sink = std::function<void(LogLevel, SimTime, const std::string& component,
                                    const std::string& message)>;

    Logger(const Simulation& sim, std::string component,
           LogLevel level = LogLevel::kWarn);

    [[nodiscard]] LogLevel level() const { return level_; }
    void set_level(LogLevel level) { level_ = level; }
    void set_sink(Sink sink) { sink_ = std::move(sink); }

    /// Create a child logger for a subcomponent, sharing sink and level.
    [[nodiscard]] Logger child(const std::string& sub) const;

    /// True when messages at `level` would be emitted. Use to guard log
    /// sites whose message is expensive to build.
    [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

    void log(LogLevel level, const std::string& message) const;

    /// Lazy variant: `build` is a callable returning the message, invoked
    /// only when `level` is enabled. Hot-path log sites (per-packet, per-
    /// event) use this so disabled levels cost one integer compare.
    template <typename Builder,
              typename = decltype(std::string(std::declval<Builder&>()()))>
    void log(LogLevel level, Builder&& build) const {
        if (enabled(level)) log(level, std::string(build()));
    }

    void trace(const std::string& m) const { log(LogLevel::kTrace, m); }
    void debug(const std::string& m) const { log(LogLevel::kDebug, m); }
    void info(const std::string& m) const { log(LogLevel::kInfo, m); }
    void warn(const std::string& m) const { log(LogLevel::kWarn, m); }
    void error(const std::string& m) const { log(LogLevel::kError, m); }

    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void trace(B&& b) const { log(LogLevel::kTrace, std::forward<B>(b)); }
    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void debug(B&& b) const { log(LogLevel::kDebug, std::forward<B>(b)); }
    template <typename B, typename = decltype(std::string(std::declval<B&>()()))>
    void info(B&& b) const { log(LogLevel::kInfo, std::forward<B>(b)); }

private:
    const Simulation* sim_;
    std::string component_;
    LogLevel level_;
    Sink sink_; // empty -> stderr
};

} // namespace tedge::sim
