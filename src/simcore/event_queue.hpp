// Priority event queue for the discrete-event kernel.
//
// Events are ordered by (timestamp, insertion sequence) which makes execution
// order fully deterministic: two events scheduled for the same instant run in
// the order they were scheduled. Cancellation is O(1) via a shared tombstone
// flag; dead events are dropped lazily when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "simcore/time.hpp"

namespace tedge::sim {

/// Handle to a scheduled event; allows cancellation before it fires.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancel the event. Safe to call multiple times or on an empty handle.
    void cancel();

    /// True if the handle refers to an event that has neither fired nor been
    /// cancelled yet.
    [[nodiscard]] bool pending() const;

private:
    friend class EventQueue;
    explicit EventHandle(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
    std::shared_ptr<bool> alive_;
};

/// Min-heap of timestamped callbacks.
class EventQueue {
public:
    using Callback = std::function<void()>;

    /// Schedule `cb` to fire at absolute time `at`.
    EventHandle push(SimTime at, Callback cb);

    /// True when no live events remain. May lazily discard cancelled events.
    [[nodiscard]] bool empty() const;

    /// Number of events currently stored, including not-yet-collected
    /// cancelled ones (an upper bound on live events).
    [[nodiscard]] std::size_t size() const { return heap_.size(); }

    /// Timestamp of the earliest live event. Requires !empty().
    [[nodiscard]] SimTime next_time() const;

    /// Remove and return the earliest live event. Requires !empty().
    std::pair<SimTime, Callback> pop();

    /// Drop all events.
    void clear();

    /// Total number of events ever scheduled (for diagnostics/determinism checks).
    [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

private:
    struct Entry {
        SimTime at;
        std::uint64_t seq = 0;
        Callback cb;
        std::shared_ptr<bool> alive;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void drop_dead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t seq_ = 0;
};

} // namespace tedge::sim
