// Slab-allocated priority event queue for the discrete-event kernel.
//
// Events are ordered by (timestamp, insertion sequence) which makes execution
// order fully deterministic: two events scheduled for the same instant run in
// the order they were scheduled.
//
// Storage is a slab of reusable slots indexed by a 4-ary min-heap of slot
// ids. An EventHandle is a (slot, generation) pair: cancellation is O(1) — a
// generation-checked flag write, no allocation, no shared_ptr traffic — and a
// handle held across slot reuse can never cancel the wrong event because the
// generation is bumped when the slot is recycled. Cancelled events stay in
// the heap and are discarded lazily when they surface.
//
// Events may be marked `daemon` (housekeeping periodics such as cache
// sweeps): they execute normally while user events are pending, but
// Simulation::run() terminates once only daemon events remain.
//
// Lifetime: an EventHandle holds a raw pointer to its queue, so handles must
// not outlive the EventQueue (in practice the Simulation, which all
// components already outlive by construction order).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simcore/time.hpp"
#include "simcore/unique_function.hpp"

namespace tedge::sim {

class EventQueue;

/// Handle to a scheduled event; allows cancellation before it fires.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancel the event. Safe to call multiple times, on an empty handle, or
    /// after the event has fired (the generation check makes it a no-op).
    void cancel();

    /// True if the handle refers to an event that has neither fired nor been
    /// cancelled yet.
    [[nodiscard]] bool pending() const;

private:
    friend class EventQueue;
    EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
        : queue_(queue), slot_(slot), generation_(generation) {}

    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
};

/// 4-ary min-heap of timestamped callbacks over a reusable slot slab.
class EventQueue {
public:
    using Callback = UniqueFunction<void()>;

    EventQueue() { heap_.resize(kRoot); } // physical pad before the root

    /// Schedule `cb` to fire at absolute time `at`. Daemon events run like
    /// any other but do not keep Simulation::run() alive on their own.
    EventHandle push(SimTime at, Callback cb, bool daemon = false);

    /// True when no live events remain. May lazily discard cancelled events.
    [[nodiscard]] bool empty() const { return live_ == 0; }

    /// Number of live (scheduled, not cancelled) events.
    [[nodiscard]] std::size_t size() const { return live_; }

    /// True while at least one live non-daemon event remains.
    [[nodiscard]] bool has_user_events() const { return live_user_ > 0; }

    /// Timestamp of the earliest live event. Requires !empty().
    [[nodiscard]] SimTime next_time() const;

    /// Remove and return the earliest live event. Requires !empty().
    std::pair<SimTime, Callback> pop();

    /// Drop all events.
    void clear();

    /// Total number of events ever scheduled (for diagnostics/determinism checks).
    [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

private:
    friend class EventHandle;

    static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

    struct Slot {
        Callback cb;
        std::uint64_t seq = 0;  ///< insertion sequence; heap tie-break key
        std::uint32_t generation = 0;
        std::uint32_t next_free = kInvalid;
        bool daemon = false;
        bool cancelled = false;
        bool in_use = false;
    };
    // The timestamp lives in the heap entry itself so sift operations compare
    // contiguous 16-byte records; the insertion-sequence tie-break is fetched
    // from the slab only when two timestamps are equal. The heap is rooted at
    // physical index kRoot = 3 so every 4-child group starts at an index
    // divisible by 4 -- with 16-byte entries that is one 64-byte cache line
    // per sift level instead of two.
    struct HeapEntry {
        SimTime at;
        std::uint32_t slot;
    };
    static constexpr std::size_t kRoot = 3;
    static std::size_t heap_parent(std::size_t i) { return i / 4 + 2; }
    static std::size_t heap_child(std::size_t i) { return 4 * i - 8; }

    [[nodiscard]] bool entry_earlier(const HeapEntry& a, const HeapEntry& b) const {
        if (a.at != b.at) return a.at < b.at;
        return slots_[a.slot].seq < slots_[b.slot].seq;
    }
    [[nodiscard]] bool heap_empty() const { return heap_.size() <= kRoot; }

    void cancel_slot(std::uint32_t slot, std::uint32_t generation);
    [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t generation) const;

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot);

    void sift_up(std::size_t i);
    void sift_down(std::size_t i);
    // Discard cancelled events that have surfaced at the heap top. Purely
    // housekeeping: observable state (live counts, next live event) is
    // unchanged, so const accessors may invoke it via const_cast.
    void drop_dead();
    void pop_top();

    std::vector<Slot> slots_;
    std::vector<HeapEntry> heap_;  ///< physical indices kRoot.. hold entries
    std::uint32_t free_head_ = kInvalid;
    std::uint64_t seq_ = 0;
    std::size_t live_ = 0;
    std::size_t live_user_ = 0;
    std::size_t dead_ = 0;  ///< cancelled tombstones still in the heap
};

// ---------------------------------------------------------------------------
// Hot-path definitions, kept in the header so the simulation loop inlines
// them: push/pop run once per scheduled event, millions of times per
// experiment replay.

inline std::uint32_t EventQueue::acquire_slot() {
    if (free_head_ != kInvalid) {
        const std::uint32_t slot = free_head_;
        free_head_ = slots_[slot].next_free;
        return slot;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
}

inline void EventQueue::release_slot(std::uint32_t slot) {
    Slot& s = slots_[slot];
    s.cb = nullptr;
    s.in_use = false;
    s.cancelled = false;
    // Bump the generation so stale handles to the old occupant can neither
    // cancel nor observe the slot's next tenant.
    ++s.generation;
    s.next_free = free_head_;
    free_head_ = slot;
}

inline void EventQueue::sift_up(std::size_t i) {
    const HeapEntry moving = heap_[i];
    while (i > kRoot) {
        const std::size_t parent = heap_parent(i);
        if (!entry_earlier(moving, heap_[parent])) break;
        heap_[i] = heap_[parent];
        i = parent;
    }
    heap_[i] = moving;
}

inline void EventQueue::sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    const HeapEntry moving = heap_[i];
    for (;;) {
        const std::size_t first = heap_child(i);
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (entry_earlier(heap_[c], heap_[best])) best = c;
        }
        if (!entry_earlier(heap_[best], moving)) break;
        heap_[i] = heap_[best];
        i = best;
    }
    heap_[i] = moving;
}

inline void EventQueue::pop_top() {
    heap_[kRoot] = heap_.back();
    heap_.pop_back();
    if (!heap_empty()) sift_down(kRoot);
}

inline void EventQueue::drop_dead() {
    if (dead_ == 0) return; // common case: no tombstones, no slab probe
    while (!heap_empty() && slots_[heap_[kRoot].slot].cancelled) {
        release_slot(heap_[kRoot].slot);
        pop_top();
        --dead_;
    }
}

inline EventHandle EventQueue::push(SimTime at, Callback cb, bool daemon) {
    const std::uint32_t slot = acquire_slot();
    Slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.seq = seq_++;
    s.daemon = daemon;
    s.cancelled = false;
    s.in_use = true;
    heap_.push_back(HeapEntry{at, slot});
    sift_up(heap_.size() - 1);
    ++live_;
    if (!daemon) ++live_user_;
    return EventHandle{this, slot, s.generation};
}

inline std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    drop_dead();
    if (heap_empty()) throw std::logic_error("EventQueue::pop on empty queue");
    const std::uint32_t slot = heap_[kRoot].slot;
    Slot& s = slots_[slot];
    std::pair<SimTime, Callback> out{heap_[kRoot].at, std::move(s.cb)};
    --live_;
    if (!s.daemon) --live_user_;
    release_slot(slot); // handle now reports "not pending"
    pop_top();
    return out; // NRVO: no extra callback relocation
}

inline SimTime EventQueue::next_time() const {
    const_cast<EventQueue*>(this)->drop_dead();
    if (heap_empty()) throw std::logic_error("EventQueue::next_time on empty queue");
    return heap_[kRoot].at;
}

} // namespace tedge::sim
