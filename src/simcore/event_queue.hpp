// Slab-allocated event queue for the discrete-event kernel, with a choice of
// two ordering backends.
//
// Events are ordered by (timestamp, insertion sequence) which makes execution
// order fully deterministic: two events scheduled for the same instant run in
// the order they were scheduled. Both backends produce the identical pop
// sequence; they differ only in asymptotics:
//
//   kHeap  -- 4-ary min-heap of slot ids: O(log n) push/pop. Lowest constant
//             factors at small queue sizes.
//   kWheel -- hierarchical timing wheel (timer_wheel.hpp): O(1) push,
//             amortized O(1) pop. Flat cost out to millions of pending
//             timers; the default (override with TEDGE_EVENT_BACKEND=heap).
//
// Storage is a slab of reusable slots referenced by the backend structure. An
// EventHandle is a (slot, generation) pair: cancellation is O(1) — a
// generation-checked flag write, no allocation, no shared_ptr traffic — and a
// handle held across slot reuse can never cancel the wrong event because the
// generation is bumped when the slot is recycled. Cancelled events stay in
// the backend as tombstones and are discarded lazily when they surface.
//
// Events may be marked `daemon` (housekeeping periodics such as cache
// sweeps): they execute normally while user events are pending, but
// Simulation::run() terminates once only daemon events remain.
//
// Lifetime: an EventHandle holds a raw pointer to its queue, so handles must
// not outlive the EventQueue (in practice the Simulation, which all
// components already outlive by construction order).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simcore/time.hpp"
#include "simcore/timer_wheel.hpp"
#include "simcore/unique_function.hpp"

namespace tedge::sim {

class EventQueue;

/// Which ordering structure backs an EventQueue.
enum class QueueBackend : std::uint8_t {
    kHeap,   ///< slab 4-ary min-heap: O(log n) push/pop
    kWheel,  ///< hierarchical timing wheel: O(1) push, amortized O(1) pop
};

/// Handle to a scheduled event; allows cancellation before it fires.
class EventHandle {
public:
    EventHandle() = default;

    /// Cancel the event. Safe to call multiple times, on an empty handle, or
    /// after the event has fired (the generation check makes it a no-op).
    void cancel();

    /// True if the handle refers to an event that has neither fired nor been
    /// cancelled yet.
    [[nodiscard]] bool pending() const;

private:
    friend class EventQueue;
    EventHandle(EventQueue* queue, std::uint32_t slot, std::uint32_t generation)
        : queue_(queue), slot_(slot), generation_(generation) {}

    EventQueue* queue_ = nullptr;
    std::uint32_t slot_ = 0;
    std::uint32_t generation_ = 0;
};

/// Deterministic timestamped callback queue over a reusable slot slab.
class EventQueue {
public:
    using Callback = UniqueFunction<void()>;

    explicit EventQueue(QueueBackend backend = default_backend()) : backend_(backend) {
        store_.heap.resize(kRoot); // physical pad before the heap root
    }

    /// Process-wide default backend: the wheel, unless the environment
    /// variable TEDGE_EVENT_BACKEND is set to "heap" or "wheel".
    [[nodiscard]] static QueueBackend default_backend();

    [[nodiscard]] QueueBackend backend() const { return backend_; }

    /// Schedule `cb` to fire at absolute time `at`. Daemon events run like
    /// any other but do not keep Simulation::run() alive on their own. The
    /// wheel backend requires `at` to be non-negative and not precede the
    /// most recently popped timestamp (Simulation guarantees both).
    EventHandle push(SimTime at, Callback cb, bool daemon = false);

    /// True when no live events remain (cancelled tombstones do not count).
    [[nodiscard]] bool empty() const { return live_ == 0; }

    /// Number of live (scheduled, not cancelled) events.
    [[nodiscard]] std::size_t size() const { return live_; }

    /// True while at least one live non-daemon event remains.
    [[nodiscard]] bool has_user_events() const { return live_user_ > 0; }

    /// Timestamp of the earliest live event. Requires !empty(). May lazily
    /// discard cancelled tombstones (see the Store member note).
    [[nodiscard]] SimTime next_time() const;

    /// True when the earliest live event is a daemon. Requires !empty().
    /// Non-destructive on both backends (the wheel is not advanced), so the
    /// caller may still push events earlier than the reported minimum — the
    /// sharded kernel peeks this to fence daemon housekeeping without
    /// disturbing later message insertion.
    [[nodiscard]] bool next_is_daemon() const;

    /// Remove and return the earliest live event. Requires !empty().
    std::pair<SimTime, Callback> pop();

    /// Drop all events.
    void clear();

    /// Pre-size the slot slab (and, on the heap backend, the heap array) for
    /// `events` concurrently pending events, avoiding vector-growth stalls
    /// mid-run. The wheel needs no pre-sizing: its buckets reach steady-state
    /// capacity within one rotation and are recycled thereafter.
    void reserve(std::size_t events);

    /// Total number of events ever scheduled (for diagnostics/determinism checks).
    [[nodiscard]] std::uint64_t total_scheduled() const { return seq_; }

    /// Cascade accounting of the wheel backend; all zeros under kHeap. The
    /// numbers are deterministic at a fixed seed, which is what lets bench
    /// gates assert the amortized-cascade bound without timing anything.
    [[nodiscard]] const TimerWheel::CascadeStats& wheel_cascade_stats() const {
        return store_.wheel.cascade_stats();
    }

private:
    friend class EventHandle;

    static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

    struct Slot {
        Callback cb;
        std::uint64_t seq = 0;  ///< insertion sequence; ordering tie-break key
        std::uint32_t generation = 0;
        std::uint32_t next_free = kInvalid;
        bool daemon = false;
        bool cancelled = false;
        bool in_use = false;
    };
    // The timestamp lives in the heap entry itself so sift operations compare
    // contiguous 16-byte records; the insertion-sequence tie-break is fetched
    // from the slab only when two timestamps are equal. The heap is rooted at
    // physical index kRoot = 3 so every 4-child group starts at an index
    // divisible by 4 -- with 16-byte entries that is one 64-byte cache line
    // per sift level instead of two.
    struct HeapEntry {
        SimTime at;
        std::uint32_t slot;
    };
    static constexpr std::size_t kRoot = 3;
    static std::size_t heap_parent(std::size_t i) { return i / 4 + 2; }
    static std::size_t heap_child(std::size_t i) { return 4 * i - 8; }

    // Event storage shared by both backends. Const accessors (next_time,
    // empty-adjacent queries) lazily discard cancelled tombstones as they
    // surface; that housekeeping changes no observable state (live counts,
    // next live event), so the store is mutable and the accessors stay
    // honest const — no const_cast.
    struct Store {
        std::vector<Slot> slots;
        std::vector<HeapEntry> heap;  ///< kHeap: physical indices kRoot.. hold entries
        TimerWheel wheel;             ///< kWheel: hierarchical bucket array
        std::uint32_t free_head = kInvalid;
        std::size_t dead = 0;  ///< cancelled tombstones still filed in the backend
    };

    [[nodiscard]] bool entry_earlier(const HeapEntry& a, const HeapEntry& b) const {
        if (a.at != b.at) return a.at < b.at;
        return store_.slots[a.slot].seq < store_.slots[b.slot].seq;
    }
    [[nodiscard]] bool heap_empty() const { return store_.heap.size() <= kRoot; }

    void cancel_slot(std::uint32_t slot, std::uint32_t generation);
    [[nodiscard]] bool slot_pending(std::uint32_t slot, std::uint32_t generation) const;

    std::uint32_t acquire_slot();
    void release_slot(std::uint32_t slot) const;

    void sift_up(std::size_t i) const;
    void sift_down(std::size_t i) const;
    // Discard cancelled events that have surfaced at the heap top.
    void drop_dead() const;
    void pop_top() const;

    // Drop filter handed to the wheel: true for cancelled entries, releasing
    // their slot as the wheel removes them.
    [[nodiscard]] auto dead_filter() const {
        return [this](std::uint32_t slot) {
            if (!store_.slots[slot].cancelled) return false;
            release_slot(slot);
            --store_.dead;
            return true;
        };
    }

    mutable Store store_;
    QueueBackend backend_;
    std::uint64_t seq_ = 0;
    std::size_t live_ = 0;
    std::size_t live_user_ = 0;
};

// ---------------------------------------------------------------------------
// Hot-path definitions, kept in the header so the simulation loop inlines
// them: push/pop run once per scheduled event, millions of times per
// experiment replay.

inline std::uint32_t EventQueue::acquire_slot() {
    if (store_.free_head != kInvalid) {
        const std::uint32_t slot = store_.free_head;
        store_.free_head = store_.slots[slot].next_free;
        return slot;
    }
    store_.slots.emplace_back();
    return static_cast<std::uint32_t>(store_.slots.size() - 1);
}

inline void EventQueue::release_slot(std::uint32_t slot) const {
    Slot& s = store_.slots[slot];
    s.cb = nullptr;
    s.in_use = false;
    s.cancelled = false;
    // Bump the generation so stale handles to the old occupant can neither
    // cancel nor observe the slot's next tenant.
    ++s.generation;
    s.next_free = store_.free_head;
    store_.free_head = slot;
}

inline void EventQueue::sift_up(std::size_t i) const {
    auto& heap = store_.heap;
    const HeapEntry moving = heap[i];
    while (i > kRoot) {
        const std::size_t parent = heap_parent(i);
        if (!entry_earlier(moving, heap[parent])) break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = moving;
}

inline void EventQueue::sift_down(std::size_t i) const {
    auto& heap = store_.heap;
    const std::size_t n = heap.size();
    const HeapEntry moving = heap[i];
    for (;;) {
        const std::size_t first = heap_child(i);
        if (first >= n) break;
        std::size_t best = first;
        const std::size_t last = first + 4 < n ? first + 4 : n;
        for (std::size_t c = first + 1; c < last; ++c) {
            if (entry_earlier(heap[c], heap[best])) best = c;
        }
        if (!entry_earlier(heap[best], moving)) break;
        heap[i] = heap[best];
        i = best;
    }
    heap[i] = moving;
}

inline void EventQueue::pop_top() const {
    store_.heap[kRoot] = store_.heap.back();
    store_.heap.pop_back();
    if (!heap_empty()) sift_down(kRoot);
}

inline void EventQueue::drop_dead() const {
    if (store_.dead == 0) return; // common case: no tombstones, no slab probe
    while (!heap_empty() && store_.slots[store_.heap[kRoot].slot].cancelled) {
        release_slot(store_.heap[kRoot].slot);
        pop_top();
        --store_.dead;
    }
}

inline EventHandle EventQueue::push(SimTime at, Callback cb, bool daemon) {
    if (backend_ == QueueBackend::kWheel &&
        (at.ns() < 0 ||
         static_cast<std::uint64_t>(at.ns()) < store_.wheel.current())) {
        throw std::invalid_argument(
            "EventQueue(wheel): timestamp negative or before the last popped event");
    }
    const std::uint32_t slot = acquire_slot();
    Slot& s = store_.slots[slot];
    s.cb = std::move(cb);
    s.seq = seq_++;
    s.daemon = daemon;
    s.cancelled = false;
    s.in_use = true;
    if (backend_ == QueueBackend::kHeap) {
        store_.heap.push_back(HeapEntry{at, slot});
        sift_up(store_.heap.size() - 1);
    } else {
        store_.wheel.push(static_cast<std::uint64_t>(at.ns()), s.seq, slot);
    }
    ++live_;
    if (!daemon) ++live_user_;
    return EventHandle{this, slot, s.generation};
}

inline std::pair<SimTime, EventQueue::Callback> EventQueue::pop() {
    if (backend_ == QueueBackend::kHeap) {
        drop_dead();
        if (heap_empty()) throw std::logic_error("EventQueue::pop on empty queue");
        const std::uint32_t slot = store_.heap[kRoot].slot;
        Slot& s = store_.slots[slot];
        std::pair<SimTime, Callback> out{store_.heap[kRoot].at, std::move(s.cb)};
        --live_;
        if (!s.daemon) --live_user_;
        release_slot(slot); // handle now reports "not pending"
        pop_top();
        return out; // NRVO: no extra callback relocation
    }
    TimerWheel::Entry entry{};
    if (!store_.wheel.pop_min(dead_filter(), entry)) {
        throw std::logic_error("EventQueue::pop on empty queue");
    }
    Slot& s = store_.slots[entry.slot];
    std::pair<SimTime, Callback> out{SimTime{static_cast<std::int64_t>(entry.at)},
                                     std::move(s.cb)};
    --live_;
    if (!s.daemon) --live_user_;
    release_slot(entry.slot);
    return out;
}

inline bool EventQueue::next_is_daemon() const {
    if (backend_ == QueueBackend::kHeap) {
        drop_dead();
        if (heap_empty()) {
            throw std::logic_error("EventQueue::next_is_daemon on empty queue");
        }
        return store_.slots[store_.heap[kRoot].slot].daemon;
    }
    TimerWheel::Entry entry{};
    if (!store_.wheel.min_entry(dead_filter(), entry)) {
        throw std::logic_error("EventQueue::next_is_daemon on empty queue");
    }
    return store_.slots[entry.slot].daemon;
}

inline SimTime EventQueue::next_time() const {
    if (backend_ == QueueBackend::kHeap) {
        drop_dead();
        if (heap_empty()) {
            throw std::logic_error("EventQueue::next_time on empty queue");
        }
        return store_.heap[kRoot].at;
    }
    std::uint64_t at = 0;
    if (!store_.wheel.min_time(dead_filter(), at)) {
        throw std::logic_error("EventQueue::next_time on empty queue");
    }
    return SimTime{static_cast<std::int64_t>(at)};
}

} // namespace tedge::sim
