#include "simcore/logging.hpp"

#include <iostream>

#include "simcore/simulation.hpp"

namespace tedge::sim {

const char* to_string(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

std::string SimTime::str() const {
    std::ostringstream os;
    os.precision(3);
    const double abs_ns = static_cast<double>(ns_ < 0 ? -ns_ : ns_);
    if (abs_ns < 1e3) {
        os << ns_ << "ns";
    } else if (abs_ns < 1e6) {
        os << std::fixed << us() << "us";
    } else if (abs_ns < 1e9) {
        os << std::fixed << ms() << "ms";
    } else {
        os << std::fixed << seconds() << "s";
    }
    return os.str();
}

Logger::Logger(const Simulation& sim, std::string component, LogLevel level)
    : sim_(&sim), component_(std::move(component)), level_(level) {}

Logger Logger::child(const std::string& sub) const {
    Logger c{*sim_, component_ + "/" + sub, level_};
    c.sink_ = sink_;
    return c;
}

void Logger::log(LogLevel level, const std::string& message) const {
    if (level < level_) return;
    if (sink_) {
        sink_(level, sim_->now(), component_, message);
        return;
    }
    std::cerr << "[" << sim_->now().str() << "] " << to_string(level) << " "
              << component_ << ": " << message << "\n";
}

Logger::Sink LogBuffer::sink() {
    return [this](LogLevel level, SimTime at, const std::string& component,
                  const std::string& message) {
        append(level, at, component, message);
    };
}

void LogBuffer::append(LogLevel level, SimTime at, const std::string& component,
                       const std::string& message) {
    entries_.push_back(Entry{level, at, component, message, next_seq_++});
}

void LogBuffer::format(std::ostream& os, const Entry& entry) {
    // Keep in lockstep with the default stderr sink in Logger::log above.
    os << "[" << entry.at.str() << "] " << to_string(entry.level) << " "
       << entry.component << ": " << entry.message << "\n";
}

void LogBuffer::flush_to(std::ostream& os) {
    for (const Entry& entry : entries_) format(os, entry);
    entries_.clear();
}

} // namespace tedge::sim
