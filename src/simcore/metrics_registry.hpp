// Named metrics for benches and components: counters, gauges, and value
// histograms registered by name, with a flat deterministic text dump.
//
// Like the Tracer, a registry is attached to a Simulation as a nullable
// pointer: components guard metric sites with
// `if (auto* m = sim.metrics())`, which costs one pointer load when no
// registry is installed. Names are dotted paths ("sdn.packet_ins",
// "phase.deploy.pull_ms"); the dump lists entries in name order so two runs
// at the same seed produce byte-identical output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "simcore/histogram.hpp"

namespace tedge::sim {

class MetricsRegistry {
public:
    class Counter {
    public:
        void inc(std::uint64_t delta = 1) { value_ += delta; }
        [[nodiscard]] std::uint64_t value() const { return value_; }

    private:
        std::uint64_t value_ = 0;
    };

    class Gauge {
    public:
        void set(double v) { value_ = v; }
        [[nodiscard]] double value() const { return value_; }

    private:
        double value_ = 0;
    };

    /// Get-or-create. References stay valid for the registry's lifetime.
    Counter& counter(const std::string& name) { return counters_[name]; }
    Gauge& gauge(const std::string& name) { return gauges_[name]; }
    /// Get-or-create; `lo`/`hi`/`bins` apply only on first registration.
    Histogram& histogram(const std::string& name, double lo, double hi,
                         std::size_t bins);

    [[nodiscard]] const Counter* find_counter(const std::string& name) const;
    [[nodiscard]] const Histogram* find_histogram(const std::string& name) const;

    [[nodiscard]] std::size_t size() const {
        return counters_.size() + gauges_.size() + histograms_.size();
    }

    /// Fold `other` into this registry: counters sum, histograms of matching
    /// shape merge bin-wise (shape mismatch throws), and gauges take the
    /// incoming value (last merge wins). Merging the per-domain registries of
    /// a sharded run in domain order yields a dump that is independent of
    /// shard grouping and thread count: summation is order-free and the
    /// gauge rule depends only on the (stable) domain order.
    void merge_from(const MetricsRegistry& other);

    /// Flat dump: one `name value` line per counter/gauge; histograms report
    /// count/underflow/overflow plus non-empty bins as `name[lo,hi) count`.
    void dump(std::ostream& os) const;
    [[nodiscard]] std::string dump() const;

private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace tedge::sim
