#include "simcore/tracer.hpp"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "simcore/simulation.hpp"

namespace tedge::sim {

Tracer::~Tracer() {
    detach();
}

void Tracer::attach(Simulation& sim) {
    detach();
    sim_ = &sim;
    if (enabled_) sim_->set_tracer(this);
}

void Tracer::detach() {
    if (sim_ != nullptr && sim_->tracer() == this) sim_->set_tracer(nullptr);
    sim_ = nullptr;
    enabled_ = false;
    current_ = {};
}

void Tracer::enable() {
    if (sim_ == nullptr) throw std::logic_error("Tracer::enable before attach");
    enabled_ = true;
    sim_->set_tracer(this);
}

void Tracer::disable() {
    enabled_ = false;
    if (sim_ != nullptr && sim_->tracer() == this) sim_->set_tracer(nullptr);
}

TraceSpan* Tracer::find(SpanId id) {
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
}

const TraceSpan* Tracer::find(SpanId id) const {
    if (id == 0 || id > spans_.size()) return nullptr;
    return &spans_[id - 1];
}

TraceContext Tracer::context_of(SpanId id) const {
    const TraceSpan* span = find(id);
    return span == nullptr ? TraceContext{} : TraceContext{span->request, id};
}

SpanId Tracer::begin(std::string name) {
    return begin(std::move(name), current_);
}

SpanId Tracer::begin(std::string name, TraceContext parent) {
    if (!enabled_) return 0;
    if (spans_.size() >= max_spans_) {
        ++dropped_;
        return 0;
    }
    TraceSpan span;
    span.id = spans_.size() + 1;
    span.parent = parent.span;
    span.request = parent.request;
    span.name = std::move(name);
    span.start = sim_->now();
    span.end = span.start;
    span.open = true;
    spans_.push_back(std::move(span));
    return spans_.back().id;
}

void Tracer::end(SpanId id) {
    TraceSpan* span = find(id);
    if (span == nullptr || !span->open) return;
    span->end = sim_->now();
    span->open = false;
}

void Tracer::instant(std::string name) {
    instant(std::move(name), current_);
}

void Tracer::instant(std::string name, TraceContext parent) {
    const SpanId id = begin(std::move(name), parent);
    if (id == 0) return;
    TraceSpan* span = find(id);
    span->open = false;
    span->instant = true;
}

void Tracer::arg(SpanId id, std::string key, std::string value) {
    TraceSpan* span = find(id);
    if (span == nullptr) return;
    span->args.emplace_back(std::move(key), std::move(value));
}

EventQueue::Callback Tracer::propagate(EventQueue::Callback cb) {
    if (current_.empty()) return cb;
    return [this, ctx = current_, cb = std::move(cb)]() mutable {
        const TraceContext saved = current_;
        current_ = ctx;
        cb();
        current_ = saved;
    };
}

void Tracer::clear() {
    spans_.clear();
    dropped_ = 0;
    current_ = {};
}

namespace {

void json_escape(std::ostream& os, const std::string& s) {
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    os << ' '; // control chars never appear in span names
                } else {
                    os << c;
                }
        }
    }
}

/// Nanoseconds as microseconds with exact 3-decimal integer formatting
/// (no floating point, so output is bit-identical across platforms).
void json_us(std::ostream& os, std::int64_t ns) {
    if (ns < 0) { os << '-'; ns = -ns; }
    os << ns / 1000 << '.';
    const auto frac = ns % 1000;
    os << static_cast<char>('0' + frac / 100) << static_cast<char>('0' + frac / 10 % 10)
       << static_cast<char>('0' + frac % 10);
}

} // namespace

void Tracer::write_events(std::ostream& os, std::uint64_t pid, bool& first) const {
    for (const auto& span : spans_) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"";
        json_escape(os, span.name);
        os << "\",\"cat\":\"tedge\",\"ph\":\"" << (span.instant ? 'i' : 'X')
           << "\",\"pid\":" << pid << ",\"tid\":" << span.request << ",\"ts\":";
        json_us(os, span.start.ns());
        if (span.instant) {
            os << ",\"s\":\"t\"";
        } else {
            // Open spans extend to "now"; after detach() the clock is gone,
            // so they export with zero duration (flagged "open" below).
            const SimTime end =
                span.open ? (sim_ != nullptr ? sim_->now() : span.start) : span.end;
            os << ",\"dur\":";
            json_us(os, (end - span.start).ns());
        }
        os << ",\"args\":{\"span\":" << span.id << ",\"parent\":" << span.parent;
        for (const auto& [key, value] : span.args) {
            os << ",\"";
            json_escape(os, key);
            os << "\":\"";
            json_escape(os, value);
            os << '"';
        }
        if (span.open) os << ",\"open\":\"true\"";
        os << "}}";
    }
}

void Tracer::write_chrome_trace(std::ostream& os) const {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    write_events(os, 1, first);
    os << "],\"otherData\":{\"dropped\":" << dropped_ << "}}\n";
}

void Tracer::write_merged_chrome_trace(std::ostream& os,
                                       const std::vector<const Tracer*>& tracers) {
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    std::uint64_t dropped = 0;
    for (std::size_t i = 0; i < tracers.size(); ++i) {
        tracers[i]->write_events(os, i + 1, first);
        dropped += tracers[i]->dropped_;
    }
    os << "],\"otherData\":{\"dropped\":" << dropped << "}}\n";
}

std::string Tracer::chrome_trace() const {
    std::ostringstream os;
    write_chrome_trace(os);
    return os.str();
}

} // namespace tedge::sim
