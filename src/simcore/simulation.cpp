#include "simcore/simulation.hpp"

#include <stdexcept>

#include "simcore/tracer.hpp"

namespace tedge::sim {

EventHandle Simulation::schedule(SimTime delay, EventQueue::Callback cb, bool daemon) {
    if (delay < SimTime::zero()) throw std::invalid_argument("negative delay");
    if (tracer_ != nullptr) cb = tracer_->propagate(std::move(cb));
    note_scheduled(now_ + delay, daemon);
    return queue_.push(now_ + delay, std::move(cb), daemon);
}

EventHandle Simulation::schedule_at(SimTime at, EventQueue::Callback cb, bool daemon) {
    if (at < now_) throw std::invalid_argument("schedule_at in the past");
    if (tracer_ != nullptr) cb = tracer_->propagate(std::move(cb));
    note_scheduled(at, daemon);
    return queue_.push(at, std::move(cb), daemon);
}

namespace {

// Self-rescheduling tick: each firing enqueues a copy of itself. A copyable
// struct instead of a lambda capturing a shared_ptr to its own std::function
// -- that classic formulation is a reference cycle and leaks the closure.
// Captures the kernel by pointer (kernel is pinned: non-movable, outlives
// all events).
struct PeriodicTick {
    Simulation* sim;
    SimTime period;
    std::function<void()> cb;
    std::shared_ptr<bool> stop;
    bool daemon;

    void operator()() {
        if (*stop) return;
        cb();
        if (*stop) return;
        sim->schedule(period, PeriodicTick{*this}, daemon);
    }
};

} // namespace

Simulation::PeriodicHandle Simulation::schedule_periodic(SimTime period,
                                                         std::function<void()> cb,
                                                         bool daemon) {
    if (period <= SimTime::zero()) throw std::invalid_argument("non-positive period");
    PeriodicHandle handle;
    handle.stop_ = std::make_shared<bool>(false);
    schedule(period, PeriodicTick{this, period, std::move(cb), handle.stop_, daemon},
             daemon);
    return handle;
}

void Simulation::execute_next() {
    auto [at, cb] = queue_.pop();
    now_ = at;
    cb();
    ++executed_;
}

std::uint64_t Simulation::run() {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (queue_.has_user_events() && !stop_requested_) {
        execute_next();
        ++n;
    }
    return n;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!queue_.empty() && !stop_requested_ && queue_.next_time() <= deadline) {
        execute_next();
        ++n;
    }
    if (!stop_requested_ && now_ < deadline) now_ = deadline;
    return n;
}

std::uint64_t Simulation::run_while(const std::function<bool()>& pred) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!stop_requested_ && queue_.has_user_events() && pred()) {
        execute_next();
        ++n;
    }
    return n;
}

std::uint64_t Simulation::run_window(SimTime end, bool require_user) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!queue_.empty() && !stop_requested_ &&
           (!require_user || queue_.has_user_events()) &&
           queue_.next_time() < end) {
        execute_next();
        ++n;
    }
    return n;
}

std::uint64_t Simulation::run_window_fenced(SimTime end, SimTime fence) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!queue_.empty() && !stop_requested_) {
        const SimTime next = queue_.next_time();
        if (next >= end) break;
        // The daemon peek runs only past the fence — the common case (user
        // work ahead of the fence) stays a single timestamp compare.
        if (next > fence && queue_.next_is_daemon()) break;
        execute_next();
        ++n;
    }
    return n;
}

std::uint64_t Simulation::run_until_idle_or(SimTime deadline) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!stop_requested_ && queue_.has_user_events() &&
           queue_.next_time() <= deadline) {
        execute_next();
        ++n;
    }
    if (!stop_requested_ && queue_.has_user_events() && now_ < deadline) {
        now_ = deadline;
    }
    return n;
}

} // namespace tedge::sim
