#include "simcore/simulation.hpp"

#include <stdexcept>

namespace tedge::sim {

EventHandle Simulation::schedule(SimTime delay, EventQueue::Callback cb) {
    if (delay < SimTime::zero()) throw std::invalid_argument("negative delay");
    return queue_.push(now_ + delay, std::move(cb));
}

EventHandle Simulation::schedule_at(SimTime at, EventQueue::Callback cb) {
    if (at < now_) throw std::invalid_argument("schedule_at in the past");
    return queue_.push(at, std::move(cb));
}

Simulation::PeriodicHandle Simulation::schedule_periodic(SimTime period,
                                                         EventQueue::Callback cb) {
    if (period <= SimTime::zero()) throw std::invalid_argument("non-positive period");
    PeriodicHandle handle;
    handle.stop_ = std::make_shared<bool>(false);
    auto stop = handle.stop_;
    // Self-rescheduling closure; captures the kernel by pointer (kernel is
    // pinned: non-movable, outlives all events).
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [this, period, cb = std::move(cb), stop, tick]() {
        if (*stop) return;
        cb();
        if (*stop) return;
        schedule(period, *tick);
    };
    schedule(period, *tick);
    return handle;
}

std::uint64_t Simulation::run() {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!queue_.empty() && !stop_requested_) {
        auto [at, cb] = queue_.pop();
        now_ = at;
        cb();
        ++n;
        ++executed_;
    }
    return n;
}

std::uint64_t Simulation::run_until(SimTime deadline) {
    stop_requested_ = false;
    std::uint64_t n = 0;
    while (!queue_.empty() && !stop_requested_ && queue_.next_time() <= deadline) {
        auto [at, cb] = queue_.pop();
        now_ = at;
        cb();
        ++n;
        ++executed_;
    }
    if (!stop_requested_ && now_ < deadline) now_ = deadline;
    return n;
}

} // namespace tedge::sim
