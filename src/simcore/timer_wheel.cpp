// Cold path of the timing wheel: staging the earliest bucket when the
// current instant's group has drained. Runs once per distinct timestamp (not
// once per event), so it lives out of line; the per-event paths are inline in
// the header.
#include "simcore/timer_wheel.hpp"

namespace tedge::sim {

void TimerWheel::stage(int level, std::size_t idx) {
    Bucket& bucket = buckets_[level][idx];
    clear_bucket_bit(level, idx);
    // ready_ is empty here (pop_min only advances after draining it); the
    // swap steals the bucket's storage and donates ready_'s retained
    // capacity to the bucket's next tenant.
    ready_.swap(bucket);
    ready_head_ = 0;
    if (ready_.size() == 1) {
        // The common steady-state shape -- one timer per instant -- needs no
        // min scan, no re-filing, and no sort.
        cur_ = ready_.front().at;
        return;
    }
    if (level > 0) {
        // Higher-level buckets span a timestamp range: the minimum becomes
        // the new reference instant and everything later re-files. A
        // bucket-mate shares all bits at and above this level's field with
        // the new cur_, so it lands strictly below `level` -- each entry
        // cascades at most kLevels times over its lifetime.
        std::uint64_t best = ready_.front().at;
        for (const Entry& e : ready_) best = std::min(best, e.at);
        cur_ = best;
        std::size_t w = 0;
        for (const Entry& e : ready_) {
            if (e.at == cur_) {
                ready_[w++] = e;
            } else {
                file(e);
            }
        }
        ready_.resize(w);
    } else {
        // A level-0 bucket holds exactly one timestamp.
        cur_ = ready_.front().at;
    }
    std::sort(ready_.begin(), ready_.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
}

} // namespace tedge::sim
