// Cold path of the timing wheel: staging the earliest bucket when the
// current instant's group has drained. Runs once per distinct timestamp (not
// once per event), so it lives out of line; the per-event paths are inline in
// the header.
#include "simcore/timer_wheel.hpp"

namespace tedge::sim {

void TimerWheel::stage(int level, std::size_t idx) {
    Bucket& bucket = buckets_[level][idx];
    clear_bucket_bit(level, idx);
    ++cascade_.stages;
    cascade_.max_stage_burst =
        std::max(cascade_.max_stage_burst, std::uint64_t{bucket.size()});
    // ready_ is empty here (pop_min only advances after draining it). Copy
    // the bucket out instead of stealing its storage: a swap would migrate
    // vector capacity away from the bucket, so periodic tenants (expiry
    // scans, epoch ticks) that re-file into the same buckets every rotation
    // would hit the allocator on each cascade -- the source of the wheel's
    // tail-latency spikes at small queue sizes. With copy + clear() both
    // ready_ and every bucket grow once to their high-water mark and staging
    // is allocation-free from then on.
    ready_.assign(bucket.begin(), bucket.end());
    bucket.clear();
    ready_head_ = 0;
    if (ready_.size() == 1) {
        // The common steady-state shape -- one timer per instant -- needs no
        // min scan, no re-filing, and no sort.
        cur_ = ready_.front().at;
        return;
    }
    if (level > 0) {
        // Higher-level buckets span a timestamp range: the minimum becomes
        // the new reference instant and everything later re-files. A
        // bucket-mate shares all bits at and above this level's field with
        // the new cur_, so it lands strictly below `level` -- each entry
        // cascades at most kLevels times over its lifetime.
        std::uint64_t best = ready_.front().at;
        for (const Entry& e : ready_) best = std::min(best, e.at);
        cur_ = best;
        std::size_t w = 0;
        for (const Entry& e : ready_) {
            if (e.at == cur_) {
                ready_[w++] = e;
            } else {
                file(e);
                ++cascade_.refiled;
            }
        }
        ready_.resize(w);
    } else {
        // A level-0 bucket holds exactly one timestamp.
        cur_ = ready_.front().at;
    }
    std::sort(ready_.begin(), ready_.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
}

} // namespace tedge::sim
