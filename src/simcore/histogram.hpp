// Histograms: fixed-width value histograms and time-binned event series.
//
// TimeSeriesBins reproduces the paper's figs. 9/10 (events per time bucket
// over the five-minute trace); Histogram supports value distributions.
// Both can render a compact ASCII bar chart for the bench harness output.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace tedge::sim {

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// saturating under/overflow bins.
///
/// Edge semantics: each bin is half-open [bin_lo, bin_hi). A sample with
/// x < lo counts as underflow; x >= hi (including x == hi exactly) counts
/// as overflow -- neither touches the bins, but both count toward total().
/// Samples that round onto a bin boundary from below stay in the lower bin
/// (the index is clamped to bins-1 to absorb floating-point edge cases).
class Histogram {
public:
    Histogram(double lo, double hi, std::size_t bins);

    void add(double x);

    /// Fold another histogram of the same shape (lo, hi, bins) into this one
    /// by summing bin/underflow/overflow counts. Throws on shape mismatch.
    /// Used by the sharded kernel's deterministic per-domain metric merge.
    void merge(const Histogram& other);

    [[nodiscard]] double lo() const { return lo_; }
    [[nodiscard]] double hi() const { return hi_; }
    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
    [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] double bin_lo(std::size_t i) const;
    [[nodiscard]] double bin_hi(std::size_t i) const;

    /// Multi-line ASCII rendering, one row per bin.
    [[nodiscard]] std::string ascii(std::size_t width = 50) const;

private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/// Events bucketed by simulation time; bucket width is fixed.
class TimeSeriesBins {
public:
    TimeSeriesBins(SimTime horizon, SimTime bin_width);

    /// Record one event at time `t`. Out-of-range events are clamped, never
    /// dropped, so totals stay exact: t < 0 counts in bin 0, and
    /// t >= horizon (including t == horizon exactly) counts in the last bin.
    void add(SimTime t, std::uint64_t weight = 1);

    [[nodiscard]] std::size_t bins() const { return counts_.size(); }
    [[nodiscard]] std::uint64_t bin_count(std::size_t i) const { return counts_.at(i); }
    [[nodiscard]] SimTime bin_start(std::size_t i) const;
    [[nodiscard]] SimTime bin_width() const { return bin_width_; }
    [[nodiscard]] std::uint64_t total() const { return total_; }
    [[nodiscard]] std::uint64_t max_bin() const;

    /// Per-bin counts (for tests / plotting).
    [[nodiscard]] const std::vector<std::uint64_t>& counts() const { return counts_; }

    /// ASCII rendering with seconds on the left axis.
    [[nodiscard]] std::string ascii(std::size_t width = 50) const;

private:
    SimTime bin_width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace tedge::sim
