#include "simcore/aggregate_epoch.hpp"

#include <algorithm>
#include <stdexcept>

namespace tedge::sim {

AggregateEpoch::AggregateEpoch(Simulation& sim, SimTime period)
    : sim_(sim), period_(period) {
    if (period <= SimTime::zero()) {
        throw std::invalid_argument("AggregateEpoch: non-positive period");
    }
}

AggregateEpoch::~AggregateEpoch() = default;

SimTime AggregateEpoch::floor(SimTime t) const {
    if (t <= SimTime::zero()) return SimTime::zero();
    return SimTime{(t.ns() / period_.ns()) * period_.ns()};
}

SimTime AggregateEpoch::ceil(SimTime t) const {
    if (t <= SimTime::zero()) return SimTime::zero();
    const std::int64_t p = period_.ns();
    return SimTime{((t.ns() + p - 1) / p) * p};
}

SimTime AggregateEpoch::next_after(SimTime t) const {
    const std::int64_t p = period_.ns();
    const std::int64_t k = t.ns() < 0 ? 0 : t.ns() / p;
    return SimTime{(k + 1) * p};
}

std::size_t AggregateEpoch::subscribe(Subscriber fn) {
    const std::size_t id = next_id_++;
    subscribers_.emplace_back(id, std::move(fn));
    return id;
}

void AggregateEpoch::unsubscribe(std::size_t id) {
    subscribers_.erase(
        std::remove_if(subscribers_.begin(), subscribers_.end(),
                       [id](const auto& s) { return s.first == id; }),
        subscribers_.end());
}

void AggregateEpoch::request_ticks_until(SimTime until) {
    const SimTime last_tick = floor(until);
    if (last_tick > horizon_) horizon_ = last_tick;
    arm();
}

void AggregateEpoch::arm() {
    if (armed_) return;
    const SimTime next = next_after(sim_.now());
    if (next > horizon_) return; // horizon exhausted: go quiet
    armed_ = true;
    sim_.schedule_at(next, [this, next] { fire(next); }, /*daemon=*/true);
}

void AggregateEpoch::fire(SimTime tick) {
    armed_ = false;
    ++ticks_fired_;
    // Subscribers may promote new aggregates (extending the horizon) from
    // inside the tick; re-arming happens after the loop so the extension is
    // honoured. Index loop: subscribe() from inside a tick is allowed.
    for (std::size_t i = 0; i < subscribers_.size(); ++i) {
        subscribers_[i].second(tick);
    }
    arm();
}

} // namespace tedge::sim
