// EdgePlatform: the top-level facade that assembles a complete transparent
// edge deployment -- simulation kernel, topology, ingress switch, TCP model,
// registries, edge clusters, the cloud fallback, the annotation pipeline,
// and the SDN controller. Examples and benches build their scenarios
// through this API.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/app_profile.hpp"
#include "core/config.hpp"
#include "core/deployment.hpp"
#include "core/port_prober.hpp"
#include "net/tcp.hpp"
#include "orchestrator/docker_cluster.hpp"
#include "orchestrator/k8s/k8s_cluster.hpp"
#include "serverless/faas_cluster.hpp"
#include "sdn/annotator.hpp"
#include "sdn/controller.hpp"
#include "sdn/service_registry.hpp"
#include "sdn/session_plane.hpp"
#include "simcore/random.hpp"

namespace tedge::core {

struct EdgePlatformConfig {
    std::uint64_t seed = 42;
    net::OvsSwitchConfig ingress;
    net::TcpNetConfig tcp;
    PortProberConfig prober;
    sdn::AnnotatorConfig annotator;
};

class EdgePlatform {
public:
    /// Self-hosted: the platform owns its simulation kernel.
    explicit EdgePlatform(EdgePlatformConfig config = {});

    /// Hosted: build the platform on an external kernel -- a sim::Domain's
    /// simulation inside a ShardedSimulation, or any caller-owned kernel.
    /// `sim` must outlive the platform.
    explicit EdgePlatform(sim::Simulation& sim, EdgePlatformConfig config = {});

    // --- topology building ---------------------------------------------
    [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
    [[nodiscard]] net::Topology& topology() { return topo_; }
    [[nodiscard]] net::NodeId ingress_node() const { return switch_node_; }
    [[nodiscard]] net::OvsSwitch& ingress() { return *switch_; }
    [[nodiscard]] net::TcpNet& network() { return *tcp_; }
    [[nodiscard]] net::EndpointDirectory& endpoints() { return endpoints_; }
    [[nodiscard]] sim::Rng& rng() { return rng_; }

    /// Add a secondary ingress switch (another gNB/cell) linked to the
    /// primary ingress over a backbone link. The controller attaches to it
    /// when started (or immediately if already running).
    net::OvsSwitch& add_ingress(const std::string& name,
                                sim::SimTime backbone_latency = sim::microseconds(200),
                                sim::DataRate rate = sim::gbit_per_sec(10));

    /// Add a client host linked to the ingress switch.
    net::NodeId add_client(const std::string& name, net::Ipv4 ip,
                           sim::SimTime link_latency = sim::microseconds(300),
                           sim::DataRate rate = sim::gbit_per_sec(1));

    /// Link an existing client to another ingress switch (overlapping
    /// cells) and/or hand it over: its next flows enter there.
    void connect_client_to_ingress(net::NodeId client, net::OvsSwitch& ingress,
                                   sim::SimTime link_latency = sim::microseconds(300),
                                   sim::DataRate rate = sim::gbit_per_sec(1));
    void handover_client(net::NodeId client, net::OvsSwitch& ingress);

    /// Schedule a handover as a platform event at absolute time `at` --
    /// mobility traces (workload::MobilityStream) drive the platform through
    /// this. The client must already be connected to `ingress` (overlapping
    /// cells: connect_client_to_ingress up front, handovers later).
    void schedule_handover(net::NodeId client, net::OvsSwitch& ingress,
                           sim::SimTime at);

    /// The session plane: source of truth for client attachments. Created
    /// with the platform; shared with the controller when one starts.
    [[nodiscard]] sdn::SessionPlane& sessions() { return *sessions_; }

    /// Add a server host linked to the ingress switch (edge cluster homes).
    net::NodeId add_edge_host(const std::string& name, net::Ipv4 ip,
                              std::uint32_t cores,
                              sim::SimTime link_latency = sim::microseconds(150),
                              sim::DataRate rate = sim::gbit_per_sec(10));

    /// Add the cloud node (higher latency). Registered services fall back
    /// here; their addresses become IP aliases of this node.
    net::NodeId add_cloud(const std::string& name = "cloud",
                          sim::SimTime link_latency = sim::milliseconds(18),
                          sim::DataRate rate = sim::gbit_per_sec(10));
    [[nodiscard]] net::NodeId cloud_node() const { return cloud_; }

    // --- registries & app catalog ---------------------------------------
    container::Registry& add_registry(const container::RegistryProfile& profile);
    [[nodiscard]] orchestrator::RegistryDirectory& registries() { return registry_dir_; }

    /// Teach the platform the behavioural profile of an image.
    void add_app_profile(const std::string& image, container::AppProfile profile);
    [[nodiscard]] const container::AppProfile*
    profile_for(const container::ImageRef& ref) const;

    // --- clusters ---------------------------------------------------------
    orchestrator::DockerCluster&
    add_docker_cluster(const std::string& name, net::NodeId node,
                       orchestrator::DockerClusterConfig config = {},
                       container::RuntimeCostModel runtime_costs = {},
                       container::PullerConfig puller = {});

    orchestrator::k8s::K8sCluster&
    add_k8s_cluster(const std::string& name, std::vector<net::NodeId> nodes,
                    orchestrator::k8s::K8sClusterConfig config = {});

    serverless::FaasCluster&
    add_faas_cluster(const std::string& name, net::NodeId node,
                     serverless::FaasClusterConfig config = {});

    [[nodiscard]] const std::vector<orchestrator::Cluster*>& clusters() const {
        return cluster_ptrs_;
    }
    [[nodiscard]] orchestrator::Cluster* cluster(const std::string& name) const;

    // --- services ---------------------------------------------------------
    /// Annotate + register a service definition; also provisions the cloud
    /// instance (alias IP + always-on endpoint) when a cloud node exists.
    const sdn::AnnotatedService& register_service(const net::ServiceAddress& address,
                                                  const std::string& yaml_text);

    [[nodiscard]] sdn::ServiceRegistry& service_registry() { return services_; }
    [[nodiscard]] const sdn::Annotator& annotator() const { return *annotator_; }

    // --- controller --------------------------------------------------------
    /// Create the controller on `controller_host` and attach it to the
    /// ingress switch. Must be called after clusters are added.
    sdn::Controller& start_controller(net::NodeId controller_host,
                                      sdn::ControllerConfig config = {});

    [[nodiscard]] sdn::Controller& controller() { return *controller_; }
    [[nodiscard]] DeploymentEngine& deployment_engine() { return *engine_; }
    [[nodiscard]] PortProber& prober() { return *prober_; }

    // --- convenience --------------------------------------------------------
    /// Issue an HTTP request from `client` to a registered cloud address.
    void http_request(net::NodeId client, const net::ServiceAddress& address,
                      sim::Bytes request_size,
                      std::function<void(const net::HttpResult&)> done);

private:
    void init();
    void provision_cloud_service(const sdn::AnnotatedService& service);

    EdgePlatformConfig config_;
    std::unique_ptr<sim::Simulation> owned_sim_;  ///< null when hosted
    sim::Simulation* sim_;
    sim::Rng rng_;
    net::Topology topo_;
    net::EndpointDirectory endpoints_;
    net::NodeId switch_node_;
    std::unique_ptr<net::OvsSwitch> switch_;
    std::vector<std::unique_ptr<net::OvsSwitch>> extra_switches_;
    std::unique_ptr<net::TcpNet> tcp_;
    /// Declared after tcp_ (the transport holds a resolver pointer into it)
    /// and before controller_ (which registers a handover callback).
    std::unique_ptr<sdn::SessionPlane> sessions_;
    net::NodeId cloud_;
    orchestrator::RegistryDirectory registry_dir_;
    std::vector<std::unique_ptr<container::Registry>> registries_;
    std::map<std::string, container::AppProfile> app_catalog_;
    std::vector<std::unique_ptr<orchestrator::Cluster>> clusters_;
    std::vector<orchestrator::Cluster*> cluster_ptrs_;
    std::unique_ptr<sdn::Annotator> annotator_;
    sdn::ServiceRegistry services_;
    std::unique_ptr<PortProber> prober_;
    std::unique_ptr<DeploymentEngine> engine_;
    std::unique_ptr<sdn::Controller> controller_;
};

} // namespace tedge::core
