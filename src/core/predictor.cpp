#include "core/predictor.hpp"

#include <algorithm>

#include "sdn/flow_memory.hpp"

namespace tedge::core {

PredictiveDeployer::PredictiveDeployer(sim::Simulation& sim,
                                       DeploymentEngine& engine,
                                       orchestrator::Cluster& target,
                                       const sdn::ServiceRegistry& registry,
                                       PredictorConfig config)
    : sim_(sim), engine_(engine), target_(target), registry_(registry),
      config_(config), log_(sim, "predictor") {
    ticker_ = sim_.schedule_periodic(config_.period, [this] { evaluate(); },
                                     /*daemon=*/true);
}

PredictiveDeployer::~PredictiveDeployer() {
    ticker_.cancel();
}

void PredictiveDeployer::attach_flow_memory(sdn::FlowMemory& memory) {
    attach_flow_memory(memory, target_.name());
}

void PredictiveDeployer::attach_flow_memory(sdn::FlowMemory& memory,
                                            std::string cluster_name) {
    flow_memory_ = &memory;
    flow_cluster_ = std::move(cluster_name);
}

void PredictiveDeployer::observe(const net::ServiceAddress& address) {
    const auto* service = registry_.lookup(address);
    if (service == nullptr) return;
    auto& entry = entries_[service->spec.name];
    entry.service = service->spec.name;
    entry.pending += 1.0;
}

double PredictiveDeployer::score(const std::string& service_name) const {
    const auto it = entries_.find(service_name);
    return it == entries_.end() ? 0.0 : it->second.score;
}

std::vector<std::string> PredictiveDeployer::predeployed() const {
    std::vector<std::string> out;
    for (const auto& [name, entry] : entries_) {
        if (entry.predeployed) out.push_back(name);
    }
    return out;
}

void PredictiveDeployer::evaluate() {
    // With a FlowMemory attached, fold in the fluid-cohort admission rates:
    // flows aggregated away by hybrid fidelity never hit observe(), but the
    // cohort EWMA knows their arrival rate. Seed entries for services whose
    // demand is *only* visible through cohorts so they can rank too.
    if (flow_memory_ != nullptr) {
        for (const auto& address : registry_.addresses()) {
            const auto* service = registry_.lookup(address);
            if (service == nullptr) continue;
            const std::string& name = service->spec.name;
            const double rate =
                flow_memory_->fluid_rate_per_s(name, flow_cluster_);
            if (rate <= 0.0 && entries_.find(name) == entries_.end()) continue;
            auto& entry = entries_[name];
            entry.service = name;
            entry.pending +=
                config_.rate_weight * rate * config_.period.seconds();
        }
    }

    // EWMA update: score <- decay * score + arrivals-this-period.
    for (auto& [name, entry] : entries_) {
        entry.score = config_.decay * entry.score + entry.pending;
        entry.pending = 0.0;
    }

    // Rank by score.
    std::vector<Entry*> ranked;
    ranked.reserve(entries_.size());
    for (auto& [name, entry] : entries_) ranked.push_back(&entry);
    std::sort(ranked.begin(), ranked.end(), [](const Entry* a, const Entry* b) {
        if (a->score != b->score) return a->score > b->score;
        return a->service < b->service;  // deterministic tie-break
    });

    // Pre-deploy the hot top-K; scale down decayed entries.
    for (std::size_t rank = 0; rank < ranked.size(); ++rank) {
        Entry& entry = *ranked[rank];
        const bool should_run =
            rank < config_.top_k && entry.score >= config_.min_score;
        if (should_run && !entry.predeployed) {
            const auto* service = registry_.find_by_name(entry.service);
            if (service == nullptr) continue;
            entry.predeployed = true;
            ++deploys_;
            log_.info([&] { return "pre-deploying " + entry.service; });
            engine_.ensure(target_, service->spec, {},
                           [this, name = entry.service](
                               bool ok, const orchestrator::InstanceInfo&) {
                if (!ok) {
                    log_.warn("pre-deploy failed for " + name);
                    entries_[name].predeployed = false;
                }
            });
        } else if (!should_run && entry.predeployed &&
                   entry.score < config_.min_score) {
            entry.predeployed = false;
            ++downs_;
            log_.info([&] { return "scaling down cold " + entry.service; });
            engine_.scale_down(target_, entry.service, [](bool) {});
        }
    }
}

} // namespace tedge::core
