// Proactive (predictive) deployment.
//
// The paper's introduction argues that prediction can pre-deploy services
// "just in time" but can never reach a 100% hit rate -- which is exactly why
// on-demand deployment is needed as the fallback. This component provides
// the other half of that story: an exponentially-weighted popularity
// predictor that watches request arrivals and keeps the top-K services
// pre-deployed (and warm) in a target cluster, scaling down services whose
// popularity decays below a threshold.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "sdn/service_registry.hpp"
#include "simcore/logging.hpp"

namespace tedge::sdn {
class FlowMemory;
} // namespace tedge::sdn

namespace tedge::core {

struct PredictorConfig {
    /// Re-evaluate the top-K set every period.
    sim::SimTime period = sim::seconds(10);
    /// EWMA decay factor per period (0 < decay < 1; higher = longer memory).
    double decay = 0.7;
    /// Number of services to keep pre-deployed.
    std::size_t top_k = 4;
    /// Scores below this are considered cold; pre-deployed services whose
    /// score decays under it are scaled down.
    double min_score = 0.5;
    /// Weight of the flow-memory cohort-rate signal when a FlowMemory is
    /// attached: each cycle a service's arrivals are augmented by
    /// `rate_weight * fluid_rate_per_s(service, cluster) * period`, i.e. the
    /// fluid flows the hybrid-fidelity aggregation admitted on the service's
    /// behalf but that never reached observe() as individual requests.
    double rate_weight = 1.0;
};

class PredictiveDeployer {
public:
    PredictiveDeployer(sim::Simulation& sim, DeploymentEngine& engine,
                       orchestrator::Cluster& target,
                       const sdn::ServiceRegistry& registry,
                       PredictorConfig config = {});
    ~PredictiveDeployer();

    /// Feed an observed request for a registered service address. Typically
    /// wired to the workload generator or the dispatcher's packet-in path.
    void observe(const net::ServiceAddress& address);

    /// Blend the hybrid-fidelity cohort admission-rate EWMAs into the
    /// popularity score (see PredictorConfig::rate_weight). Cohorts are read
    /// for `cluster_name` (defaults to the target cluster's name). Services
    /// with active cohorts are picked up even if never observe()d directly.
    void attach_flow_memory(sdn::FlowMemory& memory);
    void attach_flow_memory(sdn::FlowMemory& memory, std::string cluster_name);

    /// Current popularity score of a service (0 when unknown).
    [[nodiscard]] double score(const std::string& service_name) const;

    /// Services currently held pre-deployed by the predictor.
    [[nodiscard]] std::vector<std::string> predeployed() const;

    [[nodiscard]] std::uint64_t deploys_triggered() const { return deploys_; }
    [[nodiscard]] std::uint64_t scale_downs_triggered() const { return downs_; }

    /// Run one prediction cycle now (also runs periodically).
    void evaluate();

private:
    struct Entry {
        std::string service;
        double score = 0.0;
        double pending = 0.0;  ///< arrivals since the last decay step
        bool predeployed = false;
    };

    sim::Simulation& sim_;
    DeploymentEngine& engine_;
    orchestrator::Cluster& target_;
    const sdn::ServiceRegistry& registry_;
    sdn::FlowMemory* flow_memory_ = nullptr;
    std::string flow_cluster_;  ///< cohort key when flow_memory_ is attached
    PredictorConfig config_;
    sim::Logger log_;
    std::map<std::string, Entry> entries_;  ///< by service name
    sim::Simulation::PeriodicHandle ticker_;
    std::uint64_t deploys_ = 0;
    std::uint64_t downs_ = 0;
};

} // namespace tedge::core
