#include "core/autoscaler.hpp"

#include <cmath>

namespace tedge::core {

ReplicaAutoscaler::ReplicaAutoscaler(sim::Simulation& sim, DeploymentEngine& engine,
                                     orchestrator::Cluster& cluster,
                                     sdn::FlowMemory& flows,
                                     const sdn::ServiceRegistry& registry,
                                     AutoscalerConfig config)
    : sim_(sim), engine_(engine), cluster_(cluster), flows_(flows),
      registry_(registry), config_(config), log_(sim, "autoscaler") {
    ticker_ = sim_.schedule_periodic(config_.period, [this] { evaluate(); },
                                     /*daemon=*/true);
}

ReplicaAutoscaler::~ReplicaAutoscaler() {
    ticker_.cancel();
}

int ReplicaAutoscaler::current_replicas(const std::string& service) const {
    return static_cast<int>(cluster_.instances(service).size());
}

void ReplicaAutoscaler::evaluate() {
    for (const auto& address : registry_.addresses()) {
        const auto* service = registry_.lookup(address);
        if (service == nullptr) continue;
        const std::string& name = service->spec.name;
        const int have = current_replicas(name);
        if (have == 0) continue; // on-demand deployment owns the 0 -> 1 step

        const std::size_t load = flows_.flows_for_service(name);
        const int want = std::min<int>(
            config_.max_replicas,
            static_cast<int>(std::ceil(
                static_cast<double>(load) /
                static_cast<double>(config_.flows_per_replica))));

        auto& state = states_[name];
        if (want > have) {
            state.below_target_count = 0;
            ++ups_;
            log_.info([&] {
                return "scaling up " + name + " to " + std::to_string(have + 1) +
                       " replicas (load " + std::to_string(load) + ")";
            });
            // One replica per period: gradual, like the HPA's behaviour.
            // (The engine's ensure() would short-circuit on the existing
            // ready replica, so the N -> N+1 step goes to the cluster
            // directly.)
            cluster_.scale_up(name, [](bool) {});
        } else if (want < have) {
            if (++state.below_target_count >= config_.scale_down_patience) {
                state.below_target_count = 0;
                ++downs_;
                log_.info([&] {
                    return "scaling down " + name + " (load " +
                           std::to_string(load) + ")";
                });
                engine_.scale_down(cluster_, name, [](bool) {});
            }
        } else {
            state.below_target_count = 0;
        }
    }
}

} // namespace tedge::core
