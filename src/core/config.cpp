#include "core/config.hpp"

#include <stdexcept>

#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace tedge::core {
namespace {

sim::SimTime seconds_or(const yamlite::Node* node, sim::SimTime fallback) {
    if (node == nullptr) return fallback;
    if (const auto v = node->as_int()) return sim::seconds(*v);
    return fallback;
}

} // namespace

sdn::ControllerConfig parse_controller_config(const std::string& yaml_text) {
    sdn::ControllerConfig config;
    const auto doc = yamlite::parse(yaml_text);
    if (doc.is_null()) return config;
    if (!doc.is_map()) throw std::invalid_argument("controller config must be a map");

    if (const auto* scheduler = doc.find("scheduler")) {
        if (const auto* name = scheduler->find("name")) {
            config.scheduler = name->as_str(config.scheduler);
        }
        if (const auto* params = scheduler->find("params")) {
            config.scheduler_params = *params;
        }
        if (!sdn::SchedulerRegistry::instance().contains(config.scheduler)) {
            throw std::invalid_argument("unknown scheduler: " + config.scheduler);
        }
    }
    if (const auto* memory = doc.find("flow_memory")) {
        config.flow_memory.idle_timeout =
            seconds_or(memory->find("idle_timeout_s"), config.flow_memory.idle_timeout);
        config.flow_memory.scan_period =
            seconds_or(memory->find("scan_period_s"), config.flow_memory.scan_period);
    }
    if (const auto* dispatcher = doc.find("dispatcher")) {
        if (const auto* priority = dispatcher->find("flow_priority")) {
            if (const auto v = priority->as_int(); v && *v > 0 && *v <= 0xffff) {
                config.dispatcher.flow_priority = static_cast<std::uint16_t>(*v);
            }
        }
        config.dispatcher.switch_idle_timeout =
            seconds_or(dispatcher->find("switch_idle_timeout_s"),
                       config.dispatcher.switch_idle_timeout);
        if (const auto* cloud = dispatcher->find("install_cloud_flows")) {
            config.dispatcher.install_cloud_flows =
                cloud->as_bool().value_or(config.dispatcher.install_cloud_flows);
        }
    }
    if (const auto* scale_down = doc.find("scale_down_idle")) {
        config.scale_down_idle = scale_down->as_bool().value_or(config.scale_down_idle);
    }
    if (const auto* fidelity = doc.find("fidelity")) {
        config.fidelity =
            sdn::fidelity_from_string(fidelity->as_str("exact"));
    }
    return config;
}

std::string emit_controller_config(const sdn::ControllerConfig& config) {
    yamlite::Node doc;
    doc["scheduler"]["name"] = yamlite::Node{config.scheduler};
    if (!config.scheduler_params.is_null()) {
        doc["scheduler"]["params"] = config.scheduler_params;
    }
    doc["flow_memory"]["idle_timeout_s"] = yamlite::Node{
        static_cast<std::int64_t>(config.flow_memory.idle_timeout.ns() / 1'000'000'000)};
    doc["flow_memory"]["scan_period_s"] = yamlite::Node{
        static_cast<std::int64_t>(config.flow_memory.scan_period.ns() / 1'000'000'000)};
    doc["dispatcher"]["flow_priority"] =
        yamlite::Node{static_cast<std::int64_t>(config.dispatcher.flow_priority)};
    doc["dispatcher"]["switch_idle_timeout_s"] = yamlite::Node{static_cast<std::int64_t>(
        config.dispatcher.switch_idle_timeout.ns() / 1'000'000'000)};
    doc["dispatcher"]["install_cloud_flows"] =
        yamlite::Node{config.dispatcher.install_cloud_flows};
    doc["scale_down_idle"] = yamlite::Node{config.scale_down_idle};
    doc["fidelity"] = yamlite::Node{std::string(sdn::to_string(config.fidelity))};
    return yamlite::emit(doc);
}

} // namespace tedge::core
