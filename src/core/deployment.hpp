// DeploymentEngine: executes the paper's three-phase deployment lifecycle
// (fig. 4) against any Cluster and records per-phase timings -- the data
// behind the paper's figs. 11-15.
//
//   Pull      -- fetch container images unless cached,
//   Create    -- create containers (Docker) / Deployment+Service with zero
//                replicas (Kubernetes),
//   Scale Up  -- start the container / increment replicas,
//   WaitReady -- controller-side port probing until the service accepts.
//
// Concurrent ensure() calls for the same (cluster, service) coalesce into
// one deployment; every caller gets the callback when the shared work ends.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/port_prober.hpp"
#include "orchestrator/cluster.hpp"
#include "simcore/logging.hpp"
#include "simcore/simulation.hpp"

namespace tedge::core {

struct PhaseTimings {
    sim::SimTime pull;
    sim::SimTime create;
    sim::SimTime scale_up;
    sim::SimTime wait_ready;
    bool pulled = false;    ///< the Pull phase actually ran (cache miss)
    bool created = false;   ///< the Create phase actually ran
    bool scaled = false;    ///< the Scale Up phase actually ran
};

struct DeploymentRecord {
    std::string service;
    std::string cluster;
    sim::SimTime started;
    sim::SimTime finished;
    PhaseTimings phases;
    bool ok = false;
    /// Typed admission outcome; non-kAdmitted means the deployment was
    /// rejected by the pre-flight capacity check before any phase ran.
    orchestrator::AdmissionReason admission =
        orchestrator::AdmissionReason::kAdmitted;

    [[nodiscard]] sim::SimTime total() const { return finished - started; }
};

struct DeployOptions {
    /// Probe the instance port until it accepts before reporting done.
    bool wait_ready = true;
    /// Skip the Pull phase check (assume the caller pre-pulled).
    bool assume_image_present = false;
};

class DeploymentEngine {
public:
    using Callback =
        std::function<void(bool ok, const orchestrator::InstanceInfo& instance)>;

    DeploymentEngine(sim::Simulation& sim, PortProber& prober,
                     sim::SimTime instance_poll = sim::milliseconds(20));

    /// Ensure `spec` has a ready instance in `cluster`, running whichever of
    /// the three phases are still needed.
    void ensure(orchestrator::Cluster& cluster, const orchestrator::ServiceSpec& spec,
                DeployOptions options, Callback done);

    /// Scale Down / Remove (paper fig. 4 teardown path).
    void scale_down(orchestrator::Cluster& cluster, const std::string& service,
                    orchestrator::Cluster::BoolCallback done);
    void remove(orchestrator::Cluster& cluster, const std::string& service,
                orchestrator::Cluster::BoolCallback done);

    [[nodiscard]] const std::vector<DeploymentRecord>& records() const {
        return records_;
    }
    void clear_records() { records_.clear(); }

    [[nodiscard]] std::size_t inflight() const { return inflight_.size(); }

    /// Deployments currently in flight against `cluster` -- the early load
    /// signal schedulers need before any instance is visible (a deployment
    /// spends seconds in Pull with total_instances() still reading zero).
    [[nodiscard]] std::size_t inflight_for(const std::string& cluster) const {
        const auto it = inflight_per_cluster_.find(cluster);
        return it == inflight_per_cluster_.end() ? 0 : it->second;
    }

private:
    struct Job;
    void run_pull(const std::shared_ptr<Job>& job);
    void run_create(const std::shared_ptr<Job>& job);
    void run_scale_up(const std::shared_ptr<Job>& job);
    void await_instance(const std::shared_ptr<Job>& job, sim::SimTime started);
    void run_wait_ready(const std::shared_ptr<Job>& job,
                        const orchestrator::InstanceInfo& instance);
    void finish(const std::shared_ptr<Job>& job, bool ok,
                const orchestrator::InstanceInfo& instance);

    sim::Simulation& sim_;
    PortProber& prober_;
    sim::SimTime instance_poll_;
    std::vector<DeploymentRecord> records_;
    std::map<std::string, std::vector<Callback>> inflight_; ///< key: cluster|service
    std::map<std::string, std::size_t> inflight_per_cluster_;
};

} // namespace tedge::core
