// Port-probing readiness check (paper §VI): after scaling up, the SDN
// controller continuously tests whether the service port is open before
// installing flows -- otherwise the server would reject the client's
// request that is being held.
#pragma once

#include <cstdint>
#include <functional>

#include "net/tcp.hpp"

namespace tedge::core {

struct PortProberConfig {
    sim::SimTime interval = sim::milliseconds(25);  ///< probe period
    sim::SimTime timeout = sim::seconds(120);       ///< give-up deadline
};

class PortProber {
public:
    /// Probes originate from `from` (the controller's host).
    PortProber(net::TcpNet& net, net::NodeId from, PortProberConfig config = {});

    /// Probe (host, port) until it accepts or the deadline passes. The
    /// sleep before the last probe is clamped to the remaining budget, so
    /// the give-up callback fires within one probe RTT of the deadline.
    /// `done(ok, waited)` reports success and the total time spent waiting;
    /// on give-up, `waited` is capped at the configured timeout.
    void wait_ready(net::NodeId host, std::uint16_t port,
                    std::function<void(bool ok, sim::SimTime waited)> done);

    [[nodiscard]] std::uint64_t probes_sent() const { return probes_; }
    [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

private:
    void probe_once(net::NodeId host, std::uint16_t port, sim::SimTime started,
                    std::function<void(bool, sim::SimTime)> done);

    net::TcpNet& net_;
    net::NodeId from_;
    PortProberConfig config_;
    std::uint64_t probes_ = 0;
    std::uint64_t timeouts_ = 0;
};

} // namespace tedge::core
