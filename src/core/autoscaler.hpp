// Replica autoscaler.
//
// The paper's controller scales *down* idle services when their memorized
// flows expire (§V); related work it cites (Fahs et al., Voilà [18]) scales
// replicas *up* under load. This component closes the loop: it uses the
// number of live memorized flows per service as the load signal and keeps
//   replicas ~= ceil(flows / flows_per_replica)
// within [0, max_replicas], scaling through the DeploymentEngine so the
// usual Pull/Create/ScaleUp phases apply.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/deployment.hpp"
#include "sdn/flow_memory.hpp"
#include "sdn/service_registry.hpp"
#include "simcore/logging.hpp"

namespace tedge::core {

struct AutoscalerConfig {
    sim::SimTime period = sim::seconds(15);
    /// Flows one replica is expected to serve.
    std::size_t flows_per_replica = 8;
    int max_replicas = 4;
    /// Hysteresis: only scale down when the target has been lower for this
    /// many consecutive evaluations.
    int scale_down_patience = 2;
};

class ReplicaAutoscaler {
public:
    ReplicaAutoscaler(sim::Simulation& sim, DeploymentEngine& engine,
                      orchestrator::Cluster& cluster, sdn::FlowMemory& flows,
                      const sdn::ServiceRegistry& registry,
                      AutoscalerConfig config = {});
    ~ReplicaAutoscaler();

    /// Evaluate all registered services once (also runs periodically).
    void evaluate();

    [[nodiscard]] std::uint64_t scale_ups() const { return ups_; }
    [[nodiscard]] std::uint64_t scale_downs() const { return downs_; }
    [[nodiscard]] int current_replicas(const std::string& service) const;

private:
    struct State {
        int below_target_count = 0;
    };

    sim::Simulation& sim_;
    DeploymentEngine& engine_;
    orchestrator::Cluster& cluster_;
    sdn::FlowMemory& flows_;
    const sdn::ServiceRegistry& registry_;
    AutoscalerConfig config_;
    sim::Logger log_;
    std::map<std::string, State> states_;
    sim::Simulation::PeriodicHandle ticker_;
    std::uint64_t ups_ = 0;
    std::uint64_t downs_ = 0;
};

} // namespace tedge::core
