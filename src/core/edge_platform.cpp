#include "core/edge_platform.hpp"

#include <stdexcept>

namespace tedge::core {

EdgePlatform::EdgePlatform(EdgePlatformConfig config)
    : config_(std::move(config)),
      owned_sim_(std::make_unique<sim::Simulation>()),
      sim_(owned_sim_.get()),
      rng_(config_.seed) {
    init();
}

EdgePlatform::EdgePlatform(sim::Simulation& sim, EdgePlatformConfig config)
    : config_(std::move(config)), sim_(&sim), rng_(config_.seed) {
    init();
}

void EdgePlatform::init() {
    switch_node_ = topo_.add_switch("gnb");
    switch_ = std::make_unique<net::OvsSwitch>(*sim_, topo_, switch_node_,
                                               config_.ingress);
    tcp_ = std::make_unique<net::TcpNet>(*sim_, topo_, *switch_, endpoints_,
                                         config_.tcp);
    sessions_ = std::make_unique<sdn::SessionPlane>(*sim_);
    tcp_->set_attachment(sessions_.get());
    annotator_ = std::make_unique<sdn::Annotator>(
        [this](const container::ImageRef& ref) { return profile_for(ref); },
        config_.annotator);
}

net::OvsSwitch& EdgePlatform::add_ingress(const std::string& name,
                                          sim::SimTime backbone_latency,
                                          sim::DataRate rate) {
    const auto node = topo_.add_switch(name);
    topo_.add_link(node, switch_node_, backbone_latency, rate);
    extra_switches_.push_back(
        std::make_unique<net::OvsSwitch>(*sim_, topo_, node, config_.ingress));
    auto& ingress = *extra_switches_.back();
    if (controller_) controller_->attach(ingress);
    return ingress;
}

net::NodeId EdgePlatform::add_client(const std::string& name, net::Ipv4 ip,
                                     sim::SimTime link_latency, sim::DataRate rate) {
    const auto node = topo_.add_host(name, ip, 4);
    topo_.add_link(node, switch_node_, link_latency, rate);
    sessions_->attach(node, ip, *switch_);
    return node;
}

void EdgePlatform::connect_client_to_ingress(net::NodeId client,
                                             net::OvsSwitch& ingress,
                                             sim::SimTime link_latency,
                                             sim::DataRate rate) {
    topo_.add_link(client, ingress.node(), link_latency, rate);
    handover_client(client, ingress);
}

void EdgePlatform::handover_client(net::NodeId client, net::OvsSwitch& ingress) {
    sessions_->attach(client, topo_.node(client).ip, ingress);
}

void EdgePlatform::schedule_handover(net::NodeId client, net::OvsSwitch& ingress,
                                     sim::SimTime at) {
    // A user event, not a daemon: a pending handover is workload, and the
    // run must not drain out from under it.
    sim_->schedule_at(at, [this, client, &ingress] {
        handover_client(client, ingress);
    });
}

net::NodeId EdgePlatform::add_edge_host(const std::string& name, net::Ipv4 ip,
                                        std::uint32_t cores,
                                        sim::SimTime link_latency,
                                        sim::DataRate rate) {
    const auto node = topo_.add_host(name, ip, cores);
    topo_.add_link(node, switch_node_, link_latency, rate);
    return node;
}

net::NodeId EdgePlatform::add_cloud(const std::string& name,
                                    sim::SimTime link_latency, sim::DataRate rate) {
    if (cloud_.valid()) throw std::logic_error("cloud node already added");
    cloud_ = topo_.add_host(name, net::Ipv4{10, 255, 255, 1}, 256);
    topo_.add_link(cloud_, switch_node_, link_latency, rate);
    return cloud_;
}

container::Registry&
EdgePlatform::add_registry(const container::RegistryProfile& profile) {
    registries_.push_back(std::make_unique<container::Registry>(*sim_, profile));
    registry_dir_.add(*registries_.back());
    return *registries_.back();
}

void EdgePlatform::add_app_profile(const std::string& image,
                                   container::AppProfile profile) {
    const auto ref = container::ImageRef::parse(image);
    if (!ref) throw std::invalid_argument("malformed image: " + image);
    app_catalog_[ref->full()] = std::move(profile);
}

const container::AppProfile*
EdgePlatform::profile_for(const container::ImageRef& ref) const {
    const auto it = app_catalog_.find(ref.full());
    return it == app_catalog_.end() ? nullptr : &it->second;
}

orchestrator::DockerCluster&
EdgePlatform::add_docker_cluster(const std::string& name, net::NodeId node,
                                 orchestrator::DockerClusterConfig config,
                                 container::RuntimeCostModel runtime_costs,
                                 container::PullerConfig puller) {
    auto cluster = std::make_unique<orchestrator::DockerCluster>(
        name, *sim_, topo_, node, endpoints_, registry_dir_, rng_.split(), config,
        runtime_costs, puller);
    auto& ref = *cluster;
    clusters_.push_back(std::move(cluster));
    cluster_ptrs_.push_back(&ref);
    return ref;
}

orchestrator::k8s::K8sCluster&
EdgePlatform::add_k8s_cluster(const std::string& name,
                              std::vector<net::NodeId> nodes,
                              orchestrator::k8s::K8sClusterConfig config) {
    auto cluster = std::make_unique<orchestrator::k8s::K8sCluster>(
        name, *sim_, topo_, std::move(nodes), endpoints_, registry_dir_,
        rng_.split(), config);
    auto& ref = *cluster;
    clusters_.push_back(std::move(cluster));
    cluster_ptrs_.push_back(&ref);
    return ref;
}

serverless::FaasCluster&
EdgePlatform::add_faas_cluster(const std::string& name, net::NodeId node,
                               serverless::FaasClusterConfig config) {
    auto cluster = std::make_unique<serverless::FaasCluster>(
        name, *sim_, topo_, node, endpoints_, registry_dir_, rng_.split(), config);
    auto& ref = *cluster;
    clusters_.push_back(std::move(cluster));
    cluster_ptrs_.push_back(&ref);
    return ref;
}

orchestrator::Cluster* EdgePlatform::cluster(const std::string& name) const {
    for (auto* c : cluster_ptrs_) {
        if (c->name() == name) return c;
    }
    return nullptr;
}

void EdgePlatform::provision_cloud_service(const sdn::AnnotatedService& service) {
    if (!cloud_.valid()) return;
    const auto& address = service.spec.cloud_address;
    // The cloud answers for the registered address itself.
    if (!topo_.find_by_ip(address.ip)) {
        topo_.add_ip_alias(cloud_, address.ip);
    }
    topo_.open_port(cloud_, address.port);

    // Cloud-side instance: effectively infinite capacity, same application
    // behaviour as at the edge.
    const container::AppProfile* app = nullptr;
    for (const auto& c : service.spec.containers) {
        if (c.container_port == service.spec.target_port) {
            app = c.app;
            break;
        }
    }
    if (app == nullptr && !service.spec.containers.empty()) {
        app = service.spec.containers.front().app;
    }
    auto rng = std::make_shared<sim::Rng>(rng_.split());
    endpoints_.bind(cloud_, address.port,
                    [this, app, rng](sim::Bytes, net::EndpointDirectory::ReplyFn reply) {
        if (app == nullptr) {
            reply(512);
            return;
        }
        const sim::SimTime service_time = app->sample_service(*rng);
        sim_->schedule(service_time, [app, reply = std::move(reply)] {
            reply(app->response_size);
        });
    });
}

const sdn::AnnotatedService&
EdgePlatform::register_service(const net::ServiceAddress& address,
                               const std::string& yaml_text) {
    const auto& service = services_.register_yaml(address, yaml_text, *annotator_);
    provision_cloud_service(service);
    return service;
}

sdn::Controller& EdgePlatform::start_controller(net::NodeId controller_host,
                                                sdn::ControllerConfig config) {
    if (controller_) throw std::logic_error("controller already started");
    prober_ = std::make_unique<PortProber>(*tcp_, controller_host, config_.prober);
    engine_ = std::make_unique<DeploymentEngine>(*sim_, *prober_);
    config.session_plane = sessions_.get();
    controller_ = std::make_unique<sdn::Controller>(
        *sim_, topo_, *switch_, services_, *engine_, cluster_ptrs_, std::move(config));
    controller_->start();
    for (auto& ingress : extra_switches_) controller_->attach(*ingress);
    return *controller_;
}

void EdgePlatform::http_request(net::NodeId client,
                                const net::ServiceAddress& address,
                                sim::Bytes request_size,
                                std::function<void(const net::HttpResult&)> done) {
    tcp_->http_request(client, address, request_size, std::move(done));
}

} // namespace tedge::core
