// Controller configuration parsing: the controller's scheduler choice,
// FlowMemory timeouts, and dispatcher parameters are defined in a YAML
// config file (paper §IV-B: "the concrete scheduler implementation can be
// defined in the controller's configuration and will be dynamically
// loaded").
#pragma once

#include <string>

#include "sdn/controller.hpp"

namespace tedge::core {

/// Parse a controller configuration document:
///
///   scheduler:
///     name: proximity
///     params:
///       wait: true
///   flow_memory:
///     idle_timeout_s: 60
///     scan_period_s: 5
///   dispatcher:
///     flow_priority: 200
///     switch_idle_timeout_s: 10
///     install_cloud_flows: true
///   scale_down_idle: true
///
/// Missing keys keep their defaults. Throws on malformed YAML or an unknown
/// scheduler name.
[[nodiscard]] sdn::ControllerConfig parse_controller_config(const std::string& yaml_text);

/// Render a configuration back to YAML (round-trip support for tooling).
[[nodiscard]] std::string emit_controller_config(const sdn::ControllerConfig& config);

} // namespace tedge::core
