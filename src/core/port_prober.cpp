#include "core/port_prober.hpp"

namespace tedge::core {

PortProber::PortProber(net::TcpNet& net, net::NodeId from, PortProberConfig config)
    : net_(net), from_(from), config_(config) {}

void PortProber::wait_ready(net::NodeId host, std::uint16_t port,
                            std::function<void(bool, sim::SimTime)> done) {
    probe_once(host, port, net_.simulation().now(), std::move(done));
}

void PortProber::probe_once(net::NodeId host, std::uint16_t port,
                            sim::SimTime started,
                            std::function<void(bool, sim::SimTime)> done) {
    ++probes_;
    net_.probe(from_, host, port,
               [this, host, port, started, done = std::move(done)](bool open) {
        auto& sim = net_.simulation();
        const sim::SimTime waited = sim.now() - started;
        if (open) {
            done(true, waited);
            return;
        }
        if (waited >= config_.timeout) {
            done(false, waited);
            return;
        }
        sim.schedule(config_.interval, [this, host, port, started, done] {
            probe_once(host, port, started, done);
        });
    });
}

} // namespace tedge::core
