#include "core/port_prober.hpp"

#include <algorithm>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::core {

PortProber::PortProber(net::TcpNet& net, net::NodeId from, PortProberConfig config)
    : net_(net), from_(from), config_(config) {}

void PortProber::wait_ready(net::NodeId host, std::uint16_t port,
                            std::function<void(bool, sim::SimTime)> done) {
    probe_once(host, port, net_.simulation().now(), std::move(done));
}

void PortProber::probe_once(net::NodeId host, std::uint16_t port,
                            sim::SimTime started,
                            std::function<void(bool, sim::SimTime)> done) {
    ++probes_;
    auto& sim = net_.simulation();
    if (auto* m = sim.metrics()) m->counter("core.prober.probes").inc();
    if (auto* tr = sim.tracer()) tr->instant("probe.attempt");
    net_.probe(from_, host, port,
               [this, host, port, started, done = std::move(done)](bool open) {
        auto& sim = net_.simulation();
        const sim::SimTime waited = sim.now() - started;
        if (open) {
            done(true, waited);
            return;
        }
        if (waited >= config_.timeout) {
            // Give up. The last probe's RTT may carry us past the deadline;
            // report the waiting time capped at the configured timeout so
            // callers see the budget they asked for, not the overshoot.
            ++timeouts_;
            if (auto* m = sim.metrics()) m->counter("core.prober.timeouts").inc();
            done(false, std::min(waited, config_.timeout));
            return;
        }
        // Clamp the final sleep to the remaining budget: without this the
        // deadline is only noticed after a whole extra interval + probe RTT,
        // overshooting config_.timeout by up to interval + RTT.
        const sim::SimTime delay = std::min(config_.interval, config_.timeout - waited);
        sim.schedule(delay, [this, host, port, started, done = std::move(done)]() mutable {
            probe_once(host, port, started, std::move(done));
        });
    });
}

} // namespace tedge::core
