#include "core/deployment.hpp"

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::core {

struct DeploymentEngine::Job {
    orchestrator::Cluster* cluster = nullptr;
    orchestrator::ServiceSpec spec;
    DeployOptions options;
    std::string key;
    DeploymentRecord record;
    sim::TraceContext trace;  ///< the `deploy` span all phase spans nest under
};

DeploymentEngine::DeploymentEngine(sim::Simulation& sim, PortProber& prober,
                                   sim::SimTime instance_poll)
    : sim_(sim), prober_(prober), instance_poll_(instance_poll) {}

void DeploymentEngine::ensure(orchestrator::Cluster& cluster,
                              const orchestrator::ServiceSpec& spec,
                              DeployOptions options, Callback done) {
    // Fast path: a ready instance already exists.
    for (const auto& instance : cluster.instances(spec.name)) {
        if (instance.ready) {
            sim_.schedule(sim::SimTime::zero(),
                          [done = std::move(done), instance] { done(true, instance); });
            return;
        }
    }

    const std::string key = cluster.name() + "|" + spec.name;
    auto [it, inserted] = inflight_.try_emplace(key);
    it->second.push_back(std::move(done));
    if (!inserted) return; // coalesce with the in-flight deployment

    auto job = std::make_shared<Job>();
    job->cluster = &cluster;
    job->spec = spec;
    job->options = options;
    job->key = key;
    job->record.service = spec.name;
    job->record.cluster = cluster.name();
    job->record.started = sim_.now();
    ++inflight_per_cluster_[cluster.name()];
    if (auto* tr = sim_.tracer()) {
        const sim::SpanId span = tr->begin("deploy");
        tr->arg(span, "service", spec.name);
        tr->arg(span, "cluster", cluster.name());
        job->trace = tr->context_of(span);
    }
    // Admission pre-flight: fail fast (typed) instead of paying Pull/Create
    // only to have Scale Up bounce off a full cluster, or worse, waiting out
    // the 120 s await-instance timeout on a pod that can never bind.
    if (const auto reason = cluster.admits(spec);
        reason != orchestrator::AdmissionReason::kAdmitted) {
        job->record.admission = reason;
        if (auto* m = sim_.metrics()) {
            m->counter("core.deploy.rejected").inc();
            m->counter(std::string("core.deploy.rejected.") +
                       orchestrator::to_string(reason))
                .inc();
        }
        sim_.schedule(sim::SimTime::zero(), [this, job] { finish(job, false, {}); });
        return;
    }
    run_pull(job);
}

void DeploymentEngine::run_pull(const std::shared_ptr<Job>& job) {
    if (job->options.assume_image_present || job->cluster->has_image(job->spec)) {
        run_create(job);
        return;
    }
    const sim::SimTime started = sim_.now();
    job->record.phases.pulled = true;
    sim::Tracer* tr = sim_.tracer();
    const sim::SpanId span = tr ? tr->begin("deploy.pull", job->trace) : 0;
    // The scope makes the cluster's scheduled pull work inherit this span.
    const sim::Tracer::Scope scope(tr, span);
    job->cluster->ensure_image(job->spec, [this, job, started, span](
                                              bool ok, const container::PullTiming&) {
        job->record.phases.pull = sim_.now() - started;
        if (auto* t = sim_.tracer()) t->end(span);
        if (auto* m = sim_.metrics()) {
            m->histogram("phase.pull_ms", 0, 60'000, 120)
                .add(job->record.phases.pull.ms());
        }
        if (!ok) {
            finish(job, false, {});
            return;
        }
        run_create(job);
    });
}

void DeploymentEngine::run_create(const std::shared_ptr<Job>& job) {
    if (job->cluster->has_service(job->spec.name)) {
        run_scale_up(job);
        return;
    }
    const sim::SimTime started = sim_.now();
    job->record.phases.created = true;
    sim::Tracer* tr = sim_.tracer();
    const sim::SpanId span = tr ? tr->begin("deploy.create", job->trace) : 0;
    const sim::Tracer::Scope scope(tr, span);
    job->cluster->create_service(job->spec, [this, job, started, span](bool ok) {
        job->record.phases.create = sim_.now() - started;
        if (auto* t = sim_.tracer()) t->end(span);
        if (auto* m = sim_.metrics()) {
            m->histogram("phase.create_ms", 0, 10'000, 100)
                .add(job->record.phases.create.ms());
        }
        if (!ok) {
            finish(job, false, {});
            return;
        }
        run_scale_up(job);
    });
}

void DeploymentEngine::run_scale_up(const std::shared_ptr<Job>& job) {
    // If an instance is already starting (e.g. another controller scaled it
    // up), skip the command and just wait for it.
    if (!job->cluster->instances(job->spec.name).empty()) {
        await_instance(job, sim_.now());
        return;
    }
    const sim::SimTime started = sim_.now();
    job->record.phases.scaled = true;
    sim::Tracer* tr = sim_.tracer();
    const sim::SpanId span = tr ? tr->begin("deploy.scale_up", job->trace) : 0;
    const sim::Tracer::Scope scope(tr, span);
    job->cluster->scale_up(job->spec.name, [this, job, started, span](bool ok) {
        job->record.phases.scale_up = sim_.now() - started;
        if (auto* t = sim_.tracer()) t->end(span);
        if (auto* m = sim_.metrics()) {
            m->histogram("phase.scale_up_ms", 0, 10'000, 100)
                .add(job->record.phases.scale_up.ms());
        }
        if (!ok) {
            finish(job, false, {});
            return;
        }
        await_instance(job, sim_.now());
    });
}

void DeploymentEngine::await_instance(const std::shared_ptr<Job>& job,
                                      sim::SimTime started) {
    // An instance may materialise asynchronously (Kubernetes: the pod only
    // exists after deployment -> replicaset -> pod -> binding). Poll the
    // cluster view until one appears.
    const auto instances = job->cluster->instances(job->spec.name);
    if (!instances.empty()) {
        const auto& instance = instances.front();
        if (!job->options.wait_ready) {
            finish(job, true, instance);
            return;
        }
        run_wait_ready(job, instance);
        return;
    }
    if (sim_.now() - started >= sim::seconds(120)) {
        finish(job, false, {});
        return;
    }
    sim_.schedule(instance_poll_, [this, job, started] {
        await_instance(job, started);
    });
}

void DeploymentEngine::run_wait_ready(const std::shared_ptr<Job>& job,
                                      const orchestrator::InstanceInfo& instance) {
    const sim::SimTime started = sim_.now();
    sim::Tracer* tr = sim_.tracer();
    const sim::SpanId span = tr ? tr->begin("deploy.wait_ready", job->trace) : 0;
    const sim::Tracer::Scope scope(tr, span);
    prober_.wait_ready(instance.node, instance.port,
                       [this, job, instance, started, span](bool ok, sim::SimTime) {
        job->record.phases.wait_ready = sim_.now() - started;
        if (auto* t = sim_.tracer()) {
            t->end(span);
            if (ok) t->instant("ready", job->trace);
        }
        if (auto* m = sim_.metrics()) {
            m->histogram("phase.wait_ready_ms", 0, 10'000, 100)
                .add(job->record.phases.wait_ready.ms());
        }
        orchestrator::InstanceInfo ready_instance = instance;
        ready_instance.ready = ok;
        finish(job, ok, ready_instance);
    });
}

void DeploymentEngine::finish(const std::shared_ptr<Job>& job, bool ok,
                              const orchestrator::InstanceInfo& instance) {
    job->record.finished = sim_.now();
    job->record.ok = ok;
    records_.push_back(job->record);
    if (auto* tr = sim_.tracer()) {
        tr->arg(job->trace.span, "ok", ok ? "true" : "false");
        tr->end(job->trace.span);
    }
    if (auto* m = sim_.metrics()) {
        m->counter(ok ? "core.deploy.ok" : "core.deploy.failed").inc();
        m->histogram("phase.deploy_total_ms", 0, 60'000, 120)
            .add(job->record.total().ms());
    }

    const auto cluster_it = inflight_per_cluster_.find(job->record.cluster);
    if (cluster_it != inflight_per_cluster_.end() && cluster_it->second > 0) {
        if (--cluster_it->second == 0) inflight_per_cluster_.erase(cluster_it);
    }

    const auto it = inflight_.find(job->key);
    if (it == inflight_.end()) return;
    auto callbacks = std::move(it->second);
    inflight_.erase(it);
    for (auto& cb : callbacks) cb(ok, instance);
}

void DeploymentEngine::scale_down(orchestrator::Cluster& cluster,
                                  const std::string& service,
                                  orchestrator::Cluster::BoolCallback done) {
    cluster.scale_down(service, std::move(done));
}

void DeploymentEngine::remove(orchestrator::Cluster& cluster,
                              const std::string& service,
                              orchestrator::Cluster::BoolCallback done) {
    cluster.remove_service(service, std::move(done));
}

} // namespace tedge::core
