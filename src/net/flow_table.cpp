#include "net/flow_table.hpp"

#include <algorithm>
#include <sstream>

namespace tedge::net {

std::string FlowMatch::str() const {
    std::ostringstream os;
    os << "{";
    os << "src=" << (src_ip ? src_ip->str() : "*");
    os << " dst=" << (dst_ip ? dst_ip->str() : "*");
    os << ":" << (dst_port ? std::to_string(*dst_port) : "*");
    os << " proto=" << (proto ? to_string(*proto) : "*");
    os << "}";
    return os.str();
}

bool FlowTable::install(FlowEntry entry, sim::SimTime now) {
    entry.installed_at = now;
    entry.last_used = now;
    entry.packet_count = 0;
    const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
        return e.match == entry.match && e.priority == entry.priority;
    });
    if (it != entries_.end()) {
        *it = std::move(entry);
        return true;
    }
    entries_.push_back(std::move(entry));
    return false;
}

std::vector<FlowEntry>::iterator FlowTable::find_best(const Packet& packet,
                                                      sim::SimTime now) {
    auto best = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->expired(now) || !it->match.matches(packet)) continue;
        if (best == entries_.end() || it->priority > best->priority ||
            (it->priority == best->priority &&
             it->match.specificity() > best->match.specificity())) {
            best = it;
        }
    }
    return best;
}

std::optional<FlowEntry> FlowTable::lookup(const Packet& packet, sim::SimTime now) {
    expire(now);
    const auto best = find_best(packet, now);
    if (best == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    best->last_used = now;
    ++best->packet_count;
    ++hits_;
    return *best;
}

const FlowEntry* FlowTable::peek(const Packet& packet, sim::SimTime now) const {
    const FlowEntry* best = nullptr;
    for (const auto& e : entries_) {
        if (e.expired(now) || !e.match.matches(packet)) continue;
        if (!best || e.priority > best->priority ||
            (e.priority == best->priority &&
             e.match.specificity() > best->match.specificity())) {
            best = &e;
        }
    }
    return best;
}

std::size_t FlowTable::remove(const FlowMatch& match) {
    const auto before = entries_.size();
    std::erase_if(entries_, [&](const FlowEntry& e) { return e.match == match; });
    return before - entries_.size();
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
    const auto before = entries_.size();
    std::erase_if(entries_, [&](const FlowEntry& e) { return e.cookie == cookie; });
    return before - entries_.size();
}

std::size_t FlowTable::expire(sim::SimTime now) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->expired(now)) {
            if (removed_cb_) {
                const bool idle = !(it->hard_timeout > sim::SimTime::zero() &&
                                    now - it->installed_at >= it->hard_timeout);
                removed_cb_(*it, idle);
            }
            it = entries_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    return removed;
}

} // namespace tedge::net
