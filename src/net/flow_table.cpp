#include "net/flow_table.hpp"

#include <algorithm>

namespace tedge::net {

std::string FlowMatch::str() const {
    // Direct append, no ostringstream: this runs on log paths where the
    // stream's locale/alloc setup dominates the cost of the text itself.
    std::string out;
    out.reserve(64);
    out += "{src=";
    out += src_ip ? src_ip->str() : "*";
    out += " dst=";
    out += dst_ip ? dst_ip->str() : "*";
    out += ':';
    if (dst_port) {
        out += std::to_string(*dst_port);
    } else {
        out += '*';
    }
    out += " proto=";
    out += proto ? to_string(*proto) : "*";
    out += '}';
    return out;
}

std::optional<sim::SimTime> FlowTable::expiry_of(const FlowEntry& e) {
    std::optional<sim::SimTime> t;
    if (e.hard_timeout > sim::SimTime::zero()) t = e.installed_at + e.hard_timeout;
    if (e.idle_timeout > sim::SimTime::zero()) {
        const sim::SimTime idle_at = e.last_used + e.idle_timeout;
        if (!t || idle_at < *t) t = idle_at;
    }
    return t;
}

void FlowTable::note_expiry(const FlowEntry& e) {
    const auto t = expiry_of(e);
    if (t && (!next_expiry_ || *t < *next_expiry_)) next_expiry_ = t;
}

void FlowTable::reindex() {
    exact_.clear();
    wildcard_.clear();
    for (std::uint32_t i = 0; i < entries_.size(); ++i) {
        const FlowMatch& m = entries_[i].match;
        if (fully_specified(m)) {
            exact_[key_of(m)].push_back(i);
        } else {
            wildcard_.push_back(i);
        }
    }
}

void FlowTable::sweep_if_due(sim::SimTime now) {
    if (next_expiry_ && now >= *next_expiry_) expire(now);
}

bool FlowTable::install(FlowEntry entry, sim::SimTime now) {
    entry.installed_at = now;
    entry.last_used = now;
    entry.packet_count = 0;
    const auto it = std::find_if(entries_.begin(), entries_.end(), [&](const FlowEntry& e) {
        return e.match == entry.match && e.priority == entry.priority;
    });
    if (it != entries_.end()) {
        // Same match -> same index bucket; replace in place.
        note_expiry(entry);
        *it = std::move(entry);
        return true;
    }
    note_expiry(entry);
    const auto index = static_cast<std::uint32_t>(entries_.size());
    if (fully_specified(entry.match)) {
        exact_[key_of(entry.match)].push_back(index);
    } else {
        wildcard_.push_back(index);
    }
    entries_.push_back(std::move(entry));
    return false;
}

std::optional<FlowEntry> FlowTable::lookup(const Packet& packet, sim::SimTime now) {
    // After the sweep no entry is expired at `now` (next_expiry_ is a lower
    // bound), so the match loops below need no per-entry expiry checks.
    sweep_if_due(now);

    FlowEntry* best = nullptr;
    if (!exact_.empty()) {
        const auto it = exact_.find(key_of(packet));
        if (it != exact_.end()) {
            for (const std::uint32_t idx : it->second) {
                FlowEntry& e = entries_[idx];
                if (best == nullptr || e.priority > best->priority) best = &e;
            }
        }
    }
    // Wildcard entries can still outrank an exact hit on priority. On a
    // priority tie the exact entry wins: its specificity is 4, a wildcard's
    // is at most 3 -- identical to the old full-scan tiebreak.
    for (const std::uint32_t idx : wildcard_) {
        FlowEntry& e = entries_[idx];
        if (!e.match.matches(packet)) continue;
        if (best == nullptr || e.priority > best->priority ||
            (e.priority == best->priority &&
             e.match.specificity() > best->match.specificity())) {
            best = &e;
        }
    }

    if (best == nullptr) {
        ++misses_;
        return std::nullopt;
    }
    best->last_used = now; // extends idle expiry; bound stays conservative
    ++best->packet_count;
    ++hits_;
    return *best;
}

const FlowEntry* FlowTable::peek(const Packet& packet, sim::SimTime now) const {
    const FlowEntry* best = nullptr;
    for (const auto& e : entries_) {
        if (e.expired(now) || !e.match.matches(packet)) continue;
        if (!best || e.priority > best->priority ||
            (e.priority == best->priority &&
             e.match.specificity() > best->match.specificity())) {
            best = &e;
        }
    }
    return best;
}

std::size_t FlowTable::remove(const FlowMatch& match) {
    const auto before = entries_.size();
    std::erase_if(entries_, [&](const FlowEntry& e) { return e.match == match; });
    const std::size_t removed = before - entries_.size();
    if (removed > 0) reindex();
    return removed;
}

std::size_t FlowTable::remove_by_cookie(std::uint64_t cookie) {
    const auto before = entries_.size();
    std::erase_if(entries_, [&](const FlowEntry& e) { return e.cookie == cookie; });
    const std::size_t removed = before - entries_.size();
    if (removed > 0) reindex();
    return removed;
}

std::size_t FlowTable::remove_by_src_ip(Ipv4 src_ip) {
    const auto before = entries_.size();
    std::erase_if(entries_, [&](const FlowEntry& e) {
        return e.match.src_ip && *e.match.src_ip == src_ip;
    });
    const std::size_t removed = before - entries_.size();
    if (removed > 0) reindex();
    return removed;
}

std::size_t FlowTable::expire(sim::SimTime now) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->expired(now)) {
            if (removed_cb_) {
                const bool idle = !(it->hard_timeout > sim::SimTime::zero() &&
                                    now - it->installed_at >= it->hard_timeout);
                removed_cb_(*it, idle);
            }
            it = entries_.erase(it);
            ++removed;
        } else {
            ++it;
        }
    }
    // Recompute the exact bound (touches may have left it stale-low).
    next_expiry_.reset();
    for (const auto& e : entries_) note_expiry(e);
    if (removed > 0) reindex();
    return removed;
}

void FlowTable::clear() {
    entries_.clear();
    exact_.clear();
    wildcard_.clear();
    next_expiry_.reset();
}

} // namespace tedge::net
