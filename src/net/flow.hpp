// OpenFlow-style flow matches, actions, and entries (paper fig. 2: the
// switch rewrites the destination of packets addressed to registered
// services so the redirection stays transparent to the client).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "simcore/time.hpp"

namespace tedge::net {

/// Wildcard-able match over the fields our pipeline uses. An unset optional
/// matches any value (OpenFlow wildcard).
struct FlowMatch {
    std::optional<Ipv4> src_ip;
    std::optional<Ipv4> dst_ip;
    std::optional<std::uint16_t> dst_port;
    std::optional<Proto> proto;

    [[nodiscard]] bool matches(const Packet& p) const {
        if (src_ip && *src_ip != p.src_ip) return false;
        if (dst_ip && *dst_ip != p.dst_ip) return false;
        if (dst_port && *dst_port != p.dst_port) return false;
        if (proto && *proto != p.proto) return false;
        return true;
    }

    /// Number of concrete (non-wildcard) fields; used as a specificity
    /// tiebreaker between equal priorities.
    [[nodiscard]] int specificity() const {
        return int(src_ip.has_value()) + int(dst_ip.has_value()) +
               int(dst_port.has_value()) + int(proto.has_value());
    }

    [[nodiscard]] std::string str() const;

    bool operator==(const FlowMatch&) const = default;
};

/// Rewrite-and-forward action set. The destination rewrite implements the
/// transparent cloud-to-edge redirection; `forward_to` names the host that
/// should receive the packet (the chosen edge service instance's node).
struct FlowAction {
    std::optional<Ipv4> set_dst_ip;
    std::optional<std::uint16_t> set_dst_port;
    NodeId forward_to;       ///< invalid() means "forward toward original dst"
    bool to_controller = false;

    bool operator==(const FlowAction&) const = default;
};

struct FlowEntry {
    FlowMatch match;
    FlowAction action;
    std::uint16_t priority = 100;
    sim::SimTime idle_timeout = sim::SimTime::zero();  ///< zero = no idle expiry
    sim::SimTime hard_timeout = sim::SimTime::zero();  ///< zero = no hard expiry
    std::uint64_t cookie = 0;  ///< controller-assigned tag (service id etc.)

    // Runtime state maintained by the FlowTable.
    sim::SimTime installed_at = sim::SimTime::zero();
    sim::SimTime last_used = sim::SimTime::zero();
    std::uint64_t packet_count = 0;

    [[nodiscard]] bool expired(sim::SimTime now) const {
        if (hard_timeout > sim::SimTime::zero() &&
            now - installed_at >= hard_timeout) {
            return true;
        }
        if (idle_timeout > sim::SimTime::zero() && now - last_used >= idle_timeout) {
            return true;
        }
        return false;
    }
};

} // namespace tedge::net
