#include "net/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace tedge::net {

TopologyPartition::TopologyPartition(const Topology& topo,
                                     std::vector<sim::DomainId> assignment)
    : assignment_(std::move(assignment)) {
    if (assignment_.size() != topo.node_count()) {
        throw std::invalid_argument(
            "TopologyPartition: assignment must cover every node "
            "(one DomainId per NodeId)");
    }
    for (const sim::DomainId d : assignment_) {
        domain_count_ = std::max<std::size_t>(domain_count_, d + std::size_t{1});
    }
    topo.for_each_link([this](NodeId a, NodeId b, sim::SimTime latency,
                              sim::DataRate rate) {
        const sim::DomainId da = assignment_[a.value];
        const sim::DomainId db = assignment_[b.value];
        if (da == db) return;
        if (latency <= sim::SimTime::zero()) {
            throw std::invalid_argument(
                "TopologyPartition: cut link with zero latency -- "
                "zero-lookahead partitions cannot make conservative "
                "progress; keep tightly-coupled nodes in one domain");
        }
        cut_links_.push_back(CutLink{a, b, da, db, latency, rate});
        lookahead_ = std::min(lookahead_, latency);
    });
}

TopologyPartition TopologyPartition::single_domain(const Topology& topo) {
    return TopologyPartition(topo,
                             std::vector<sim::DomainId>(topo.node_count(), 0));
}

std::vector<NodeId> TopologyPartition::nodes_in(sim::DomainId domain) const {
    std::vector<NodeId> nodes;
    for (std::uint32_t i = 0; i < assignment_.size(); ++i) {
        if (assignment_[i] == domain) nodes.push_back(NodeId{i});
    }
    return nodes;
}

} // namespace tedge::net
