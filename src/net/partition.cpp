#include "net/partition.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "simcore/sharded_simulation.hpp"

namespace tedge::net {

TopologyPartition::TopologyPartition(const Topology& topo,
                                     std::vector<sim::DomainId> assignment)
    : assignment_(std::move(assignment)) {
    if (assignment_.size() != topo.node_count()) {
        throw std::invalid_argument(
            "TopologyPartition: assignment must cover every node "
            "(one DomainId per NodeId)");
    }
    for (const sim::DomainId d : assignment_) {
        domain_count_ = std::max<std::size_t>(domain_count_, d + std::size_t{1});
    }
    topo.for_each_link([this](NodeId a, NodeId b, sim::SimTime latency,
                              sim::DataRate rate) {
        const sim::DomainId da = assignment_[a.value];
        const sim::DomainId db = assignment_[b.value];
        if (da == db) return;
        if (latency <= sim::SimTime::zero()) {
            throw std::invalid_argument(
                "TopologyPartition: cut link with zero latency -- "
                "zero-lookahead partitions cannot make conservative "
                "progress; keep tightly-coupled nodes in one domain");
        }
        cut_links_.push_back(CutLink{a, b, da, db, latency, rate});
        lookahead_ = std::min(lookahead_, latency);
    });
    // Directed channels: minimum joining cut-link latency per ordered domain
    // pair. Links are bidirectional, so each cut link feeds both directions.
    std::map<std::pair<sim::DomainId, sim::DomainId>, sim::SimTime> best;
    for (const CutLink& link : cut_links_) {
        for (const auto& [src, dst] :
             {std::make_pair(link.domain_a, link.domain_b),
              std::make_pair(link.domain_b, link.domain_a)}) {
            const auto it = best.find({src, dst});
            if (it == best.end() || link.latency < it->second) {
                best[{src, dst}] = link.latency;
            }
        }
    }
    channels_.reserve(best.size());
    for (const auto& [pair, lookahead] : best) {
        channels_.push_back(DomainChannel{pair.first, pair.second, lookahead});
    }
}

sim::SimTime TopologyPartition::channel_lookahead(sim::DomainId src,
                                                  sim::DomainId dst) const {
    const auto it = std::lower_bound(
        channels_.begin(), channels_.end(), std::make_pair(src, dst),
        [](const DomainChannel& ch, const std::pair<sim::DomainId, sim::DomainId>& key) {
            return std::tie(ch.src, ch.dst) < std::tie(key.first, key.second);
        });
    if (it == channels_.end() || it->src != src || it->dst != dst) {
        return sim::SimTime::max();
    }
    return it->lookahead;
}

void TopologyPartition::apply_channels(sim::ShardedSimulation& sharded) const {
    for (const DomainChannel& ch : channels_) {
        sharded.set_channel(ch.src, ch.dst, ch.lookahead);
    }
    if (channels_.empty()) sharded.set_lookahead(lookahead_);
}

TopologyPartition TopologyPartition::single_domain(const Topology& topo) {
    return TopologyPartition(topo,
                             std::vector<sim::DomainId>(topo.node_count(), 0));
}

std::vector<NodeId> TopologyPartition::nodes_in(sim::DomainId domain) const {
    std::vector<NodeId> nodes;
    for (std::uint32_t i = 0; i < assignment_.size(); ++i) {
        if (assignment_[i] == domain) nodes.push_back(NodeId{i});
    }
    return nodes;
}

} // namespace tedge::net
