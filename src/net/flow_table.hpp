// Priority-ordered flow table with idle/hard timeouts, as installed into the
// OVS switch by the SDN controller.
//
// Lookup fast path: fully-specified entries (src_ip, dst_ip, dst_port, proto
// all concrete -- the common 5G per-flow redirect rule) live in an
// exact-match hash index and resolve in O(1); only wildcard entries are
// linearly scanned. A higher-priority wildcard still beats an exact match,
// preserving OpenFlow semantics and bit-for-bit the results of the old full
// scan.
//
// Expiry is amortized: the table tracks a conservative lower bound on the
// earliest possible expiry and lookups sweep only once that deadline has
// passed, instead of scanning every entry on every packet. Sweep results and
// removed-callback order are identical to the old expire-on-every-lookup
// behaviour because the bound never overshoots a real expiry.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/flow.hpp"

namespace tedge::net {

class FlowTable {
public:
    using RemovedCallback =
        std::function<void(const FlowEntry&, bool idle /*vs hard*/)>;

    /// Install (or overwrite, if an entry with identical match+priority
    /// exists) a flow entry. Returns true if an existing entry was replaced.
    bool install(FlowEntry entry, sim::SimTime now);

    /// Highest-priority matching live entry; touches its idle timer and
    /// counters. Expired entries are swept (with callbacks) before matching.
    std::optional<FlowEntry> lookup(const Packet& packet, sim::SimTime now);

    /// Read-only match without touching counters/timers.
    [[nodiscard]] const FlowEntry* peek(const Packet& packet, sim::SimTime now) const;

    /// Remove all entries whose match equals `match`. Returns removed count.
    std::size_t remove(const FlowMatch& match);

    /// Remove all entries carrying `cookie`. Returns removed count.
    std::size_t remove_by_cookie(std::uint64_t cookie);

    /// Remove all entries whose match pins src_ip to `src_ip` (wildcard
    /// src entries are kept: they are not client state). Returns count.
    std::size_t remove_by_src_ip(Ipv4 src_ip);

    /// Expire timed-out entries; invokes the removed-callback for each.
    std::size_t expire(sim::SimTime now);

    void set_removed_callback(RemovedCallback cb) { removed_cb_ = std::move(cb); }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
    void clear();

    /// Total lookups that found no live entry (table misses -> packet-ins).
    [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
    [[nodiscard]] std::uint64_t hit_count() const { return hits_; }

private:
    struct ExactKey {
        std::uint32_t src = 0;
        std::uint32_t dst = 0;
        std::uint16_t dst_port = 0;
        std::uint8_t proto = 0;

        bool operator==(const ExactKey&) const = default;
    };
    struct ExactKeyHash {
        std::size_t operator()(const ExactKey& k) const noexcept {
            // splitmix64 finalizer over the packed fields.
            std::uint64_t x = (std::uint64_t{k.src} << 32) | k.dst;
            x ^= (std::uint64_t{k.dst_port} << 8) | k.proto;
            x += 0x9e3779b97f4a7c15ull;
            x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
            x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
            return static_cast<std::size_t>(x ^ (x >> 31));
        }
    };

    [[nodiscard]] static bool fully_specified(const FlowMatch& m) {
        return m.src_ip && m.dst_ip && m.dst_port && m.proto;
    }
    [[nodiscard]] static ExactKey key_of(const FlowMatch& m) {
        return {m.src_ip->value(), m.dst_ip->value(), *m.dst_port,
                static_cast<std::uint8_t>(*m.proto)};
    }
    [[nodiscard]] static ExactKey key_of(const Packet& p) {
        return {p.src_ip.value(), p.dst_ip.value(), p.dst_port,
                static_cast<std::uint8_t>(p.proto)};
    }

    /// Earliest instant at which `e` can expire, if it has any timeout.
    [[nodiscard]] static std::optional<sim::SimTime> expiry_of(const FlowEntry& e);

    /// Rebuild the exact index and wildcard list from entries_ (after any
    /// structural removal; removals are control-plane-rare, lookups hot).
    void reindex();
    void note_expiry(const FlowEntry& e);
    void sweep_if_due(sim::SimTime now);

    std::vector<FlowEntry> entries_;
    /// Entry indices of fully-specified matches, bucketed by exact key.
    /// Buckets hold >1 index only when the same match is installed at
    /// several priorities.
    std::unordered_map<ExactKey, std::vector<std::uint32_t>, ExactKeyHash> exact_;
    /// Entry indices with at least one wildcard field (scanned linearly).
    std::vector<std::uint32_t> wildcard_;
    /// Conservative lower bound on the earliest entry expiry; no sweep can
    /// be necessary before this instant. nullopt = nothing can expire.
    std::optional<sim::SimTime> next_expiry_;
    RemovedCallback removed_cb_;
    std::uint64_t misses_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace tedge::net
