// Priority-ordered flow table with idle/hard timeouts, as installed into the
// OVS switch by the SDN controller.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "net/flow.hpp"

namespace tedge::net {

class FlowTable {
public:
    using RemovedCallback =
        std::function<void(const FlowEntry&, bool idle /*vs hard*/)>;

    /// Install (or overwrite, if an entry with identical match+priority
    /// exists) a flow entry. Returns true if an existing entry was replaced.
    bool install(FlowEntry entry, sim::SimTime now);

    /// Highest-priority matching live entry; touches its idle timer and
    /// counters. Expired entries encountered on the way are removed.
    std::optional<FlowEntry> lookup(const Packet& packet, sim::SimTime now);

    /// Read-only match without touching counters/timers.
    [[nodiscard]] const FlowEntry* peek(const Packet& packet, sim::SimTime now) const;

    /// Remove all entries whose match equals `match`. Returns removed count.
    std::size_t remove(const FlowMatch& match);

    /// Remove all entries carrying `cookie`. Returns removed count.
    std::size_t remove_by_cookie(std::uint64_t cookie);

    /// Expire timed-out entries; invokes the removed-callback for each.
    std::size_t expire(sim::SimTime now);

    void set_removed_callback(RemovedCallback cb) { removed_cb_ = std::move(cb); }

    [[nodiscard]] std::size_t size() const { return entries_.size(); }
    [[nodiscard]] const std::vector<FlowEntry>& entries() const { return entries_; }
    void clear() { entries_.clear(); }

    /// Total lookups that found no live entry (table misses -> packet-ins).
    [[nodiscard]] std::uint64_t miss_count() const { return misses_; }
    [[nodiscard]] std::uint64_t hit_count() const { return hits_; }

private:
    std::vector<FlowEntry>::iterator find_best(const Packet& packet, sim::SimTime now);

    std::vector<FlowEntry> entries_;
    RemovedCallback removed_cb_;
    std::uint64_t misses_ = 0;
    std::uint64_t hits_ = 0;
};

} // namespace tedge::net
