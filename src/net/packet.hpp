// The packet abstraction seen by the OpenFlow pipeline. We only model the
// packets that matter for control-plane behaviour (TCP SYNs of new flows);
// bulk data transfer is handled analytically by the TCP model.
#pragma once

#include <cstdint>

#include "net/address.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

/// Opaque node identifier within a Topology.
struct NodeId {
    std::uint32_t value = UINT32_MAX;
    [[nodiscard]] constexpr bool valid() const { return value != UINT32_MAX; }
    constexpr auto operator<=>(const NodeId&) const = default;
};

struct Packet {
    NodeId ingress;            ///< node the packet entered the network at
    Ipv4 src_ip;
    std::uint16_t src_port = 0;
    Ipv4 dst_ip;
    std::uint16_t dst_port = 0;
    Proto proto = Proto::kTcp;
    sim::Bytes size = 64;      ///< wire size (SYN-sized by default)
    bool syn = true;           ///< first packet of a connection

    [[nodiscard]] ServiceAddress dst() const { return {dst_ip, dst_port, proto}; }
    [[nodiscard]] ServiceAddress src() const { return {src_ip, src_port, proto}; }
};

} // namespace tedge::net

template <>
struct std::hash<tedge::net::NodeId> {
    std::size_t operator()(const tedge::net::NodeId& id) const noexcept {
        return std::hash<std::uint32_t>{}(id.value);
    }
};
