// Analytic TCP/HTTP timing model.
//
// The control plane (first packet of a flow) runs through the OVS switch and
// may be delayed arbitrarily long by the SDN controller (on-demand
// deployment with waiting). Once the destination is resolved, connection
// establishment and data transfer are computed analytically from the path's
// RTT and bottleneck bandwidth -- the same quantity curl's time_total
// measures in the paper (from starting the TCP connection until the full
// HTTP response is received).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "net/ovs_switch.hpp"
#include "net/topology.hpp"
#include "simcore/logging.hpp"
#include "simcore/simulation.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

/// Answers "which ingress switch does this client currently enter through?".
/// Implemented by the session plane (sdn::SessionPlane); defined here so the
/// transport layer depends only on the interface, not on the SDN layer.
/// Returning nullptr means "no attachment known" and the transport applies
/// its configured fallback policy.
class IngressResolver {
public:
    virtual ~IngressResolver() = default;
    [[nodiscard]] virtual OvsSwitch* current_ingress(NodeId client) = 0;
};

/// An application endpoint bound to (node, port). The handler receives the
/// request size and must invoke the reply function exactly once (after any
/// simulated service time) with the response size.
class EndpointDirectory {
public:
    using ReplyFn = std::function<void(sim::Bytes response_size)>;
    using Handler = std::function<void(sim::Bytes request_size, ReplyFn reply)>;

    void bind(NodeId node, std::uint16_t port, Handler handler);
    void unbind(NodeId node, std::uint16_t port);
    [[nodiscard]] const Handler* find(NodeId node, std::uint16_t port) const;
    [[nodiscard]] std::size_t size() const { return handlers_.size(); }

private:
    static std::uint64_t key(NodeId node, std::uint16_t port) {
        return (std::uint64_t{node.value} << 16) | port;
    }
    std::unordered_map<std::uint64_t, Handler> handlers_;
};

struct HttpResult {
    bool ok = false;
    std::string error;              ///< non-empty iff !ok
    sim::SimTime time_total;        ///< curl time_total equivalent
    sim::SimTime connect_time;      ///< until TCP handshake completed
    ServiceAddress served_by;       ///< destination after transparent rewrite
    NodeId server_node;
};

/// Facade bundling the simulation, topology, ingress switch, and endpoint
/// directory into the transport API used by clients and the controller.
struct TcpNetConfig {
    sim::Bytes syn_size = 64;
    /// Fixed software overhead per HTTP exchange on top of network transfer
    /// times (kernel, curl, HTTP parsing).
    sim::SimTime per_request_overhead = sim::microseconds(150);
    /// Reject requests from clients with no known attachment instead of
    /// silently entering through the primary ingress. Off by default: ad-hoc
    /// scenarios (benches, probes from helper hosts) never attach.
    bool strict_attachment = false;
};

class TcpNet {
public:
    using Config = TcpNetConfig;

    TcpNet(sim::Simulation& sim, Topology& topo, OvsSwitch& ingress,
           EndpointDirectory& endpoints, Config config = {});

    /// Wire the attachment source of truth (the session plane). Until set --
    /// or for clients the resolver does not know -- requests fall back to
    /// the primary ingress (counted, see unattached_fallbacks()).
    void set_attachment(IngressResolver* resolver) { resolver_ = resolver; }

    /// The ingress switch a client currently enters through; primary-ingress
    /// fallback when unattached.
    [[nodiscard]] OvsSwitch& ingress_for(NodeId client);

    /// Requests that entered through the primary ingress only because the
    /// client had no attachment. Nonzero here with mobility configured means
    /// a session-plane wiring bug: packets entering at the wrong cell.
    [[nodiscard]] std::uint64_t unattached_fallbacks() const {
        return unattached_fallbacks_;
    }

    /// Perform a full HTTP exchange from `client` to `target` (a registered
    /// cloud service address). The first packet traverses the client's
    /// ingress switch; the redirect (if any) is transparent to the caller.
    void http_request(NodeId client, ServiceAddress target, sim::Bytes request_size,
                      std::function<void(const HttpResult&)> done);

    /// TCP port probe from `from` directly to `host` (no switch involved):
    /// a SYN and its answer. `open` reports whether the port accepted.
    /// Completion takes one RTT between the nodes.
    void probe(NodeId from, NodeId host, std::uint16_t port,
               std::function<void(bool open)> done);

    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] Topology& topology() { return topo_; }
    [[nodiscard]] OvsSwitch& ingress() { return ingress_; }
    [[nodiscard]] EndpointDirectory& endpoints() { return endpoints_; }

    [[nodiscard]] std::uint64_t requests_started() const { return requests_started_; }
    [[nodiscard]] std::uint64_t requests_failed() const { return requests_failed_; }

private:
    /// Resolved ingress, or nullptr when unattached under strict_attachment.
    [[nodiscard]] OvsSwitch* resolve_ingress(NodeId client);
    void run_exchange(NodeId client, NodeId ingress_node, sim::SimTime started,
                      const Resolution& r, sim::Bytes request_size,
                      const std::function<void(const HttpResult&)>& done);
    /// Concatenated client -> ingress -> dest path: the data path always
    /// traverses the client's current cell. Equal to the direct shortest
    /// path in single-ingress topologies (every route crosses the gNB
    /// anyway); with several cells it pins the radio leg to the *current*
    /// attachment so links to previously-visited cells cannot short-cut.
    [[nodiscard]] std::optional<PathInfo>
    path_via_ingress(NodeId client, NodeId ingress_node, NodeId dest) const;

    sim::Simulation& sim_;
    Topology& topo_;
    OvsSwitch& ingress_;
    EndpointDirectory& endpoints_;
    Config config_;
    IngressResolver* resolver_ = nullptr;
    sim::Logger log_;
    std::uint64_t requests_started_ = 0;
    std::uint64_t requests_failed_ = 0;
    std::uint64_t unattached_fallbacks_ = 0;
    std::uint16_t next_ephemeral_ = 32768;
};

} // namespace tedge::net
