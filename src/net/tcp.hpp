// Analytic TCP/HTTP timing model.
//
// The control plane (first packet of a flow) runs through the OVS switch and
// may be delayed arbitrarily long by the SDN controller (on-demand
// deployment with waiting). Once the destination is resolved, connection
// establishment and data transfer are computed analytically from the path's
// RTT and bottleneck bandwidth -- the same quantity curl's time_total
// measures in the paper (from starting the TCP connection until the full
// HTTP response is received).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>

#include "net/ovs_switch.hpp"
#include "net/topology.hpp"
#include "simcore/simulation.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

/// An application endpoint bound to (node, port). The handler receives the
/// request size and must invoke the reply function exactly once (after any
/// simulated service time) with the response size.
class EndpointDirectory {
public:
    using ReplyFn = std::function<void(sim::Bytes response_size)>;
    using Handler = std::function<void(sim::Bytes request_size, ReplyFn reply)>;

    void bind(NodeId node, std::uint16_t port, Handler handler);
    void unbind(NodeId node, std::uint16_t port);
    [[nodiscard]] const Handler* find(NodeId node, std::uint16_t port) const;
    [[nodiscard]] std::size_t size() const { return handlers_.size(); }

private:
    static std::uint64_t key(NodeId node, std::uint16_t port) {
        return (std::uint64_t{node.value} << 16) | port;
    }
    std::unordered_map<std::uint64_t, Handler> handlers_;
};

struct HttpResult {
    bool ok = false;
    std::string error;              ///< non-empty iff !ok
    sim::SimTime time_total;        ///< curl time_total equivalent
    sim::SimTime connect_time;      ///< until TCP handshake completed
    ServiceAddress served_by;       ///< destination after transparent rewrite
    NodeId server_node;
};

/// Facade bundling the simulation, topology, ingress switch, and endpoint
/// directory into the transport API used by clients and the controller.
struct TcpNetConfig {
    sim::Bytes syn_size = 64;
    /// Fixed software overhead per HTTP exchange on top of network transfer
    /// times (kernel, curl, HTTP parsing).
    sim::SimTime per_request_overhead = sim::microseconds(150);
};

class TcpNet {
public:
    using Config = TcpNetConfig;

    TcpNet(sim::Simulation& sim, Topology& topo, OvsSwitch& ingress,
           EndpointDirectory& endpoints, Config config = {});

    /// Attach a client to a specific ingress switch (its current gNB/cell).
    /// Clients without an explicit attachment use the primary ingress.
    /// Re-attaching models a radio handover: subsequent first packets enter
    /// the network at the new switch.
    void attach_client(NodeId client, OvsSwitch& ingress);

    /// The ingress switch a client currently enters through.
    [[nodiscard]] OvsSwitch& ingress_for(NodeId client);

    /// Perform a full HTTP exchange from `client` to `target` (a registered
    /// cloud service address). The first packet traverses the client's
    /// ingress switch; the redirect (if any) is transparent to the caller.
    void http_request(NodeId client, ServiceAddress target, sim::Bytes request_size,
                      std::function<void(const HttpResult&)> done);

    /// TCP port probe from `from` directly to `host` (no switch involved):
    /// a SYN and its answer. `open` reports whether the port accepted.
    /// Completion takes one RTT between the nodes.
    void probe(NodeId from, NodeId host, std::uint16_t port,
               std::function<void(bool open)> done);

    [[nodiscard]] sim::Simulation& simulation() { return sim_; }
    [[nodiscard]] Topology& topology() { return topo_; }
    [[nodiscard]] OvsSwitch& ingress() { return ingress_; }
    [[nodiscard]] EndpointDirectory& endpoints() { return endpoints_; }

    [[nodiscard]] std::uint64_t requests_started() const { return requests_started_; }
    [[nodiscard]] std::uint64_t requests_failed() const { return requests_failed_; }

private:
    void run_exchange(NodeId client, sim::SimTime started, const Resolution& r,
                      sim::Bytes request_size,
                      const std::function<void(const HttpResult&)>& done);

    sim::Simulation& sim_;
    Topology& topo_;
    OvsSwitch& ingress_;
    EndpointDirectory& endpoints_;
    Config config_;
    std::unordered_map<NodeId, OvsSwitch*> attachment_;
    std::uint64_t requests_started_ = 0;
    std::uint64_t requests_failed_ = 0;
    std::uint16_t next_ephemeral_ = 32768;
};

} // namespace tedge::net
