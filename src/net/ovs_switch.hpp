// The virtual OVS switch at the network ingress (gNB in the paper's fig. 2).
//
// Packets addressed to registered services are matched against the flow
// table. On a hit the destination is rewritten and the packet forwarded to
// the chosen edge host. On a miss the packet is buffered and a PacketIn is
// raised to the SDN controller over a latency-modelled control channel; the
// controller later answers with FlowMod/PacketOut. While a request is
// buffered the client simply perceives a slow connection establishment --
// exactly the paper's "on-demand deployment with waiting".
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/flow_table.hpp"
#include "net/openflow.hpp"
#include "net/topology.hpp"
#include "simcore/simulation.hpp"

namespace tedge::net {

/// Where a packet ended up after the switch pipeline.
struct Resolution {
    bool dropped = false;
    NodeId dest_node;              ///< host the packet was forwarded to
    ServiceAddress effective_dst;  ///< destination after any rewrite
};

struct OvsSwitchConfig {
    sim::SimTime pipeline_delay = sim::microseconds(10);   ///< table lookup cost
    sim::SimTime channel_latency = sim::microseconds(200); ///< each direction
    std::size_t buffer_capacity = 1024;
};

class OvsSwitch {
public:
    using ResolveCallback = std::function<void(const Resolution&)>;
    using PacketInHandler = std::function<void(const PacketIn&)>;
    using Config = OvsSwitchConfig;

    OvsSwitch(sim::Simulation& sim, Topology& topo, NodeId self, Config config = {});

    /// Connect the controller. PacketIns arrive `channel_latency` after the
    /// miss occurs.
    void set_controller(PacketInHandler handler);

    /// A packet enters the switch. `done` fires once the packet has left the
    /// pipeline (immediately on a table hit; after the controller round trip
    /// and any on-demand deployment on a miss).
    void submit(const Packet& packet, ResolveCallback done);

    // ---- Controller-side API (each call crosses the control channel) ----

    /// Install a flow entry (arrives after channel latency).
    void flow_mod(const FlowMod& mod);

    /// Release or drop a buffered packet (arrives after channel latency).
    void packet_out(const PacketOut& out);

    /// Remove flows carrying this cookie (controller-initiated eviction).
    void remove_flows_by_cookie(std::uint64_t cookie);

    /// Remove flows matching exactly `match` (client-scoped eviction after
    /// a migration cut-over).
    void remove_flows(const FlowMatch& match);

    /// Remove every flow whose match pins this source IP: the stale-state
    /// sweep when a client re-homes away from this cell. Its packets can no
    /// longer enter here, so the entries would only idle out as dead TCAM
    /// weight -- or serve stale rewrites if the client ever bounced back.
    void remove_flows_by_src_ip(Ipv4 src_ip);

    [[nodiscard]] FlowTable& table() { return table_; }
    [[nodiscard]] const FlowTable& table() const { return table_; }
    [[nodiscard]] NodeId node() const { return self_; }
    [[nodiscard]] std::size_t buffered_packets() const { return buffered_.size(); }
    [[nodiscard]] std::uint64_t packet_in_count() const { return packet_ins_; }

private:
    struct Buffered {
        Packet packet;
        ResolveCallback done;
    };

    void resolve_with_entry(const Packet& packet, const FlowEntry& entry,
                            const ResolveCallback& done);
    void resolve_original(const Packet& packet, const ResolveCallback& done);

    sim::Simulation& sim_;
    Topology& topo_;
    NodeId self_;
    Config config_;
    FlowTable table_;
    PacketInHandler controller_;
    std::unordered_map<std::uint64_t, Buffered> buffered_;
    std::uint64_t next_buffer_id_ = 1;
    std::uint64_t packet_ins_ = 0;
};

} // namespace tedge::net
