#include "net/link.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace tedge::net {

SharedLink::SharedLink(sim::Simulation& sim, sim::DataRate capacity)
    : sim_(sim), capacity_(capacity), last_update_(sim.now()) {
    if (capacity.bps() <= 0) throw std::invalid_argument("SharedLink: capacity <= 0");
}

void SharedLink::start_transfer(sim::Bytes size, Callback done) {
    advance_to_now();
    const sim::Bytes clamped = std::max<sim::Bytes>(size, 0);
    flows_.emplace(next_id_++,
                   Flow{static_cast<double>(clamped), clamped, std::move(done)});
    reschedule();
}

void SharedLink::advance_to_now() {
    const sim::SimTime now = sim_.now();
    if (now <= last_update_ || flows_.empty()) {
        last_update_ = now;
        return;
    }
    const double elapsed_s = (now - last_update_).seconds();
    const double per_flow_rate_Bps =
        static_cast<double>(capacity_.bps()) / 8.0 / static_cast<double>(flows_.size());
    const double progressed = per_flow_rate_Bps * elapsed_s;
    for (auto& [id, f] : flows_) {
        f.remaining_bytes = std::max(0.0, f.remaining_bytes - progressed);
    }
    last_update_ = now;
}

void SharedLink::complete_due() {
    advance_to_now();
    // Collect flows that finished (remaining below half a byte -- tolerance
    // for floating-point progress accumulation).
    std::vector<Callback> done;
    for (auto it = flows_.begin(); it != flows_.end();) {
        if (it->second.remaining_bytes <= 0.5) {
            bytes_completed_ += it->second.size;
            done.push_back(std::move(it->second.done));
            it = flows_.erase(it);
        } else {
            ++it;
        }
    }
    reschedule();
    for (auto& cb : done) {
        if (cb) cb();
    }
}

void SharedLink::reschedule() {
    pending_event_.cancel();
    if (flows_.empty()) return;
    double min_remaining = std::numeric_limits<double>::max();
    for (const auto& [id, f] : flows_) {
        min_remaining = std::min(min_remaining, f.remaining_bytes);
    }
    const double per_flow_rate_Bps =
        static_cast<double>(capacity_.bps()) / 8.0 / static_cast<double>(flows_.size());
    const double secs = min_remaining <= 0.5 ? 0.0 : min_remaining / per_flow_rate_Bps;
    pending_event_ = sim_.schedule(sim::from_seconds(secs), [this] { complete_due(); });
}

} // namespace tedge::net
