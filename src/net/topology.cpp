#include "net/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace tedge::net {

NodeId Topology::add_node(const std::string& name, NodeKind kind, Ipv4 ip,
                          std::uint32_t cpu_cores) {
    if (by_name_.contains(name)) {
        throw std::invalid_argument("duplicate node name: " + name);
    }
    if (!ip.is_unspecified() && by_ip_.contains(ip)) {
        throw std::invalid_argument("duplicate node IP: " + ip.str());
    }
    const NodeId id{static_cast<std::uint32_t>(nodes_.size())};
    nodes_.push_back(NodeInfo{id, name, kind, ip, cpu_cores});
    adj_.emplace_back();
    by_name_.emplace(name, id);
    if (!ip.is_unspecified()) by_ip_.emplace(ip, id);
    ++topology_version_;
    return id;
}

NodeId Topology::add_host(const std::string& name, Ipv4 ip, std::uint32_t cpu_cores) {
    if (ip.is_unspecified()) {
        throw std::invalid_argument("host requires an IP: " + name);
    }
    return add_node(name, NodeKind::kHost, ip, cpu_cores);
}

NodeId Topology::add_switch(const std::string& name) {
    return add_node(name, NodeKind::kSwitch, Ipv4{}, 0);
}

void Topology::add_link(NodeId a, NodeId b, sim::SimTime latency, sim::DataRate rate) {
    if (a.value >= nodes_.size() || b.value >= nodes_.size()) {
        throw std::invalid_argument("add_link: unknown node");
    }
    if (a == b) throw std::invalid_argument("add_link: self loop");
    adj_[a.value].push_back(Edge{b.value, latency, rate});
    adj_[b.value].push_back(Edge{a.value, latency, rate});
    ++topology_version_;
}

void Topology::add_ip_alias(NodeId host, Ipv4 ip) {
    if (host.value >= nodes_.size()) throw std::out_of_range("unknown node id");
    if (ip.is_unspecified()) throw std::invalid_argument("alias must be a real IP");
    const auto [it, inserted] = by_ip_.emplace(ip, host);
    if (!inserted && it->second != host) {
        throw std::invalid_argument("IP already bound to another node: " + ip.str());
    }
}

void Topology::for_each_link(
    const std::function<void(NodeId a, NodeId b, sim::SimTime latency,
                             sim::DataRate rate)>& fn) const {
    for (std::uint32_t a = 0; a < adj_.size(); ++a) {
        for (const auto& e : adj_[a]) {
            if (e.to <= a) continue; // each undirected link stored twice
            fn(NodeId{a}, NodeId{e.to}, e.latency, e.rate);
        }
    }
}

const NodeInfo& Topology::node(NodeId id) const {
    if (id.value >= nodes_.size()) throw std::out_of_range("unknown node id");
    return nodes_[id.value];
}

std::optional<NodeId> Topology::find_by_name(const std::string& name) const {
    const auto it = by_name_.find(name);
    return it == by_name_.end() ? std::nullopt : std::optional{it->second};
}

std::optional<NodeId> Topology::find_by_ip(Ipv4 ip) const {
    const auto it = by_ip_.find(ip);
    return it == by_ip_.end() ? std::nullopt : std::optional{it->second};
}

std::optional<PathInfo> Topology::path(NodeId from, NodeId to) const {
    if (from.value >= nodes_.size() || to.value >= nodes_.size()) {
        throw std::out_of_range("path: unknown node id");
    }
    if (cache_version_ != topology_version_) {
        path_cache_.clear(); // the graph changed since these were computed
        cache_version_ = topology_version_;
    }
    const std::uint64_t key = (std::uint64_t{from.value} << 32) | to.value;
    if (const auto it = path_cache_.find(key); it != path_cache_.end()) {
        return it->second;
    }

    // Dijkstra over one-way latency; tracks bottleneck bandwidth and hops
    // along the chosen shortest path.
    constexpr std::int64_t kInf = std::numeric_limits<std::int64_t>::max();
    std::vector<std::int64_t> dist(nodes_.size(), kInf);
    std::vector<std::int64_t> bottleneck(nodes_.size(), 0);
    std::vector<int> hops(nodes_.size(), 0);
    using QEntry = std::pair<std::int64_t, std::uint32_t>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>> pq;

    dist[from.value] = 0;
    bottleneck[from.value] = std::numeric_limits<std::int64_t>::max();
    pq.emplace(0, from.value);

    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d != dist[u]) continue;
        if (u == to.value) break;
        for (const auto& e : adj_[u]) {
            const std::int64_t nd = d + e.latency.ns();
            if (nd < dist[e.to]) {
                dist[e.to] = nd;
                bottleneck[e.to] = std::min(bottleneck[u], e.rate.bps());
                hops[e.to] = hops[u] + 1;
                pq.emplace(nd, e.to);
            }
        }
    }

    std::optional<PathInfo> result;
    if (dist[to.value] != kInf) {
        result = PathInfo{sim::SimTime{dist[to.value]},
                          sim::DataRate{bottleneck[to.value]}, hops[to.value]};
    }
    path_cache_.emplace(key, result);
    return result;
}

sim::SimTime Topology::latency(NodeId from, NodeId to) const {
    const auto p = path(from, to);
    if (!p) throw std::runtime_error("no path between nodes");
    return p->latency;
}

void Topology::open_port(NodeId host, std::uint16_t port, Proto proto) {
    open_ports_[host].insert({port, proto});
}

void Topology::close_port(NodeId host, std::uint16_t port, Proto proto) {
    const auto it = open_ports_.find(host);
    if (it != open_ports_.end()) it->second.erase({port, proto});
}

bool Topology::port_open(NodeId host, std::uint16_t port, Proto proto) const {
    const auto it = open_ports_.find(host);
    return it != open_ports_.end() && it->second.contains({port, proto});
}

} // namespace tedge::net
