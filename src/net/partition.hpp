// Topology partitioning for the sharded simulation kernel.
//
// A TopologyPartition assigns every topology node to a simulation domain and
// derives the conservative lookahead: the minimum latency of any *cut* link
// (a link whose endpoints live in different domains). Any interaction that
// crosses a domain boundary must traverse at least one cut link, so a
// cross-domain message is always timestamped at least `lookahead` after the
// event that caused it -- exactly the progress bound ShardedSimulation's
// windowed execution needs.
//
// Partitioning rule: strongly-coupled components (a site's hosts, switches,
// and cluster-internal fabric) must land in one domain together; only
// genuinely latency-separated boundaries (WAN/metro links between sites, the
// access network between edge sites and the central controller) should be
// cut. Cutting a zero-latency link is rejected outright -- it would make the
// lookahead zero and conservative parallel progress impossible.
#pragma once

#include <cstdint>
#include <vector>

#include "net/topology.hpp"
#include "simcore/domain.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

/// A link whose endpoints were assigned to different domains.
struct CutLink {
    NodeId a;
    NodeId b;
    sim::DomainId domain_a = 0;
    sim::DomainId domain_b = 0;
    sim::SimTime latency;
    sim::DataRate rate;
};

class TopologyPartition {
public:
    /// Partition `topo` by an explicit node -> domain assignment, indexed by
    /// NodeId value (so assignment.size() must equal topo.node_count()).
    /// Throws std::invalid_argument on a size mismatch or when a cut link
    /// has zero latency.
    TopologyPartition(const Topology& topo, std::vector<sim::DomainId> assignment);

    /// Trivial single-domain partition (every node in domain 0, no cut
    /// links, lookahead = SimTime::max()). What serial experiments hosted in
    /// a ShardedSimulation use.
    static TopologyPartition single_domain(const Topology& topo);

    [[nodiscard]] sim::DomainId domain_of(NodeId node) const {
        return assignment_.at(node.value);
    }

    /// Number of domains: max assigned id + 1 (ids need not be dense, but
    /// ShardedSimulation expects one add_domain() call per id in order).
    [[nodiscard]] std::size_t domain_count() const { return domain_count_; }

    /// Links crossing a domain boundary, in Topology::for_each_link order.
    [[nodiscard]] const std::vector<CutLink>& cut_links() const { return cut_links_; }

    /// Minimum cut-link latency -- the conservative window bound. Equals
    /// SimTime::max() when no link is cut (single-domain partitions), which
    /// ShardedSimulation reads as "no cross-domain messaging".
    [[nodiscard]] sim::SimTime lookahead() const { return lookahead_; }

    /// A directed cross-domain channel: any message from `src` to `dst` must
    /// traverse at least one cut link joining the pair, so it is timestamped
    /// at least `lookahead` (the minimum such latency) after the sending
    /// event. Per-pair bounds are often far wider than the global minimum --
    /// a metro ring with one short link clamps lookahead() for everyone,
    /// while channels keep every other pair at its real latency.
    struct DomainChannel {
        sim::DomainId src = 0;
        sim::DomainId dst = 0;
        sim::SimTime lookahead;
    };

    /// Directed channels between domains joined by at least one cut link,
    /// sorted by (src, dst). Links are bidirectional, so channels come in
    /// pairs with equal lookahead. Pairs with no joining cut link have no
    /// channel: under explicit channels ShardedSimulation rejects posts
    /// between them and never makes one domain wait on the other.
    [[nodiscard]] const std::vector<DomainChannel>& channels() const {
        return channels_;
    }

    /// Lookahead of the directed channel src -> dst: the minimum latency of
    /// any cut link joining the pair. SimTime::max() when no cut link joins
    /// them -- under explicit channels the coordinator rejects such posts,
    /// and the pair never constrains each other's windows. Binary search
    /// over the (src, dst)-sorted channel list.
    [[nodiscard]] sim::SimTime channel_lookahead(sim::DomainId src,
                                                 sim::DomainId dst) const;

    /// Install this partition's channel graph on a coordinator
    /// (ShardedSimulation::set_channel per directed channel, plus the global
    /// minimum as Options-level lookahead for single-domain partitions).
    void apply_channels(sim::ShardedSimulation& sharded) const;

    /// Nodes assigned to `domain`, ascending by id.
    [[nodiscard]] std::vector<NodeId> nodes_in(sim::DomainId domain) const;

private:
    std::vector<sim::DomainId> assignment_;
    std::vector<CutLink> cut_links_;
    std::vector<DomainChannel> channels_;
    std::size_t domain_count_ = 0;
    sim::SimTime lookahead_ = sim::SimTime::max();
};

} // namespace tedge::net
