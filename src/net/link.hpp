// SharedLink: a processor-sharing pipe. Concurrent transfers split the
// capacity fairly (the classical TCP fair-share approximation); each
// arrival/departure recomputes per-flow rates and reschedules the next
// completion. Used for registry download channels and cluster NICs, where
// contention between concurrent image pulls is the first-order effect
// (paper fig. 10: up to eight deployments per second at trace start).
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "simcore/event_queue.hpp"
#include "simcore/simulation.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

class SharedLink {
public:
    using Callback = std::function<void()>;

    SharedLink(sim::Simulation& sim, sim::DataRate capacity);

    /// Begin transferring `size` bytes; `done` fires when the last byte has
    /// been pushed through the shared pipe. Zero-size transfers complete on
    /// the next event (after a zero delay), never synchronously.
    void start_transfer(sim::Bytes size, Callback done);

    [[nodiscard]] std::size_t active_transfers() const { return flows_.size(); }
    [[nodiscard]] sim::DataRate capacity() const { return capacity_; }

    /// Total bytes fully transferred so far.
    [[nodiscard]] sim::Bytes bytes_completed() const { return bytes_completed_; }

private:
    struct Flow {
        double remaining_bytes;
        sim::Bytes size;
        Callback done;
    };

    /// Recompute fair-share progress since last update and reschedule the
    /// next completion event.
    void reschedule();
    void advance_to_now();
    void complete_due();

    sim::Simulation& sim_;
    sim::DataRate capacity_;
    std::map<std::uint64_t, Flow> flows_;
    std::uint64_t next_id_ = 0;
    sim::SimTime last_update_;
    sim::EventHandle pending_event_;
    sim::Bytes bytes_completed_ = 0;
};

} // namespace tedge::net
