#include "net/address.hpp"

#include <charconv>
#include <sstream>

namespace tedge::net {
namespace {

bool parse_u16(std::string_view text, std::uint16_t& out) {
    std::uint32_t v = 0;
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || ptr != text.data() + text.size() || v > 0xffff) return false;
    out = static_cast<std::uint16_t>(v);
    return true;
}

} // namespace

std::optional<Ipv4> Ipv4::parse(const std::string& text) {
    std::uint32_t parts[4];
    std::size_t pos = 0;
    for (int i = 0; i < 4; ++i) {
        if (pos >= text.size()) return std::nullopt;
        std::uint32_t v = 0;
        const char* begin = text.data() + pos;
        const char* end = text.data() + text.size();
        const auto [ptr, ec] = std::from_chars(begin, end, v);
        if (ec != std::errc{} || ptr == begin || v > 255) return std::nullopt;
        parts[i] = v;
        pos = static_cast<std::size_t>(ptr - text.data());
        if (i < 3) {
            if (pos >= text.size() || text[pos] != '.') return std::nullopt;
            ++pos;
        }
    }
    if (pos != text.size()) return std::nullopt;
    return Ipv4{static_cast<std::uint8_t>(parts[0]), static_cast<std::uint8_t>(parts[1]),
                static_cast<std::uint8_t>(parts[2]), static_cast<std::uint8_t>(parts[3])};
}

std::string Ipv4::str() const {
    std::ostringstream os;
    os << ((value_ >> 24) & 0xff) << '.' << ((value_ >> 16) & 0xff) << '.'
       << ((value_ >> 8) & 0xff) << '.' << (value_ & 0xff);
    return os.str();
}

const char* to_string(Proto proto) {
    switch (proto) {
        case Proto::kTcp: return "tcp";
        case Proto::kUdp: return "udp";
    }
    return "?";
}

std::string ServiceAddress::str() const {
    std::ostringstream os;
    os << ip.str() << ':' << port;
    if (proto != Proto::kTcp) os << '/' << to_string(proto);
    return os.str();
}

std::optional<ServiceAddress> ServiceAddress::parse(const std::string& text) {
    const auto colon = text.rfind(':');
    if (colon == std::string::npos) return std::nullopt;
    const auto ip = Ipv4::parse(text.substr(0, colon));
    if (!ip) return std::nullopt;

    std::string rest = text.substr(colon + 1);
    Proto proto = Proto::kTcp;
    const auto slash = rest.find('/');
    if (slash != std::string::npos) {
        const std::string proto_text = rest.substr(slash + 1);
        if (proto_text == "udp") {
            proto = Proto::kUdp;
        } else if (proto_text != "tcp") {
            return std::nullopt;
        }
        rest = rest.substr(0, slash);
    }
    std::uint16_t port = 0;
    if (!parse_u16(rest, port)) return std::nullopt;
    return ServiceAddress{*ip, port, proto};
}

} // namespace tedge::net
