// Network topology: nodes (hosts/switches) joined by latency+bandwidth
// links, with shortest-path (lowest-latency) route computation. This models
// the C3 testbed's overlay network (paper fig. 8) as well as arbitrary
// hierarchies of edge clusters.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/address.hpp"
#include "net/packet.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace tedge::net {

enum class NodeKind { kHost, kSwitch };

struct NodeInfo {
    NodeId id;
    std::string name;
    NodeKind kind = NodeKind::kHost;
    Ipv4 ip;                   ///< unspecified for pure switches
    std::uint32_t cpu_cores = 4;
};

/// One-way properties of the best route between two nodes.
struct PathInfo {
    sim::SimTime latency;      ///< one-way propagation+forwarding latency
    sim::DataRate bottleneck;  ///< min link rate on the path
    int hops = 0;

    [[nodiscard]] sim::SimTime rtt() const { return latency * 2; }

    /// One-way delivery time of `size` bytes: latency + serialization at the
    /// bottleneck (store-and-forward effects folded into per-link latency).
    [[nodiscard]] sim::SimTime delivery_time(sim::Bytes size) const {
        return latency + bottleneck.transfer_time(size);
    }
};

class Topology {
public:
    /// Add a node; names must be unique; host IPs must be unique when set.
    NodeId add_host(const std::string& name, Ipv4 ip, std::uint32_t cpu_cores = 4);
    NodeId add_switch(const std::string& name);

    /// Add a bidirectional link. Throws if either node is unknown.
    void add_link(NodeId a, NodeId b, sim::SimTime latency, sim::DataRate rate);

    /// Bind an additional IP address to a host (the cloud node answers for
    /// every registered service address in our experiments).
    void add_ip_alias(NodeId host, Ipv4 ip);

    [[nodiscard]] const NodeInfo& node(NodeId id) const;
    [[nodiscard]] std::optional<NodeId> find_by_name(const std::string& name) const;
    [[nodiscard]] std::optional<NodeId> find_by_ip(Ipv4 ip) const;
    [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

    /// Visit every bidirectional link exactly once, as (a, b, latency, rate)
    /// with a.value < b.value, ordered by a then by insertion. The topology
    /// partitioner uses this to find cut links and derive the conservative
    /// lookahead.
    void for_each_link(
        const std::function<void(NodeId a, NodeId b, sim::SimTime latency,
                                 sim::DataRate rate)>& fn) const;

    /// Lowest-latency path between two nodes, or nullopt if disconnected.
    /// Results are memoized; adding nodes/links invalidates the cache (the
    /// cache is versioned: mutations bump the topology version and stale
    /// entries are discarded lazily on the next query, so building a large
    /// topology does not pay a cache clear per added link).
    [[nodiscard]] std::optional<PathInfo> path(NodeId from, NodeId to) const;

    /// Convenience: path latency, throwing if disconnected.
    [[nodiscard]] sim::SimTime latency(NodeId from, NodeId to) const;

    // --- Port bookkeeping (which node listens on which TCP/UDP port) -----
    // The container runtime opens/closes ports as service instances start
    // and stop; the TCP model and the controller's readiness prober consult
    // this table.

    void open_port(NodeId host, std::uint16_t port, Proto proto = Proto::kTcp);
    void close_port(NodeId host, std::uint16_t port, Proto proto = Proto::kTcp);
    [[nodiscard]] bool port_open(NodeId host, std::uint16_t port,
                                 Proto proto = Proto::kTcp) const;

private:
    struct Edge {
        std::uint32_t to;
        sim::SimTime latency;
        sim::DataRate rate;
    };

    NodeId add_node(const std::string& name, NodeKind kind, Ipv4 ip,
                    std::uint32_t cpu_cores);

    std::vector<NodeInfo> nodes_;
    std::vector<std::vector<Edge>> adj_;
    std::unordered_map<std::string, NodeId> by_name_;
    std::unordered_map<Ipv4, NodeId> by_ip_;
    std::unordered_map<NodeId, std::set<std::pair<std::uint16_t, Proto>>> open_ports_;

    /// Bumped by every routing-relevant mutation (add_host/add_switch/
    /// add_link). The cache remembers which version it was filled at and
    /// empties itself when they diverge -- a lookup after a mutation can
    /// never return a route computed on the old graph.
    std::uint64_t topology_version_ = 0;
    mutable std::uint64_t cache_version_ = 0;
    mutable std::unordered_map<std::uint64_t, std::optional<PathInfo>> path_cache_;
};

} // namespace tedge::net
