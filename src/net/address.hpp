// Network addressing primitives: IPv4 addresses and (IP, port, proto)
// service addresses -- the unit by which edge services are registered with
// the platform provider (paper §II).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace tedge::net {

/// An IPv4 address stored in host byte order.
class Ipv4 {
public:
    constexpr Ipv4() = default;
    constexpr explicit Ipv4(std::uint32_t value) : value_(value) {}
    constexpr Ipv4(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d)
        : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                 (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

    [[nodiscard]] constexpr std::uint32_t value() const { return value_; }
    [[nodiscard]] constexpr bool is_unspecified() const { return value_ == 0; }

    /// Parse dotted-quad notation; returns nullopt on malformed input.
    [[nodiscard]] static std::optional<Ipv4> parse(const std::string& text);

    [[nodiscard]] std::string str() const;

    constexpr auto operator<=>(const Ipv4&) const = default;

private:
    std::uint32_t value_ = 0;
};

enum class Proto : std::uint8_t { kTcp = 6, kUdp = 17 };

[[nodiscard]] const char* to_string(Proto proto);

/// The registered-service identity: unique combination of IP address and
/// port number (plus protocol), per the paper's transparent-access design.
struct ServiceAddress {
    Ipv4 ip;
    std::uint16_t port = 0;
    Proto proto = Proto::kTcp;

    [[nodiscard]] std::string str() const;

    /// Parse "1.2.3.4:80" (TCP assumed) or "1.2.3.4:80/udp".
    [[nodiscard]] static std::optional<ServiceAddress> parse(const std::string& text);

    auto operator<=>(const ServiceAddress&) const = default;
};

} // namespace tedge::net

template <>
struct std::hash<tedge::net::Ipv4> {
    std::size_t operator()(const tedge::net::Ipv4& ip) const noexcept {
        return std::hash<std::uint32_t>{}(ip.value());
    }
};

template <>
struct std::hash<tedge::net::ServiceAddress> {
    std::size_t operator()(const tedge::net::ServiceAddress& a) const noexcept {
        const std::uint64_t k = (std::uint64_t{a.ip.value()} << 24) ^
                                (std::uint64_t{a.port} << 8) ^
                                static_cast<std::uint64_t>(a.proto);
        return std::hash<std::uint64_t>{}(k);
    }
};
