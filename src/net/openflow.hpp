// OpenFlow control-channel message types exchanged between the OVS switch
// and the SDN controller (the subset the paper's pipeline needs: packet-in
// on table miss, flow-mod to install redirect rules, packet-out to release
// or drop a buffered packet).
#pragma once

#include <cstdint>

#include "net/flow.hpp"
#include "net/packet.hpp"

namespace tedge::net {

struct PacketIn {
    std::uint64_t buffer_id = 0;  ///< switch buffer slot holding the packet
    Packet packet;
};

struct FlowMod {
    FlowEntry entry;
};

/// Release (forward) or drop a buffered packet. If `use_table` is true the
/// packet re-enters the flow table (normal case after a FlowMod); otherwise
/// it is forwarded toward its original destination unchanged (cloud
/// fallback) or dropped.
struct PacketOut {
    std::uint64_t buffer_id = 0;
    bool use_table = true;
    bool drop = false;
};

} // namespace tedge::net
