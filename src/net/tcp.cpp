#include "net/tcp.hpp"

#include <stdexcept>

namespace tedge::net {

void EndpointDirectory::bind(NodeId node, std::uint16_t port, Handler handler) {
    handlers_[key(node, port)] = std::move(handler);
}

void EndpointDirectory::unbind(NodeId node, std::uint16_t port) {
    handlers_.erase(key(node, port));
}

const EndpointDirectory::Handler* EndpointDirectory::find(NodeId node,
                                                          std::uint16_t port) const {
    const auto it = handlers_.find(key(node, port));
    return it == handlers_.end() ? nullptr : &it->second;
}

TcpNet::TcpNet(sim::Simulation& sim, Topology& topo, OvsSwitch& ingress,
               EndpointDirectory& endpoints, Config config)
    : sim_(sim), topo_(topo), ingress_(ingress), endpoints_(endpoints),
      config_(config) {}

void TcpNet::attach_client(NodeId client, OvsSwitch& ingress) {
    attachment_[client] = &ingress;
}

OvsSwitch& TcpNet::ingress_for(NodeId client) {
    const auto it = attachment_.find(client);
    return it == attachment_.end() ? ingress_ : *it->second;
}

void TcpNet::http_request(NodeId client, ServiceAddress target,
                          sim::Bytes request_size,
                          std::function<void(const HttpResult&)> done) {
    ++requests_started_;
    const sim::SimTime started = sim_.now();
    OvsSwitch& ingress = ingress_for(client);

    Packet syn;
    syn.ingress = client;
    const auto& client_info = topo_.node(client);
    syn.src_ip = client_info.ip;
    syn.src_port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
    syn.dst_ip = target.ip;
    syn.dst_port = target.port;
    syn.proto = target.proto;
    syn.size = config_.syn_size;
    syn.syn = true;

    // Deliver the SYN into the ingress switch after the client->switch leg.
    const auto to_switch = topo_.path(client, ingress.node());
    if (!to_switch) {
        HttpResult r;
        r.error = "client not connected to ingress switch";
        ++requests_failed_;
        done(r);
        return;
    }
    const sim::SimTime uplink = to_switch->delivery_time(syn.size);
    sim_.schedule(uplink, [this, &ingress, client, started, syn, request_size,
                           done = std::move(done)] {
        ingress.submit(syn, [this, client, started, request_size,
                             done](const Resolution& r) {
            run_exchange(client, started, r, request_size, done);
        });
    });
}

void TcpNet::run_exchange(NodeId client, sim::SimTime started, const Resolution& r,
                          sim::Bytes request_size,
                          const std::function<void(const HttpResult&)>& done) {
    HttpResult result;
    result.served_by = r.effective_dst;

    if (r.dropped) {
        result.error = "packet dropped (no route to destination)";
        ++requests_failed_;
        result.time_total = sim_.now() - started;
        done(result);
        return;
    }
    result.server_node = r.dest_node;

    const auto path = topo_.path(client, r.dest_node);
    if (!path) {
        result.error = "no path from client to server";
        ++requests_failed_;
        result.time_total = sim_.now() - started;
        done(result);
        return;
    }

    // The SYN already consumed roughly one forward latency getting here; the
    // remaining handshake is SYN-ACK back plus the client's ACK forward.
    // We charge: SYN-ACK (one-way) + ACK (one-way) = 1 RTT after resolution.
    const sim::SimTime handshake_rest = path->rtt();

    if (!topo_.port_open(r.dest_node, r.effective_dst.port, r.effective_dst.proto)) {
        // RST comes back after the server-side one-way latency.
        sim_.schedule(path->latency, [this, started, result, done]() mutable {
            result.error = "connection refused";
            ++requests_failed_;
            result.time_total = sim_.now() - started;
            done(result);
        });
        return;
    }

    const auto* handler = endpoints_.find(r.dest_node, r.effective_dst.port);
    if (handler == nullptr) {
        // Port open but nothing accepting HTTP (half-started instance):
        // treat as an unresponsive server -- the request hangs and we model
        // a client-side error after the handshake.
        sim_.schedule(handshake_rest, [this, started, result, done]() mutable {
            result.error = "no endpoint handler bound";
            ++requests_failed_;
            result.time_total = sim_.now() - started;
            done(result);
        });
        return;
    }

    const sim::SimTime request_leg = path->delivery_time(request_size);
    const sim::SimTime pre_server = handshake_rest + request_leg;
    auto handler_copy = *handler; // survive unbind while in flight
    sim_.schedule(pre_server, [this, started, result, path = *path, handler_copy,
                               request_size, done]() mutable {
        result.connect_time = sim_.now() - started;
        handler_copy(request_size, [this, started, result, path,
                                    done](sim::Bytes response_size) mutable {
            const sim::SimTime response_leg =
                path.delivery_time(response_size) + config_.per_request_overhead;
            sim_.schedule(response_leg, [this, started, result, done]() mutable {
                result.ok = true;
                result.time_total = sim_.now() - started;
                done(result);
            });
        });
    });
}

void TcpNet::probe(NodeId from, NodeId host, std::uint16_t port,
                   std::function<void(bool open)> done) {
    const auto path = topo_.path(from, host);
    if (!path) {
        sim_.schedule(sim::SimTime::zero(), [done = std::move(done)] { done(false); });
        return;
    }
    // The answer (SYN-ACK or RST) reflects the port state at the moment the
    // SYN *arrives*, one one-way latency from now.
    sim_.schedule(path->latency, [this, host, port, latency = path->latency,
                                  done = std::move(done)] {
        const bool open = topo_.port_open(host, port, Proto::kTcp);
        sim_.schedule(latency, [open, done] { done(open); });
    });
}

} // namespace tedge::net
