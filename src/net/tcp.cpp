#include "net/tcp.hpp"

#include <stdexcept>

namespace tedge::net {

void EndpointDirectory::bind(NodeId node, std::uint16_t port, Handler handler) {
    handlers_[key(node, port)] = std::move(handler);
}

void EndpointDirectory::unbind(NodeId node, std::uint16_t port) {
    handlers_.erase(key(node, port));
}

const EndpointDirectory::Handler* EndpointDirectory::find(NodeId node,
                                                          std::uint16_t port) const {
    const auto it = handlers_.find(key(node, port));
    return it == handlers_.end() ? nullptr : &it->second;
}

TcpNet::TcpNet(sim::Simulation& sim, Topology& topo, OvsSwitch& ingress,
               EndpointDirectory& endpoints, Config config)
    : sim_(sim), topo_(topo), ingress_(ingress), endpoints_(endpoints),
      config_(config), log_(sim, "tcp") {}

OvsSwitch* TcpNet::resolve_ingress(NodeId client) {
    if (resolver_ != nullptr) {
        if (OvsSwitch* attached = resolver_->current_ingress(client)) {
            return attached;
        }
    }
    if (config_.strict_attachment) return nullptr;
    // Explicit fallback: a plain counter plus a (lazy) debug line, not a
    // metrics series -- the fig09/fig12 artifact byte-diffs must not change
    // for scenarios that never attach clients.
    ++unattached_fallbacks_;
    log_.debug([&] {
        return "client node " + std::to_string(client.value) +
               " unattached; falling back to primary ingress";
    });
    return &ingress_;
}

OvsSwitch& TcpNet::ingress_for(NodeId client) {
    OvsSwitch* resolved = resolve_ingress(client);
    return resolved != nullptr ? *resolved : ingress_;
}

std::optional<PathInfo> TcpNet::path_via_ingress(NodeId client, NodeId ingress_node,
                                                 NodeId dest) const {
    const auto radio = topo_.path(client, ingress_node);
    if (!radio) return std::nullopt;
    if (dest == ingress_node) return radio;
    const auto backhaul = topo_.path(ingress_node, dest);
    if (!backhaul) return std::nullopt;
    PathInfo combined;
    combined.latency = radio->latency + backhaul->latency;
    combined.bottleneck = std::min(radio->bottleneck, backhaul->bottleneck);
    combined.hops = radio->hops + backhaul->hops;
    return combined;
}

void TcpNet::http_request(NodeId client, ServiceAddress target,
                          sim::Bytes request_size,
                          std::function<void(const HttpResult&)> done) {
    ++requests_started_;
    const sim::SimTime started = sim_.now();
    OvsSwitch* resolved = resolve_ingress(client);
    if (resolved == nullptr) {
        HttpResult r;
        r.error = "client not attached to any ingress (strict attachment)";
        ++requests_failed_;
        done(r);
        return;
    }
    OvsSwitch& ingress = *resolved;

    Packet syn;
    syn.ingress = client;
    const auto& client_info = topo_.node(client);
    syn.src_ip = client_info.ip;
    syn.src_port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
    syn.dst_ip = target.ip;
    syn.dst_port = target.port;
    syn.proto = target.proto;
    syn.size = config_.syn_size;
    syn.syn = true;

    // Deliver the SYN into the ingress switch after the client->switch leg.
    const auto to_switch = topo_.path(client, ingress.node());
    if (!to_switch) {
        HttpResult r;
        r.error = "client not connected to ingress switch";
        ++requests_failed_;
        done(r);
        return;
    }
    const sim::SimTime uplink = to_switch->delivery_time(syn.size);
    sim_.schedule(uplink, [this, &ingress, client, started, syn, request_size,
                           done = std::move(done)] {
        ingress.submit(syn, [this, client, ingress_node = ingress.node(), started,
                             request_size, done](const Resolution& r) {
            run_exchange(client, ingress_node, started, r, request_size, done);
        });
    });
}

void TcpNet::run_exchange(NodeId client, NodeId ingress_node, sim::SimTime started,
                          const Resolution& r, sim::Bytes request_size,
                          const std::function<void(const HttpResult&)>& done) {
    HttpResult result;
    result.served_by = r.effective_dst;

    if (r.dropped) {
        result.error = "packet dropped (no route to destination)";
        ++requests_failed_;
        result.time_total = sim_.now() - started;
        done(result);
        return;
    }
    result.server_node = r.dest_node;

    const auto path = path_via_ingress(client, ingress_node, r.dest_node);
    if (!path) {
        result.error = "no path from client to server";
        ++requests_failed_;
        result.time_total = sim_.now() - started;
        done(result);
        return;
    }

    // The SYN already consumed roughly one forward latency getting here; the
    // remaining handshake is SYN-ACK back plus the client's ACK forward.
    // We charge: SYN-ACK (one-way) + ACK (one-way) = 1 RTT after resolution.
    const sim::SimTime handshake_rest = path->rtt();

    if (!topo_.port_open(r.dest_node, r.effective_dst.port, r.effective_dst.proto)) {
        // RST comes back after the server-side one-way latency.
        sim_.schedule(path->latency, [this, started, result, done]() mutable {
            result.error = "connection refused";
            ++requests_failed_;
            result.time_total = sim_.now() - started;
            done(result);
        });
        return;
    }

    const auto* handler = endpoints_.find(r.dest_node, r.effective_dst.port);
    if (handler == nullptr) {
        // Port open but nothing accepting HTTP (half-started instance):
        // treat as an unresponsive server -- the request hangs and we model
        // a client-side error after the handshake.
        sim_.schedule(handshake_rest, [this, started, result, done]() mutable {
            result.error = "no endpoint handler bound";
            ++requests_failed_;
            result.time_total = sim_.now() - started;
            done(result);
        });
        return;
    }

    const sim::SimTime request_leg = path->delivery_time(request_size);
    const sim::SimTime pre_server = handshake_rest + request_leg;
    auto handler_copy = *handler; // survive unbind while in flight
    sim_.schedule(pre_server, [this, started, result, path = *path, handler_copy,
                               request_size, done]() mutable {
        result.connect_time = sim_.now() - started;
        handler_copy(request_size, [this, started, result, path,
                                    done](sim::Bytes response_size) mutable {
            const sim::SimTime response_leg =
                path.delivery_time(response_size) + config_.per_request_overhead;
            sim_.schedule(response_leg, [this, started, result, done]() mutable {
                result.ok = true;
                result.time_total = sim_.now() - started;
                done(result);
            });
        });
    });
}

void TcpNet::probe(NodeId from, NodeId host, std::uint16_t port,
                   std::function<void(bool open)> done) {
    const auto path = topo_.path(from, host);
    if (!path) {
        sim_.schedule(sim::SimTime::zero(), [done = std::move(done)] { done(false); });
        return;
    }
    // The answer (SYN-ACK or RST) reflects the port state at the moment the
    // SYN *arrives*, one one-way latency from now.
    sim_.schedule(path->latency, [this, host, port, latency = path->latency,
                                  done = std::move(done)] {
        const bool open = topo_.port_open(host, port, Proto::kTcp);
        sim_.schedule(latency, [open, done] { done(open); });
    });
}

} // namespace tedge::net
