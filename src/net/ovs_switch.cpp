#include "net/ovs_switch.hpp"

#include <stdexcept>

namespace tedge::net {

OvsSwitch::OvsSwitch(sim::Simulation& sim, Topology& topo, NodeId self, Config config)
    : sim_(sim), topo_(topo), self_(self), config_(config) {}

void OvsSwitch::set_controller(PacketInHandler handler) {
    controller_ = std::move(handler);
}

void OvsSwitch::resolve_with_entry(const Packet& packet, const FlowEntry& entry,
                                   const ResolveCallback& done) {
    Resolution r;
    Packet rewritten = packet;
    if (entry.action.set_dst_ip) rewritten.dst_ip = *entry.action.set_dst_ip;
    if (entry.action.set_dst_port) rewritten.dst_port = *entry.action.set_dst_port;
    r.effective_dst = rewritten.dst();
    if (entry.action.forward_to.valid()) {
        r.dest_node = entry.action.forward_to;
    } else {
        const auto node = topo_.find_by_ip(rewritten.dst_ip);
        if (!node) {
            r.dropped = true;
        } else {
            r.dest_node = *node;
        }
    }
    done(r);
}

void OvsSwitch::resolve_original(const Packet& packet, const ResolveCallback& done) {
    Resolution r;
    r.effective_dst = packet.dst();
    const auto node = topo_.find_by_ip(packet.dst_ip);
    if (!node) {
        r.dropped = true;
    } else {
        r.dest_node = *node;
    }
    done(r);
}

void OvsSwitch::submit(const Packet& packet, ResolveCallback done) {
    sim_.schedule(config_.pipeline_delay, [this, packet, done = std::move(done)] {
        const auto entry = table_.lookup(packet, sim_.now());
        if (entry) {
            resolve_with_entry(packet, *entry, done);
            return;
        }
        if (!controller_) {
            // No controller connected: behave like a learning switch and
            // forward toward the original destination.
            resolve_original(packet, done);
            return;
        }
        if (buffered_.size() >= config_.buffer_capacity) {
            Resolution r;
            r.dropped = true;
            done(r);
            return;
        }
        const std::uint64_t id = next_buffer_id_++;
        buffered_.emplace(id, Buffered{packet, std::move(done)});
        ++packet_ins_;
        sim_.schedule(config_.channel_latency,
                      [this, id, packet] { controller_(PacketIn{id, packet}); });
    });
}

void OvsSwitch::flow_mod(const FlowMod& mod) {
    sim_.schedule(config_.channel_latency,
                  [this, mod] { table_.install(mod.entry, sim_.now()); });
}

void OvsSwitch::packet_out(const PacketOut& out) {
    sim_.schedule(config_.channel_latency, [this, out] {
        const auto it = buffered_.find(out.buffer_id);
        if (it == buffered_.end()) return; // already handled or never existed
        Buffered b = std::move(it->second);
        buffered_.erase(it);
        if (out.drop) {
            Resolution r;
            r.dropped = true;
            b.done(r);
            return;
        }
        if (out.use_table) {
            const auto entry = table_.lookup(b.packet, sim_.now());
            if (entry) {
                resolve_with_entry(b.packet, *entry, b.done);
                return;
            }
            // Controller released the packet but no rule matched (e.g. the
            // rule already expired); fall back to the original destination.
        }
        resolve_original(b.packet, b.done);
    });
}

void OvsSwitch::remove_flows_by_cookie(std::uint64_t cookie) {
    sim_.schedule(config_.channel_latency,
                  [this, cookie] { table_.remove_by_cookie(cookie); });
}

void OvsSwitch::remove_flows(const FlowMatch& match) {
    sim_.schedule(config_.channel_latency,
                  [this, match] { table_.remove(match); });
}

void OvsSwitch::remove_flows_by_src_ip(Ipv4 src_ip) {
    sim_.schedule(config_.channel_latency,
                  [this, src_ip] { table_.remove_by_src_ip(src_ip); });
}

} // namespace tedge::net
