#include "workload/stream.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "simcore/simulation.hpp"

namespace tedge::workload {

PoissonStream::PoissonStream(const Options& options)
    : options_(options), rng_(options.seed) {
    if (options_.services == 0 || options_.clients == 0) {
        throw std::invalid_argument("PoissonStream: need >= 1 service and client");
    }
    if (options_.total_rate_per_s <= 0) {
        throw std::invalid_argument("PoissonStream: rate must be positive");
    }
    const sim::ZipfDistribution zipf(options_.services, options_.zipf_s);
    mean_gap_s_.resize(options_.services);
    heap_.reserve(options_.services);
    for (std::uint32_t s = 0; s < options_.services; ++s) {
        const double rate = options_.total_rate_per_s * zipf.pmf(s);
        mean_gap_s_[s] = 1.0 / rate;
        heap_.push_back(Arrival{sim::from_seconds(rng_.exponential(mean_gap_s_[s])), s});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
}

std::optional<TraceEvent> PoissonStream::next() {
    if (emitted_ >= options_.limit) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Arrival arrival = heap_.back();

    TraceEvent event;
    event.at = arrival.at;
    event.service = arrival.service;
    event.client = static_cast<std::uint32_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(options_.clients) - 1));

    heap_.back() = Arrival{
        arrival.at +
            sim::from_seconds(rng_.exponential(mean_gap_s_[arrival.service])),
        arrival.service};
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++emitted_;
    return event;
}

PoissonStream::Options PoissonStream::shard_options(const Options& base,
                                                    std::uint32_t shard,
                                                    std::uint32_t num_shards) {
    if (num_shards == 0 || shard >= num_shards) {
        throw std::invalid_argument("PoissonStream::shard_options: bad shard index");
    }
    Options options = base;
    options.total_rate_per_s = base.total_rate_per_s / num_shards;
    options.limit = base.limit / num_shards +
                    (shard < base.limit % num_shards ? 1 : 0);
    // Stateless derivation keyed by the *stable* shard id only: shard s's
    // arrival sequence is the same at any shard count, and distinct shards
    // never correlate.
    options.seed = sim::Rng::stream_seed(base.seed, shard);
    return options;
}

FluidPoissonStream::FluidPoissonStream(const Options& options)
    : options_(options), rng_(options.seed) {
    if (options_.services == 0 || options_.clients == 0) {
        throw std::invalid_argument(
            "FluidPoissonStream: need >= 1 service and client");
    }
    if (options_.total_rate_per_s <= 0) {
        throw std::invalid_argument("FluidPoissonStream: rate must be positive");
    }
    if (options_.epoch_period.ns() <= 0) {
        throw std::invalid_argument(
            "FluidPoissonStream: epoch period must be positive");
    }
    const sim::ZipfDistribution zipf(options_.services, options_.zipf_s);
    rate_per_s_.resize(options_.services);
    last_at_.resize(options_.services);
    heap_.reserve(options_.services);
    for (std::uint32_t s = 0; s < options_.services; ++s) {
        rate_per_s_[s] = options_.total_rate_per_s * zipf.pmf(s);
        heap_.push_back(Arrival{
            sim::from_seconds(rng_.exponential(1.0 / rate_per_s_[s])), s,
            /*cold=*/true});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
}

sim::SimTime FluidPoissonStream::next_boundary(sim::SimTime at) const {
    const std::int64_t period = options_.epoch_period.ns();
    return sim::nanoseconds((at.ns() / period + 1) * period);
}

std::optional<TraceEvent> FluidPoissonStream::next() {
    while (flows_emitted_ < options_.limit) {
        std::pop_heap(heap_.begin(), heap_.end(), later);
        const Arrival arrival = heap_.back();
        const std::uint32_t s = arrival.service;
        const std::size_t budget = options_.limit - flows_emitted_;

        TraceEvent event;
        event.at = arrival.at;
        event.service = s;
        event.client = static_cast<std::uint32_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(options_.clients) - 1));

        if (arrival.cold) {
            // The service's exact first flow; from here on it is warm and
            // aggregates at epoch boundaries, starting with the partial
            // window (t0, next boundary].
            event.count = 1;
            last_at_[s] = arrival.at;
            heap_.back() = Arrival{next_boundary(arrival.at), s, /*cold=*/false};
            std::push_heap(heap_.begin(), heap_.end(), later);
            ++flows_emitted_;
            return event;
        }

        const double window_s = (arrival.at - last_at_[s]).seconds();
        const std::uint64_t drawn = rng_.poisson(rate_per_s_[s] * window_s);
        last_at_[s] = arrival.at;
        heap_.back() =
            Arrival{arrival.at + options_.epoch_period, s, /*cold=*/false};
        std::push_heap(heap_.begin(), heap_.end(), later);
        if (drawn == 0) continue; // empty window: no event, no kernel cost
        event.count = std::min<std::uint64_t>(drawn, budget);
        flows_emitted_ += event.count;
        return event;
    }
    return std::nullopt;
}

StreamPump::StreamPump(sim::Simulation& sim, RequestStream& stream,
                       Handler on_event)
    : sim_(&sim), stream_(&stream), on_event_(std::move(on_event)) {}

void StreamPump::start() {
    if (started_) return;
    started_ = true;
    pending_ = stream_->next();
    if (pending_) sim_->schedule_at(pending_->at, [this] { fire(); });
}

void StreamPump::fire() {
    const TraceEvent event = *pending_;
    // Pull and schedule the successor *before* handling: the handler sees
    // the next arrival and can start its memory loads early.
    pending_ = stream_->next();
    if (pending_) sim_->schedule_at(pending_->at, [this] { fire(); });
    on_event_(event, pending_);
    ++delivered_;
}

} // namespace tedge::workload
