#include "workload/stream.hpp"

#include <algorithm>
#include <stdexcept>

namespace tedge::workload {

PoissonStream::PoissonStream(const Options& options)
    : options_(options), rng_(options.seed) {
    if (options_.services == 0 || options_.clients == 0) {
        throw std::invalid_argument("PoissonStream: need >= 1 service and client");
    }
    if (options_.total_rate_per_s <= 0) {
        throw std::invalid_argument("PoissonStream: rate must be positive");
    }
    const sim::ZipfDistribution zipf(options_.services, options_.zipf_s);
    mean_gap_s_.resize(options_.services);
    heap_.reserve(options_.services);
    for (std::uint32_t s = 0; s < options_.services; ++s) {
        const double rate = options_.total_rate_per_s * zipf.pmf(s);
        mean_gap_s_[s] = 1.0 / rate;
        heap_.push_back(Arrival{sim::from_seconds(rng_.exponential(mean_gap_s_[s])), s});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
}

std::optional<TraceEvent> PoissonStream::next() {
    if (emitted_ >= options_.limit) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Arrival arrival = heap_.back();

    TraceEvent event;
    event.at = arrival.at;
    event.service = arrival.service;
    event.client = static_cast<std::uint32_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(options_.clients) - 1));

    heap_.back() = Arrival{
        arrival.at +
            sim::from_seconds(rng_.exponential(mean_gap_s_[arrival.service])),
        arrival.service};
    std::push_heap(heap_.begin(), heap_.end(), later);
    ++emitted_;
    return event;
}

} // namespace tedge::workload
