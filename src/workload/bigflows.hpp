// Synthetic bigFlows-like trace generator.
//
// The paper extracted all TCP conversations to public port-80 addresses
// from the five-minute bigFlows.pcap capture and kept destinations with at
// least 20 requests: 42 services, 1708 requests (fig. 9), with service
// deployments bursting to eight per second at the start (fig. 10). We
// regenerate traces matching those published marginals: Zipf-skewed
// service popularity with a floor, Poisson-ish arrivals over the horizon.
#pragma once

#include <cstdint>

#include "simcore/random.hpp"
#include "workload/trace.hpp"

namespace tedge::workload {

struct BigFlowsOptions {
    std::uint32_t services = 42;
    std::size_t requests = 1708;
    sim::SimTime horizon = sim::seconds(300);
    std::uint32_t clients = 20;
    double zipf_s = 0.9;            ///< popularity skew
    std::size_t min_requests = 20;  ///< the paper's >= 20 requests filter
    std::uint64_t seed = 1;
};

/// Generate a trace with the given marginals. Deterministic per seed.
/// Guarantees: exactly `requests` events, every service receives at least
/// `min_requests`, all events within [0, horizon).
[[nodiscard]] Trace synthesize_bigflows(const BigFlowsOptions& options = {});

} // namespace tedge::workload
