// Synthetic bigFlows-like trace generator.
//
// The paper extracted all TCP conversations to public port-80 addresses
// from the five-minute bigFlows.pcap capture and kept destinations with at
// least 20 requests: 42 services, 1708 requests (fig. 9), with service
// deployments bursting to eight per second at the start (fig. 10). We
// regenerate traces matching those published marginals: Zipf-skewed
// service popularity with a floor, Poisson-ish arrivals over the horizon.
#pragma once

#include <cstdint>

#include "simcore/random.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace tedge::workload {

struct BigFlowsOptions {
    std::uint32_t services = 42;
    std::size_t requests = 1708;
    sim::SimTime horizon = sim::seconds(300);
    std::uint32_t clients = 20;
    double zipf_s = 0.9;            ///< popularity skew
    std::size_t min_requests = 20;  ///< the paper's >= 20 requests filter
    std::uint64_t seed = 1;
};

/// Streaming bigFlows generator: emits the exact same event sequence as
/// `synthesize_bigflows` (same seed, same draw order, same sort) through the
/// RequestStream interface, so the runner pulls events one at a time instead
/// of pre-scheduling the whole trace.
///
/// The sequence is globally sorted over iid per-service draws from one
/// shared RNG, so an O(1)-memory exact replay is mathematically impossible:
/// the first emitted event can depend on the last draw. The stream therefore
/// buffers compact 16-byte records internally -- what it eliminates is the
/// Trace copy and, far more importantly, the per-event scheduled closure the
/// old replay path materialized. Workloads that need truly flat memory at
/// 10^6 flows use PoissonStream (O(services) state) instead.
class BigFlowsStream final : public RequestStream {
public:
    explicit BigFlowsStream(const BigFlowsOptions& options = {});

    std::optional<TraceEvent> next() override;
    [[nodiscard]] std::uint32_t service_count() const override {
        return options_.services;
    }
    [[nodiscard]] std::uint32_t client_count() const override {
        return options_.clients;
    }
    [[nodiscard]] std::optional<std::size_t> total() const override {
        return events_.size();
    }
    /// Timestamp of the last event (mirrors Trace::horizon()).
    [[nodiscard]] std::optional<sim::SimTime> horizon() const override {
        return events_.empty() ? sim::SimTime{} : events_.back().at;
    }

private:
    BigFlowsOptions options_;
    std::vector<TraceEvent> events_;
    std::size_t cursor_ = 0;
};

/// Generate a trace with the given marginals. Deterministic per seed.
/// Guarantees: exactly `requests` events, every service receives at least
/// `min_requests`, all events within [0, horizon). Implemented as a drain
/// of BigFlowsStream, so the two are identical event-for-event.
[[nodiscard]] Trace synthesize_bigflows(const BigFlowsOptions& options = {});

} // namespace tedge::workload
