#include "workload/bigflows.hpp"

#include <algorithm>
#include <stdexcept>

namespace tedge::workload {

BigFlowsStream::BigFlowsStream(const BigFlowsOptions& options)
    : options_(options) {
    if (options.services == 0 || options.clients == 0) {
        throw std::invalid_argument("bigflows: need >= 1 service and client");
    }
    if (options.requests < options.services * options.min_requests) {
        throw std::invalid_argument(
            "bigflows: requests cannot satisfy the per-service minimum");
    }

    sim::Rng rng(options.seed);

    // --- per-service request counts: floor + Zipf-distributed remainder --
    std::vector<std::size_t> counts(options.services, options.min_requests);
    std::size_t assigned = options.services * options.min_requests;
    const sim::ZipfDistribution zipf(options.services, options.zipf_s);
    std::vector<double> weights(options.services);
    for (std::uint32_t s = 0; s < options.services; ++s) weights[s] = zipf.pmf(s);
    while (assigned < options.requests) {
        ++counts[rng.weighted_index(weights)];
        ++assigned;
    }

    // --- arrival times: per-service Poisson processes over the horizon ---
    // Uniform order statistics are equivalent to conditioned Poisson
    // arrivals; first requests therefore concentrate near the start for
    // popular services, reproducing fig. 10's early deployment burst.
    events_.reserve(options.requests);
    const double horizon_s = options.horizon.seconds();
    for (std::uint32_t s = 0; s < options.services; ++s) {
        for (std::size_t i = 0; i < counts[s]; ++i) {
            TraceEvent event;
            event.at = sim::from_seconds(rng.uniform(0.0, horizon_s));
            event.client = static_cast<std::uint32_t>(
                rng.uniform_int(0, static_cast<std::int64_t>(options.clients) - 1));
            event.service = s;
            events_.push_back(event);
        }
    }
    // Same ordering as Trace::finalize() so the stream and the materialized
    // trace emit identical sequences.
    std::sort(events_.begin(), events_.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.client != b.client) return a.client < b.client;
                  return a.service < b.service;
              });
}

std::optional<TraceEvent> BigFlowsStream::next() {
    if (cursor_ >= events_.size()) return std::nullopt;
    return events_[cursor_++];
}

Trace synthesize_bigflows(const BigFlowsOptions& options) {
    BigFlowsStream stream(options);
    Trace trace;
    while (const auto event = stream.next()) trace.add(*event);
    trace.finalize(); // stable sort of an already-sorted sequence: no-op
    return trace;
}

} // namespace tedge::workload
