// Lazy request streams: the workload side of the scale path.
//
// A RequestStream hands out TraceEvents one at a time in nondecreasing time
// order; the TraceRunner pulls the next event only when the previous one has
// fired, so the event kernel holds exactly one pending workload arrival at
// any moment instead of the whole trace. At a million concurrent flows the
// pre-change replay materialized one heap-allocated closure per request up
// front (~hundreds of MB); a pulled stream keeps workload memory flat.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "simcore/random.hpp"
#include "simcore/time.hpp"
#include "workload/trace.hpp"

namespace tedge::sim {
class Simulation;
}

namespace tedge::workload {

class RequestStream {
public:
    virtual ~RequestStream() = default;

    /// The next event (nondecreasing `at`), or nullopt when exhausted.
    virtual std::optional<TraceEvent> next() = 0;

    /// Largest service index + 1 the stream can emit.
    [[nodiscard]] virtual std::uint32_t service_count() const = 0;
    /// Largest client index + 1 the stream can emit.
    [[nodiscard]] virtual std::uint32_t client_count() const = 0;
    /// Total number of events the stream will emit, when known up front.
    [[nodiscard]] virtual std::optional<std::size_t> total() const = 0;
    /// Upper bound on event timestamps, when known up front (drain-deadline
    /// anchor; streams with data-dependent length return nullopt and the
    /// runner anchors on the last emitted event instead).
    [[nodiscard]] virtual std::optional<sim::SimTime> horizon() const = 0;
};

/// Stream view over an already-materialized Trace (compat path: everything
/// that still builds a Trace replays through the same streaming runner).
/// The Trace must outlive the view.
class TraceView final : public RequestStream {
public:
    explicit TraceView(const Trace& trace) : trace_(&trace) {}

    std::optional<TraceEvent> next() override {
        if (cursor_ >= trace_->size()) return std::nullopt;
        return trace_->events()[cursor_++];
    }
    [[nodiscard]] std::uint32_t service_count() const override {
        return trace_->service_count();
    }
    [[nodiscard]] std::uint32_t client_count() const override {
        return trace_->client_count();
    }
    [[nodiscard]] std::optional<std::size_t> total() const override {
        return trace_->size();
    }
    [[nodiscard]] std::optional<sim::SimTime> horizon() const override {
        return trace_->horizon();
    }

private:
    const Trace* trace_;
    std::size_t cursor_ = 0;
};

/// Open-ended synthetic workload with O(services) state: one Poisson arrival
/// process per service, rates Zipf-weighted to `total_rate_per_s`, merged on
/// the fly through a binary heap of per-service next-arrival times. Clients
/// are drawn uniformly per event. Deterministic per seed; memory does not
/// depend on `limit`, which is what lets bench_scale sweep to 10^6 flows
/// with a flat footprint.
class PoissonStream final : public RequestStream {
public:
    struct Options {
        std::uint32_t services = 42;
        std::uint32_t clients = 20;
        double zipf_s = 0.9;             ///< service popularity skew
        double total_rate_per_s = 100.0; ///< aggregate arrival rate
        std::size_t limit = 10'000;      ///< events to emit
        std::uint64_t seed = 1;
    };

    explicit PoissonStream(const Options& options);

    /// Options for shard `shard` of `num_shards` parallel streams jointly
    /// equivalent in load to `base`: the aggregate rate and event budget are
    /// split evenly (remainder events to the low shards) and the seed is
    /// derived statelessly from (base.seed, shard) -- so shard s draws the
    /// same sequence whether it runs among 2 shards or 8, and no two shards
    /// share a stream.
    [[nodiscard]] static Options shard_options(const Options& base,
                                               std::uint32_t shard,
                                               std::uint32_t num_shards);

    std::optional<TraceEvent> next() override;
    [[nodiscard]] std::uint32_t service_count() const override {
        return options_.services;
    }
    [[nodiscard]] std::uint32_t client_count() const override {
        return options_.clients;
    }
    [[nodiscard]] std::optional<std::size_t> total() const override {
        return options_.limit;
    }
    [[nodiscard]] std::optional<sim::SimTime> horizon() const override {
        return std::nullopt; // data-dependent: ends after `limit` arrivals
    }

private:
    struct Arrival {
        sim::SimTime at;
        std::uint32_t service;
    };
    /// Min-heap ordered by (at, service) -- service as tie-break keeps the
    /// merge deterministic.
    [[nodiscard]] static bool later(const Arrival& a, const Arrival& b) {
        if (a.at != b.at) return a.at > b.at;
        return a.service > b.service;
    }

    Options options_;
    sim::Rng rng_;
    std::vector<double> mean_gap_s_;  ///< per-service mean inter-arrival
    std::vector<Arrival> heap_;
    std::size_t emitted_ = 0;
};

/// Hybrid-fidelity variant of PoissonStream (DESIGN §9): each service's
/// *first* arrival is an exact per-flow event at its true Poisson time (the
/// cold start the control plane must resolve per-packet), after which the
/// service is warm and its arrivals collapse into per-epoch batches -- one
/// TraceEvent per (epoch boundary, service) whose `count` is a Poisson draw
/// over the elapsed window. The kernel therefore carries O(services) events
/// per epoch instead of one per flow, which is what lets bench_scale sweep
/// to 10M-100M resident flows. Batch counts are clamped so the total number
/// of flows emitted (sum of counts) equals `limit` exactly. Deterministic
/// per seed; zero-count windows are skipped without emission.
class FluidPoissonStream final : public RequestStream {
public:
    struct Options {
        std::uint32_t services = 42;
        std::uint32_t clients = 20;
        double zipf_s = 0.9;             ///< service popularity skew
        double total_rate_per_s = 100.0; ///< aggregate arrival rate
        std::size_t limit = 10'000;      ///< flows to emit (sum of counts)
        std::uint64_t seed = 1;
        /// Aggregation grid; must match the FlowMemory epoch under test so
        /// batch admissions land on the lazy-advance boundaries.
        sim::SimTime epoch_period = sim::milliseconds(100);
    };

    explicit FluidPoissonStream(const Options& options);

    std::optional<TraceEvent> next() override;
    [[nodiscard]] std::uint32_t service_count() const override {
        return options_.services;
    }
    [[nodiscard]] std::uint32_t client_count() const override {
        return options_.clients;
    }
    [[nodiscard]] std::optional<std::size_t> total() const override {
        return std::nullopt; // TraceEvent count is data-dependent
    }
    [[nodiscard]] std::optional<sim::SimTime> horizon() const override {
        return std::nullopt;
    }
    /// Flows emitted so far (sum of event counts).
    [[nodiscard]] std::size_t flows_emitted() const { return flows_emitted_; }

private:
    struct Arrival {
        sim::SimTime at;
        std::uint32_t service;
        bool cold;  ///< true: the service's exact first flow, not a batch
    };
    [[nodiscard]] static bool later(const Arrival& a, const Arrival& b) {
        if (a.at != b.at) return a.at > b.at;
        return a.service > b.service;
    }
    /// First epoch boundary strictly after `at`.
    [[nodiscard]] sim::SimTime next_boundary(sim::SimTime at) const;

    Options options_;
    sim::Rng rng_;
    std::vector<double> rate_per_s_;   ///< per-service arrival rate
    std::vector<sim::SimTime> last_at_; ///< window start of the next batch
    std::vector<Arrival> heap_;
    std::size_t flows_emitted_ = 0;
};

/// Pump a RequestStream through a kernel one pending arrival at a time (the
/// TraceRunner pattern, packaged): exactly one workload event is in the
/// queue at any moment, and the re-arm closure captures a single pointer so
/// it stays inside the std::function small-object buffer -- no per-event
/// heap allocation. The handler receives the fired event plus a peek at the
/// next pending one (already scheduled), so call sites can software-pipeline
/// work for it (e.g. FlowMemory::prefetch). One pump per domain is how a
/// sharded run feeds per-shard workload into per-shard kernels.
class StreamPump {
public:
    using Handler = std::function<void(const TraceEvent& event,
                                       const std::optional<TraceEvent>& next)>;

    /// All three referents must outlive the pump (or the simulation must not
    /// run past the pump's destruction).
    StreamPump(sim::Simulation& sim, RequestStream& stream, Handler on_event);

    /// Schedule the first pending arrival (no-op on an exhausted stream).
    void start();

    /// Events fired so far.
    [[nodiscard]] std::size_t delivered() const { return delivered_; }
    /// True once the stream is exhausted and the last event has fired.
    [[nodiscard]] bool done() const { return started_ && !pending_; }

private:
    void fire();

    sim::Simulation* sim_;
    RequestStream* stream_;
    Handler on_event_;
    std::optional<TraceEvent> pending_;
    std::size_t delivered_ = 0;
    bool started_ = false;
};

} // namespace tedge::workload
