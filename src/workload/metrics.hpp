// Measurement collection and table rendering for the bench harness.
//
// RequestRecord mirrors what the paper's timecurl.sh script captures per
// request (curl's time_total: from starting the TCP connection until the
// full HTTP response); MetricsCollector aggregates per-tag SampleSets; and
// TextTable renders the paper-vs-measured comparison tables the benches
// print.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/tcp.hpp"
#include "simcore/stats.hpp"
#include "simcore/symbol_table.hpp"

namespace tedge::workload {

struct RequestRecord {
    std::string service;     ///< service key or name
    std::uint32_t client = 0;
    sim::SimTime sent;
    bool ok = false;
    sim::SimTime time_total; ///< curl time_total equivalent
    net::NodeId served_by;   ///< node that answered
};

class MetricsCollector {
public:
    void add(RequestRecord record);

    [[nodiscard]] const std::vector<RequestRecord>& records() const { return records_; }
    [[nodiscard]] std::size_t count() const { return records_.size(); }
    [[nodiscard]] std::size_t failures() const { return failures_; }

    /// Per-tag sample series (milliseconds), keyed by caller-defined tags.
    /// Heterogeneous lookup: a string_view tag only allocates when the tag
    /// is seen for the first time.
    sim::SampleSet& series(std::string_view tag);
    [[nodiscard]] const sim::SampleSet* find_series(std::string_view tag) const;
    /// Tag list in sorted order (the storage is unordered; callers render
    /// tables from this, which must stay deterministic).
    [[nodiscard]] std::vector<std::string> tags() const;

    void clear();

private:
    std::vector<RequestRecord> records_;
    std::unordered_map<std::string, sim::SampleSet, sim::StringHash,
                       std::equal_to<>>
        series_;
    std::size_t failures_ = 0;
};

/// Fixed-width ASCII table (first column left-aligned, rest right-aligned).
class TextTable {
public:
    explicit TextTable(std::vector<std::string> header);

    void add_row(std::vector<std::string> cells);

    /// Convenience: format a double with the given precision.
    [[nodiscard]] static std::string num(double value, int precision = 1);

    [[nodiscard]] std::string str() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tedge::workload
