// Request traces: the (time, client, service) tuples replayed against the
// testbed. The paper drives its evaluation with TCP conversations extracted
// from the five-minute bigFlows.pcap capture (42 services receiving >= 20
// requests each, 1708 requests total); we regenerate traces with the same
// marginals (workload/bigflows.hpp) and can load/store CSV.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "simcore/time.hpp"

namespace tedge::workload {

struct TraceEvent {
    sim::SimTime at;
    std::uint32_t client = 0;   ///< client index (maps to an RPi node)
    std::uint32_t service = 0;  ///< service index (maps to a registered address)
    /// Flows this event carries. 1 for ordinary per-request events; > 1 for
    /// the aggregate batches a hybrid-fidelity stream emits at epoch
    /// boundaries (workload/stream.hpp). CSV round-trips ignore it.
    std::uint64_t count = 1;
};

class Trace {
public:
    void add(TraceEvent event);

    /// Sort events by (time, client, service) -- call once after building.
    void finalize();

    [[nodiscard]] const std::vector<TraceEvent>& events() const { return events_; }
    [[nodiscard]] std::size_t size() const { return events_.size(); }
    [[nodiscard]] bool empty() const { return events_.empty(); }

    /// Largest service index + 1 (0 when empty).
    [[nodiscard]] std::uint32_t service_count() const;
    /// Largest client index + 1 (0 when empty).
    [[nodiscard]] std::uint32_t client_count() const;
    /// Timestamp of the last event.
    [[nodiscard]] sim::SimTime horizon() const;

    /// Requests per service index.
    [[nodiscard]] std::vector<std::size_t> requests_per_service() const;

    /// CSV round trip: "time_ms,client,service" lines with a header.
    [[nodiscard]] std::string to_csv() const;
    [[nodiscard]] static Trace from_csv(const std::string& text);

private:
    std::vector<TraceEvent> events_;
};

} // namespace tedge::workload
