// Mobility traces: when does which UE cross into which cell?
//
// A MobilityStream hands out HandoverEvents one at a time in nondecreasing
// time order -- the same lazy pull discipline as RequestStream, so a run
// holds one pending handover, not the whole trace. Per-UE randomness comes
// from Rng::for_stream(seed, ue): UE k's trajectory is a pure function of
// (seed, k), independent of how many other UEs exist or which shard replays
// it -- the property the sharded mobility differential relies on.
//
// Two generators:
//  - WaypointMobility: each UE dwells exponentially in a cell, then jumps to
//    a uniformly-drawn *other* cell (random-waypoint on a cell graph).
//  - CorridorMobility: each UE departs within a window and sweeps the cell
//    corridor 0 -> cells-1 at constant (jittered) speed -- the commuter-wave
//    scenario of bench_mobility, where every UE crosses every cell once.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/time.hpp"

namespace tedge::workload {

/// UE `ue` leaves cell `from_cell` and attaches to cell `to_cell` at `at`.
struct HandoverEvent {
    sim::SimTime at;
    std::uint32_t ue = 0;
    std::uint32_t from_cell = 0;
    std::uint32_t to_cell = 0;
};

class MobilityStream {
public:
    virtual ~MobilityStream() = default;

    /// The next handover (nondecreasing `at`), or nullopt when exhausted.
    virtual std::optional<HandoverEvent> next() = 0;

    [[nodiscard]] virtual std::uint32_t ue_count() const = 0;
    [[nodiscard]] virtual std::uint32_t cell_count() const = 0;
    /// The cell a UE occupies at t=0 (before its first handover).
    [[nodiscard]] virtual std::uint32_t initial_cell(std::uint32_t ue) const = 0;
};

/// Random-waypoint over cells: exponential dwell, uniform next cell.
class WaypointMobility final : public MobilityStream {
public:
    struct Options {
        std::uint32_t ues = 20;
        std::uint32_t cells = 4;
        sim::SimTime mean_dwell = sim::seconds(30);
        sim::SimTime horizon = sim::seconds(300); ///< no handovers after this
        std::uint64_t seed = 1;
    };

    explicit WaypointMobility(const Options& options);

    std::optional<HandoverEvent> next() override;
    [[nodiscard]] std::uint32_t ue_count() const override { return options_.ues; }
    [[nodiscard]] std::uint32_t cell_count() const override {
        return options_.cells;
    }
    [[nodiscard]] std::uint32_t initial_cell(std::uint32_t ue) const override {
        return initial_cells_[ue];
    }

private:
    struct Pending {
        sim::SimTime at;
        std::uint32_t ue;
        std::uint32_t from_cell;
        std::uint32_t to_cell;
    };
    /// Min-heap by (at, ue) -- ue as tie-break keeps the merge deterministic.
    [[nodiscard]] static bool later(const Pending& a, const Pending& b) {
        if (a.at != b.at) return a.at > b.at;
        return a.ue > b.ue;
    }
    /// Draw UE `ue`'s next crossing from `from` at `after`; push (and return
    /// true) unless the crossing falls past the horizon.
    bool arm(std::uint32_t ue, std::uint32_t from, sim::SimTime after);

    Options options_;
    std::vector<sim::Rng> rngs_;            ///< per-UE streams
    std::vector<std::uint32_t> initial_cells_;
    std::vector<Pending> heap_;
};

/// Linear corridor sweep: depart within a window, cross cells in order.
class CorridorMobility final : public MobilityStream {
public:
    struct Options {
        std::uint32_t ues = 20;
        std::uint32_t cells = 4;
        double cell_span_m = 500.0;      ///< corridor length per cell
        double speed_mps = 15.0;         ///< nominal UE speed
        double speed_jitter = 0.2;       ///< per-UE factor in [1-j, 1+j]
        sim::SimTime departure_window = sim::seconds(60);
        std::uint64_t seed = 1;
    };

    explicit CorridorMobility(const Options& options);

    std::optional<HandoverEvent> next() override;
    [[nodiscard]] std::uint32_t ue_count() const override { return options_.ues; }
    [[nodiscard]] std::uint32_t cell_count() const override {
        return options_.cells;
    }
    [[nodiscard]] std::uint32_t initial_cell(std::uint32_t) const override {
        return 0; // every commuter starts at the corridor entrance
    }

    /// Closed form: when UE `ue` crosses from cell k-1 into cell k. Pure in
    /// (seed, ue, k) -- sharded scenarios recompute crossings per shard
    /// without replaying the merged stream.
    [[nodiscard]] sim::SimTime crossing_time(std::uint32_t ue,
                                             std::uint32_t k) const;

private:
    struct Pending {
        sim::SimTime at;
        std::uint32_t ue;
        std::uint32_t next_cell; ///< the cell this crossing enters
    };
    [[nodiscard]] static bool later(const Pending& a, const Pending& b) {
        if (a.at != b.at) return a.at > b.at;
        return a.ue > b.ue;
    }

    Options options_;
    std::vector<sim::SimTime> departures_;  ///< per-UE departure instants
    std::vector<double> cell_seconds_;      ///< per-UE seconds per cell
    std::vector<Pending> heap_;
};

/// Pump a MobilityStream through a kernel one pending handover at a time
/// (the StreamPump pattern for mobility). Handover events are *user* events:
/// a pending re-home is workload and must not drain out of the run.
class MobilityPump {
public:
    using Handler = std::function<void(const HandoverEvent& event)>;

    /// All referents must outlive the pump.
    MobilityPump(sim::Simulation& sim, MobilityStream& stream, Handler on_event);

    /// Schedule the first pending handover (no-op on an empty stream).
    void start();

    [[nodiscard]] std::size_t delivered() const { return delivered_; }
    [[nodiscard]] bool done() const { return started_ && !pending_; }

private:
    void fire();

    sim::Simulation* sim_;
    MobilityStream* stream_;
    Handler on_event_;
    std::optional<HandoverEvent> pending_;
    std::size_t delivered_ = 0;
    bool started_ = false;
};

} // namespace tedge::workload
