// timecurl-style HTTP client (paper [30]): issues requests through the
// transparent edge and records curl's time_total (from starting the TCP
// connection until the full response arrives). Feeds a MetricsCollector.
#pragma once

#include <functional>
#include <string>

#include "net/tcp.hpp"
#include "workload/metrics.hpp"

namespace tedge::workload {

class HttpClient {
public:
    HttpClient(net::TcpNet& net, MetricsCollector& metrics);

    /// GET/POST `request_size` bytes from `client` to the registered
    /// address; the record lands in the collector under `tag` and is also
    /// added to the collector's series(tag) in milliseconds.
    void request(net::NodeId client_node, std::uint32_t client_index,
                 const net::ServiceAddress& address, sim::Bytes request_size,
                 const std::string& tag,
                 std::function<void(const net::HttpResult&)> done = {});

    [[nodiscard]] std::uint64_t inflight() const { return inflight_; }

private:
    net::TcpNet& net_;
    MetricsCollector& metrics_;
    std::uint64_t inflight_ = 0;
};

} // namespace tedge::workload
