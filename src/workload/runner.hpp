// Experiment runner: replays a request stream against a platform and
// collects per-request metrics; also provides a thread-pooled replica runner
// so benches can average independent simulations across CPU cores (the
// simulation kernel itself stays single-threaded and deterministic).
#pragma once

#include <functional>
#include <vector>

#include "core/edge_platform.hpp"
#include "simcore/thread_pool.hpp"
#include "workload/http_client.hpp"
#include "workload/stream.hpp"
#include "workload/trace.hpp"

namespace tedge::workload {

struct TraceReplayOptions {
    /// Registered address per trace service index.
    std::vector<net::ServiceAddress> addresses;
    /// Request payload per service index (single entry = shared by all).
    std::vector<sim::Bytes> request_sizes = {120};
    /// Extra simulated time after the last event before giving up.
    sim::SimTime drain_slack = sim::seconds(180);
};

class TraceRunner {
public:
    TraceRunner(core::EdgePlatform& platform, std::vector<net::NodeId> client_nodes);

    /// Replay a request stream; returns when every request completed (or the
    /// drain deadline passed). The stream is pulled one event at a time --
    /// exactly one workload arrival is pending in the event queue at any
    /// moment, so replay memory is O(1) in the number of requests. The
    /// collector holds one record per request.
    MetricsCollector& replay(RequestStream& stream, const TraceReplayOptions& options);

    /// Compatibility wrapper: replay a materialized trace (streams it
    /// through a TraceView).
    MetricsCollector& replay(const Trace& trace, const TraceReplayOptions& options);

    [[nodiscard]] MetricsCollector& metrics() { return metrics_; }

private:
    core::EdgePlatform& platform_;
    std::vector<net::NodeId> clients_;
    MetricsCollector metrics_;
};

/// Run `fn(seed)` for `replicas` different seeds on a thread pool and
/// collect the results in seed order.
template <typename R>
std::vector<R> run_replicas(std::size_t replicas,
                            const std::function<R(std::uint64_t seed)>& fn,
                            std::uint64_t base_seed = 1, std::size_t threads = 0) {
    std::vector<R> results(replicas);
    sim::ThreadPool pool(threads == 0 ? std::min<std::size_t>(replicas, 16) : threads);
    pool.parallel_for(replicas, [&](std::size_t i) {
        results[i] = fn(base_seed + i);
    });
    return results;
}

} // namespace tedge::workload
