#include "workload/metrics.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

namespace tedge::workload {

void MetricsCollector::add(RequestRecord record) {
    if (!record.ok) ++failures_;
    records_.push_back(std::move(record));
}

sim::SampleSet& MetricsCollector::series(std::string_view tag) {
    const auto it = series_.find(tag);
    if (it != series_.end()) return it->second;
    return series_.emplace(std::string(tag), sim::SampleSet{}).first->second;
}

const sim::SampleSet* MetricsCollector::find_series(std::string_view tag) const {
    const auto it = series_.find(tag);
    return it == series_.end() ? nullptr : &it->second;
}

std::vector<std::string> MetricsCollector::tags() const {
    std::vector<std::string> out;
    out.reserve(series_.size());
    for (const auto& [tag, set] : series_) out.push_back(tag);
    std::sort(out.begin(), out.end());
    return out;
}

void MetricsCollector::clear() {
    records_.clear();
    series_.clear();
    failures_ = 0;
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
    cells.resize(header_.size());
    rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string TextTable::str() const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            widths[c] = std::max(widths[c], row[c].size());
        }
    }
    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c == 0) {
                os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
            } else {
                os << "  " << std::right << std::setw(static_cast<int>(widths[c]))
                   << row[c];
            }
        }
        os << "\n";
    };
    emit_row(header_);
    std::size_t total = 0;
    for (const auto w : widths) total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto& row : rows_) emit_row(row);
    return os.str();
}

} // namespace tedge::workload
