#include "workload/runner.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace tedge::workload {

TraceRunner::TraceRunner(core::EdgePlatform& platform,
                         std::vector<net::NodeId> client_nodes)
    : platform_(platform), clients_(std::move(client_nodes)) {
    if (clients_.empty()) throw std::invalid_argument("TraceRunner: no clients");
}

MetricsCollector& TraceRunner::replay(RequestStream& stream,
                                      const TraceReplayOptions& options) {
    if (options.addresses.size() < stream.service_count()) {
        throw std::invalid_argument("TraceRunner: not enough addresses for trace");
    }
    if (options.request_sizes.empty()) {
        throw std::invalid_argument("TraceRunner: request_sizes empty");
    }

    auto& sim = platform_.simulation();
    HttpClient client(platform_.network(), metrics_);

    // Pre-size the kernel slab when the stream announces its length. The
    // pump holds one pending arrival, but each issued request fans out into
    // a burst of in-flight network/deployment events; cap the hint so a
    // million-request stream does not reserve slots it will never use
    // concurrently.
    if (const auto announced = stream.total()) {
        sim.reserve_events(std::min<std::uint64_t>(*announced, 65536));
    }

    // Trace times are relative to the start of the replay, not to the
    // simulation epoch (setup work may already have consumed virtual time).
    const sim::SimTime offset = sim.now();

    // Self-rescheduling pump: hold exactly one pending arrival. `fire`
    // schedules the successor before issuing the current request so that,
    // when two arrivals share a timestamp, the successor is enqueued ahead
    // of anything the request handler schedules at the same instant.
    std::optional<TraceEvent> pending = stream.next();
    std::size_t issued = 0;
    sim::SimTime last_at{};
    std::function<void()> fire = [&] {
        const TraceEvent event = *pending;
        pending = stream.next();
        if (pending) sim.schedule_at(offset + pending->at, fire);
        const auto node = clients_[event.client % clients_.size()];
        const auto& address = options.addresses[event.service];
        const sim::Bytes size =
            options.request_sizes[event.service % options.request_sizes.size()];
        const std::string tag = "svc" + std::to_string(event.service);
        ++issued;
        last_at = event.at;
        client.request(node, event.client, address, size, tag);
    };
    if (pending) sim.schedule_at(offset + pending->at, fire);

    // Drain: predicate-driven -- execute events exactly until every request
    // has completed (or the deadline passes). Streams that know their
    // horizon up front (traces, bigflows) get the fixed deadline the old
    // replay used; open-ended streams anchor on the last issued arrival.
    const auto total = stream.total();
    const auto known_horizon = stream.horizon();
    const auto deadline = [&] {
        return offset + (known_horizon ? *known_horizon : last_at) +
               options.drain_slack;
    };
    const auto busy = [&] {
        if (sim.now() >= deadline()) return false;
        if (pending) return true;
        return metrics_.count() < (total ? *total : issued);
    };
    const bool entered = busy();
    sim.run_while(busy);
    // The old slice loop left the clock on the next whole-second boundary
    // past the last completion; finish that slice so trailing bookkeeping
    // (deployment-record finalisation, periodic sweeps) observes identical
    // timestamps and downstream phases start at the same instant.
    if (entered) {
        const std::int64_t slice_ns = sim::seconds(1).ns();
        const std::int64_t rel = (sim.now() - offset).ns();
        const std::int64_t slices = std::max<std::int64_t>(1, (rel + slice_ns - 1) / slice_ns);
        sim.run_until(offset + sim::nanoseconds(slices * slice_ns));
    }
    return metrics_;
}

MetricsCollector& TraceRunner::replay(const Trace& trace,
                                      const TraceReplayOptions& options) {
    TraceView view(trace);
    return replay(view, options);
}

} // namespace tedge::workload
