#include "workload/runner.hpp"

#include <stdexcept>

namespace tedge::workload {

TraceRunner::TraceRunner(core::EdgePlatform& platform,
                         std::vector<net::NodeId> client_nodes)
    : platform_(platform), clients_(std::move(client_nodes)) {
    if (clients_.empty()) throw std::invalid_argument("TraceRunner: no clients");
}

MetricsCollector& TraceRunner::replay(const Trace& trace,
                                      const TraceReplayOptions& options) {
    if (options.addresses.size() < trace.service_count()) {
        throw std::invalid_argument("TraceRunner: not enough addresses for trace");
    }
    if (options.request_sizes.empty()) {
        throw std::invalid_argument("TraceRunner: request_sizes empty");
    }

    auto& sim = platform_.simulation();
    HttpClient client(platform_.network(), metrics_);

    // Trace times are relative to the start of the replay, not to the
    // simulation epoch (setup work may already have consumed virtual time).
    const sim::SimTime offset = sim.now();
    for (const auto& event : trace.events()) {
        const auto node = clients_[event.client % clients_.size()];
        const auto& address = options.addresses[event.service];
        const sim::Bytes size =
            options.request_sizes[event.service % options.request_sizes.size()];
        const std::string tag = "svc" + std::to_string(event.service);
        sim.schedule_at(offset + event.at,
                        [this, &client, node, event, address, size, tag] {
            client.request(node, event.client, address, size, tag);
        });
    }

    // Drain: periodic controller tasks keep the queue non-empty forever, so
    // run in slices until every request has completed (or we time out).
    const sim::SimTime deadline = offset + trace.horizon() + options.drain_slack;
    while (metrics_.count() < trace.size() && sim.now() < deadline) {
        sim.run_until(sim.now() + sim::seconds(1));
    }
    return metrics_;
}

} // namespace tedge::workload
