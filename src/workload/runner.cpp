#include "workload/runner.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace tedge::workload {

TraceRunner::TraceRunner(core::EdgePlatform& platform,
                         std::vector<net::NodeId> client_nodes)
    : platform_(platform), clients_(std::move(client_nodes)) {
    if (clients_.empty()) throw std::invalid_argument("TraceRunner: no clients");
}

MetricsCollector& TraceRunner::replay(const Trace& trace,
                                      const TraceReplayOptions& options) {
    if (options.addresses.size() < trace.service_count()) {
        throw std::invalid_argument("TraceRunner: not enough addresses for trace");
    }
    if (options.request_sizes.empty()) {
        throw std::invalid_argument("TraceRunner: request_sizes empty");
    }

    auto& sim = platform_.simulation();
    HttpClient client(platform_.network(), metrics_);

    // Trace times are relative to the start of the replay, not to the
    // simulation epoch (setup work may already have consumed virtual time).
    const sim::SimTime offset = sim.now();
    for (const auto& event : trace.events()) {
        const auto node = clients_[event.client % clients_.size()];
        const auto& address = options.addresses[event.service];
        const sim::Bytes size =
            options.request_sizes[event.service % options.request_sizes.size()];
        const std::string tag = "svc" + std::to_string(event.service);
        sim.schedule_at(offset + event.at,
                        [this, &client, node, event, address, size, tag] {
            client.request(node, event.client, address, size, tag);
        });
    }

    // Drain: predicate-driven -- execute events exactly until every request
    // has completed (or the deadline passes) instead of busy-polling in
    // 1-second slices.
    const sim::SimTime deadline = offset + trace.horizon() + options.drain_slack;
    const bool entered = metrics_.count() < trace.size() && sim.now() < deadline;
    sim.run_while([&] {
        return metrics_.count() < trace.size() && sim.now() < deadline;
    });
    // The old slice loop left the clock on the next whole-second boundary
    // past the last completion; finish that slice so trailing bookkeeping
    // (deployment-record finalisation, periodic sweeps) observes identical
    // timestamps and downstream phases start at the same instant.
    if (entered) {
        const std::int64_t slice_ns = sim::seconds(1).ns();
        const std::int64_t rel = (sim.now() - offset).ns();
        const std::int64_t slices = std::max<std::int64_t>(1, (rel + slice_ns - 1) / slice_ns);
        sim.run_until(offset + sim::nanoseconds(slices * slice_ns));
    }
    return metrics_;
}

} // namespace tedge::workload
