#include "workload/mobility.hpp"

#include <algorithm>

namespace tedge::workload {

namespace {

[[nodiscard]] sim::SimTime from_seconds(double s) {
    return sim::SimTime{static_cast<std::int64_t>(s * 1e9)};
}

} // namespace

// --------------------------------------------------------------- waypoint

WaypointMobility::WaypointMobility(const Options& options) : options_(options) {
    rngs_.reserve(options_.ues);
    initial_cells_.reserve(options_.ues);
    for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
        rngs_.push_back(sim::Rng::for_stream(options_.seed, ue));
        initial_cells_.push_back(static_cast<std::uint32_t>(
            rngs_.back().uniform_int(0, std::int64_t{options_.cells} - 1)));
    }
    if (options_.cells < 2) return; // nowhere to go
    for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
        arm(ue, initial_cells_[ue], sim::SimTime::zero());
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
}

bool WaypointMobility::arm(std::uint32_t ue, std::uint32_t from,
                           sim::SimTime after) {
    const double dwell_s = rngs_[ue].exponential(
        static_cast<double>(options_.mean_dwell.ns()) / 1e9);
    const sim::SimTime at = after + from_seconds(dwell_s);
    // Draw the destination even when the crossing falls past the horizon:
    // the per-UE draw sequence must not depend on where the horizon sits.
    const auto step = static_cast<std::uint32_t>(
        rngs_[ue].uniform_int(0, std::int64_t{options_.cells} - 2));
    const std::uint32_t to = step >= from ? step + 1 : step;
    if (at > options_.horizon) return false; // UE parks in `from`
    heap_.push_back(Pending{at, ue, from, to});
    return true;
}

std::optional<HandoverEvent> WaypointMobility::next() {
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Pending p = heap_.back();
    heap_.pop_back();
    if (arm(p.ue, p.to_cell, p.at)) {
        std::push_heap(heap_.begin(), heap_.end(), later);
    }
    return HandoverEvent{p.at, p.ue, p.from_cell, p.to_cell};
}

// --------------------------------------------------------------- corridor

CorridorMobility::CorridorMobility(const Options& options) : options_(options) {
    departures_.reserve(options_.ues);
    cell_seconds_.reserve(options_.ues);
    const double window_s =
        static_cast<double>(options_.departure_window.ns()) / 1e9;
    for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
        sim::Rng rng = sim::Rng::for_stream(options_.seed, ue);
        departures_.push_back(from_seconds(rng.uniform(0.0, window_s)));
        const double factor =
            rng.uniform(1.0 - options_.speed_jitter, 1.0 + options_.speed_jitter);
        cell_seconds_.push_back(options_.cell_span_m /
                                (options_.speed_mps * factor));
    }
    if (options_.cells < 2) return;
    for (std::uint32_t ue = 0; ue < options_.ues; ++ue) {
        heap_.push_back(Pending{crossing_time(ue, 1), ue, 1});
    }
    std::make_heap(heap_.begin(), heap_.end(), later);
}

sim::SimTime CorridorMobility::crossing_time(std::uint32_t ue,
                                             std::uint32_t k) const {
    return departures_[ue] +
           from_seconds(static_cast<double>(k) * cell_seconds_[ue]);
}

std::optional<HandoverEvent> CorridorMobility::next() {
    if (heap_.empty()) return std::nullopt;
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Pending p = heap_.back();
    heap_.pop_back();
    if (p.next_cell + 1 < options_.cells) {
        heap_.push_back(Pending{crossing_time(p.ue, p.next_cell + 1), p.ue,
                                p.next_cell + 1});
        std::push_heap(heap_.begin(), heap_.end(), later);
    }
    return HandoverEvent{p.at, p.ue, p.next_cell - 1, p.next_cell};
}

// ------------------------------------------------------------------- pump

MobilityPump::MobilityPump(sim::Simulation& sim, MobilityStream& stream,
                           Handler on_event)
    : sim_(&sim), stream_(&stream), on_event_(std::move(on_event)) {}

void MobilityPump::start() {
    if (started_) return;
    started_ = true;
    pending_ = stream_->next();
    if (pending_) sim_->schedule_at(pending_->at, [this] { fire(); });
}

void MobilityPump::fire() {
    const HandoverEvent event = *pending_;
    pending_ = stream_->next();
    if (pending_) sim_->schedule_at(pending_->at, [this] { fire(); });
    ++delivered_;
    on_event_(event);
}

} // namespace tedge::workload
