#include "workload/http_client.hpp"

namespace tedge::workload {

HttpClient::HttpClient(net::TcpNet& net, MetricsCollector& metrics)
    : net_(net), metrics_(metrics) {}

void HttpClient::request(net::NodeId client_node, std::uint32_t client_index,
                         const net::ServiceAddress& address,
                         sim::Bytes request_size, const std::string& tag,
                         std::function<void(const net::HttpResult&)> done) {
    ++inflight_;
    const sim::SimTime sent = net_.simulation().now();
    net_.http_request(client_node, address, request_size,
                      [this, client_index, sent, tag,
                       done = std::move(done)](const net::HttpResult& result) {
        --inflight_;
        RequestRecord record;
        record.service = tag;
        record.client = client_index;
        record.sent = sent;
        record.ok = result.ok;
        record.time_total = result.time_total;
        record.served_by = result.server_node;
        metrics_.add(record);
        if (result.ok) metrics_.series(tag).add_time(result.time_total);
        if (done) done(result);
    });
}

} // namespace tedge::workload
