#include "workload/http_client.hpp"

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::workload {

HttpClient::HttpClient(net::TcpNet& net, MetricsCollector& metrics)
    : net_(net), metrics_(metrics) {}

void HttpClient::request(net::NodeId client_node, std::uint32_t client_index,
                         const net::ServiceAddress& address,
                         sim::Bytes request_size, const std::string& tag,
                         std::function<void(const net::HttpResult&)> done) {
    ++inflight_;
    sim::Simulation& sim = net_.simulation();
    const sim::SimTime sent = sim.now();

    // Each client request opens a fresh trace request: everything the
    // packet-in triggers downstream (scheduling, deployment, flow install)
    // lands on this request's track.
    sim::Tracer* tr = sim.tracer();
    sim::SpanId req_span = 0;
    if (tr != nullptr) {
        const sim::RequestId req = tr->new_request();
        req_span = tr->begin("request", sim::TraceContext{req, 0});
        tr->arg(req_span, "service", tag);
        tr->arg(req_span, "client", std::to_string(client_index));
    }
    const sim::Tracer::Scope scope(tr, req_span);
    if (auto* m = sim.metrics()) m->counter("workload.requests").inc();

    net_.http_request(client_node, address, request_size,
                      [this, client_index, sent, tag, req_span,
                       done = std::move(done)](const net::HttpResult& result) {
        --inflight_;
        sim::Simulation& s = net_.simulation();
        if (auto* t = s.tracer()) {
            if (req_span != 0) {
                t->arg(req_span, "ok", result.ok ? "true" : "false");
                t->end(req_span);
            }
        }
        if (auto* m = s.metrics()) {
            m->counter(result.ok ? "workload.requests_ok"
                                 : "workload.requests_failed")
                .inc();
            m->histogram("workload.request_ms", 0, 10'000, 100)
                .add(result.time_total.ms());
        }
        RequestRecord record;
        record.service = tag;
        record.client = client_index;
        record.sent = sent;
        record.ok = result.ok;
        record.time_total = result.time_total;
        record.served_by = result.server_node;
        metrics_.add(record);
        if (result.ok) metrics_.series(tag).add_time(result.time_total);
        if (done) done(result);
    });
}

} // namespace tedge::workload
