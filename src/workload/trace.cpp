#include "workload/trace.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace tedge::workload {

void Trace::add(TraceEvent event) {
    events_.push_back(event);
}

void Trace::finalize() {
    std::sort(events_.begin(), events_.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                  if (a.at != b.at) return a.at < b.at;
                  if (a.client != b.client) return a.client < b.client;
                  return a.service < b.service;
              });
}

std::uint32_t Trace::service_count() const {
    std::uint32_t max_index = 0;
    bool any = false;
    for (const auto& e : events_) {
        max_index = std::max(max_index, e.service);
        any = true;
    }
    return any ? max_index + 1 : 0;
}

std::uint32_t Trace::client_count() const {
    std::uint32_t max_index = 0;
    bool any = false;
    for (const auto& e : events_) {
        max_index = std::max(max_index, e.client);
        any = true;
    }
    return any ? max_index + 1 : 0;
}

sim::SimTime Trace::horizon() const {
    sim::SimTime last = sim::SimTime::zero();
    for (const auto& e : events_) last = std::max(last, e.at);
    return last;
}

std::vector<std::size_t> Trace::requests_per_service() const {
    std::vector<std::size_t> counts(service_count(), 0);
    for (const auto& e : events_) ++counts[e.service];
    return counts;
}

std::string Trace::to_csv() const {
    std::ostringstream os;
    os << "time_ms,client,service\n";
    os.precision(6);
    for (const auto& e : events_) {
        os << std::fixed << e.at.ms() << "," << e.client << "," << e.service << "\n";
    }
    return os.str();
}

Trace Trace::from_csv(const std::string& text) {
    Trace trace;
    std::istringstream is(text);
    std::string line;
    bool first = true;
    std::size_t line_no = 0;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty()) continue;
        if (first) {
            first = false;
            if (line.rfind("time_ms", 0) == 0) continue; // header
        }
        std::istringstream ls(line);
        std::string time_text, client_text, service_text;
        if (!std::getline(ls, time_text, ',') || !std::getline(ls, client_text, ',') ||
            !std::getline(ls, service_text)) {
            throw std::invalid_argument("trace csv: malformed line " +
                                        std::to_string(line_no));
        }
        TraceEvent event;
        event.at = sim::from_ms(std::stod(time_text));
        event.client = static_cast<std::uint32_t>(std::stoul(client_text));
        event.service = static_cast<std::uint32_t>(std::stoul(service_text));
        trace.add(event);
    }
    trace.finalize();
    return trace;
}

} // namespace tedge::workload
