// yamlite emitter: renders a Node tree back to block-style YAML.
#pragma once

#include <string>
#include <vector>

#include "yamlite/value.hpp"

namespace tedge::yamlite {

/// Emit a single document (no leading "---").
[[nodiscard]] std::string emit(const Node& node);

/// Emit a multi-document stream with "---" separators.
[[nodiscard]] std::string emit_all(const std::vector<Node>& docs);

} // namespace tedge::yamlite
