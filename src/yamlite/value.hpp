// yamlite: a small YAML subset sufficient for Kubernetes Deployment/Service
// definition files (block maps and sequences, "- key: value" inline map
// items, quoted scalars, comments, multi-document streams, simple flow
// collections).
//
// Node is a value type; maps preserve insertion order (like the YAML text a
// developer wrote, so the Annotator emits stable, diff-friendly output).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tedge::yamlite {

class Node;

using Map = std::vector<std::pair<std::string, Node>>;
using Seq = std::vector<Node>;

enum class Kind { kNull, kScalar, kSeq, kMap };

class Node {
public:
    Node() = default; // null
    Node(std::string scalar) : kind_(Kind::kScalar), scalar_(std::move(scalar)) {}
    Node(const char* scalar) : Node(std::string(scalar)) {}
    Node(std::int64_t value) : Node(std::to_string(value)) {}
    Node(int value) : Node(static_cast<std::int64_t>(value)) {}
    Node(bool value) : Node(std::string(value ? "true" : "false")) {}

    [[nodiscard]] static Node make_map() { Node n; n.kind_ = Kind::kMap; return n; }
    [[nodiscard]] static Node make_seq() { Node n; n.kind_ = Kind::kSeq; return n; }

    [[nodiscard]] Kind kind() const { return kind_; }
    [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
    [[nodiscard]] bool is_scalar() const { return kind_ == Kind::kScalar; }
    [[nodiscard]] bool is_seq() const { return kind_ == Kind::kSeq; }
    [[nodiscard]] bool is_map() const { return kind_ == Kind::kMap; }

    // --- scalar access ----------------------------------------------------
    [[nodiscard]] const std::string& scalar() const;
    [[nodiscard]] std::optional<std::int64_t> as_int() const;
    [[nodiscard]] std::optional<bool> as_bool() const;
    /// Scalar value or `fallback` when null/absent-typed.
    [[nodiscard]] std::string as_str(const std::string& fallback = "") const;

    // --- map access ---------------------------------------------------
    /// Lookup; returns nullptr when missing or not a map.
    [[nodiscard]] const Node* find(const std::string& key) const;
    [[nodiscard]] Node* find(const std::string& key);

    /// Lookup a dotted path ("spec.template.metadata"); nullptr if absent.
    [[nodiscard]] const Node* find_path(const std::string& dotted) const;

    /// Get-or-insert: turns a null node into a map on first use.
    Node& operator[](const std::string& key);

    /// Set (insert or overwrite) a key.
    void set(const std::string& key, Node value);

    /// Remove a key; returns true if present.
    bool erase(const std::string& key);

    [[nodiscard]] const Map& map() const;
    [[nodiscard]] Map& map();

    // --- sequence access ----------------------------------------------
    [[nodiscard]] const Seq& seq() const;
    [[nodiscard]] Seq& seq();
    void push_back(Node value);

    [[nodiscard]] std::size_t size() const;

    bool operator==(const Node& other) const;

private:
    Kind kind_ = Kind::kNull;
    std::string scalar_;
    Map map_;
    Seq seq_;
};

} // namespace tedge::yamlite
