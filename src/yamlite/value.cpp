#include "yamlite/value.hpp"

#include <charconv>
#include <stdexcept>

namespace tedge::yamlite {

const std::string& Node::scalar() const {
    if (kind_ != Kind::kScalar) throw std::logic_error("yamlite: not a scalar");
    return scalar_;
}

std::optional<std::int64_t> Node::as_int() const {
    if (kind_ != Kind::kScalar) return std::nullopt;
    std::int64_t v = 0;
    const auto* begin = scalar_.data();
    const auto* end = scalar_.data() + scalar_.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec != std::errc{} || ptr != end) return std::nullopt;
    return v;
}

std::optional<bool> Node::as_bool() const {
    if (kind_ != Kind::kScalar) return std::nullopt;
    if (scalar_ == "true" || scalar_ == "True" || scalar_ == "yes") return true;
    if (scalar_ == "false" || scalar_ == "False" || scalar_ == "no") return false;
    return std::nullopt;
}

std::string Node::as_str(const std::string& fallback) const {
    return kind_ == Kind::kScalar ? scalar_ : fallback;
}

const Node* Node::find(const std::string& key) const {
    if (kind_ != Kind::kMap) return nullptr;
    for (const auto& [k, v] : map_) {
        if (k == key) return &v;
    }
    return nullptr;
}

Node* Node::find(const std::string& key) {
    return const_cast<Node*>(static_cast<const Node*>(this)->find(key));
}

const Node* Node::find_path(const std::string& dotted) const {
    const Node* cur = this;
    std::size_t pos = 0;
    while (pos <= dotted.size()) {
        const auto dot = dotted.find('.', pos);
        const std::string key =
            dotted.substr(pos, dot == std::string::npos ? std::string::npos : dot - pos);
        cur = cur->find(key);
        if (cur == nullptr) return nullptr;
        if (dot == std::string::npos) break;
        pos = dot + 1;
    }
    return cur;
}

Node& Node::operator[](const std::string& key) {
    if (kind_ == Kind::kNull) kind_ = Kind::kMap;
    if (kind_ != Kind::kMap) throw std::logic_error("yamlite: not a map");
    for (auto& [k, v] : map_) {
        if (k == key) return v;
    }
    map_.emplace_back(key, Node{});
    return map_.back().second;
}

void Node::set(const std::string& key, Node value) {
    (*this)[key] = std::move(value);
}

bool Node::erase(const std::string& key) {
    if (kind_ != Kind::kMap) return false;
    for (auto it = map_.begin(); it != map_.end(); ++it) {
        if (it->first == key) {
            map_.erase(it);
            return true;
        }
    }
    return false;
}

const Map& Node::map() const {
    if (kind_ != Kind::kMap) throw std::logic_error("yamlite: not a map");
    return map_;
}

Map& Node::map() {
    if (kind_ == Kind::kNull) kind_ = Kind::kMap;
    if (kind_ != Kind::kMap) throw std::logic_error("yamlite: not a map");
    return map_;
}

const Seq& Node::seq() const {
    if (kind_ != Kind::kSeq) throw std::logic_error("yamlite: not a sequence");
    return seq_;
}

Seq& Node::seq() {
    if (kind_ == Kind::kNull) kind_ = Kind::kSeq;
    if (kind_ != Kind::kSeq) throw std::logic_error("yamlite: not a sequence");
    return seq_;
}

void Node::push_back(Node value) {
    seq().push_back(std::move(value));
}

std::size_t Node::size() const {
    switch (kind_) {
        case Kind::kMap: return map_.size();
        case Kind::kSeq: return seq_.size();
        case Kind::kScalar: return 1;
        case Kind::kNull: return 0;
    }
    return 0;
}

bool Node::operator==(const Node& other) const {
    if (kind_ != other.kind_) return false;
    switch (kind_) {
        case Kind::kNull: return true;
        case Kind::kScalar: return scalar_ == other.scalar_;
        case Kind::kSeq: return seq_ == other.seq_;
        case Kind::kMap: return map_ == other.map_;
    }
    return false;
}

} // namespace tedge::yamlite
