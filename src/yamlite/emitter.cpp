#include "yamlite/emitter.hpp"

#include <cctype>
#include <sstream>

namespace tedge::yamlite {
namespace {

bool needs_quotes(const std::string& s) {
    if (s.empty()) return true;
    if (s == "null" || s == "~" || s == "true" || s == "false" || s == "yes" ||
        s == "no" || s == "{}" || s == "[]") {
        return true;
    }
    if (std::isspace(static_cast<unsigned char>(s.front())) ||
        std::isspace(static_cast<unsigned char>(s.back()))) {
        return true;
    }
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '#' || c == '\n' || c == '"' || c == '\'') return true;
        if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) return true;
        if (i == 0 && (c == '-' || c == '[' || c == ']' || c == '{' || c == '}' ||
                       c == '&' || c == '*' || c == '!' || c == '|' || c == '>' ||
                       c == '%' || c == '@')) {
            // A leading dash is fine unless followed by a space.
            if (!(c == '-' && s.size() > 1 && s[1] != ' ')) return true;
        }
    }
    return false;
}

std::string quote(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default: out += c;
        }
    }
    out += '"';
    return out;
}

std::string scalar_text(const std::string& s) {
    return needs_quotes(s) ? quote(s) : s;
}

void emit_node(std::ostringstream& os, const Node& node, int indent);

void emit_map(std::ostringstream& os, const Node& node, int indent) {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    for (const auto& [key, value] : node.map()) {
        os << pad << scalar_text(key) << ":";
        switch (value.kind()) {
            case Kind::kNull:
                os << " null\n";
                break;
            case Kind::kScalar:
                os << " " << scalar_text(value.scalar()) << "\n";
                break;
            case Kind::kMap:
                if (value.map().empty()) {
                    os << " {}\n";
                } else {
                    os << "\n";
                    emit_node(os, value, indent + 2);
                }
                break;
            case Kind::kSeq:
                if (value.seq().empty()) {
                    os << " []\n";
                } else {
                    os << "\n";
                    emit_node(os, value, indent + 2);
                }
                break;
        }
    }
}

void emit_seq(std::ostringstream& os, const Node& node, int indent) {
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    for (const auto& item : node.seq()) {
        switch (item.kind()) {
            case Kind::kNull:
                os << pad << "- null\n";
                break;
            case Kind::kScalar:
                os << pad << "- " << scalar_text(item.scalar()) << "\n";
                break;
            case Kind::kMap: {
                if (item.map().empty()) {
                    os << pad << "- {}\n";
                    break;
                }
                // First key inline after the dash, the rest indented +2.
                std::ostringstream sub;
                emit_map(sub, item, indent + 2);
                std::string body = sub.str();
                // Replace the first line's indentation with "<pad>- ".
                os << pad << "- " << body.substr(static_cast<std::size_t>(indent) + 2);
                break;
            }
            case Kind::kSeq:
                if (item.seq().empty()) {
                    os << pad << "- []\n";
                } else {
                    os << pad << "-\n";
                    emit_node(os, item, indent + 2);
                }
                break;
        }
    }
}

void emit_node(std::ostringstream& os, const Node& node, int indent) {
    switch (node.kind()) {
        case Kind::kNull:
            os << "null\n";
            break;
        case Kind::kScalar:
            os << scalar_text(node.scalar()) << "\n";
            break;
        case Kind::kMap:
            if (node.map().empty()) {
                os << "{}\n";
            } else {
                emit_map(os, node, indent);
            }
            break;
        case Kind::kSeq:
            if (node.seq().empty()) {
                os << "[]\n";
            } else {
                emit_seq(os, node, indent);
            }
            break;
    }
}

} // namespace

std::string emit(const Node& node) {
    std::ostringstream os;
    emit_node(os, node, 0);
    return os.str();
}

std::string emit_all(const std::vector<Node>& docs) {
    std::string out;
    for (std::size_t i = 0; i < docs.size(); ++i) {
        if (i > 0) out += "---\n";
        out += emit(docs[i]);
    }
    return out;
}

} // namespace tedge::yamlite
