#include "yamlite/parser.hpp"

#include <algorithm>
#include <cctype>

namespace tedge::yamlite {
namespace {

struct Line {
    std::size_t number;  ///< 1-based source line
    int indent;
    std::string content; ///< trimmed, comment-stripped, non-empty
};

// Remove a trailing comment that is not inside quotes.
std::string strip_comment(const std::string& s) {
    char quote = 0;
    for (std::size_t i = 0; i < s.size(); ++i) {
        const char c = s[i];
        if (quote != 0) {
            if (c == quote) quote = 0;
            continue;
        }
        if (c == '\'' || c == '"') {
            quote = c;
        } else if (c == '#' && (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
            return s.substr(0, i);
        }
    }
    return s;
}

std::string rtrim(std::string s) {
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
        s.pop_back();
    }
    return s;
}

std::string trim(std::string s) {
    s = rtrim(std::move(s));
    std::size_t i = 0;
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
    return s.substr(i);
}

std::vector<std::vector<Line>> split_documents(const std::string& text) {
    std::vector<std::vector<Line>> docs;
    docs.emplace_back();
    std::size_t pos = 0;
    std::size_t line_no = 0;
    while (pos <= text.size()) {
        const auto nl = text.find('\n', pos);
        std::string raw = text.substr(
            pos, nl == std::string::npos ? std::string::npos : nl - pos);
        ++line_no;
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;

        raw = rtrim(strip_comment(raw));
        const std::string trimmed = trim(raw);
        if (trimmed == "---") {
            docs.emplace_back();
            continue;
        }
        if (trimmed.empty() || trimmed == "...") continue;
        if (raw.find('\t') != std::string::npos) {
            throw ParseError(line_no, "tabs are not allowed for indentation");
        }
        int indent = 0;
        while (static_cast<std::size_t>(indent) < raw.size() && raw[indent] == ' ') {
            ++indent;
        }
        docs.back().push_back(Line{line_no, indent, trimmed});
    }
    return docs;
}

class BlockParser {
public:
    explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

    Node parse_document() {
        if (lines_.empty()) return Node{};
        Node result = parse_block(0, lines_.front().indent);
        if (pos_ != lines_.size()) {
            throw ParseError(lines_[pos_].number, "unexpected de-indented content");
        }
        return result;
    }

private:
    // Parse a scalar token, handling quotes and flow collections.
    static Node parse_value(const std::string& token, std::size_t line_no) {
        if (token.empty() || token == "~" || token == "null") return Node{};
        if (token.front() == '"' || token.front() == '\'') {
            const char q = token.front();
            if (token.size() < 2 || token.back() != q) {
                throw ParseError(line_no, "unterminated quoted scalar");
            }
            std::string inner = token.substr(1, token.size() - 2);
            if (q == '"') {
                std::string out;
                out.reserve(inner.size());
                for (std::size_t i = 0; i < inner.size(); ++i) {
                    if (inner[i] == '\\' && i + 1 < inner.size()) {
                        ++i;
                        switch (inner[i]) {
                            case 'n': out += '\n'; break;
                            case 't': out += '\t'; break;
                            case '"': out += '"'; break;
                            case '\\': out += '\\'; break;
                            default: out += inner[i];
                        }
                    } else {
                        out += inner[i];
                    }
                }
                inner = out;
            }
            return Node{inner};
        }
        if (token == "{}") return Node::make_map();
        if (token == "[]") return Node::make_seq();
        if (token.front() == '[') {
            if (token.back() != ']') throw ParseError(line_no, "unterminated flow seq");
            Node seq = Node::make_seq();
            for (const auto& item : split_flow(token.substr(1, token.size() - 2))) {
                seq.push_back(parse_value(trim(item), line_no));
            }
            return seq;
        }
        if (token.front() == '{') {
            if (token.back() != '}') throw ParseError(line_no, "unterminated flow map");
            Node map = Node::make_map();
            for (const auto& item : split_flow(token.substr(1, token.size() - 2))) {
                const auto colon = find_key_colon(item);
                if (colon == std::string::npos) {
                    throw ParseError(line_no, "flow map entry without ':'");
                }
                map.set(trim(item.substr(0, colon)),
                        parse_value(trim(item.substr(colon + 1)), line_no));
            }
            return map;
        }
        return Node{token};
    }

    // Split a flow-collection body at top-level commas (quote-aware).
    static std::vector<std::string> split_flow(const std::string& body) {
        std::vector<std::string> parts;
        if (trim(body).empty()) return parts;
        char quote = 0;
        int depth = 0;
        std::string cur;
        for (const char c : body) {
            if (quote != 0) {
                cur += c;
                if (c == quote) quote = 0;
                continue;
            }
            if (c == '\'' || c == '"') {
                quote = c;
                cur += c;
            } else if (c == '[' || c == '{') {
                ++depth;
                cur += c;
            } else if (c == ']' || c == '}') {
                --depth;
                cur += c;
            } else if (c == ',' && depth == 0) {
                parts.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        parts.push_back(cur);
        return parts;
    }

    /// Position of the colon ending a mapping key (quote-aware; the colon
    /// must be followed by space/EOL).
    static std::size_t find_key_colon(const std::string& s) {
        char quote = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const char c = s[i];
            if (quote != 0) {
                if (c == quote) quote = 0;
                continue;
            }
            if (c == '\'' || c == '"') {
                quote = c;
            } else if (c == ':' && (i + 1 == s.size() || s[i + 1] == ' ')) {
                return i;
            }
        }
        return std::string::npos;
    }

    Node parse_block(std::size_t from, int indent) {
        pos_ = from;
        if (pos_ >= lines_.size()) return Node{};
        const bool is_seq = lines_[pos_].content.rfind("- ", 0) == 0 ||
                            lines_[pos_].content == "-";
        return is_seq ? parse_seq(indent) : parse_map(indent);
    }

    Node parse_map(int indent) {
        Node map = Node::make_map();
        while (pos_ < lines_.size() && lines_[pos_].indent == indent) {
            const Line line = lines_[pos_];
            if (line.content.rfind("- ", 0) == 0 || line.content == "-") {
                throw ParseError(line.number, "sequence item in mapping context");
            }
            const auto colon = find_key_colon(line.content);
            if (colon == std::string::npos) {
                throw ParseError(line.number, "expected 'key:' mapping entry");
            }
            std::string key = trim(line.content.substr(0, colon));
            if (!key.empty() && (key.front() == '"' || key.front() == '\'')) {
                key = parse_value(key, line.number).as_str();
            }
            const std::string rest = trim(line.content.substr(colon + 1));
            ++pos_;
            if (!rest.empty()) {
                map.set(key, parse_value(rest, line.number));
            } else if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
                map.set(key, parse_block(pos_, lines_[pos_].indent));
            } else if (pos_ < lines_.size() && lines_[pos_].indent == indent &&
                       (lines_[pos_].content.rfind("- ", 0) == 0 ||
                        lines_[pos_].content == "-")) {
                // YAML permits a sequence aligned with its parent key.
                map.set(key, parse_seq(indent));
            } else {
                map.set(key, Node{});
            }
        }
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
            throw ParseError(lines_[pos_].number, "unexpected indentation");
        }
        return map;
    }

    Node parse_seq(int indent) {
        Node seq = Node::make_seq();
        while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
               (lines_[pos_].content.rfind("- ", 0) == 0 || lines_[pos_].content == "-")) {
            const Line line = lines_[pos_];
            const std::string inline_part =
                line.content == "-" ? "" : trim(line.content.substr(2));

            if (inline_part.empty()) {
                ++pos_;
                if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
                    seq.push_back(parse_block(pos_, lines_[pos_].indent));
                } else {
                    seq.push_back(Node{});
                }
                continue;
            }

            // "- key: value" starts an inline map whose further keys continue
            // on following lines indented past the dash. We virtually re-home
            // the first entry at column indent+2.
            const auto colon = find_key_colon(inline_part);
            if (colon != std::string::npos) {
                const int item_indent = indent + 2;
                // Temporarily rewrite the current line and parse a map block.
                lines_[pos_].indent = item_indent;
                lines_[pos_].content = inline_part;
                seq.push_back(parse_block(pos_, item_indent));
                continue;
            }

            seq.push_back(parse_value(inline_part, line.number));
            ++pos_;
        }
        return seq;
    }

    std::vector<Line> lines_;
    std::size_t pos_ = 0;
};

} // namespace

Node parse(const std::string& text) {
    const auto docs = parse_all(text);
    return docs.empty() ? Node{} : docs.front();
}

std::vector<Node> parse_all(const std::string& text) {
    std::vector<Node> out;
    for (auto& doc_lines : split_documents(text)) {
        if (doc_lines.empty()) continue;
        BlockParser parser(std::move(doc_lines));
        out.push_back(parser.parse_document());
    }
    return out;
}

} // namespace tedge::yamlite
