// yamlite parser: block-style YAML subset with multi-document support.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "yamlite/value.hpp"

namespace tedge::yamlite {

class ParseError : public std::runtime_error {
public:
    ParseError(std::size_t line, const std::string& message)
        : std::runtime_error("yaml parse error at line " + std::to_string(line) +
                             ": " + message),
          line_(line) {}
    [[nodiscard]] std::size_t line() const { return line_; }

private:
    std::size_t line_;
};

/// Parse a single-document string (the first document of a stream).
/// Empty input yields a null node.
[[nodiscard]] Node parse(const std::string& text);

/// Parse a multi-document stream ("---" separators); empty documents are
/// skipped. Kubernetes service definition files commonly hold a Deployment
/// plus a Service in one file.
[[nodiscard]] std::vector<Node> parse_all(const std::string& text);

} // namespace tedge::yamlite
