// Node-local content-addressed image store (the containerd content store).
//
// Layers are shared across images: deleting an image only frees layers no
// other tagged image references (paper §IV-C: "Even if a container image is
// deleted, some of its layers may be used by other images").
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "container/image.hpp"

namespace tedge::container {

class ImageStore {
public:
    /// True iff the layer blob is present locally.
    [[nodiscard]] bool has_layer(const std::string& digest) const;

    /// Add a layer blob (idempotent).
    void add_layer(const Layer& layer);

    /// Layers of `image` not yet present locally, in image order.
    [[nodiscard]] std::vector<Layer> missing_layers(const Image& image) const;

    /// True iff all layers are present AND the image is tagged.
    [[nodiscard]] bool has_image(const ImageRef& ref) const;

    /// Record the image manifest locally (after a successful pull).
    /// All layers must already be present.
    void tag_image(const Image& image);

    [[nodiscard]] const Image* find_image(const ImageRef& ref) const;

    /// Untag an image. Its layers stay until gc().
    /// Returns true if the image was tagged.
    bool remove_image(const ImageRef& ref);

    /// Delete layer blobs referenced by no tagged image.
    /// Returns bytes freed.
    sim::Bytes gc();

    [[nodiscard]] sim::Bytes disk_usage() const { return disk_usage_; }
    [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
    [[nodiscard]] std::size_t image_count() const { return images_.size(); }

private:
    std::unordered_map<std::string, sim::Bytes> layers_;  ///< digest -> size
    std::map<std::string, Image> images_;                 ///< full ref -> manifest
    sim::Bytes disk_usage_ = 0;
};

} // namespace tedge::container
