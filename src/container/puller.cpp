#include "container/puller.hpp"

#include <algorithm>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::container {

// Per-layer pull state within one image pull.
enum class LayerPhase {
    kPending,      // not yet requested
    kCached,       // already in the store (or arrived via another pull)
    kAwaitShared,  // another job is downloading it; waiting
    kDownloading,
    kDownloaded,   // bytes local, not yet extracted
    kExtracting,
    kDone,
};

struct Puller::PullJob {
    ImageRef ref;
    Registry* registry = nullptr;
    Image image;                  // manifest, once fetched
    std::vector<LayerPhase> phase;
    std::size_t next_to_extract = 0;
    std::size_t downloads_active = 0;
    bool extracting = false;
    PullTiming timing;
    sim::TraceContext trace;            ///< the `pull.image` span
    std::vector<sim::SpanId> dl_span;   ///< open `pull.layer` span per layer
};

Puller::Puller(sim::Simulation& sim, ImageStore& store, PullerConfig config)
    : sim_(sim), store_(store), config_(config) {}

void Puller::pull(const ImageRef& ref, Registry& registry, Callback done) {
    const std::string key = ref.full();

    if (store_.has_image(ref)) {
        if (auto* tr = sim_.tracer()) tr->instant("pull.cached");
        if (auto* m = sim_.metrics()) m->counter("container.pull.cached").inc();
        // Fast path: local image inspect only.
        sim_.schedule(config_.local_hit_latency,
                      [this, done = std::move(done)] {
                          PullTiming t;
                          t.started = sim_.now() - config_.local_hit_latency;
                          t.finished = sim_.now();
                          done(true, t);
                      });
        return;
    }

    auto [it, inserted] = image_waiters_.try_emplace(key);
    it->second.push_back(std::move(done));
    if (!inserted) return; // an identical pull is already in flight
    start_job(ref, registry);
}

void Puller::start_job(const ImageRef& ref, Registry& registry) {
    auto job = std::make_shared<PullJob>();
    job->ref = ref;
    job->registry = &registry;
    job->timing.started = sim_.now();
    if (auto* tr = sim_.tracer()) {
        const sim::SpanId span = tr->begin("pull.image");
        tr->arg(span, "image", ref.full());
        job->trace = tr->context_of(span);
    }

    registry.fetch_manifest(ref, [this, job](const Image* image) {
        if (image == nullptr) {
            job_finish(job, false);
            return;
        }
        job->image = *image;
        // Normalize the manifest's ref to the requested one so tagging under
        // the local name works even when pulling through a mirror.
        job->image.ref = job->ref;
        job->phase.assign(job->image.layers.size(), LayerPhase::kPending);
        job->dl_span.assign(job->image.layers.size(), 0);
        for (std::size_t i = 0; i < job->image.layers.size(); ++i) {
            if (store_.has_layer(job->image.layers[i].digest)) {
                job->phase[i] = LayerPhase::kCached;
                ++job->timing.layers_cached;
            }
        }
        job_fetch_next(job);
        job_try_extract(job);
    });
}

void Puller::job_fetch_next(const std::shared_ptr<PullJob>& job) {
    for (std::size_t i = 0; i < job->phase.size() &&
                            job->downloads_active < config_.max_parallel_layers;
         ++i) {
        if (job->phase[i] != LayerPhase::kPending) continue;
        const Layer& layer = job->image.layers[i];

        if (store_.has_layer(layer.digest)) {
            job->phase[i] = LayerPhase::kCached;
            continue;
        }

        // Another job downloading the same digest? Await it without
        // consuming one of our download slots (no bytes move for us).
        if (auto w = layer_waiters_.find(layer.digest); w != layer_waiters_.end()) {
            job->phase[i] = LayerPhase::kAwaitShared;
            ++job->timing.layers_shared;
            w->second.push_back([this, job, i] {
                job->phase[i] = LayerPhase::kCached;
                job_try_extract(job);
            });
            continue;
        }

        job->phase[i] = LayerPhase::kDownloading;
        ++job->downloads_active;
        layer_waiters_.try_emplace(layer.digest); // mark in flight
        if (auto* tr = sim_.tracer()) {
            const sim::SpanId span = tr->begin("pull.layer", job->trace);
            tr->arg(span, "digest", layer.digest);
            job->dl_span[i] = span;
        }
        job->registry->fetch_layer(layer, [this, job, i] {
            job_layer_downloaded(job, i);
        });
    }
}

void Puller::job_layer_downloaded(const std::shared_ptr<PullJob>& job,
                                  std::size_t index) {
    job->phase[index] = LayerPhase::kDownloaded;
    --job->downloads_active;
    job->timing.bytes_downloaded += job->image.layers[index].size;
    ++job->timing.layers_downloaded;
    if (auto* tr = sim_.tracer()) {
        if (job->dl_span[index] != 0) tr->end(job->dl_span[index]);
    }
    if (auto* m = sim_.metrics()) {
        m->counter("container.pull.layers").inc();
        m->counter("container.pull.bytes").inc(
            static_cast<std::uint64_t>(job->image.layers[index].size));
    }
    job_fetch_next(job);
    job_try_extract(job);
}

void Puller::job_try_extract(const std::shared_ptr<PullJob>& job) {
    if (job->extracting) return;

    // Skip over layers that need no extraction work by us.
    while (job->next_to_extract < job->phase.size() &&
           job->phase[job->next_to_extract] == LayerPhase::kCached) {
        job->phase[job->next_to_extract] = LayerPhase::kDone;
        ++job->next_to_extract;
    }

    if (job->next_to_extract >= job->phase.size()) {
        job_finish(job, true);
        return;
    }

    const std::size_t i = job->next_to_extract;
    if (job->phase[i] != LayerPhase::kDownloaded) return; // still in flight

    job->phase[i] = LayerPhase::kExtracting;
    job->extracting = true;
    const Layer& layer = job->image.layers[i];
    const sim::SimTime extract_time =
        config_.extract_rate.transfer_time(layer.size) +
        config_.per_layer_extract_overhead;
    sim::SpanId extract_span = 0;
    if (auto* tr = sim_.tracer()) {
        extract_span = tr->begin("pull.extract", job->trace);
        tr->arg(extract_span, "digest", layer.digest);
    }
    sim_.schedule(extract_time, [this, job, i, extract_span] {
        if (auto* tr = sim_.tracer()) {
            if (extract_span != 0) tr->end(extract_span);
        }
        const Layer& done_layer = job->image.layers[i];
        store_.add_layer(done_layer);
        job->phase[i] = LayerPhase::kDone;
        ++job->next_to_extract;
        job->extracting = false;
        notify_layer_available(done_layer.digest);
        job_fetch_next(job);
        job_try_extract(job);
    });
}

void Puller::notify_layer_available(const std::string& digest) {
    const auto it = layer_waiters_.find(digest);
    if (it == layer_waiters_.end()) return;
    auto waiters = std::move(it->second);
    layer_waiters_.erase(it);
    for (auto& cb : waiters) cb();
}

void Puller::job_finish(const std::shared_ptr<PullJob>& job, bool ok) {
    if (ok) {
        store_.tag_image(job->image);
    } else {
        // Release any in-flight markers we own that never completed.
        for (std::size_t i = 0; i < job->phase.size(); ++i) {
            if (job->phase[i] == LayerPhase::kDownloading) {
                layer_waiters_.erase(job->image.layers[i].digest);
            }
        }
    }
    job->timing.finished = sim_.now();
    if (auto* tr = sim_.tracer()) {
        if (job->trace.span != 0) {
            tr->arg(job->trace.span, "ok", ok ? "true" : "false");
            tr->end(job->trace.span);
        }
    }
    if (auto* m = sim_.metrics()) {
        m->counter(ok ? "container.pull.ok" : "container.pull.failed").inc();
    }

    const auto it = image_waiters_.find(job->ref.full());
    if (it == image_waiters_.end()) return;
    auto callbacks = std::move(it->second);
    image_waiters_.erase(it);
    for (auto& cb : callbacks) cb(ok, job->timing);
}

} // namespace tedge::container
