// Application behaviour profiles.
//
// The paper treats each edge service as a black box characterised by its
// image (size/layers), its startup time until the port accepts connections,
// and its per-request processing time -- which is exactly what an AppProfile
// captures. Samples are log-normal around a target median, matching the
// right-skewed timing distributions of real container starts.
#pragma once

#include <cstdint>
#include <string>

#include "simcore/random.hpp"
#include "simcore/time.hpp"
#include "simcore/units.hpp"

namespace tedge::container {

struct AppProfile {
    std::string name;

    /// Process start -> listening on its port (e.g. nginx config parse,
    /// TensorFlow model load).
    sim::SimTime init_median = sim::milliseconds(30);
    double init_sigma = 0.15;

    /// Per-request processing time once running.
    sim::SimTime service_median = sim::microseconds(200);
    double service_sigma = 0.2;

    sim::Bytes response_size = 512;

    /// Parallel requests handled before queueing (nginx: many; a
    /// single-threaded model server: few).
    int concurrency = 16;

    /// Port the application listens on inside the container (0 = none; e.g.
    /// a sidecar writing files only).
    std::uint16_t port = 80;

    [[nodiscard]] sim::SimTime sample_init(sim::Rng& rng) const {
        return sim::from_seconds(
            rng.lognormal_median(init_median.seconds(), init_sigma));
    }

    [[nodiscard]] sim::SimTime sample_service(sim::Rng& rng) const {
        return sim::from_seconds(
            rng.lognormal_median(service_median.seconds(), service_sigma));
    }
};

} // namespace tedge::container
