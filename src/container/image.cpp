#include "container/image.hpp"

#include <numeric>
#include <sstream>
#include <stdexcept>

namespace tedge::container {

std::optional<ImageRef> ImageRef::parse(const std::string& text) {
    if (text.empty()) return std::nullopt;
    ImageRef ref;
    std::string rest = text;

    // Registry host: first component containing '.' or ':' (docker's rule).
    const auto first_slash = rest.find('/');
    if (first_slash != std::string::npos) {
        const std::string head = rest.substr(0, first_slash);
        if (head.find('.') != std::string::npos || head.find(':') != std::string::npos ||
            head == "localhost") {
            ref.registry = head;
            rest = rest.substr(first_slash + 1);
        }
    }

    // Tag: after the last ':' that comes after the last '/'.
    const auto last_colon = rest.rfind(':');
    const auto last_slash = rest.rfind('/');
    if (last_colon != std::string::npos &&
        (last_slash == std::string::npos || last_colon > last_slash)) {
        ref.tag = rest.substr(last_colon + 1);
        rest = rest.substr(0, last_colon);
        if (ref.tag.empty()) return std::nullopt;
    }

    if (rest.empty()) return std::nullopt;
    // Docker Hub "official images" implicitly live under library/.
    if (ref.registry == "docker.io" && rest.find('/') == std::string::npos) {
        rest = "library/" + rest;
    }
    ref.repository = rest;
    return ref;
}

std::string ImageRef::full() const {
    return registry + "/" + repository + ":" + tag;
}

std::string ImageRef::str() const {
    std::string out;
    if (registry != "docker.io") out += registry + "/";
    std::string repo = repository;
    if (registry == "docker.io" && repo.rfind("library/", 0) == 0) {
        repo = repo.substr(8);
    }
    out += repo;
    out += ":" + tag;
    return out;
}

sim::Bytes Image::total_size() const {
    return std::accumulate(layers.begin(), layers.end(), sim::Bytes{0},
                           [](sim::Bytes acc, const Layer& l) { return acc + l.size; });
}

std::vector<Layer> make_layers(const std::string& name, sim::Bytes total,
                               std::size_t count) {
    if (count == 0) throw std::invalid_argument("make_layers: zero layers");
    if (total <= 0) throw std::invalid_argument("make_layers: non-positive size");
    std::vector<Layer> layers;
    layers.reserve(count);
    // Base layer gets ~60% of the bytes; the remainder is split evenly.
    sim::Bytes remaining = total;
    for (std::size_t i = 0; i < count; ++i) {
        sim::Bytes size;
        if (count == 1) {
            size = remaining;
        } else if (i == 0) {
            size = (total * 6) / 10;
        } else {
            size = remaining / static_cast<sim::Bytes>(count - i);
        }
        size = std::max<sim::Bytes>(size, 1);
        size = std::min(size, remaining - static_cast<sim::Bytes>(count - i - 1));
        remaining -= size;
        std::ostringstream digest;
        digest << "sha256:" << name << "-" << i << "-" << size;
        layers.push_back(Layer{digest.str(), size});
    }
    return layers;
}

} // namespace tedge::container
