// Container runtime (containerd equivalent) bound to one topology node.
//
// Models the lifecycle costs the paper measures: container creation (rootfs
// snapshot), start (dominated by namespace setup, per Mohan et al. [23]),
// application initialisation until the port opens, stop and removal.
// Concurrent starts on the same node contend for CPU. Once an application is
// ready, the runtime binds an HTTP endpoint (with bounded request
// concurrency) into the EndpointDirectory.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "container/app_profile.hpp"
#include "container/image.hpp"
#include "net/tcp.hpp"
#include "net/topology.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"

namespace tedge::container {

struct VolumeMount {
    std::string host_path;
    std::string container_path;
    bool operator==(const VolumeMount&) const = default;
};

struct ContainerConfig {
    std::string name;
    ImageRef image;
    const AppProfile* app = nullptr;   ///< may be null for inert containers
    std::vector<VolumeMount> volumes;
    std::map<std::string, std::string> labels;
    std::map<std::string, std::string> env;
};

enum class ContainerState { kCreated, kStarting, kRunning, kExited, kRemoved };

[[nodiscard]] const char* to_string(ContainerState state);

using ContainerId = std::uint64_t;

struct ContainerInfo {
    ContainerId id = 0;
    ContainerConfig config;
    ContainerState state = ContainerState::kCreated;
    std::uint16_t host_port = 0;        ///< published port (0 = none)
    bool app_ready = false;             ///< listening on its port
    sim::SimTime created_at;
    sim::SimTime started_at;
    sim::SimTime ready_at;
};

struct RuntimeCostModel {
    sim::SimTime create_rootfs = sim::milliseconds(70);  ///< snapshot prep
    sim::SimTime create_per_volume = sim::milliseconds(5);
    sim::SimTime ns_setup_median = sim::milliseconds(280); ///< netns + cgroups
    double ns_setup_sigma = 0.08;
    sim::SimTime runtime_exec = sim::milliseconds(35);   ///< runc + shim
    sim::SimTime stop_time = sim::milliseconds(60);
    sim::SimTime remove_time = sim::milliseconds(40);
};

class ContainerRuntime {
public:
    ContainerRuntime(sim::Simulation& sim, net::Topology& topo, net::NodeId node,
                     net::EndpointDirectory& endpoints, sim::Rng rng,
                     RuntimeCostModel costs = {});

    /// Create a container (rootfs snapshot). The image must be present in
    /// the node's image store -- enforcing that is the caller's (cluster's)
    /// job; the runtime itself only charges the creation cost.
    void create(ContainerConfig config, std::function<void(ContainerId)> done);

    /// Start a created container, publishing `host_port` on the node (0 for
    /// no port). `running` fires when the container process is up (Docker
    /// "running"); the application port opens later, after app init.
    void start(ContainerId id, std::uint16_t host_port, std::function<void()> running);

    /// Stop a running container: closes its port, unbinds the endpoint.
    void stop(ContainerId id, std::function<void()> done);

    /// Remove a stopped (or created) container.
    void remove(ContainerId id, std::function<void()> done);

    [[nodiscard]] const ContainerInfo& info(ContainerId id) const;
    [[nodiscard]] bool exists(ContainerId id) const { return containers_.contains(id); }

    /// All containers whose labels contain every pair in `selector`.
    [[nodiscard]] std::vector<ContainerId>
    list(const std::map<std::string, std::string>& selector = {}) const;

    [[nodiscard]] net::NodeId node() const { return node_; }
    [[nodiscard]] std::size_t active_starts() const { return active_starts_; }

private:
    struct RequestQueue {
        int active = 0;
        std::deque<std::function<void()>> waiting;
    };

    void bind_endpoint(ContainerId id);
    sim::SimTime contention(sim::SimTime base) const;

    sim::Simulation& sim_;
    net::Topology& topo_;
    net::NodeId node_;
    net::EndpointDirectory& endpoints_;
    sim::Rng rng_;
    RuntimeCostModel costs_;
    std::map<ContainerId, ContainerInfo> containers_;
    std::map<ContainerId, std::shared_ptr<RequestQueue>> queues_;
    ContainerId next_id_ = 1;
    std::size_t active_starts_ = 0;
};

} // namespace tedge::container
