// Container registries (Docker Hub, Google Container Registry, and a
// private in-network registry). Each registry has its own RTT and a shared
// download channel, so concurrent pulls contend for bandwidth -- the paper's
// fig. 13 compares public registries against a private registry in the same
// network (1.5-2 s faster per image).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "container/image.hpp"
#include "net/link.hpp"
#include "simcore/simulation.hpp"

namespace tedge::container {

struct RegistryProfile {
    std::string host;                       ///< e.g. "docker.io"
    sim::SimTime rtt = sim::milliseconds(30);
    sim::DataRate bandwidth = sim::mbit_per_sec(400);
    /// Auth/token + manifest round trips before the first byte.
    sim::SimTime manifest_overhead = sim::milliseconds(300);
    /// HTTP round trips + checksum start cost per layer request.
    sim::SimTime per_layer_overhead = sim::milliseconds(120);
};

class Registry {
public:
    Registry(sim::Simulation& sim, RegistryProfile profile);

    [[nodiscard]] const RegistryProfile& profile() const { return profile_; }
    [[nodiscard]] const std::string& host() const { return profile_.host; }

    /// Publish an image so clients can pull it. Keyed by repository:tag (the
    /// registry host in the ref is ignored; it names *this* registry).
    void put(const Image& image);

    /// Synchronous catalog lookup (used by tests and the puller after the
    /// manifest round trip).
    [[nodiscard]] const Image* find(const ImageRef& ref) const;

    /// Fetch the manifest: one RTT + manifest overhead, then yields the
    /// image description or nullptr if unknown (or during an outage).
    void fetch_manifest(const ImageRef& ref,
                        std::function<void(const Image*)> done);

    /// Failure injection: while in outage, manifest fetches fail (after the
    /// usual round trip, like a 5xx), making pulls -- and with them
    /// on-demand deployments -- fail cleanly.
    void set_outage(bool down) { outage_ = down; }
    [[nodiscard]] bool in_outage() const { return outage_; }

    /// Download one layer blob through the shared channel: RTT + per-layer
    /// overhead + fair-share transfer time.
    void fetch_layer(const Layer& layer, std::function<void()> done);

    [[nodiscard]] net::SharedLink& link() { return link_; }

private:
    static std::string key(const ImageRef& ref) {
        return ref.repository + ":" + ref.tag;
    }

    sim::Simulation& sim_;
    RegistryProfile profile_;
    net::SharedLink link_;
    std::map<std::string, Image> catalog_;
    bool outage_ = false;
};

} // namespace tedge::container
