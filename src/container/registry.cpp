#include "container/registry.hpp"

namespace tedge::container {

Registry::Registry(sim::Simulation& sim, RegistryProfile profile)
    : sim_(sim), profile_(std::move(profile)), link_(sim, profile_.bandwidth) {}

void Registry::put(const Image& image) {
    catalog_[key(image.ref)] = image;
}

const Image* Registry::find(const ImageRef& ref) const {
    const auto it = catalog_.find(key(ref));
    return it == catalog_.end() ? nullptr : &it->second;
}

void Registry::fetch_manifest(const ImageRef& ref,
                              std::function<void(const Image*)> done) {
    const sim::SimTime delay = profile_.rtt + profile_.manifest_overhead;
    sim_.schedule(delay, [this, ref, done = std::move(done)] {
        done(outage_ ? nullptr : find(ref));
    });
}

void Registry::fetch_layer(const Layer& layer, std::function<void()> done) {
    const sim::SimTime preamble = profile_.rtt + profile_.per_layer_overhead;
    sim_.schedule(preamble, [this, layer, done = std::move(done)]() mutable {
        link_.start_transfer(layer.size, std::move(done));
    });
}

} // namespace tedge::container
