// Container images: named references and content-addressed layers.
//
// Pull times in the paper depend on both total image size and the number of
// layers (each layer is downloaded and verified separately, and popular base
// layers may already be cached by other images) -- so layers are first-class
// here.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "simcore/units.hpp"

namespace tedge::container {

/// A single image layer, identified by its content digest.
struct Layer {
    std::string digest;       ///< e.g. "sha256:ab12..."
    sim::Bytes size = 0;      ///< compressed (wire) size

    bool operator==(const Layer&) const = default;
};

/// Parsed image reference: [registry/]repository[:tag].
struct ImageRef {
    std::string registry = "docker.io";  ///< registry host
    std::string repository;              ///< e.g. "library/nginx"
    std::string tag = "latest";

    /// Parse docker-style references. The first path component is treated
    /// as a registry host iff it contains '.' or ':' (docker's rule).
    [[nodiscard]] static std::optional<ImageRef> parse(const std::string& text);

    /// Canonical full name "registry/repository:tag".
    [[nodiscard]] std::string full() const;

    /// Short form as a user would write it.
    [[nodiscard]] std::string str() const;

    bool operator==(const ImageRef&) const = default;
    auto operator<=>(const ImageRef&) const = default;
};

struct Image {
    ImageRef ref;
    std::vector<Layer> layers;

    [[nodiscard]] sim::Bytes total_size() const;
    [[nodiscard]] std::size_t layer_count() const { return layers.size(); }
};

/// Deterministically derive a layer list for a synthetic image: `count`
/// layers whose sizes sum to `total`, skewed like real images (one large
/// base layer plus smaller config layers). Digests embed `name` so equal
/// bases shared across images must be constructed explicitly.
[[nodiscard]] std::vector<Layer> make_layers(const std::string& name,
                                             sim::Bytes total, std::size_t count);

} // namespace tedge::container
