// Image pull engine (the paper's Pull phase, fig. 4).
//
// Mirrors docker/containerd behaviour: layers download in parallel (bounded
// window) through the registry's shared channel, but are verified/extracted
// sequentially in image order; layers already present locally -- or being
// downloaded by a concurrent pull -- are not downloaded twice.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "container/image_store.hpp"
#include "container/registry.hpp"
#include "simcore/simulation.hpp"

namespace tedge::container {

struct PullTiming {
    sim::SimTime started;
    sim::SimTime finished;
    sim::Bytes bytes_downloaded = 0;
    std::size_t layers_downloaded = 0;
    std::size_t layers_cached = 0;     ///< present locally before the pull
    std::size_t layers_shared = 0;     ///< awaited from a concurrent pull

    [[nodiscard]] sim::SimTime duration() const { return finished - started; }
};

struct PullerConfig {
    std::size_t max_parallel_layers = 3;            ///< docker default
    sim::DataRate extract_rate = sim::DataRate{150LL * 8 * 1024 * 1024}; ///< ~150 MiB/s
    sim::SimTime per_layer_extract_overhead = sim::milliseconds(20);
    sim::SimTime local_hit_latency = sim::milliseconds(5); ///< image inspect cost
};

class Puller {
public:
    using Callback = std::function<void(bool ok, const PullTiming&)>;

    Puller(sim::Simulation& sim, ImageStore& store, PullerConfig config = {});

    /// Ensure `ref` is available in the local store, pulling from `registry`
    /// if needed. Concurrent pulls of the same reference coalesce.
    void pull(const ImageRef& ref, Registry& registry, Callback done);

    [[nodiscard]] std::size_t inflight_pulls() const { return image_waiters_.size(); }

private:
    struct PullJob;

    void start_job(const ImageRef& ref, Registry& registry);
    void job_fetch_next(const std::shared_ptr<PullJob>& job);
    void job_layer_downloaded(const std::shared_ptr<PullJob>& job, std::size_t index);
    void job_try_extract(const std::shared_ptr<PullJob>& job);
    void job_finish(const std::shared_ptr<PullJob>& job, bool ok);
    void notify_layer_available(const std::string& digest);

    sim::Simulation& sim_;
    ImageStore& store_;
    PullerConfig config_;
    /// full-ref -> callbacks awaiting that image
    std::map<std::string, std::vector<Callback>> image_waiters_;
    /// digest -> callbacks of jobs awaiting a layer another job is fetching
    std::map<std::string, std::vector<std::function<void()>>> layer_waiters_;
};

} // namespace tedge::container
