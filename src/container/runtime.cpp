#include "container/runtime.hpp"

#include <algorithm>
#include <stdexcept>

#include "simcore/metrics_registry.hpp"
#include "simcore/tracer.hpp"

namespace tedge::container {

const char* to_string(ContainerState state) {
    switch (state) {
        case ContainerState::kCreated: return "created";
        case ContainerState::kStarting: return "starting";
        case ContainerState::kRunning: return "running";
        case ContainerState::kExited: return "exited";
        case ContainerState::kRemoved: return "removed";
    }
    return "?";
}

ContainerRuntime::ContainerRuntime(sim::Simulation& sim, net::Topology& topo,
                                   net::NodeId node,
                                   net::EndpointDirectory& endpoints, sim::Rng rng,
                                   RuntimeCostModel costs)
    : sim_(sim), topo_(topo), node_(node), endpoints_(endpoints), rng_(rng),
      costs_(costs) {}

sim::SimTime ContainerRuntime::contention(sim::SimTime base) const {
    // Concurrent container starts compete for CPU; below the core count the
    // slowdown is negligible, beyond it roughly linear.
    const auto cores = std::max<std::uint32_t>(topo_.node(node_).cpu_cores, 1);
    const double factor = std::max(
        1.0, static_cast<double>(active_starts_) / static_cast<double>(cores));
    return sim::from_seconds(base.seconds() * factor);
}

void ContainerRuntime::create(ContainerConfig config,
                              std::function<void(ContainerId)> done) {
    const ContainerId id = next_id_++;
    ContainerInfo info;
    info.id = id;
    info.config = std::move(config);
    info.state = ContainerState::kCreated;
    containers_.emplace(id, std::move(info));

    const sim::SimTime cost =
        costs_.create_rootfs +
        costs_.create_per_volume *
            static_cast<std::int64_t>(containers_.at(id).config.volumes.size());
    sim::SpanId span = 0;
    if (auto* tr = sim_.tracer()) {
        span = tr->begin("container.create");
        tr->arg(span, "image", containers_.at(id).config.image.full());
    }
    sim_.schedule(cost, [this, id, span, done = std::move(done)] {
        containers_.at(id).created_at = sim_.now();
        if (auto* tr = sim_.tracer()) {
            if (span != 0) tr->end(span);
        }
        done(id);
    });
}

void ContainerRuntime::start(ContainerId id, std::uint16_t host_port,
                             std::function<void()> running) {
    auto& info = containers_.at(id);
    if (info.state != ContainerState::kCreated && info.state != ContainerState::kExited) {
        throw std::logic_error("start: container not in a startable state");
    }
    info.state = ContainerState::kStarting;
    info.host_port = host_port;
    ++active_starts_;
    if (auto* m = sim_.metrics()) m->counter("container.starts").inc();

    const sim::SimTime ns_setup = sim::from_seconds(
        rng_.lognormal_median(costs_.ns_setup_median.seconds(), costs_.ns_setup_sigma));
    const sim::SimTime start_cost = contention(ns_setup + costs_.runtime_exec);

    sim::SpanId span = 0;
    if (auto* tr = sim_.tracer()) {
        span = tr->begin("container.start");
        tr->arg(span, "name", info.config.name);
    }
    sim_.schedule(start_cost, [this, id, span, running = std::move(running)] {
        --active_starts_;
        if (auto* tr = sim_.tracer()) {
            if (span != 0) tr->end(span); // start ends when the process runs
        }
        auto& c = containers_.at(id);
        if (c.state != ContainerState::kStarting) return; // stopped meanwhile
        c.state = ContainerState::kRunning;
        c.started_at = sim_.now();
        running();

        // Application initialisation until the port accepts connections.
        const AppProfile* app = c.config.app;
        if (app == nullptr || c.host_port == 0) {
            c.app_ready = true; // nothing to listen on; "ready" immediately
            c.ready_at = sim_.now();
            if (auto* tr = sim_.tracer()) tr->instant("container.ready");
            return;
        }
        const sim::SimTime init = app->sample_init(rng_);
        sim_.schedule(init, [this, id] {
            auto& cc = containers_.at(id);
            if (cc.state != ContainerState::kRunning) return;
            cc.app_ready = true;
            cc.ready_at = sim_.now();
            if (auto* tr = sim_.tracer()) tr->instant("container.ready");
            topo_.open_port(node_, cc.host_port);
            bind_endpoint(id);
        });
    });
}

void ContainerRuntime::bind_endpoint(ContainerId id) {
    auto& info = containers_.at(id);
    const AppProfile* app = info.config.app;
    auto queue = std::make_shared<RequestQueue>();
    queues_[id] = queue;

    endpoints_.bind(node_, info.host_port,
                    [this, app, queue](sim::Bytes /*request_size*/,
                                       net::EndpointDirectory::ReplyFn reply) {
        auto serve = [this, app, queue, reply = std::move(reply)]() mutable {
            ++queue->active;
            const sim::SimTime service = app->sample_service(rng_);
            sim_.schedule(service, [this, app, queue, reply = std::move(reply)] {
                --queue->active;
                reply(app->response_size);
                if (!queue->waiting.empty() && queue->active < app->concurrency) {
                    auto next = std::move(queue->waiting.front());
                    queue->waiting.pop_front();
                    next();
                }
            });
        };
        if (queue->active < app->concurrency) {
            serve();
        } else {
            queue->waiting.push_back(std::move(serve));
        }
    });
}

void ContainerRuntime::stop(ContainerId id, std::function<void()> done) {
    auto& info = containers_.at(id);
    if (info.state == ContainerState::kRemoved) {
        throw std::logic_error("stop: container removed");
    }
    const bool was_ready = info.app_ready;
    info.state = ContainerState::kExited;
    info.app_ready = false;
    if (was_ready && info.host_port != 0) {
        topo_.close_port(node_, info.host_port);
        endpoints_.unbind(node_, info.host_port);
    }
    queues_.erase(id);
    sim_.schedule(costs_.stop_time, std::move(done));
}

void ContainerRuntime::remove(ContainerId id, std::function<void()> done) {
    auto& info = containers_.at(id);
    if (info.state == ContainerState::kRunning ||
        info.state == ContainerState::kStarting) {
        throw std::logic_error("remove: container still running");
    }
    info.state = ContainerState::kRemoved;
    sim_.schedule(costs_.remove_time, [this, id, done = std::move(done)] {
        containers_.erase(id);
        done();
    });
}

const ContainerInfo& ContainerRuntime::info(ContainerId id) const {
    return containers_.at(id);
}

std::vector<ContainerId>
ContainerRuntime::list(const std::map<std::string, std::string>& selector) const {
    std::vector<ContainerId> out;
    for (const auto& [id, info] : containers_) {
        if (info.state == ContainerState::kRemoved) continue;
        bool match = true;
        for (const auto& [k, v] : selector) {
            const auto it = info.config.labels.find(k);
            if (it == info.config.labels.end() || it->second != v) {
                match = false;
                break;
            }
        }
        if (match) out.push_back(id);
    }
    return out;
}

} // namespace tedge::container
