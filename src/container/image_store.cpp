#include "container/image_store.hpp"

#include <stdexcept>

namespace tedge::container {

bool ImageStore::has_layer(const std::string& digest) const {
    return layers_.contains(digest);
}

void ImageStore::add_layer(const Layer& layer) {
    const auto [it, inserted] = layers_.emplace(layer.digest, layer.size);
    if (inserted) disk_usage_ += layer.size;
}

std::vector<Layer> ImageStore::missing_layers(const Image& image) const {
    std::vector<Layer> missing;
    for (const auto& layer : image.layers) {
        if (!has_layer(layer.digest)) missing.push_back(layer);
    }
    return missing;
}

bool ImageStore::has_image(const ImageRef& ref) const {
    const auto it = images_.find(ref.full());
    if (it == images_.end()) return false;
    for (const auto& layer : it->second.layers) {
        if (!has_layer(layer.digest)) return false;
    }
    return true;
}

void ImageStore::tag_image(const Image& image) {
    for (const auto& layer : image.layers) {
        if (!has_layer(layer.digest)) {
            throw std::logic_error("tag_image: missing layer " + layer.digest);
        }
    }
    images_[image.ref.full()] = image;
}

const Image* ImageStore::find_image(const ImageRef& ref) const {
    const auto it = images_.find(ref.full());
    return it == images_.end() ? nullptr : &it->second;
}

bool ImageStore::remove_image(const ImageRef& ref) {
    return images_.erase(ref.full()) > 0;
}

sim::Bytes ImageStore::gc() {
    std::unordered_set<std::string> referenced;
    for (const auto& [name, image] : images_) {
        for (const auto& layer : image.layers) referenced.insert(layer.digest);
    }
    sim::Bytes freed = 0;
    for (auto it = layers_.begin(); it != layers_.end();) {
        if (!referenced.contains(it->first)) {
            freed += it->second;
            disk_usage_ -= it->second;
            it = layers_.erase(it);
        } else {
            ++it;
        }
    }
    return freed;
}

} // namespace tedge::container
