# Empty dependencies file for scheduler_plugin.
# This may be replaced when dependencies are built.
