file(REMOVE_RECURSE
  "CMakeFiles/predictive_autoscaling.dir/predictive_autoscaling.cpp.o"
  "CMakeFiles/predictive_autoscaling.dir/predictive_autoscaling.cpp.o.d"
  "predictive_autoscaling"
  "predictive_autoscaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_autoscaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
