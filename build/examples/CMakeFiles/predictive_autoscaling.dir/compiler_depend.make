# Empty compiler generated dependencies file for predictive_autoscaling.
# This may be replaced when dependencies are built.
