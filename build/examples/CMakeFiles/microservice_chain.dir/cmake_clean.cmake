file(REMOVE_RECURSE
  "CMakeFiles/microservice_chain.dir/microservice_chain.cpp.o"
  "CMakeFiles/microservice_chain.dir/microservice_chain.cpp.o.d"
  "microservice_chain"
  "microservice_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microservice_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
