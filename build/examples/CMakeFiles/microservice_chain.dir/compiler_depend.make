# Empty compiler generated dependencies file for microservice_chain.
# This may be replaced when dependencies are built.
