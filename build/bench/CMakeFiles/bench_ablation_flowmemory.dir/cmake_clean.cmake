file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_flowmemory.dir/bench_ablation_flowmemory.cpp.o"
  "CMakeFiles/bench_ablation_flowmemory.dir/bench_ablation_flowmemory.cpp.o.d"
  "bench_ablation_flowmemory"
  "bench_ablation_flowmemory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_flowmemory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
