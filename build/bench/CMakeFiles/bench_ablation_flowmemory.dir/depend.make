# Empty dependencies file for bench_ablation_flowmemory.
# This may be replaced when dependencies are built.
