file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_wait_ready_create.dir/bench_fig15_wait_ready_create.cpp.o"
  "CMakeFiles/bench_fig15_wait_ready_create.dir/bench_fig15_wait_ready_create.cpp.o.d"
  "bench_fig15_wait_ready_create"
  "bench_fig15_wait_ready_create.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_wait_ready_create.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
