# Empty compiler generated dependencies file for bench_fig15_wait_ready_create.
# This may be replaced when dependencies are built.
