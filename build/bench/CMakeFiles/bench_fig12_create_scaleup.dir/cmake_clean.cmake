file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_create_scaleup.dir/bench_fig12_create_scaleup.cpp.o"
  "CMakeFiles/bench_fig12_create_scaleup.dir/bench_fig12_create_scaleup.cpp.o.d"
  "bench_fig12_create_scaleup"
  "bench_fig12_create_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_create_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
