file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_deployments.dir/bench_fig10_deployments.cpp.o"
  "CMakeFiles/bench_fig10_deployments.dir/bench_fig10_deployments.cpp.o.d"
  "bench_fig10_deployments"
  "bench_fig10_deployments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_deployments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
