file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_wait_ready.dir/bench_fig14_wait_ready.cpp.o"
  "CMakeFiles/bench_fig14_wait_ready.dir/bench_fig14_wait_ready.cpp.o.d"
  "bench_fig14_wait_ready"
  "bench_fig14_wait_ready.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_wait_ready.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
