# Empty compiler generated dependencies file for bench_fig14_wait_ready.
# This may be replaced when dependencies are built.
