file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_running.dir/bench_fig16_running.cpp.o"
  "CMakeFiles/bench_fig16_running.dir/bench_fig16_running.cpp.o.d"
  "bench_fig16_running"
  "bench_fig16_running.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_running.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
