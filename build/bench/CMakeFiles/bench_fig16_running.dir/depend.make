# Empty dependencies file for bench_fig16_running.
# This may be replaced when dependencies are built.
