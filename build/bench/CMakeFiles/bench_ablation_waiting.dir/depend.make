# Empty dependencies file for bench_ablation_waiting.
# This may be replaced when dependencies are built.
