file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_waiting.dir/bench_ablation_waiting.cpp.o"
  "CMakeFiles/bench_ablation_waiting.dir/bench_ablation_waiting.cpp.o.d"
  "bench_ablation_waiting"
  "bench_ablation_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
