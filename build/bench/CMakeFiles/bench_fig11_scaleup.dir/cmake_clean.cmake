file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_scaleup.dir/bench_fig11_scaleup.cpp.o"
  "CMakeFiles/bench_fig11_scaleup.dir/bench_fig11_scaleup.cpp.o.d"
  "bench_fig11_scaleup"
  "bench_fig11_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
