file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_predictive.dir/bench_ext_predictive.cpp.o"
  "CMakeFiles/bench_ext_predictive.dir/bench_ext_predictive.cpp.o.d"
  "bench_ext_predictive"
  "bench_ext_predictive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_predictive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
