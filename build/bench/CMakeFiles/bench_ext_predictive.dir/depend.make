# Empty dependencies file for bench_ext_predictive.
# This may be replaced when dependencies are built.
