# Empty compiler generated dependencies file for bench_ext_serverless.
# This may be replaced when dependencies are built.
