file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_serverless.dir/bench_ext_serverless.cpp.o"
  "CMakeFiles/bench_ext_serverless.dir/bench_ext_serverless.cpp.o.d"
  "bench_ext_serverless"
  "bench_ext_serverless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_serverless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
