# Empty dependencies file for tedge.
# This may be replaced when dependencies are built.
