
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/container/image.cpp" "src/CMakeFiles/tedge.dir/container/image.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/container/image.cpp.o.d"
  "/root/repo/src/container/image_store.cpp" "src/CMakeFiles/tedge.dir/container/image_store.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/container/image_store.cpp.o.d"
  "/root/repo/src/container/puller.cpp" "src/CMakeFiles/tedge.dir/container/puller.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/container/puller.cpp.o.d"
  "/root/repo/src/container/registry.cpp" "src/CMakeFiles/tedge.dir/container/registry.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/container/registry.cpp.o.d"
  "/root/repo/src/container/runtime.cpp" "src/CMakeFiles/tedge.dir/container/runtime.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/container/runtime.cpp.o.d"
  "/root/repo/src/core/autoscaler.cpp" "src/CMakeFiles/tedge.dir/core/autoscaler.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/autoscaler.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/tedge.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/config.cpp.o.d"
  "/root/repo/src/core/deployment.cpp" "src/CMakeFiles/tedge.dir/core/deployment.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/deployment.cpp.o.d"
  "/root/repo/src/core/edge_platform.cpp" "src/CMakeFiles/tedge.dir/core/edge_platform.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/edge_platform.cpp.o.d"
  "/root/repo/src/core/port_prober.cpp" "src/CMakeFiles/tedge.dir/core/port_prober.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/port_prober.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/CMakeFiles/tedge.dir/core/predictor.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/core/predictor.cpp.o.d"
  "/root/repo/src/net/address.cpp" "src/CMakeFiles/tedge.dir/net/address.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/address.cpp.o.d"
  "/root/repo/src/net/flow_table.cpp" "src/CMakeFiles/tedge.dir/net/flow_table.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/flow_table.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/tedge.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/link.cpp.o.d"
  "/root/repo/src/net/ovs_switch.cpp" "src/CMakeFiles/tedge.dir/net/ovs_switch.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/ovs_switch.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/tedge.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/tedge.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/net/topology.cpp.o.d"
  "/root/repo/src/orchestrator/docker_cluster.cpp" "src/CMakeFiles/tedge.dir/orchestrator/docker_cluster.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/docker_cluster.cpp.o.d"
  "/root/repo/src/orchestrator/k8s/api_server.cpp" "src/CMakeFiles/tedge.dir/orchestrator/k8s/api_server.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/k8s/api_server.cpp.o.d"
  "/root/repo/src/orchestrator/k8s/controller_manager.cpp" "src/CMakeFiles/tedge.dir/orchestrator/k8s/controller_manager.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/k8s/controller_manager.cpp.o.d"
  "/root/repo/src/orchestrator/k8s/k8s_cluster.cpp" "src/CMakeFiles/tedge.dir/orchestrator/k8s/k8s_cluster.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/k8s/k8s_cluster.cpp.o.d"
  "/root/repo/src/orchestrator/k8s/kube_scheduler.cpp" "src/CMakeFiles/tedge.dir/orchestrator/k8s/kube_scheduler.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/k8s/kube_scheduler.cpp.o.d"
  "/root/repo/src/orchestrator/k8s/kubelet.cpp" "src/CMakeFiles/tedge.dir/orchestrator/k8s/kubelet.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/orchestrator/k8s/kubelet.cpp.o.d"
  "/root/repo/src/sdn/annotator.cpp" "src/CMakeFiles/tedge.dir/sdn/annotator.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/annotator.cpp.o.d"
  "/root/repo/src/sdn/controller.cpp" "src/CMakeFiles/tedge.dir/sdn/controller.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/controller.cpp.o.d"
  "/root/repo/src/sdn/dispatcher.cpp" "src/CMakeFiles/tedge.dir/sdn/dispatcher.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/dispatcher.cpp.o.d"
  "/root/repo/src/sdn/flow_memory.cpp" "src/CMakeFiles/tedge.dir/sdn/flow_memory.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/flow_memory.cpp.o.d"
  "/root/repo/src/sdn/scheduler.cpp" "src/CMakeFiles/tedge.dir/sdn/scheduler.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/scheduler.cpp.o.d"
  "/root/repo/src/sdn/schedulers/hierarchical.cpp" "src/CMakeFiles/tedge.dir/sdn/schedulers/hierarchical.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/schedulers/hierarchical.cpp.o.d"
  "/root/repo/src/sdn/schedulers/least_loaded.cpp" "src/CMakeFiles/tedge.dir/sdn/schedulers/least_loaded.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/schedulers/least_loaded.cpp.o.d"
  "/root/repo/src/sdn/schedulers/proximity.cpp" "src/CMakeFiles/tedge.dir/sdn/schedulers/proximity.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/schedulers/proximity.cpp.o.d"
  "/root/repo/src/sdn/schedulers/round_robin.cpp" "src/CMakeFiles/tedge.dir/sdn/schedulers/round_robin.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/schedulers/round_robin.cpp.o.d"
  "/root/repo/src/sdn/service_registry.cpp" "src/CMakeFiles/tedge.dir/sdn/service_registry.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/sdn/service_registry.cpp.o.d"
  "/root/repo/src/serverless/faas_cluster.cpp" "src/CMakeFiles/tedge.dir/serverless/faas_cluster.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/serverless/faas_cluster.cpp.o.d"
  "/root/repo/src/serverless/wasm_runtime.cpp" "src/CMakeFiles/tedge.dir/serverless/wasm_runtime.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/serverless/wasm_runtime.cpp.o.d"
  "/root/repo/src/simcore/event_queue.cpp" "src/CMakeFiles/tedge.dir/simcore/event_queue.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/event_queue.cpp.o.d"
  "/root/repo/src/simcore/histogram.cpp" "src/CMakeFiles/tedge.dir/simcore/histogram.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/histogram.cpp.o.d"
  "/root/repo/src/simcore/logging.cpp" "src/CMakeFiles/tedge.dir/simcore/logging.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/logging.cpp.o.d"
  "/root/repo/src/simcore/random.cpp" "src/CMakeFiles/tedge.dir/simcore/random.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/random.cpp.o.d"
  "/root/repo/src/simcore/simulation.cpp" "src/CMakeFiles/tedge.dir/simcore/simulation.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/simulation.cpp.o.d"
  "/root/repo/src/simcore/stats.cpp" "src/CMakeFiles/tedge.dir/simcore/stats.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/stats.cpp.o.d"
  "/root/repo/src/simcore/thread_pool.cpp" "src/CMakeFiles/tedge.dir/simcore/thread_pool.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/simcore/thread_pool.cpp.o.d"
  "/root/repo/src/testbed/c3.cpp" "src/CMakeFiles/tedge.dir/testbed/c3.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/testbed/c3.cpp.o.d"
  "/root/repo/src/testbed/services.cpp" "src/CMakeFiles/tedge.dir/testbed/services.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/testbed/services.cpp.o.d"
  "/root/repo/src/workload/bigflows.cpp" "src/CMakeFiles/tedge.dir/workload/bigflows.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/workload/bigflows.cpp.o.d"
  "/root/repo/src/workload/http_client.cpp" "src/CMakeFiles/tedge.dir/workload/http_client.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/workload/http_client.cpp.o.d"
  "/root/repo/src/workload/metrics.cpp" "src/CMakeFiles/tedge.dir/workload/metrics.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/workload/metrics.cpp.o.d"
  "/root/repo/src/workload/runner.cpp" "src/CMakeFiles/tedge.dir/workload/runner.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/workload/runner.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/tedge.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/workload/trace.cpp.o.d"
  "/root/repo/src/yamlite/emitter.cpp" "src/CMakeFiles/tedge.dir/yamlite/emitter.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/yamlite/emitter.cpp.o.d"
  "/root/repo/src/yamlite/parser.cpp" "src/CMakeFiles/tedge.dir/yamlite/parser.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/yamlite/parser.cpp.o.d"
  "/root/repo/src/yamlite/value.cpp" "src/CMakeFiles/tedge.dir/yamlite/value.cpp.o" "gcc" "src/CMakeFiles/tedge.dir/yamlite/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
