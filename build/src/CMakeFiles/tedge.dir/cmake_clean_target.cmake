file(REMOVE_RECURSE
  "libtedge.a"
)
