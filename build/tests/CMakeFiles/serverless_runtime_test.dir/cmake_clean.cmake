file(REMOVE_RECURSE
  "CMakeFiles/serverless_runtime_test.dir/serverless_runtime_test.cpp.o"
  "CMakeFiles/serverless_runtime_test.dir/serverless_runtime_test.cpp.o.d"
  "serverless_runtime_test"
  "serverless_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serverless_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
