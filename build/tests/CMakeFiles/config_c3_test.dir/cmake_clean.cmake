file(REMOVE_RECURSE
  "CMakeFiles/config_c3_test.dir/config_c3_test.cpp.o"
  "CMakeFiles/config_c3_test.dir/config_c3_test.cpp.o.d"
  "config_c3_test"
  "config_c3_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_c3_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
