# Empty dependencies file for config_c3_test.
# This may be replaced when dependencies are built.
