file(REMOVE_RECURSE
  "CMakeFiles/random_stats_test.dir/random_stats_test.cpp.o"
  "CMakeFiles/random_stats_test.dir/random_stats_test.cpp.o.d"
  "random_stats_test"
  "random_stats_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
