# Empty dependencies file for switch_tcp_test.
# This may be replaced when dependencies are built.
