file(REMOVE_RECURSE
  "CMakeFiles/switch_tcp_test.dir/switch_tcp_test.cpp.o"
  "CMakeFiles/switch_tcp_test.dir/switch_tcp_test.cpp.o.d"
  "switch_tcp_test"
  "switch_tcp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switch_tcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
