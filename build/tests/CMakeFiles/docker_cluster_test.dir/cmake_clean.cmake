file(REMOVE_RECURSE
  "CMakeFiles/docker_cluster_test.dir/docker_cluster_test.cpp.o"
  "CMakeFiles/docker_cluster_test.dir/docker_cluster_test.cpp.o.d"
  "docker_cluster_test"
  "docker_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docker_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
