# Empty compiler generated dependencies file for docker_cluster_test.
# This may be replaced when dependencies are built.
