file(REMOVE_RECURSE
  "CMakeFiles/yamlite_test.dir/yamlite_test.cpp.o"
  "CMakeFiles/yamlite_test.dir/yamlite_test.cpp.o.d"
  "yamlite_test"
  "yamlite_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yamlite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
