# Empty dependencies file for yamlite_test.
# This may be replaced when dependencies are built.
