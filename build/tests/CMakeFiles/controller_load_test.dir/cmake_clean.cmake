file(REMOVE_RECURSE
  "CMakeFiles/controller_load_test.dir/controller_load_test.cpp.o"
  "CMakeFiles/controller_load_test.dir/controller_load_test.cpp.o.d"
  "controller_load_test"
  "controller_load_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controller_load_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
