# Empty compiler generated dependencies file for controller_load_test.
# This may be replaced when dependencies are built.
