file(REMOVE_RECURSE
  "CMakeFiles/edge_platform_test.dir/edge_platform_test.cpp.o"
  "CMakeFiles/edge_platform_test.dir/edge_platform_test.cpp.o.d"
  "edge_platform_test"
  "edge_platform_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
