file(REMOVE_RECURSE
  "CMakeFiles/flow_memory_test.dir/flow_memory_test.cpp.o"
  "CMakeFiles/flow_memory_test.dir/flow_memory_test.cpp.o.d"
  "flow_memory_test"
  "flow_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flow_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
