# Empty dependencies file for flow_memory_test.
# This may be replaced when dependencies are built.
