// Fig. 10: distribution of the 42 edge service deployments over the five
// minutes -- with a burst of deployments in the first seconds as the trace's
// popular services are touched for the first time.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "simcore/histogram.hpp"

namespace {

void print_fig10() {
    using namespace tedge;
    bench::print_header(
        "Fig. 10 -- deployment distribution over the trace",
        "42 deployments in five minutes, up to eight per second at the start");

    bench::DeploymentExperimentOptions options;
    options.cluster_kind = "docker";
    options.service_key = "nginx";
    options.pre_create = false; // deployments run Create + Scale Up
    const auto result = bench::run_deployment_experiment(options);

    std::cout << "deployments: " << result.deployment_start_times.size() << "\n";

    sim::TimeSeriesBins per_second(sim::seconds(300), sim::seconds(1));
    for (const auto t : result.deployment_start_times) per_second.add(t);
    std::cout << "max deployments in one second: " << per_second.max_bin()
              << " (paper: up to 8)\n\n";

    sim::TimeSeriesBins per_10s(sim::seconds(300), sim::seconds(10));
    for (const auto t : result.deployment_start_times) per_10s.add(t);
    std::cout << "deployments per 10 s bucket:\n" << per_10s.ascii(40);
}

void BM_DeploymentExperimentDocker(benchmark::State& state) {
    std::uint64_t seed = 100;
    for (auto _ : state) {
        tedge::bench::DeploymentExperimentOptions options;
        options.cluster_kind = "docker";
        options.service_key = "asm";
        options.pre_create = false;
        options.num_services = 8;
        options.num_requests = 200;
        options.horizon = tedge::sim::seconds(60);
        options.seed = seed++;
        auto result = tedge::bench::run_deployment_experiment(options);
        benchmark::DoNotOptimize(result);
    }
}
BENCHMARK(BM_DeploymentExperimentDocker)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig10();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
