// Fig. 13: total time to pull the service images onto the EGS from Docker
// Hub / Google Container Registry, vs from a private registry located in
// the same network (paper: improves pull times by about 1.5 to 2 seconds).
// Layer sharing: pulling Nginx+Py when Nginx is cached only fetches the
// Python layer.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"

namespace {

void print_fig13() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Fig. 13 -- image pull times: public registries vs private registry",
        "private in-network registry improves pull times by ~1.5-2 s; pull "
        "time depends on total size AND layer count; shared base layers may "
        "already be cached");

    TextTable table({"Service", "Registry", "pull [s]", "downloaded", "layers",
                     "paper"});
    for (const auto& service_key : {"asm", "nginx", "resnet", "nginx_py"}) {
        const auto& service = tedge::testbed::service_by_key(service_key);
        const std::string home =
            service.images.front().ref.registry == "gcr.io" ? "gcr.io" : "docker.io";

        const auto pub = tedge::bench::measure_pull(service_key, false);
        const auto priv = tedge::bench::measure_pull(service_key, true);
        const double delta_s = (pub.pull_ms - priv.pull_ms) / 1e3;

        auto mib = [](sim::Bytes b) {
            return TextTable::num(static_cast<double>(b) / 1024.0 / 1024.0, 1) + " MiB";
        };
        table.add_row({service.display_name, home, TextTable::num(pub.pull_ms / 1e3, 2),
                       mib(pub.bytes), std::to_string(pub.layers_downloaded), ""});
        table.add_row({"", "registry.local", TextTable::num(priv.pull_ms / 1e3, 2),
                       mib(priv.bytes), std::to_string(priv.layers_downloaded),
                       "private ~1.5-2 s faster (delta " +
                           TextTable::num(delta_s, 1) + " s)"});
    }

    // Layer sharing: Nginx+Py with the Nginx layers already on disk.
    const auto shared = tedge::bench::measure_pull("nginx_py", false, "nginx");
    table.add_row({"Nginx+Py (nginx cached)", "docker.io",
                   TextTable::num(shared.pull_ms / 1e3, 2),
                   TextTable::num(static_cast<double>(shared.bytes) / 1024.0 / 1024.0, 1) +
                       " MiB",
                   std::to_string(shared.layers_downloaded),
                   "only the Python layer is fetched"});
    std::cout << table.str();
}

void BM_PullAsmPrivate(benchmark::State& state) {
    std::uint64_t seed = 10;
    for (auto _ : state) {
        auto m = tedge::bench::measure_pull("asm", true, "", seed++);
        benchmark::DoNotOptimize(m);
    }
}
BENCHMARK(BM_PullAsmPrivate)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_fig13();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
