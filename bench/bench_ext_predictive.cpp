// Extension bench (paper §I + §VII): proactive (predictive) deployment in
// combination with on-demand deployment. The paper argues prediction can
// never be 100% right -- on-demand deployment covers the misses. This bench
// replays the bigFlows-like trace with and without the EWMA predictor
// pre-warming popular services and reports how many requests still hit a
// cold (deploying) service.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "core/predictor.hpp"
#include "workload/runner.hpp"

namespace {

using namespace tedge;

struct PredictiveResult {
    std::size_t cold_hits = 0;       ///< requests that waited on a deployment
    std::size_t requests = 0;
    double p95_ms = 0;
    double median_ms = 0;
    std::uint64_t predeploys = 0;
};

PredictiveResult run(bool with_predictor, std::uint64_t seed) {
    testbed::C3Options c3;
    c3.seed = seed;
    c3.with_k8s = false;
    c3.controller.flow_memory.idle_timeout = sim::seconds(900);
    c3.controller.dispatcher.switch_idle_timeout = sim::seconds(900);
    c3.controller.scale_down_idle = false;
    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;

    const auto& service = testbed::service_by_key("nginx");
    std::vector<net::ServiceAddress> addresses;
    for (std::uint32_t i = 0; i < 16; ++i) {
        net::ServiceAddress address{
            net::Ipv4{static_cast<std::uint32_t>(net::Ipv4{203, 0, 122, 10}.value() + i)},
            service.address.port};
        platform.register_service(address, service.yaml);
        addresses.push_back(address);
    }

    // Pre-pull the image (both variants), isolating the deployment effect.
    const auto* annotated = platform.service_registry().lookup(addresses[0]);
    bool pulled = false;
    testbed->docker->ensure_image(annotated->spec,
                                  [&](bool ok, const container::PullTiming&) {
                                      pulled = ok;
                                  });
    platform.simulation().run_until(sim::seconds(60));
    if (!pulled) throw std::runtime_error("pre-pull failed");

    workload::BigFlowsOptions trace_options;
    trace_options.services = 16;
    trace_options.requests = 800;
    trace_options.horizon = sim::seconds(300);
    trace_options.clients = static_cast<std::uint32_t>(testbed->clients.size());
    trace_options.seed = seed;
    const auto trace = workload::synthesize_bigflows(trace_options);

    std::unique_ptr<core::PredictiveDeployer> predictor;
    if (with_predictor) {
        core::PredictorConfig config;
        config.period = sim::seconds(5);
        config.decay = 0.8;
        config.top_k = 8;
        config.min_score = 0.3;
        predictor = std::make_unique<core::PredictiveDeployer>(
            platform.simulation(), platform.deployment_engine(), *testbed->docker,
            platform.service_registry(), config);
        // Under hybrid fidelity the cohort-rate EWMAs feed the score too;
        // under exact fidelity this is a no-op (rates are always zero).
        predictor->attach_flow_memory(platform.controller().flow_memory());
        // The predictor sees the arrivals as they happen (feed from the
        // trace replay itself, one observation per scheduled request).
        for (const auto& event : trace.events()) {
            platform.simulation().schedule_at(
                platform.simulation().now() + event.at,
                [&predictor, &addresses, event] {
                    predictor->observe(addresses[event.service]);
                });
        }
    }

    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {service.request_size};
    auto& metrics = runner.replay(trace, replay);

    PredictiveResult result;
    result.requests = metrics.records().size();
    sim::SampleSet all;
    for (const auto& record : metrics.records()) {
        if (!record.ok) continue;
        all.add_time(record.time_total);
        if (record.time_total > sim::milliseconds(100)) ++result.cold_hits;
    }
    result.median_ms = all.median();
    result.p95_ms = all.p95();
    if (predictor) result.predeploys = predictor->deploys_triggered();
    return result;
}

void print_comparison() {
    using workload::TextTable;
    bench::print_header(
        "Extension -- predictive pre-deployment vs pure on-demand (paper §I/§VII)",
        "proactive deployment absorbs most cold hits; on-demand deployment "
        "covers the prediction misses (100% hit rate is impossible)");

    const auto on_demand = run(false, 5);
    const auto predictive = run(true, 5);

    TextTable table({"Policy", "requests", "cold hits", "median [ms]", "p95 [ms]",
                     "pre-deployments"});
    table.add_row({"on-demand only", std::to_string(on_demand.requests),
                   std::to_string(on_demand.cold_hits),
                   TextTable::num(on_demand.median_ms, 2),
                   TextTable::num(on_demand.p95_ms, 1), "0"});
    table.add_row({"predictive + on-demand", std::to_string(predictive.requests),
                   std::to_string(predictive.cold_hits),
                   TextTable::num(predictive.median_ms, 2),
                   TextTable::num(predictive.p95_ms, 1),
                   std::to_string(predictive.predeploys)});
    std::cout << table.str();
}

void BM_PredictiveReplay(benchmark::State& state) {
    std::uint64_t seed = 55;
    for (auto _ : state) {
        auto r = run(true, seed++);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_PredictiveReplay)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
