// Extension bench (paper §VIII future work + Gackstatter et al. [7]):
// containers vs serverless (WASM) side-by-side behind the same transparent
// access controller. Compares the first-request (cold) and warm-request
// latencies of the same logical service deployed as Docker container,
// Kubernetes pod, or WASM function.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "core/edge_platform.hpp"
#include "testbed/calibration.hpp"

namespace {

using namespace tedge;

struct ColdWarm {
    double cold_ms = 0;
    double warm_ms = 0;
};

/// Build a platform with exactly one cluster of `kind` and measure the first
/// (deploying) and a subsequent (warm) request. Images/modules pre-pulled.
ColdWarm measure(const std::string& kind, std::uint64_t seed) {
    core::EdgePlatformConfig platform_config;
    platform_config.seed = seed;
    core::EdgePlatform platform(platform_config);
    const auto client = platform.add_client("ue", net::Ipv4{10, 0, 1, 1});
    const auto edge = platform.add_edge_host("edge", net::Ipv4{10, 0, 0, 2}, 12);
    platform.add_cloud();

    auto& hub = platform.add_registry(testbed::calibration::docker_hub());

    // The same logical microservice in both worlds: a container image (tens
    // of MiB) and a WASM module (sub-MiB), same request behaviour.
    container::Image image;
    image.ref = *container::ImageRef::parse("svc:1");
    image.layers = container::make_layers("svc", sim::mib(40), 4);
    hub.put(image);
    container::Image module;
    module.ref = *container::ImageRef::parse("svc-wasm:1");
    module.layers = container::make_layers("svc-wasm", sim::kib(700), 1);
    hub.put(module);

    container::AppProfile app;
    app.name = "svc";
    app.init_median = sim::milliseconds(40);
    app.service_median = sim::microseconds(200);
    app.response_size = 512;
    app.port = 8080;
    platform.add_app_profile("svc:1", app);
    platform.add_app_profile("svc-wasm:1", app);

    std::string image_name = "svc:1";
    if (kind == "wasm") {
        platform.add_faas_cluster("edge-cluster", edge);
        image_name = "svc-wasm:1";
    } else if (kind == "docker") {
        platform.add_docker_cluster("edge-cluster", edge,
                                    testbed::calibration::docker_config(),
                                    testbed::calibration::runtime_costs(),
                                    testbed::calibration::puller_config());
    } else {
        platform.add_k8s_cluster("edge-cluster", {edge},
                                 testbed::calibration::k8s_config());
    }

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 80}, 8080};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: svc
          image: )" + image_name + R"(
          ports:
            - containerPort: 8080
)");
    sdn::ControllerConfig controller;
    controller.scale_down_idle = false;
    platform.start_controller(edge, controller);

    // Pre-pull so the comparison isolates Create + Scale Up + cold start.
    const auto* annotated = platform.service_registry().lookup(address);
    if (annotated == nullptr) throw std::runtime_error("registration failed");
    bool pulled = false;
    platform.clusters().front()->ensure_image(
        annotated->spec,
        [&](bool ok, const container::PullTiming&) { pulled = ok; });
    platform.simulation().run_until(sim::seconds(120));
    if (!pulled) throw std::runtime_error("pre-pull failed");

    ColdWarm result;
    bool done = false;
    platform.http_request(client, address, 100, [&](const net::HttpResult& r) {
        if (!r.ok) throw std::runtime_error(r.error);
        result.cold_ms = r.time_total.ms();
        done = true;
    });
    bench::drain_phase(platform.simulation(), [&] { return done; });
    done = false;
    platform.simulation().schedule(sim::seconds(1), [&] {
        platform.http_request(client, address, 100, [&](const net::HttpResult& r) {
            if (!r.ok) throw std::runtime_error(r.error);
            result.warm_ms = r.time_total.ms();
            done = true;
        });
    });
    bench::drain_phase(platform.simulation(), [&] { return done; });
    return result;
}

void print_comparison() {
    using workload::TextTable;
    bench::print_header(
        "Extension -- containers vs serverless (WASM) side by side (paper "
        "§VIII)",
        "WASM cold starts are milliseconds (Gackstatter et al. [7]) vs "
        "hundreds of ms (Docker) or seconds (K8s); warm requests are "
        "equivalent");

    TextTable table({"Deployment", "first request [ms]", "warm request [ms]"});
    for (const auto& kind : {"docker", "k8s", "wasm"}) {
        const auto r = measure(kind, 21);
        table.add_row({kind, TextTable::num(r.cold_ms, 1),
                       TextTable::num(r.warm_ms, 2)});
    }
    std::cout << table.str();
}

void BM_WasmColdPath(benchmark::State& state) {
    std::uint64_t seed = 31;
    for (auto _ : state) {
        auto r = measure("wasm", seed++);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_WasmColdPath)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_comparison();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
