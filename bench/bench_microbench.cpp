// Microbenchmarks for the framework's hot paths: event queue, flow-table
// lookup at realistic table sizes, scheduler decisions, YAML parsing, and
// statistics. These are real-time benchmarks of the simulator itself (not
// simulated time) -- they bound how fast experiments run.
#include <benchmark/benchmark.h>

#include "net/flow_table.hpp"
#include "sdn/schedulers/proximity.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/stats.hpp"
#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace {

using namespace tedge;

void BM_EventQueuePushPop(benchmark::State& state) {
    sim::EventQueue queue;
    sim::Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            queue.push(sim::from_seconds(rng.uniform(0, 1)), [] {});
        }
        while (!queue.empty()) queue.pop();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SimulationNestedEvents(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulation simulation;
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 1000) simulation.schedule(sim::microseconds(1), chain);
        };
        simulation.schedule(sim::microseconds(1), chain);
        simulation.run();
        benchmark::DoNotOptimize(depth);
    }
}
BENCHMARK(BM_SimulationNestedEvents);

void BM_FlowTableLookup(benchmark::State& state) {
    net::FlowTable table;
    sim::Rng rng(2);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (std::size_t i = 0; i < n; ++i) {
        net::FlowEntry entry;
        entry.match.src_ip = net::Ipv4{static_cast<std::uint32_t>(rng())};
        entry.match.dst_ip = net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(i % 250)};
        entry.match.dst_port = 80;
        entry.cookie = i;
        table.install(entry, sim::SimTime::zero());
    }
    net::Packet packet;
    packet.dst_ip = net::Ipv4{10, 0, 0, 7};
    packet.dst_port = 80;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(packet, sim::SimTime::zero()));
    }
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(2048);

void BM_YamlParseDeployment(benchmark::State& state) {
    const std::string yaml = R"(
apiVersion: apps/v1
kind: Deployment
metadata:
  name: edge-svc
spec:
  replicas: 0
  selector:
    matchLabels:
      app: edge-svc
  template:
    metadata:
      labels:
        app: edge-svc
    spec:
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
)";
    for (auto _ : state) {
        benchmark::DoNotOptimize(yamlite::parse(yaml));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(yaml.size()));
}
BENCHMARK(BM_YamlParseDeployment);

void BM_YamlEmitRoundTrip(benchmark::State& state) {
    const auto doc = yamlite::parse("a:\n  b:\n    - x\n    - y\nc: 1\n");
    for (auto _ : state) {
        benchmark::DoNotOptimize(yamlite::parse(yamlite::emit(doc)));
    }
}
BENCHMARK(BM_YamlEmitRoundTrip);

void BM_SampleSetQuantile(benchmark::State& state) {
    sim::Rng rng(3);
    sim::SampleSet set;
    for (int i = 0; i < 10000; ++i) set.add(rng.uniform(0, 1000));
    for (auto _ : state) {
        // Re-add one sample to force the re-sort each iteration.
        set.add(rng.uniform(0, 1000));
        benchmark::DoNotOptimize(set.quantile(0.95));
    }
}
BENCHMARK(BM_SampleSetQuantile);

void BM_RngLognormal(benchmark::State& state) {
    sim::Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.lognormal_median(1.0, 0.2));
    }
}
BENCHMARK(BM_RngLognormal);

} // namespace

BENCHMARK_MAIN();
