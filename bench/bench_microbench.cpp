// Microbenchmarks for the framework's hot paths: event queue, flow-table
// lookup at realistic table sizes, scheduler decisions, YAML parsing, and
// statistics. These are real-time benchmarks of the simulator itself (not
// simulated time) -- they bound how fast experiments run.
//
// The BM_Legacy* benchmarks are frozen copies of the pre-optimization
// implementations (shared_ptr tombstone binary heap; linear-scan flow table)
// compiled into the same binary, so the speedup ratios in EXPERIMENTS.md are
// same-machine, same-build comparisons rather than numbers remembered from an
// older checkout.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "net/flow_table.hpp"
#include "sdn/schedulers/proximity.hpp"
#include "simcore/event_queue.hpp"
#include "simcore/random.hpp"
#include "simcore/simulation.hpp"
#include "simcore/stats.hpp"
#include "yamlite/emitter.hpp"
#include "yamlite/parser.hpp"

namespace {

using namespace tedge;

// --------------------------------------------------------------------------
// Event queue: slab 4-ary heap and timer wheel vs. the seed's
// shared_ptr/priority_queue.

/// Burst fill-and-drain of n random timestamps. The window advances by one
/// second per iteration so timestamps never precede the last popped event
/// (the wheel's scheduling contract; a no-op for the heap).
template <sim::QueueBackend Backend>
void BM_EventQueuePushPop(benchmark::State& state) {
    sim::EventQueue queue(Backend);
    sim::Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    std::int64_t base = 0;
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            queue.push(sim::SimTime{base + sim::from_seconds(rng.uniform(0, 1)).ns()},
                       [] {});
        }
        while (!queue.empty()) queue.pop();
        base += 1'000'000'000;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueuePushPop<sim::QueueBackend::kHeap>)
    ->Name("BM_EventQueuePushPop/heap")
    ->Arg(64)->Arg(1024)->Arg(16384);
BENCHMARK(BM_EventQueuePushPop<sim::QueueBackend::kWheel>)
    ->Name("BM_EventQueuePushPop/wheel")
    ->Arg(64)->Arg(1024)->Arg(16384);

/// The case the wheel exists for: a large resident population of far-future
/// timers (per-flow expiry at scale) while near-term events churn through.
/// The heap pays O(log residents) per push/pop; the wheel pays O(1) because
/// the residents sit untouched in high-level buckets.
template <sim::QueueBackend Backend>
void BM_EventQueueSteadyChurn(benchmark::State& state) {
    sim::EventQueue queue(Backend);
    const auto residents = static_cast<std::size_t>(state.range(0));
    queue.reserve(residents + 2);
    sim::Rng rng(1);
    for (std::size_t i = 0; i < residents; ++i) {
        queue.push(sim::seconds(3600) + sim::from_seconds(rng.uniform(0, 3600)),
                   [] {});
    }
    std::int64_t now = 0;
    for (auto _ : state) {
        queue.push(sim::SimTime{now += 1000}, [] {});
        auto popped = queue.pop();
        benchmark::DoNotOptimize(popped.first);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventQueueSteadyChurn<sim::QueueBackend::kHeap>)
    ->Name("BM_EventQueueSteadyChurn/heap")
    ->Arg(1024)->Arg(65536)->Arg(1 << 20);
BENCHMARK(BM_EventQueueSteadyChurn<sim::QueueBackend::kWheel>)
    ->Name("BM_EventQueueSteadyChurn/wheel")
    ->Arg(1024)->Arg(65536)->Arg(1 << 20);

/// Growth-stall delta of EventQueue::reserve(): filling a fresh queue with n
/// events, with and without pre-sizing the slab (and heap array).
template <sim::QueueBackend Backend>
void BM_EventQueueFill(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    const bool reserved = state.range(1) != 0;
    for (auto _ : state) {
        sim::EventQueue queue(Backend);
        if (reserved) queue.reserve(n);
        for (std::size_t i = 0; i < n; ++i) {
            queue.push(sim::SimTime{static_cast<std::int64_t>(i)}, [] {});
        }
        benchmark::DoNotOptimize(queue.size());
        queue.clear();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueFill<sim::QueueBackend::kHeap>)
    ->Name("BM_EventQueueFill/heap")
    ->Args({65536, 0})->Args({65536, 1});
BENCHMARK(BM_EventQueueFill<sim::QueueBackend::kWheel>)
    ->Name("BM_EventQueueFill/wheel")
    ->Args({65536, 0})->Args({65536, 1});

/// The event queue as it shipped in the seed: one shared_ptr<bool> tombstone
/// allocation per event, std::function callbacks, binary priority_queue.
class LegacyEventQueue {
public:
    using Callback = std::function<void()>;

    void push(sim::SimTime at, Callback cb) {
        auto alive = std::make_shared<bool>(true);
        heap_.push(Entry{at, seq_++, std::move(cb), std::move(alive)});
    }

    [[nodiscard]] bool empty() const {
        drop_dead();
        return heap_.empty();
    }

    std::pair<sim::SimTime, Callback> pop() {
        drop_dead();
        Entry e = std::move(const_cast<Entry&>(heap_.top()));
        heap_.pop();
        *e.alive = false;
        return {e.at, std::move(e.cb)};
    }

private:
    struct Entry {
        sim::SimTime at;
        std::uint64_t seq = 0;
        Callback cb;
        std::shared_ptr<bool> alive;
    };
    struct Later {
        bool operator()(const Entry& a, const Entry& b) const {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    void drop_dead() const {
        while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
    }

    mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
    std::uint64_t seq_ = 0;
};

void BM_LegacyEventQueuePushPop(benchmark::State& state) {
    LegacyEventQueue queue;
    sim::Rng rng(1);
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        for (std::size_t i = 0; i < n; ++i) {
            queue.push(sim::from_seconds(rng.uniform(0, 1)), [] {});
        }
        while (!queue.empty()) queue.pop();
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LegacyEventQueuePushPop)->Arg(64)->Arg(1024)->Arg(16384);

template <sim::QueueBackend Backend>
void BM_SimulationNestedEvents(benchmark::State& state) {
    for (auto _ : state) {
        sim::Simulation simulation(Backend);
        int depth = 0;
        std::function<void()> chain = [&] {
            if (++depth < 1000) simulation.schedule(sim::microseconds(1), chain);
        };
        simulation.schedule(sim::microseconds(1), chain);
        simulation.run();
        benchmark::DoNotOptimize(depth);
    }
    // 1000 events scheduled and fired through the full Simulation loop.
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 1000);
}
BENCHMARK(BM_SimulationNestedEvents<sim::QueueBackend::kHeap>)
    ->Name("BM_SimulationNestedEvents/heap");
BENCHMARK(BM_SimulationNestedEvents<sim::QueueBackend::kWheel>)
    ->Name("BM_SimulationNestedEvents/wheel");

// --------------------------------------------------------------------------
// Flow table: exact-match index vs. the seed's linear scan.

/// `n` fully-specified entries (src, dst, port, proto all concrete), the
/// shape the dispatcher installs per accepted connection.
net::FlowTable make_exact_table(std::size_t n) {
    net::FlowTable table;
    for (std::size_t i = 0; i < n; ++i) {
        net::FlowEntry entry;
        entry.match.src_ip = net::Ipv4{192, 168, static_cast<std::uint8_t>(i >> 8),
                                       static_cast<std::uint8_t>(i & 0xff)};
        entry.match.dst_ip = net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(i % 250)};
        entry.match.dst_port = 80;
        entry.match.proto = net::Proto::kTcp;
        entry.cookie = i;
        table.install(entry, sim::SimTime::zero());
    }
    return table;
}

net::Packet exact_packet(std::size_t n) {
    const std::size_t i = n / 2;
    net::Packet packet;
    packet.src_ip = net::Ipv4{192, 168, static_cast<std::uint8_t>(i >> 8),
                              static_cast<std::uint8_t>(i & 0xff)};
    packet.dst_ip = net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(i % 250)};
    packet.dst_port = 80;
    packet.proto = net::Proto::kTcp;
    return packet;
}

void BM_FlowTableLookup(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    net::FlowTable table = make_exact_table(n);
    const net::Packet packet = exact_packet(n);
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(packet, sim::SimTime::zero()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookup)->Arg(16)->Arg(256)->Arg(2048);

/// Same table shape, but the packet only matches a low-specificity wildcard
/// entry -- exercises the fallback scan over non-exact rules.
void BM_FlowTableLookupWildcard(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    net::FlowTable table = make_exact_table(n);
    net::FlowEntry fallback;
    fallback.match.dst_port = 8080;
    fallback.priority = 1;
    table.install(fallback, sim::SimTime::zero());
    net::Packet packet;
    packet.src_ip = net::Ipv4{172, 16, 0, 1};
    packet.dst_ip = net::Ipv4{10, 0, 0, 7};
    packet.dst_port = 8080;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.lookup(packet, sim::SimTime::zero()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTableLookupWildcard)->Arg(16)->Arg(256)->Arg(2048);

/// The lookup as it shipped in the seed: expire scan + full-table best-match
/// scan on every packet.
void BM_LegacyFlowTableLookup(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    std::vector<net::FlowEntry> entries;
    {
        net::FlowTable seeded = make_exact_table(n);
        for (const auto& e : seeded.entries()) entries.push_back(e);
    }
    const net::Packet packet = exact_packet(n);
    const sim::SimTime now = sim::SimTime::zero();
    for (auto _ : state) {
        for (const auto& e : entries) {
            benchmark::DoNotOptimize(e.expired(now));
        }
        const net::FlowEntry* best = nullptr;
        for (auto& e : entries) {
            if (e.expired(now) || !e.match.matches(packet)) continue;
            if (!best || e.priority > best->priority ||
                (e.priority == best->priority &&
                 e.match.specificity() > best->match.specificity())) {
                best = &e;
            }
        }
        benchmark::DoNotOptimize(best);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_LegacyFlowTableLookup)->Arg(16)->Arg(256)->Arg(2048);

// --------------------------------------------------------------------------
// Everything else.

void BM_YamlParseDeployment(benchmark::State& state) {
    const std::string yaml = R"(
apiVersion: apps/v1
kind: Deployment
metadata:
  name: edge-svc
spec:
  replicas: 0
  selector:
    matchLabels:
      app: edge-svc
  template:
    metadata:
      labels:
        app: edge-svc
    spec:
      containers:
        - name: nginx
          image: nginx:1.23.2
          ports:
            - containerPort: 80
)";
    for (auto _ : state) {
        benchmark::DoNotOptimize(yamlite::parse(yaml));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(yaml.size()));
}
BENCHMARK(BM_YamlParseDeployment);

void BM_YamlEmitRoundTrip(benchmark::State& state) {
    const auto doc = yamlite::parse("a:\n  b:\n    - x\n    - y\nc: 1\n");
    for (auto _ : state) {
        benchmark::DoNotOptimize(yamlite::parse(yamlite::emit(doc)));
    }
}
BENCHMARK(BM_YamlEmitRoundTrip);

void BM_SampleSetQuantile(benchmark::State& state) {
    sim::Rng rng(3);
    sim::SampleSet set;
    for (int i = 0; i < 10000; ++i) set.add(rng.uniform(0, 1000));
    for (auto _ : state) {
        // Re-add one sample to force the re-sort each iteration.
        set.add(rng.uniform(0, 1000));
        benchmark::DoNotOptimize(set.quantile(0.95));
    }
}
BENCHMARK(BM_SampleSetQuantile);

void BM_RngLognormal(benchmark::State& state) {
    sim::Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(rng.lognormal_median(1.0, 0.2));
    }
}
BENCHMARK(BM_RngLognormal);

} // namespace

BENCHMARK_MAIN();
