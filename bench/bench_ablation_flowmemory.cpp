// Ablation (paper §V): FlowMemory lets the switch run with LOW idle
// timeouts while the controller answers re-appearing flows from memory.
// Sweep the switch idle timeout with and without a (longer-lived)
// FlowMemory and report controller load (packet-ins) and memory hit rate.
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "workload/runner.hpp"

namespace {

struct SweepResult {
    std::uint64_t packet_ins = 0;
    std::uint64_t memory_hits = 0;
    std::uint64_t deployments = 0;
    double warm_median_ms = 0;
};

SweepResult run_sweep(tedge::sim::SimTime switch_timeout,
                      tedge::sim::SimTime memory_timeout, std::uint64_t seed) {
    using namespace tedge;
    testbed::C3Options c3;
    c3.seed = seed;
    c3.with_k8s = false;
    c3.controller.dispatcher.switch_idle_timeout = switch_timeout;
    c3.controller.flow_memory.idle_timeout = memory_timeout;
    c3.controller.flow_memory.scan_period = sim::seconds(5);
    c3.controller.scale_down_idle = false;
    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;

    const auto& service = testbed::service_by_key("nginx");
    std::vector<net::ServiceAddress> addresses;
    for (std::uint32_t i = 0; i < 8; ++i) {
        net::ServiceAddress address{
            net::Ipv4{static_cast<std::uint32_t>(net::Ipv4{203, 0, 121, 10}.value() + i)},
            service.address.port};
        platform.register_service(address, service.yaml);
        addresses.push_back(address);
    }

    workload::BigFlowsOptions trace_options;
    trace_options.services = 8;
    trace_options.requests = 600;
    trace_options.horizon = sim::seconds(300);
    trace_options.clients = static_cast<std::uint32_t>(testbed->clients.size());
    trace_options.min_requests = 20;
    trace_options.seed = seed;
    const auto trace = workload::synthesize_bigflows(trace_options);

    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {service.request_size};
    auto& metrics = runner.replay(trace, replay);

    SweepResult result;
    result.packet_ins = platform.controller().dispatcher().stats().packet_ins;
    result.memory_hits = platform.controller().flow_memory().hits();
    result.deployments = platform.deployment_engine().records().size();
    sim::SampleSet warm;
    for (const auto& record : metrics.records()) {
        if (record.ok && record.time_total.ms() < 50.0) warm.add_time(record.time_total);
    }
    if (!warm.empty()) result.warm_median_ms = warm.median();
    return result;
}

void print_sweep() {
    using namespace tedge;
    using workload::TextTable;
    bench::print_header(
        "Ablation -- FlowMemory vs switch idle timeouts (paper §V)",
        "memorizing flows lets the switch keep LOW idle timeouts: "
        "re-appearing flows are answered from FlowMemory without a fresh "
        "scheduling pass, keeping controller work flat");

    TextTable table({"switch timeout", "memory timeout", "packet-ins",
                     "memory hits", "deployments", "warm median [ms]"});
    struct Case {
        int switch_s;
        int memory_s;
    };
    for (const Case c : {Case{5, 60}, Case{10, 60}, Case{60, 60}, Case{5, 5},
                         Case{10, 600}, Case{600, 600}}) {
        const auto r = run_sweep(sim::seconds(c.switch_s), sim::seconds(c.memory_s), 3);
        table.add_row({std::to_string(c.switch_s) + " s",
                       std::to_string(c.memory_s) + " s",
                       std::to_string(r.packet_ins), std::to_string(r.memory_hits),
                       std::to_string(r.deployments),
                       TextTable::num(r.warm_median_ms, 2)});
    }
    std::cout << table.str();
}

void BM_FlowMemorySweep(benchmark::State& state) {
    std::uint64_t seed = 20;
    for (auto _ : state) {
        auto r = run_sweep(tedge::sim::seconds(10), tedge::sim::seconds(60), seed++);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_FlowMemorySweep)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char** argv) {
    print_sweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
