// Table I: the four edge services (image sizes, layers, containers, HTTP).
#include <benchmark/benchmark.h>

#include <iostream>

#include "common.hpp"
#include "workload/metrics.hpp"

namespace {

void print_table1() {
    using tedge::workload::TextTable;
    tedge::bench::print_header(
        "Table I -- edge services used in this work",
        "Asm 6.18 KiB/1 layer; Nginx 135 MiB/6; ResNet 308 MiB/9; "
        "Nginx+Py 181 MiB/7; 1/1/1/2 containers; GET/GET/POST/GET");

    TextTable table({"Service", "Image(s)", "Size", "Layers", "Containers", "HTTP"});
    for (const auto& service : tedge::testbed::table1_services()) {
        std::string images;
        tedge::sim::Bytes size = 0;
        std::size_t layers = 0;
        for (const auto& image : service.images) {
            if (!images.empty()) images += " + ";
            images += image.ref.str();
            size += image.total_size();
            layers += image.layer_count();
        }
        std::string size_text;
        if (size < tedge::sim::kib(1024)) {
            size_text = TextTable::num(static_cast<double>(size) / 1024.0, 2) + " KiB";
        } else {
            size_text =
                TextTable::num(static_cast<double>(size) / 1024.0 / 1024.0, 0) + " MiB";
        }
        table.add_row({service.display_name, images, size_text,
                       std::to_string(layers),
                       std::to_string(service.images.size() == 2 ? 2 : 1),
                       service.http_method});
    }
    std::cout << table.str();
}

void BM_ImageRefParse(benchmark::State& state) {
    for (auto _ : state) {
        auto ref = tedge::container::ImageRef::parse(
            "gcr.io/tensorflow-serving/resnet:latest");
        benchmark::DoNotOptimize(ref);
    }
}
BENCHMARK(BM_ImageRefParse);

void BM_MakeLayers(benchmark::State& state) {
    for (auto _ : state) {
        auto layers = tedge::container::make_layers("nginx", tedge::sim::mib(135), 6);
        benchmark::DoNotOptimize(layers);
    }
}
BENCHMARK(BM_MakeLayers);

} // namespace

int main(int argc, char** argv) {
    print_table1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
