#include "common.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>

#include "simcore/thread_pool.hpp"
#include "workload/runner.hpp"

namespace tedge::bench {
namespace {

testbed::C3Options base_options(const DeploymentExperimentOptions& options) {
    testbed::C3Options c3;
    c3.seed = options.seed;
    c3.with_docker = options.cluster_kind == "docker";
    c3.with_k8s = options.cluster_kind == "k8s";
    c3.controller.scheduler = sdn::kProximityScheduler;
    // Keep instances warm for the whole trace (the paper's runs do not
    // scale services down mid-experiment).
    c3.controller.flow_memory.idle_timeout = sim::seconds(900);
    c3.controller.flow_memory.scan_period = sim::seconds(60);
    c3.controller.scale_down_idle = false;
    c3.controller.dispatcher.switch_idle_timeout = sim::seconds(900);
    c3.controller.fidelity = fidelity_from_env();
    return c3;
}

} // namespace

void drain_phase(sim::Simulation& sim, const std::function<bool()>& done,
                 sim::SimTime slice) {
    if (done()) return; // the old polling loop would never have entered
    const sim::SimTime start = sim.now();
    sim.run_while([&] { return !done(); });
    const std::int64_t slice_ns = slice.ns();
    const std::int64_t rel = (sim.now() - start).ns();
    const std::int64_t slices = std::max<std::int64_t>(1, (rel + slice_ns - 1) / slice_ns);
    sim.run_until(start + sim::nanoseconds(slices * slice_ns));
}

std::size_t shards_from_env() {
    const char* v = std::getenv("TEDGE_SHARDS");
    if (v == nullptr || *v == '\0') return 0;
    const long parsed = std::strtol(v, nullptr, 10);
    return parsed > 0 ? static_cast<std::size_t>(parsed) : 0;
}

sdn::Fidelity fidelity_from_env() {
    const char* v = std::getenv("TEDGE_FIDELITY");
    if (v == nullptr || *v == '\0') return sdn::Fidelity::kExact;
    return sdn::fidelity_from_string(v); // throws on an unknown value
}

DeploymentExperimentResult
run_deployment_experiment(const DeploymentExperimentOptions& options) {
    DeploymentExperimentResult result;

    // Hosted mode: the testbed's kernel is domain 0 of a ShardedSimulation.
    // One site -> one domain (the partitioning rule keeps strongly-coupled
    // nodes together), and a single-domain coordinator grants that domain an
    // unbounded conservative window -- its execution is the serial kernel's,
    // so phase drains may drive the domain kernel directly and stay
    // bit-identical with the self-hosted path.
    std::unique_ptr<sim::ShardedSimulation> coordinator;
    testbed::C3Options c3 = base_options(options);
    if (options.shards >= 1) {
        sim::ShardedSimulation::Options host;
        host.seed = options.seed;
        host.shards = options.shards;
        coordinator = std::make_unique<sim::ShardedSimulation>(host);
        c3.host_sim = &coordinator->add_domain("c3-site").sim();
    }

    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;
    auto* cluster = platform.clusters().front();

    if (options.tracer != nullptr) {
        options.tracer->attach(platform.simulation());
        options.tracer->enable();
    }
    if (options.metrics != nullptr) {
        platform.simulation().set_metrics(options.metrics);
    }

    const auto& service = testbed::service_by_key(options.service_key);

    // Register `num_services` copies of the service type under distinct
    // addresses (the 42 public destinations of the bigFlows trace).
    std::vector<net::ServiceAddress> addresses;
    std::vector<const orchestrator::ServiceSpec*> specs;
    for (std::uint32_t i = 0; i < options.num_services; ++i) {
        net::ServiceAddress address{net::Ipv4{203, 0, 120, 0}, service.address.port};
        address.ip = net::Ipv4{static_cast<std::uint32_t>(
            net::Ipv4{203, 0, 120, 10}.value() + i)};
        const auto& annotated = platform.register_service(address, service.yaml);
        addresses.push_back(address);
        specs.push_back(&annotated.spec);
    }

    // Pull phase up front (cached images), per figs. 11/12.
    if (options.pre_pull) {
        std::size_t remaining = specs.size();
        for (const auto* spec : specs) {
            cluster->ensure_image(*spec, [&remaining](bool ok,
                                                      const container::PullTiming&) {
                if (!ok) throw std::runtime_error("pre-pull failed");
                --remaining;
            });
        }
        drain_phase(platform.simulation(), [&] { return remaining == 0; });
    }

    // Create phase up front when measuring Scale Up only (fig. 11).
    if (options.pre_create) {
        std::size_t remaining = specs.size();
        for (const auto* spec : specs) {
            cluster->create_service(*spec, [&remaining](bool ok) {
                if (!ok) throw std::runtime_error("pre-create failed");
                --remaining;
            });
        }
        drain_phase(platform.simulation(), [&] { return remaining == 0; });
    }

    // Replay the bigFlows-like trace.
    workload::BigFlowsOptions trace_options;
    trace_options.services = options.num_services;
    trace_options.requests = options.num_requests;
    trace_options.horizon = options.horizon;
    trace_options.clients = static_cast<std::uint32_t>(testbed->clients.size());
    trace_options.seed = options.seed;
    result.trace = workload::synthesize_bigflows(trace_options);

    workload::TraceRunner runner(platform, testbed->clients);
    workload::TraceReplayOptions replay;
    replay.addresses = addresses;
    replay.request_sizes = {service.request_size};
    auto& metrics = runner.replay(result.trace, replay);

    // First request per service vs. warm requests.
    std::map<std::string, const workload::RequestRecord*> first_by_service;
    for (const auto& record : metrics.records()) {
        auto& slot = first_by_service[record.service];
        if (slot == nullptr || record.sent < slot->sent) slot = &record;
    }
    for (const auto& record : metrics.records()) {
        if (!record.ok) {
            ++result.failures;
            continue;
        }
        if (first_by_service.at(record.service) == &record) {
            result.first_request_ms.add_time(record.time_total);
        } else {
            result.warm_request_ms.add_time(record.time_total);
        }
    }

    for (const auto& record : platform.deployment_engine().records()) {
        if (!record.ok) continue;
        result.wait_ready_ms.add_time(record.phases.wait_ready);
        result.deploy_total_ms.add_time(record.total());
        result.deployment_start_times.push_back(record.started);
    }

    // Hosted mode: hand the (drained) run back to the coordinator once --
    // run() observes no remaining user events across domains and returns,
    // confirming the window bookkeeping agrees with the serial drain.
    if (coordinator) coordinator->run();

    // Detach before the testbed (and its Simulation) is destroyed; the
    // tracer keeps its recorded spans for the caller to export.
    if (options.tracer != nullptr) options.tracer->detach();
    return result;
}

std::vector<DeploymentExperimentResult>
run_deployment_replications(const std::vector<DeploymentExperimentOptions>& options) {
    std::vector<DeploymentExperimentResult> results(options.size());
    static sim::ThreadPool pool;
    pool.parallel_for(options.size(), [&](std::size_t i) {
        results[i] = run_deployment_experiment(options[i]);
    });
    return results;
}

PullMeasurement measure_pull(const std::string& service_key, bool private_registry,
                             const std::string& pre_cached_service,
                             std::uint64_t seed) {
    testbed::C3Options c3;
    c3.seed = seed;
    c3.with_k8s = false;
    c3.use_private_registry_mirror = private_registry;
    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;
    auto* cluster = testbed->docker;

    auto pull_one = [&](const testbed::TestService& service) {
        const auto& annotated =
            platform.register_service(service.address, service.yaml);
        PullMeasurement m;
        bool done = false;
        cluster->ensure_image(annotated.spec,
                              [&](bool ok, const container::PullTiming& t) {
            if (!ok) throw std::runtime_error("pull failed");
            m.pull_ms = t.duration().ms();
            m.bytes = t.bytes_downloaded;
            m.layers_downloaded = t.layers_downloaded;
            m.layers_cached = t.layers_cached;
            done = true;
        });
        drain_phase(platform.simulation(), [&] { return done; });
        return m;
    };

    if (!pre_cached_service.empty()) {
        pull_one(testbed::service_by_key(pre_cached_service));
    }
    return pull_one(testbed::service_by_key(service_key));
}

sim::SampleSet measure_warm_requests(const std::string& cluster_kind,
                                     const std::string& service_key, int requests,
                                     std::uint64_t seed) {
    testbed::C3Options c3;
    c3.seed = seed;
    c3.with_docker = cluster_kind == "docker";
    c3.with_k8s = cluster_kind == "k8s";
    c3.controller.flow_memory.idle_timeout = sim::seconds(900);
    c3.controller.dispatcher.switch_idle_timeout = sim::seconds(900);
    c3.controller.scale_down_idle = false;
    auto testbed = build_c3(c3);
    auto& platform = testbed->platform;

    const auto& service = testbed::service_by_key(service_key);
    const auto& annotated = platform.register_service(service.address, service.yaml);

    // Deploy fully and wait until ready.
    bool ready = false;
    platform.deployment_engine().ensure(
        *platform.clusters().front(), annotated.spec, {},
        [&](bool ok, const orchestrator::InstanceInfo&) { ready = ok; });
    drain_phase(platform.simulation(), [&] { return ready; });

    sim::SampleSet samples;
    int completed = 0;
    for (int i = 0; i < requests; ++i) {
        platform.simulation().schedule(
            sim::milliseconds(100) * static_cast<std::int64_t>(i),
            [&, i] {
                platform.http_request(
                    testbed->clients[static_cast<std::size_t>(i) %
                                     testbed->clients.size()],
                    service.address, service.request_size,
                    [&](const net::HttpResult& r) {
                        if (r.ok) samples.add_time(r.time_total);
                        ++completed;
                    });
            });
    }
    drain_phase(platform.simulation(), [&] { return completed >= requests; });
    return samples;
}

namespace {
bool env_flag(const char* name) {
    const char* v = std::getenv(name);
    return v != nullptr && *v != '\0' && std::string(v) != "0";
}
} // namespace

bool trace_only_mode() { return env_flag("TEDGE_TRACE_ONLY"); }

bool trace_requested() {
    return env_flag("TEDGE_TRACE") || trace_only_mode();
}

void write_trace_artifacts(const std::string& prefix, const sim::Tracer& tracer,
                           const sim::MetricsRegistry& metrics) {
    const std::string trace_path = prefix + ".trace.json";
    const std::string metrics_path = prefix + ".metrics.txt";
    {
        std::ofstream os(trace_path);
        tracer.write_chrome_trace(os);
    }
    {
        std::ofstream os(metrics_path);
        metrics.dump(os);
    }

    // Per-phase summary straight from the spans: count / total / mean per
    // span name, in name order.
    struct Agg {
        std::uint64_t count = 0;
        double total_ms = 0;
    };
    std::map<std::string, Agg> by_name;
    for (const auto& span : tracer.spans()) {
        if (span.instant) continue;
        auto& agg = by_name[span.name];
        ++agg.count;
        agg.total_ms += span.duration().ms();
    }
    workload::TextTable table({"span", "count", "total [ms]", "mean [ms]"});
    for (const auto& [name, agg] : by_name) {
        table.add_row({name, std::to_string(agg.count),
                       workload::TextTable::num(agg.total_ms, 1),
                       workload::TextTable::num(
                           agg.total_ms / static_cast<double>(agg.count), 2)});
    }
    std::cout << "\nper-phase spans (" << tracer.spans().size() << " total, "
              << tracer.dropped() << " dropped):\n"
              << table.str() << "trace:   " << trace_path << "\n"
              << "metrics: " << metrics_path << "\n";
}

void print_header(const std::string& experiment, const std::string& paper_claim) {
    std::cout << "\n==================================================================\n"
              << experiment << "\n"
              << "paper: " << paper_claim << "\n"
              << "==================================================================\n";
}

} // namespace tedge::bench
