// Commuter-wave mobility study (DESIGN §11): a corridor of 4 cells, each
// with its own edge cluster, and a wave of UEs sweeping cell 0 -> 3 on the
// CorridorMobility trace. Every UE's first request deploys the service once
// at the corridor entrance; the question is what the controller does with
// the flows as the wave rolls through the cells.
//
// Two continuity arms over the identical trace and topology:
//   * resteer       -- the network follows the user, compute does not: every
//                      post-handover request pays the backhaul to cell 0.
//   * latency_delta -- migrate-and-warm: the controller warms an instance
//                      near the new cell in the background and cuts the flow
//                      over once it is ready; requests never wait on it.
//
// A third section replays the same corridor against the sharded control
// plane (one sim::Domain per cell, ControlPlaneShard each) and checks that
// the cross-shard client-state handoff conserves flows and stays
// byte-identical between a serial run and a wide one.
//
// Three hard gates (CI runs the --quick smoke and trusts the exit code):
//   1. Warm re-steer deploys nothing: the resteer arm ends the run with the
//      same single deployment it started with, however many handovers fire.
//   2. Migrate-and-warm must beat always-re-steer on post-handover p95
//      latency -- the reason the policy exists.
//   3. Handoff conservation + determinism: handed off == adopted, every
//      flow ends at the last cell, and the 4x4 channel-sync digest is
//      byte-identical to the 1x1 run.
//
// Flags: --quick (fewer UEs, faster sweep: CI smoke), --out <file>.
#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "core/edge_platform.hpp"
#include "sdn/continuity.hpp"
#include "sdn/control_plane_shard.hpp"
#include "simcore/sharded_simulation.hpp"
#include "workload/metrics.hpp"
#include "workload/mobility.hpp"

namespace tedge::bench {
namespace {

constexpr std::uint32_t kCells = 4;
/// Backbone star: every secondary gNB is 2 ms from the corridor entrance.
const sim::SimTime kBackbone = sim::milliseconds(2);

/// Radio leg for a UE entering cell `k`. Strictly decreasing along the
/// corridor so the *current* cell is always the client's nearest entry --
/// the corridor is one-directional, so the newest link is the live one.
sim::SimTime radio(std::uint32_t k) {
    return sim::microseconds(5000 - 10 * static_cast<std::int64_t>(k));
}

struct ArmResult {
    std::string policy;
    std::size_t requests = 0;
    std::size_t requests_ok = 0;
    std::size_t deployments = 0;      ///< completed engine records
    std::uint64_t handovers = 0;
    std::uint64_t resteers = 0;
    std::uint64_t migrations = 0;
    std::uint64_t migrations_completed = 0;
    std::uint64_t stale_migrations = 0;
    std::uint64_t memory_hits = 0;
    double p50_ms = 0, p95_ms = 0, p99_ms = 0;          ///< all requests
    double post_p50_ms = 0, post_p95_ms = 0, post_p99_ms = 0; ///< after 1st handover
};

double percentile(const std::vector<double>& sorted_samples, double p) {
    if (sorted_samples.empty()) return 0;
    const auto index = static_cast<std::size_t>(
        p * static_cast<double>(sorted_samples.size() - 1));
    return sorted_samples[index];
}

ArmResult run_arm(const std::string& policy, bool quick) {
    const std::uint32_t ues = quick ? 4 : 16;
    const double speed_mps = quick ? 60.0 : 15.0;
    const auto horizon = quick ? sim::seconds(50) : sim::seconds(150);

    ArmResult result;
    result.policy = policy;

    core::EdgePlatform platform;
    // Corridor cells: the primary ingress is cell 0, the rest hang off the
    // backbone star. Each cell gets an edge host 100 us from its gNB (and a
    // 4 ms guard link to the primary so hosts cannot short-cut the backhaul).
    std::vector<net::OvsSwitch*> cells;
    cells.push_back(&platform.ingress());
    std::vector<net::NodeId> hosts;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        if (c > 0) {
            cells.push_back(&platform.add_ingress("gnb" + std::to_string(c),
                                                  kBackbone));
        }
        const auto host = platform.add_edge_host(
            "edge" + std::to_string(c),
            net::Ipv4{10, 0, 0, static_cast<std::uint8_t>(2 + c)}, 12,
            c == 0 ? sim::microseconds(100) : sim::milliseconds(4));
        if (c > 0) {
            platform.topology().add_link(host, cells[c]->node(),
                                         sim::microseconds(100),
                                         sim::gbit_per_sec(10));
        }
        hosts.push_back(host);
    }
    platform.add_cloud();

    auto& registry = platform.add_registry({.host = "docker.io"});
    container::Image image;
    image.ref = *container::ImageRef::parse("web:1");
    image.layers = container::make_layers("web", sim::mib(8), 2);
    registry.put(image);

    container::AppProfile app;
    app.name = "web";
    app.init_median = sim::milliseconds(15);
    app.service_median = sim::microseconds(200);
    app.port = 80;
    platform.add_app_profile("web:1", app);

    for (std::uint32_t c = 0; c < kCells; ++c) {
        platform.add_docker_cluster("cell" + std::to_string(c), hosts[c]);
    }

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 90}, 80};
    platform.register_service(address, R"(
kind: Deployment
spec:
  template:
    spec:
      containers:
        - name: web
          image: web:1
          ports:
            - containerPort: 80
)");

    // Flows must outlive the whole sweep: no idle scale-down, long memory.
    sdn::ControllerConfig config;
    config.scale_down_idle = false;
    config.flow_memory.idle_timeout = sim::seconds(900);
    config.dispatcher.switch_idle_timeout = sim::seconds(900);
    config.dispatcher.continuity.policy = policy;
    // The corridor clusters start cold; a cold warm-up is still worth it.
    config.dispatcher.continuity.max_deploy_cost = sim::seconds(60);
    platform.start_controller(hosts[0], std::move(config));

    // The commuter wave: everyone departs cell 0 within a minute and sweeps
    // the corridor; the trace drives the platform through schedule-free
    // connect_client_to_ingress calls (the radio link appears on cell entry).
    std::vector<net::NodeId> ue_nodes;
    std::vector<bool> handed_over(ues, false);
    for (std::uint32_t u = 0; u < ues; ++u) {
        ue_nodes.push_back(platform.add_client(
            "ue" + std::to_string(u),
            net::Ipv4{10, 0, 1, static_cast<std::uint8_t>(1 + u)}, radio(0)));
    }
    workload::CorridorMobility::Options corridor_options;
    corridor_options.ues = ues;
    corridor_options.cells = kCells;
    corridor_options.speed_mps = speed_mps;
    corridor_options.departure_window = quick ? sim::seconds(5) : sim::seconds(60);
    corridor_options.seed = 7;
    workload::CorridorMobility corridor(corridor_options);
    workload::MobilityPump pump(
        platform.simulation(), corridor,
        [&](const workload::HandoverEvent& event) {
            handed_over[event.ue] = true;
            platform.connect_client_to_ingress(ue_nodes[event.ue],
                                               *cells[event.to_cell],
                                               radio(event.to_cell));
        });
    pump.start();

    // Each UE polls the service once a second for the whole traversal.
    std::size_t done = 0;
    std::vector<double> all_ms, post_ms;
    for (std::uint32_t u = 0; u < ues; ++u) {
        for (auto at = sim::milliseconds(100 + 10 * static_cast<std::int64_t>(u));
             at < horizon; at = at + sim::seconds(1)) {
            ++result.requests;
            platform.simulation().schedule_at(at, [&, u] {
                const bool post = handed_over[u];
                platform.http_request(
                    ue_nodes[u], address, 100, [&, post](const net::HttpResult& r) {
                        ++done;
                        if (!r.ok) return;
                        ++result.requests_ok;
                        all_ms.push_back(r.time_total.ms());
                        if (post) post_ms.push_back(r.time_total.ms());
                    });
            });
        }
    }
    drain_phase(platform.simulation(), [&] { return done == result.requests; });

    for (const auto& record : platform.deployment_engine().records()) {
        if (record.ok) ++result.deployments;
    }
    const auto& stats = platform.controller().dispatcher().stats();
    result.handovers = stats.handovers;
    result.resteers = stats.resteers;
    result.migrations = stats.migrations;
    result.migrations_completed = stats.migrations_completed;
    result.stale_migrations = stats.stale_migrations;
    result.memory_hits = stats.memory_hits;

    std::sort(all_ms.begin(), all_ms.end());
    std::sort(post_ms.begin(), post_ms.end());
    result.p50_ms = percentile(all_ms, 0.50);
    result.p95_ms = percentile(all_ms, 0.95);
    result.p99_ms = percentile(all_ms, 0.99);
    result.post_p50_ms = percentile(post_ms, 0.50);
    result.post_p95_ms = percentile(post_ms, 0.95);
    result.post_p99_ms = percentile(post_ms, 0.99);
    return result;
}

// ------------------------------------------- sharded handoff differential

struct HandoffResult {
    std::uint64_t events = 0;
    std::uint64_t messages = 0;
    std::int64_t now_ns = 0;
    std::string state;
    std::uint64_t handed = 0;
    std::uint64_t adopted = 0;
    std::size_t last_cell_flows = 0;
    bool conserved = false;
};

/// The corridor replayed against the sharded control plane: one domain per
/// cell, each UE's FlowMemory slice handed shard-to-shard at the closed-form
/// crossing instants.
HandoffResult run_sharded_handoff(std::size_t shards, std::size_t workers,
                                  std::uint32_t ues) {
    sim::ShardedSimulation::Options options;
    options.lookahead = sim::milliseconds(25);
    options.shards = shards;
    options.workers = workers;
    options.sync = sim::SyncMode::kChannel;
    sim::ShardedSimulation sharded(options);

    std::vector<sim::Domain*> domains;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        domains.push_back(&sharded.add_domain("cell" + std::to_string(c)));
    }
    sim::Domain& controller = sharded.add_domain("controller");
    sdn::ControlPlaneAggregator aggregator(controller);

    std::vector<std::unique_ptr<sdn::ControlPlaneShard>> planes;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        sdn::ControlPlaneShard::Config config;
        config.flow_memory.idle_timeout = sim::seconds(600);
        config.flow_memory.scan_period = sim::seconds(5);
        config.flow_memory.track_clients = true;
        config.digest_period = sim::seconds(10);
        planes.push_back(std::make_unique<sdn::ControlPlaneShard>(
            *domains[c], aggregator, config));
        planes.back()->start();
    }

    workload::CorridorMobility::Options corridor_options;
    corridor_options.ues = ues;
    corridor_options.cells = kCells;
    corridor_options.seed = 11;
    workload::CorridorMobility corridor(corridor_options);

    const net::ServiceAddress address{net::Ipv4{203, 0, 113, 5}, 80};
    for (std::uint32_t u = 0; u < ues; ++u) {
        const net::Ipv4 ip{0x0a010000u + u};
        domains[0]->sim().schedule_at(
            sim::milliseconds(static_cast<std::int64_t>(u) + 1),
            [&planes, ip, address] {
                planes[0]->packet_in(ip, address, "web", net::NodeId{100}, 8080,
                                     "cell0");
            });
        for (std::uint32_t k = 1; k < kCells; ++k) {
            domains[k - 1]->sim().schedule_at(
                corridor.crossing_time(u, k), [&planes, ip, k] {
                    planes[k - 1]->handoff_client(ip, *planes[k]);
                });
        }
    }

    sharded.run();

    HandoffResult result;
    result.events = sharded.events_executed();
    result.messages = sharded.messages_delivered();
    result.now_ns = sharded.now().ns();
    std::ostringstream os;
    for (std::uint32_t c = 0; c < kCells; ++c) {
        os << "cell" << c << " out=" << planes[c]->handoffs_out()
           << " in=" << planes[c]->handoffs_in()
           << " handed=" << planes[c]->flows_handed_off()
           << " adopted=" << planes[c]->flows_adopted()
           << " live=" << planes[c]->memory().size() << "\n";
        result.handed += planes[c]->flows_handed_off();
        result.adopted += planes[c]->flows_adopted();
    }
    result.state = os.str();
    result.last_cell_flows = planes[kCells - 1]->memory().size();
    bool interior_empty = true;
    for (std::uint32_t c = 0; c + 1 < kCells; ++c) {
        interior_empty = interior_empty && planes[c]->memory().size() == 0;
    }
    result.conserved = result.handed == std::uint64_t{ues} * (kCells - 1) &&
                       result.adopted == result.handed &&
                       result.last_cell_flows == ues && interior_empty;
    return result;
}

std::string json_arm(const ArmResult& r) {
    using workload::TextTable;
    std::ostringstream out;
    out << "    {\"policy\": \"" << r.policy << "\", \"requests\": " << r.requests
        << ", \"requests_ok\": " << r.requests_ok
        << ", \"deployments\": " << r.deployments
        << ", \"handovers\": " << r.handovers << ", \"resteers\": " << r.resteers
        << ", \"migrations\": " << r.migrations
        << ", \"migrations_completed\": " << r.migrations_completed
        << ", \"stale_migrations\": " << r.stale_migrations
        << ", \"memory_hits\": " << r.memory_hits
        << ", \"p50_ms\": " << TextTable::num(r.p50_ms, 3)
        << ", \"p95_ms\": " << TextTable::num(r.p95_ms, 3)
        << ", \"p99_ms\": " << TextTable::num(r.p99_ms, 3)
        << ", \"post_handover_p50_ms\": " << TextTable::num(r.post_p50_ms, 3)
        << ", \"post_handover_p95_ms\": " << TextTable::num(r.post_p95_ms, 3)
        << ", \"post_handover_p99_ms\": " << TextTable::num(r.post_p99_ms, 3)
        << "}";
    return out.str();
}

} // namespace
} // namespace tedge::bench

int main(int argc, char** argv) {
    using namespace tedge;
    using namespace tedge::bench;
    using workload::TextTable;

    bool quick = false;
    std::string out_path = "BENCH_mobility.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--quick") {
            quick = true;
        } else if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: bench_mobility [--quick] [--out <file>]\n";
            return 2;
        }
    }

    print_header("mobility",
                 "commuter wave over a 4-cell corridor: re-steer vs "
                 "migrate-and-warm continuity, plus the sharded handoff "
                 "differential");

    const std::vector<std::string> policies = {sdn::kResteerPolicy,
                                               sdn::kLatencyDeltaPolicy};
    std::vector<ArmResult> arms;
    for (const auto& policy : policies) {
        arms.push_back(run_arm(policy, quick));
    }

    TextTable table({"policy", "ok", "deploys", "handovers", "resteer",
                     "migrate", "cutover", "p95 [ms]", "post-HO p95 [ms]"});
    for (const auto& r : arms) {
        table.add_row({r.policy, std::to_string(r.requests_ok),
                       std::to_string(r.deployments),
                       std::to_string(r.handovers), std::to_string(r.resteers),
                       std::to_string(r.migrations),
                       std::to_string(r.migrations_completed),
                       TextTable::num(r.p95_ms, 2),
                       TextTable::num(r.post_p95_ms, 2)});
    }
    std::cout << table.str() << "\n";

    const std::uint32_t handoff_ues = quick ? 16 : 64;
    const auto serial = run_sharded_handoff(1, 1, handoff_ues);
    const auto wide = run_sharded_handoff(4, 4, handoff_ues);
    const bool identical = serial.events == wide.events &&
                           serial.messages == wide.messages &&
                           serial.now_ns == wide.now_ns &&
                           serial.state == wide.state;
    std::cout << "sharded handoff (" << handoff_ues << " UEs x " << kCells
              << " cells): handed=" << serial.handed
              << " adopted=" << serial.adopted
              << " at-last-cell=" << serial.last_cell_flows << "\n";

    std::ofstream out(out_path);
    out << "{\n  \"bench\": \"bench_mobility\",\n  \"quick\": "
        << (quick ? "true" : "false") << ",\n  \"cells\": " << kCells
        << ",\n  \"arms\": [\n";
    for (std::size_t i = 0; i < arms.size(); ++i) {
        out << json_arm(arms[i]) << (i + 1 < arms.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"sharded_handoff\": {\"ues\": " << handoff_ues
        << ", \"handed\": " << serial.handed
        << ", \"adopted\": " << serial.adopted
        << ", \"conserved\": " << (serial.conserved ? "true" : "false")
        << ", \"identical_1x1_vs_4x4\": " << (identical ? "true" : "false")
        << "}\n}\n";
    out.close();
    std::cout << "wrote " << out_path << "\n";

    bool failed = false;
    const auto by_name = [&](const char* name) -> const ArmResult& {
        for (const auto& r : arms) {
            if (r.policy == name) return r;
        }
        throw std::logic_error("policy missing from sweep");
    };
    const auto& resteer = by_name(sdn::kResteerPolicy);
    const auto& migrate = by_name(sdn::kLatencyDeltaPolicy);
    if (resteer.deployments != 1 || resteer.migrations != 0) {
        std::cerr << "MOBILITY GATE: warm re-steer deployed "
                  << resteer.deployments << " times (migrations="
                  << resteer.migrations << ") -- expected the single initial "
                  << "deployment and zero migrations\n";
        failed = true;
    } else {
        std::cout << "gate: warm-resteer-zero-deployments OK\n";
    }
    if (migrate.migrations_completed == 0 ||
        migrate.post_p95_ms >= resteer.post_p95_ms) {
        std::cerr << "MOBILITY GATE: migrate-and-warm post-handover p95 "
                  << migrate.post_p95_ms << " ms does not beat re-steer's "
                  << resteer.post_p95_ms << " ms (cutovers="
                  << migrate.migrations_completed << ")\n";
        failed = true;
    } else {
        std::cout << "gate: migrate-beats-resteer OK\n";
    }
    if (!serial.conserved || !wide.conserved || !identical) {
        std::cerr << "MOBILITY GATE: sharded handoff broke -- conserved(1x1)="
                  << serial.conserved << " conserved(4x4)=" << wide.conserved
                  << " identical=" << identical << "\n";
        failed = true;
    } else {
        std::cout << "invariant: handoff-conservation OK\n";
    }
    return failed ? 1 : 0;
}
